/**
 * @file
 * Backend-zoo ablation: every registered prefetcher ± the perceptron
 * filter (ROADMAP item 2; the cross-family companion to the paper's
 * Section 3.2 generality claim).
 *
 * The row list is not hard-coded: it is derived from the prefetcher
 * registry, so a backend registered tomorrow appears here with its
 * +ppf composition for free.  For each spec the table reports geomean
 * speedup over no prefetching, aggregate accuracy (useful/issued) and
 * aggregate L2 miss coverage — the three axes the paper uses to argue
 * that filtering trades a little coverage for a lot of accuracy.
 *
 * Flags: --instructions, --warmup, --jobs, plus
 *   --subset   two workloads and shorter runs (the CI zoo-smoke
 *              configuration; stdout stays byte-identical across
 *              --jobs values either way)
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"subset"});
    const bool subset = args.has("subset");
    sim::RunConfig run = runConfig(args);
    if (!args.has("instructions"))
        run.simInstructions = subset ? 120000 : 500000;
    if (!args.has("warmup"))
        run.warmupInstructions = subset ? 40000 : 150000;

    banner("Ablation — the backend zoo, each ± the perceptron filter",
           "every registered backend composed with +ppf: the "
           "cross-family generality sweep (Sec. 3.2)",
           run);

    std::vector<workloads::Workload> workload_set = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("623.xalancbmk_s-like"),
        workloads::findWorkload("607.cactuBSSN_s-like"),
        workloads::findWorkload("619.lbm_s-like"),
    };
    if (subset)
        workload_set.resize(2);

    // Rows come from the registry: each backend, then its +ppf
    // composition when the grammar allows one.  "none" is skipped —
    // the sweep engine always runs it as the speedup baseline.
    std::vector<std::string> specs;
    for (const prefetch::BackendInfo &info :
         prefetch::prefetcherBackends()) {
        if (info.name == "none")
            continue;
        specs.push_back(info.name);
        if (info.filterable)
            specs.push_back(info.name + "+ppf");
    }

    const auto rows = sim::sweepPrefetchers(
        sim::SystemConfig::defaultConfig(), specs, workload_set, run);

    stats::TextTable table({"prefetcher", "geomean speedup", "issued",
                            "accuracy", "coverage"});
    for (const std::string &spec : specs) {
        std::uint64_t issued = 0, useful = 0;
        std::uint64_t base_misses = 0, misses = 0;
        for (const sim::SweepRow &row : rows) {
            const sim::RunResult &result = row.results.at(spec);
            issued += result.totalPf();
            useful += result.goodPf();
            base_misses += row.results.at("none").l2.demandMisses();
            misses += result.l2.demandMisses();
        }
        const double accuracy =
            issued ? 100.0 * double(useful) / double(issued) : 0.0;
        const double coverage =
            base_misses && misses < base_misses
                ? 100.0 * double(base_misses - misses) /
                      double(base_misses)
                : 0.0;
        table.addRow({spec, pct(sim::geomeanSpeedup(rows, spec)),
                      std::to_string(issued),
                      stats::TextTable::num(accuracy, 1) + "%",
                      stats::TextTable::num(coverage, 1) + "%"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("spp_ppf is the paper's tight integration; +ppf rows "
                "use the generic metadata-free wrap\n");
    return 0;
}
