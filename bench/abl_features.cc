/**
 * @file
 * Ablation: leave-one-feature-out.  Re-runs PPF with each of the nine
 * perceptron features disabled in turn and reports the geomean
 * speedup over no prefetching, next to the full 9-feature filter.
 *
 * The paper's feature-selection methodology (Section 5.5) argues each
 * retained feature contributes information the others do not capture;
 * this ablation shows the performance side of that claim.
 *
 * Flags: --instructions, --warmup
 */

#include "bench_common.hh"

#include "core/features.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    sim::RunConfig run = runConfig(args);
    if (!args.has("instructions"))
        run.simInstructions = 500000;
    if (!args.has("warmup"))
        run.warmupInstructions = 150000;

    banner("Ablation — leave-one-feature-out",
           "each retained feature should contribute (Section 5.5); "
           "removing the strongest ones costs the most",
           run);

    // A compact, filter-sensitive workload set.
    std::vector<workloads::Workload> workload_set = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("623.xalancbmk_s-like"),
        workloads::findWorkload("649.fotonik3d_s-like"),
        workloads::findWorkload("607.cactuBSSN_s-like"),
    };

    // Baselines (no prefetching) per workload.
    std::map<std::string, double> base_ipc;
    for (const auto &workload : workload_set) {
        std::fprintf(stderr, "  [run] %-24s none ...\n",
                     workload.name.c_str());
        base_ipc[workload.name] =
            sim::runSingleCore(sim::SystemConfig::defaultConfig(),
                               workload, run)
                .ipc;
    }

    auto geomean_for_mask = [&](std::uint32_t mask) {
        sim::SystemConfig config =
            sim::SystemConfig::defaultConfig().withPrefetcher(
                "spp_ppf");
        config.sppPpfConfig.ppf.featureMask = mask;
        std::vector<double> speedups;
        for (const auto &workload : workload_set) {
            const auto result =
                sim::runSingleCore(config, workload, run);
            speedups.push_back(result.ipc / base_ipc[workload.name]);
        }
        return stats::geomean(speedups);
    };

    stats::TextTable table(
        {"configuration", "geomean speedup", "delta vs full"});
    std::fprintf(stderr, "  [run] all features ...\n");
    const double full = geomean_for_mask(0x1ff);
    table.addRow({"all 9 features", pct(full), "--"});

    for (unsigned f = 0; f < ppf::numFeatures; ++f) {
        std::fprintf(stderr, "  [run] without %s ...\n",
                     ppf::featureName(ppf::FeatureId(f)).c_str());
        const double ablated =
            geomean_for_mask(0x1ff & ~(1u << f));
        table.addRow({"- " + ppf::featureName(ppf::FeatureId(f)),
                      pct(ablated),
                      stats::TextTable::num(
                          100.0 * (ablated - full), 2) + " pp"});
    }

    // Family-level ablations: single-feature knockouts are largely
    // absorbed by the ensemble (a hashed-perceptron property), so the
    // informative sweep is whole feature families.
    struct Family
    {
        const char *name;
        std::uint32_t mask;
    };
    const Family families[] = {
        {"address family only (feat 0-3)", 0x00f},
        {"PC family only (feat 4,6,7)", 0x0d0},
        {"conf+signature only (feat 3,5,8)", 0x128},
        {"single: page_addr", 0x004},
        {"single: page_addr^conf", 0x008},
        {"single: confidence", 0x100},
    };
    for (const Family &family : families) {
        std::fprintf(stderr, "  [run] %s ...\n", family.name);
        const double ablated = geomean_for_mask(family.mask);
        table.addRow({family.name, pct(ablated),
                      stats::TextTable::num(
                          100.0 * (ablated - full), 2) + " pp"});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
