/**
 * @file
 * Ablation: PPF over other prefetchers (paper Section 3.2).
 *
 * The paper claims PPF "can be adapted to be used over any underlying
 * prefetcher".  This bench wraps the generic filter around BOP,
 * DA-AMPM, next-line, PMP and Pythia (deriving only the
 * prefetcher-agnostic features) and compares each base against its
 * filtered version, plus the tightly-integrated SPP+PPF for
 * reference.  (bench/abl_backends.cc runs the same comparison over
 * every registered backend via the registry instead of a fixed list.)
 *
 * Expected shape: filtering never collapses a prefetcher, helps the
 * aggressive/inaccurate ones most, and the SPP integration — with its
 * exported metadata (depth, signature, confidence) — beats the
 * metadata-free generic wrap, which is why the paper's case study
 * integrates rather than merely wraps.
 *
 * Flags: --instructions, --warmup
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    sim::RunConfig run = runConfig(args);
    if (!args.has("instructions"))
        run.simInstructions = 500000;
    if (!args.has("warmup"))
        run.warmupInstructions = 150000;

    banner("Ablation — the filter over other prefetchers (Sec. 3.2)",
           "PPF generalises: base vs base+filter for BOP, DA-AMPM and "
           "next-line, with SPP+PPF for reference",
           run);

    std::vector<workloads::Workload> workload_set = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("623.xalancbmk_s-like"),
        workloads::findWorkload("607.cactuBSSN_s-like"),
        workloads::findWorkload("619.lbm_s-like"),
    };

    std::map<std::string, double> base_ipc;
    for (const auto &workload : workload_set) {
        std::fprintf(stderr, "  [run] %-24s none ...\n",
                     workload.name.c_str());
        base_ipc[workload.name] =
            sim::runSingleCore(sim::SystemConfig::defaultConfig(),
                               workload, run)
                .ipc;
    }

    auto evaluate = [&](const std::string &prefetcher) {
        std::vector<double> speedups;
        std::uint64_t issued = 0, useful = 0;
        for (const auto &workload : workload_set) {
            std::fprintf(stderr, "  [run] %-24s %s ...\n",
                         workload.name.c_str(), prefetcher.c_str());
            const auto result = sim::runSingleCore(
                sim::SystemConfig::defaultConfig().withPrefetcher(
                    prefetcher),
                workload, run);
            speedups.push_back(result.ipc / base_ipc[workload.name]);
            issued += result.totalPf();
            useful += result.goodPf();
        }
        return std::make_tuple(stats::geomean(speedups), issued,
                               useful);
    };

    stats::TextTable table({"prefetcher", "geomean speedup", "issued",
                            "accuracy"});
    for (const char *name :
         {"next_line", "next_line_ppf", "bop", "bop_ppf", "da_ampm",
          "da_ampm_ppf", "pmp", "pmp+ppf", "pythia", "pythia+ppf",
          "spp", "spp_ppf"}) {
        const auto [speedup, issued, useful] = evaluate(name);
        table.addRow({name, pct(speedup), std::to_string(issued),
                      stats::TextTable::num(
                          issued ? 100.0 * double(useful) /
                                       double(issued)
                                 : 0.0,
                          1) + "%"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("spp_ppf uses the tight integration (SPP metadata "
                "features); *_ppf use the generic metadata-free "
                "wrap\n");
    return 0;
}
