/**
 * @file
 * Ablation: replacement-policy sensitivity.
 *
 * The paper's configuration uses LRU on every level (Section 5.1).
 * Since prefetch pollution interacts with replacement (a thrash-
 * resistant policy can mask some pollution), this bench re-runs the
 * comparison with SRRIP in the L2 and LLC to check that PPF's
 * advantage is not an artifact of LRU.
 *
 * Flags: --instructions, --warmup
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    sim::RunConfig run = runConfig(args);
    if (!args.has("instructions"))
        run.simInstructions = 500000;
    if (!args.has("warmup"))
        run.warmupInstructions = 150000;

    banner("Ablation — replacement policy (LRU vs SRRIP)",
           "the paper's LRU configuration vs SRRIP in L2+LLC; PPF's "
           "ordering should be policy-robust",
           run);

    std::vector<workloads::Workload> workload_set = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("623.xalancbmk_s-like"),
        workloads::findWorkload("602.gcc_s-like"),
        workloads::findWorkload("657.xz_s-like"),
    };

    for (const char *policy : {"lru", "srrip"}) {
        sim::SystemConfig base = sim::SystemConfig::defaultConfig();
        base.l2.replacement = policy;
        base.llc.replacement = policy;

        std::printf("--- %s ---\n", policy);
        const auto rows = sim::sweepPrefetchers(
            base, {"spp", "spp_ppf"}, workload_set, run);
        stats::TextTable table({"workload", "spp", "spp_ppf (PPF)"});
        for (const auto &row : rows) {
            table.addRow({row.workload, pct(row.speedup("spp")),
                          pct(row.speedup("spp_ppf"))});
        }
        table.addRow({"geomean",
                      pct(sim::geomeanSpeedup(rows, "spp")),
                      pct(sim::geomeanSpeedup(rows, "spp_ppf"))});
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
