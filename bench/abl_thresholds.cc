/**
 * @file
 * Ablation: the filter's decision thresholds tau_lo / tau_hi.
 *
 * tau_lo sets how much evidence a candidate needs to be prefetched at
 * all; tau_hi sets how much it needs to fill the L2 rather than the
 * LLC.  The design-point question (Section 3.1) is the balance between
 * the filter's coverage (low thresholds) and pollution (high).
 *
 * Flags: --instructions, --warmup
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    sim::RunConfig run = runConfig(args);
    if (!args.has("instructions"))
        run.simInstructions = 500000;
    if (!args.has("warmup"))
        run.warmupInstructions = 150000;

    banner("Ablation — filter thresholds tau_lo / tau_hi",
           "the default (2, 40) balances bootstrap skepticism against "
           "L2-fill aggressiveness",
           run);

    std::vector<workloads::Workload> workload_set = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("623.xalancbmk_s-like"),
        workloads::findWorkload("607.cactuBSSN_s-like"),
    };

    std::map<std::string, double> base_ipc;
    for (const auto &workload : workload_set) {
        std::fprintf(stderr, "  [run] %-24s none ...\n",
                     workload.name.c_str());
        base_ipc[workload.name] =
            sim::runSingleCore(sim::SystemConfig::defaultConfig(),
                               workload, run)
                .ipc;
    }

    const std::pair<int, int> points[] = {
        {-24, 40}, {-8, 40}, {2, 40},  {12, 40}, {32, 40},
        {2, 16},   {2, 64},  {2, 100},
    };

    stats::TextTable table({"tau_lo", "tau_hi", "geomean speedup",
                            "issued", "accuracy"});
    for (const auto &[lo, hi] : points) {
        sim::SystemConfig config =
            sim::SystemConfig::defaultConfig().withPrefetcher(
                "spp_ppf");
        config.sppPpfConfig.ppf.tauLo = lo;
        config.sppPpfConfig.ppf.tauHi = hi;

        std::fprintf(stderr, "  [run] tau=(%d, %d) ...\n", lo, hi);
        std::vector<double> speedups;
        std::uint64_t issued = 0, useful = 0;
        for (const auto &workload : workload_set) {
            const auto result =
                sim::runSingleCore(config, workload, run);
            speedups.push_back(result.ipc / base_ipc[workload.name]);
            issued += result.totalPf();
            useful += result.goodPf();
        }
        table.addRow({std::to_string(lo), std::to_string(hi),
                      pct(stats::geomean(speedups)),
                      std::to_string(issued),
                      stats::TextTable::num(
                          issued ? 100.0 * double(useful) /
                                       double(issued)
                                 : 0.0,
                          1) + "%"});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
