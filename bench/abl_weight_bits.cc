/**
 * @file
 * Ablation: perceptron weight width.
 *
 * Paper Section 3.1: "we found that having 5-bit weights provides a
 * good trade-off between accuracy and area."  This bench clamps the
 * weights to narrower ranges (emulating 2-4 bit storage) and shows
 * the accuracy/speedup cost; the decision and training thresholds are
 * scaled with the weight range so the comparison is fair.
 *
 * Flags: --instructions, --warmup
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    sim::RunConfig run = runConfig(args);
    if (!args.has("instructions"))
        run.simInstructions = 500000;
    if (!args.has("warmup"))
        run.warmupInstructions = 150000;

    banner("Ablation — perceptron weight width",
           "5-bit weights are the paper's accuracy/area sweet spot; "
           "narrower weights lose discrimination",
           run);

    std::vector<workloads::Workload> workload_set = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("623.xalancbmk_s-like"),
        workloads::findWorkload("649.fotonik3d_s-like"),
    };

    std::map<std::string, double> base_ipc;
    for (const auto &workload : workload_set) {
        std::fprintf(stderr, "  [run] %-24s none ...\n",
                     workload.name.c_str());
        base_ipc[workload.name] =
            sim::runSingleCore(sim::SystemConfig::defaultConfig(),
                               workload, run)
                .ipc;
    }

    stats::TextTable table({"weight bits", "weight range",
                            "geomean speedup", "storage (weights)"});
    for (unsigned bits = 2; bits <= 5; ++bits) {
        sim::SystemConfig config =
            sim::SystemConfig::defaultConfig().withPrefetcher(
                "spp_ppf");
        auto &ppf_config = config.sppPpfConfig.ppf;
        ppf_config.weightClampBits = bits;
        // Scale thresholds with the representable sum range.
        const double scale = double((1 << (bits - 1))) / 16.0;
        ppf_config.tauHi = int(ppf_config.tauHi * scale + 0.5);
        ppf_config.tauLo = std::max(1, int(ppf_config.tauLo * scale));
        ppf_config.thetaP = int(ppf_config.thetaP * scale + 0.5);
        ppf_config.thetaN = int(ppf_config.thetaN * scale - 0.5);

        std::fprintf(stderr, "  [run] %u-bit weights ...\n", bits);
        std::vector<double> speedups;
        for (const auto &workload : workload_set) {
            const auto result =
                sim::runSingleCore(config, workload, run);
            speedups.push_back(result.ipc / base_ipc[workload.name]);
        }
        const int lo = -(1 << (bits - 1));
        const int hi = (1 << (bits - 1)) - 1;
        table.addRow({std::to_string(bits),
                      "[" + std::to_string(lo) + ", " +
                          std::to_string(hi) + "]",
                      pct(stats::geomean(speedups)),
                      std::to_string(22656 * bits) + " bits"});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
