/**
 * @file
 * Shared plumbing for the experiment (bench) binaries: common flags,
 * run-length scaling and report headers.
 *
 * Every bench accepts:
 *   --instructions=N  measured instructions per run (default 1M)
 *   --warmup=N        warmup instructions per run (default 250k)
 *   --jobs=N          worker threads for sweeps (default: hardware
 *                     concurrency; --jobs=1 runs serially).  Sweep
 *                     results are bit-identical for every value; only
 *                     wall-clock and stderr progress order change.
 *   --fast-path=off|skip|wheel
 *                     simulation-kernel fast path (default wheel; the
 *                     legacy "on" alias also selects wheel).  off
 *                     ticks every component every cycle, skip jumps
 *                     whole-system idle cycles (PR 4), wheel ticks
 *                     each component only on cycles where it has work.
 *                     Statistics are bit-identical in every mode; the
 *                     slower modes exist to validate and measure the
 *                     faster ones.
 *   --checkpoint-dir=PATH
 *                     content-addressed checkpoint store directory
 *                     (default: off).  Runs restore their warmup from
 *                     a matching checkpoint, or simulate it once and
 *                     publish for later jobs.  Report output (stdout)
 *                     stays byte-identical; hit/miss telemetry goes
 *                     to stderr with the sweep footer.
 *   --warmup-reuse[=off]
 *                     warmup reuse master switch.  Bare --warmup-reuse
 *                     also defaults --checkpoint-dir to
 *                     results/checkpoints; =off forces every run to
 *                     simulate its own warmup.
 *   --shards=N[,respawn=K,heartbeat=MS]
 *                     crash-isolated sweep service (sim/service):
 *                     dispatch sweeps to N supervised worker
 *                     *processes* instead of the in-process thread
 *                     pool.  stdout stays byte-identical to every
 *                     --jobs value; a worker SIGSEGV/OOM/SIGKILL
 *                     re-queues its job, respawn=K bounds worker
 *                     deaths charged to one job before it is
 *                     quarantined, heartbeat=MS tunes the liveness
 *                     watchdog (0 disables it).
 *   --resume=PATH     resume an interrupted sharded campaign from its
 *                     write-ahead journal (default location
 *                     results/campaign.journal): finalized rows replay
 *                     without re-running.  Requires --shards.
 * plus bench-specific flags documented in each binary.
 *
 * Default lengths are sized for a small CI container; the shapes the
 * paper reports (who wins, by how much, where the crossovers are) are
 * stable at these lengths, while absolute numbers sharpen with longer
 * runs (see EXPERIMENTS.md).
 */

#ifndef PFSIM_BENCH_BENCH_COMMON_HH
#define PFSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

#include "prefetch/registry/registry.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "sim/runner.hh"
#include "sim/service/service.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "workloads/mixes.hh"
#include "workloads/registry.hh"

namespace pfsim::bench
{

/**
 * Print every registered prefetcher backend with its storage budget
 * (the --list-prefetchers report; CI's zoo smoke diffs these rows
 * against the registry).
 */
inline void
listPrefetchers()
{
    const prefetch::BackendConfigs configs;
    std::printf("registered prefetcher backends "
                "(--prefetcher=<backend>[+ppf]):\n");
    for (const prefetch::BackendInfo &info :
         prefetch::prefetcherBackends()) {
        std::printf("  %s\n",
                    prefetch::describeBackend(info, configs).c_str());
    }
}

/** Parse the shared flags plus @p extra ones. */
inline Args
parseArgs(int argc, char **argv, std::set<std::string> extra = {})
{
    extra.insert("instructions");
    extra.insert("warmup");
    extra.insert("jobs");
    extra.insert("fast-path");
    extra.insert("checkpoint-dir");
    extra.insert("warmup-reuse");
    extra.insert("shards");
    extra.insert("resume");
    extra.insert("worker");
    extra.insert("list-prefetchers");
    // The sweep service re-execs this binary as shard workers, so it
    // must learn the exact command line before any campaign starts.
    sim::service::initWorkerCommand(argc, argv);
    Args args(argc, argv, extra);
    if (args.has("list-prefetchers")) {
        listPrefetchers();
        std::exit(0);
    }
    if (args.has("worker")) {
        sim::service::enterWorkerMode(
            sim::service::parseWorkerSpec(args.get("worker", "")));
    }
    return args;
}

/** Build the run-length config from the shared flags. */
inline sim::RunConfig
runConfig(const Args &args)
{
    sim::RunConfig run;
    run.simInstructions =
        InstrCount(args.getUnsigned("instructions", 1000000));
    run.warmupInstructions =
        InstrCount(args.getUnsigned("warmup", 250000));
    // 0 = hardware concurrency (resolved by the sweep engine).
    run.jobs = unsigned(args.getUnsigned("jobs", 0));
    if (!sim::parseFastPathMode(args.get("fast-path", "wheel"),
                                run.fastPath)) {
        fatal("bad --fast-path value (want off|skip|wheel): " +
              args.get("fast-path", ""));
    }
    run.warmupReuse = args.get("warmup-reuse", "on") != "off";
    run.checkpointDir = args.get("checkpoint-dir", "");
    // Bare --warmup-reuse implies the default store location.
    if (run.checkpointDir.empty() && run.warmupReuse &&
        args.has("warmup-reuse")) {
        run.checkpointDir = "results/checkpoints";
    }
    if (args.has("shards")) {
        const sim::service::ShardSpec spec =
            sim::service::parseShardSpec(args.get("shards", ""));
        run.shards = spec.shards;
        run.shardRespawn = spec.respawn;
        run.shardHeartbeatMs = spec.heartbeatMs;
    }
    if (args.has("resume")) {
        if (run.shards == 0 && !sim::service::workerMode())
            fatal("--resume requires --shards=N (the journal belongs "
                  "to the sharded sweep service)");
        const std::string path =
            args.get("resume", run.journalPath);
        if (path.empty())
            fatal("--resume expects a journal path");
        run.journalPath = path;
        run.resumeCampaign = true;
    }
    return run;
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *paper_summary,
       const sim::RunConfig &run)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", paper_summary);
    std::printf("run:   %llu measured instructions (+%llu warmup) "
                "per configuration\n",
                (unsigned long long)run.simInstructions,
                (unsigned long long)run.warmupInstructions);
    std::printf("================================================="
                "=============\n\n");
    // stderr, with the progress lines: stdout report output must stay
    // byte-identical across --jobs values.  A shard worker stays
    // silent: the coordinator owns the banner and the progress stream.
    if (sim::service::workerMode())
        return;
    if (run.shards > 0) {
        std::fprintf(stderr,
                     "  [service] %u shard worker process(es), respawn "
                     "budget %u, heartbeat %u ms\n",
                     run.shards, run.shardRespawn, run.shardHeartbeatMs);
        return;
    }
    std::fprintf(stderr, "  [pool] %u worker thread(s)%s\n",
                 sim::resolveJobs(run.jobs),
                 run.jobs == 0 ? " (auto)" : "");
}

/**
 * Thread-safe progress reporter for benches that drive their own run
 * loops.  Each completed() call emits exactly one atomic stderr write
 * ("  [run <done>/<total>] <what>\n"), so lines from concurrent jobs
 * can interleave only whole, never mid-line.  (The sweep engines in
 * sim/ carry their own equivalent reporter.)
 */
class ProgressReporter
{
  public:
    explicit ProgressReporter(std::size_t total) : total_(total) {}

    /** Report one finished run described by @p what. */
    void
    completed(const std::string &what)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
        char head[48];
        std::snprintf(head, sizeof(head), "  [run %zu/%zu] ", done_,
                      total_);
        const std::string line = head + what + "\n";
        std::fputs(line.c_str(), stderr);
    }

  private:
    std::mutex mutex_;
    std::size_t done_ = 0;
    std::size_t total_;
};

/** Pretty percent-over-baseline formatting. */
inline std::string
pct(double ratio)
{
    return stats::TextTable::pct(ratio);
}

} // namespace pfsim::bench

#endif // PFSIM_BENCH_BENCH_COMMON_HH
