/**
 * @file
 * Figure 1: the impact of aggressive (forced-depth) lookahead on
 * 603.bwaves_s.  The paper sweeps SPP's throttling so lookahead runs a
 * fixed depth from 7 to 15 and shows IPC, total prefetches (TOTAL_PF)
 * and useful prefetches (GOOD_PF), all normalised to depth 7: useful
 * prefetches grow with aggressiveness, but total prefetches grow
 * faster, and IPC ultimately drops (~9% by depth 15).
 *
 * Flags: --instructions, --warmup, --depth-min, --depth-max
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"depth-min", "depth-max"});
    const sim::RunConfig run = runConfig(args);
    const int depth_min = int(args.getInt("depth-min", 7));
    const int depth_max = int(args.getInt("depth-max", 15));

    banner("Figure 1 — aggressiveness sweep on 603.bwaves_s-like",
           "GOOD_PF rises with depth, TOTAL_PF rises faster, IPC "
           "falls (~ -9% at depth 15 vs 7)",
           run);

    const auto &workload =
        workloads::findWorkload("603.bwaves_s-like");

    double base_ipc = 0.0, base_total = 0.0, base_good = 0.0;
    stats::TextTable table({"depth", "IPC", "TOTAL_PF", "GOOD_PF",
                            "IPC/d7", "TOTAL/d7", "GOOD/d7",
                            "accuracy"});

    for (int depth = depth_min; depth <= depth_max; ++depth) {
        sim::SystemConfig config =
            sim::SystemConfig::defaultConfig().withPrefetcher("spp");
        config.sppConfig.forcedDepth = unsigned(depth);
        config.sppConfig.maxDepth =
            std::max(config.sppConfig.maxDepth, unsigned(depth));
        // Let deeper sweeps actually issue their deeper candidates.
        config.sppConfig.maxPrefetchesPerTrigger = unsigned(depth) + 4;

        std::fprintf(stderr, "  [run] depth=%d ...\n", depth);
        const sim::RunResult result =
            sim::runSingleCore(config, workload, run);

        const double total = double(result.totalPf());
        const double good = double(result.goodPf());
        if (depth == depth_min) {
            base_ipc = result.ipc;
            base_total = total > 0 ? total : 1.0;
            base_good = good > 0 ? good : 1.0;
        }
        table.addRow({std::to_string(depth),
                      stats::TextTable::num(result.ipc, 3),
                      std::to_string(result.totalPf()),
                      std::to_string(result.goodPf()),
                      stats::TextTable::num(result.ipc / base_ipc, 3),
                      stats::TextTable::num(total / base_total, 3),
                      stats::TextTable::num(good / base_good, 3),
                      stats::TextTable::num(100.0 * result.accuracy(),
                                            1) + "%"});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("series normalised to depth %d (the paper's Figure 1 "
                "normalises to depth 7)\n",
                depth_min);
    return 0;
}
