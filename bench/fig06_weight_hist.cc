/**
 * @file
 * Figure 6: distribution of trained perceptron weights for a kept
 * feature (Page Address XOR Confidence — the strongest correlate) and
 * a rejected one (Last Signature).
 *
 * Paper: the kept feature's weights spread out to the saturation
 * rails, while the rejected feature's weights stay bunched around
 * zero — which is why it carries no usable correlation and was pruned
 * in Section 5.5.
 *
 * Flags: --instructions, --warmup, --workload
 */

#include "bench_common.hh"

#include "core/feature_analysis.hh"
#include "core/spp_ppf.hh"
#include "core/weight_tables.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"workload"});
    const sim::RunConfig run = runConfig(args);
    const std::string workload_name =
        args.get("workload", "603.bwaves_s-like");

    banner("Figure 6 — distribution of trained weights",
           "kept feature (page^confidence) spreads to the rails; "
           "rejected feature (last signature) bunches at zero",
           run);

    // Run PPF with the analysis instrumentation attached; the weights
    // come from the filter's live tables at the end of the run.
    ppf::FeatureAnalysis analysis;

    trace::SyntheticTrace trace(
        workloads::findWorkload(workload_name).make());
    sim::System system(
        sim::SystemConfig::defaultConfig().withPrefetcher("spp_ppf"),
        {&trace});
    auto *spp_ppf = dynamic_cast<ppf::SppPpfPrefetcher *>(
        &system.prefetcher(0));
    spp_ppf->filter().setAnalysis(&analysis);

    std::fprintf(stderr, "  [run] %s ...\n", workload_name.c_str());
    system.runUntilRetired(run.warmupInstructions +
                           run.simInstructions);

    const stats::Histogram kept =
        analysis.histogram(ppf::FeatureId::PageAddrXorConf);
    const stats::Histogram rejected = analysis.shadowHistogram();

    std::printf("kept feature: page_addr^conf (weights of entries "
                "touched during the run)\n%s\n",
                kept.render(40).c_str());
    std::printf("rejected feature: last signature (shadow-trained "
                "alongside, never used for prediction)\n%s\n",
                rejected.render(40).c_str());

    std::printf("fraction of weights within [-2, +2]: kept %.1f%%, "
                "rejected %.1f%%\n",
                100.0 * kept.fractionWithin(2),
                100.0 * rejected.fractionWithin(2));
    std::printf("(the paper's rejected-feature histogram bunches near "
                "zero; note untouched table entries also sit at zero "
                "for both)\n");
    return 0;
}
