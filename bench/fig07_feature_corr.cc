/**
 * @file
 * Figure 7: Pearson's correlation factor between each of the nine
 * final features and the prefetch outcome, aggregated over the SPEC
 * CPU 2017-like workloads, in increasing order.
 *
 * Paper: 5 of the 9 features have |r| > 0.6; the strongest single
 * feature is Page Address XOR Confidence at r = 0.90.  The rejected
 * "last signature" feature (shown for contrast) has near-zero r.
 *
 * The correlation here is between the weight each feature contributed
 * at prediction time and the resolved outcome (+1 useful / -1 not),
 * the observable the paper's methodology (Section 5.5) interprets.
 *
 * Flags: --instructions, --warmup, --full (all 20 workloads)
 */

#include <algorithm>

#include "bench_common.hh"

#include "core/feature_analysis.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"full"});
    const sim::RunConfig run = runConfig(args);

    banner("Figure 7 — Pearson's factor per perceptron feature",
           "several features reach moderate-to-high correlation; "
           "page^confidence is the strongest (paper r = 0.90)",
           run);

    const auto &suite = workloads::spec17Suite();
    const auto workload_set = args.has("full")
        ? suite
        : workloads::memIntensiveSubset(suite);

    ppf::FeatureAnalysis analysis;
    for (const auto &workload : workload_set) {
        std::fprintf(stderr, "  [run] %-24s ...\n",
                     workload.name.c_str());
        ppf::FeatureAnalysis per_trace;
        sim::runSingleCore(
            sim::SystemConfig::defaultConfig().withPrefetcher(
                "spp_ppf"),
            workload, run, &per_trace);
        analysis.merge(per_trace);
    }

    struct Row
    {
        std::string name;
        double r;
    };
    std::vector<Row> rows;
    for (unsigned f = 0; f < ppf::numFeatures; ++f) {
        rows.push_back(
            {ppf::featureName(ppf::FeatureId(f)),
             analysis.correlation(ppf::FeatureId(f))});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.r < b.r; });

    stats::TextTable table({"feature", "Pearson r"});
    for (const Row &row : rows)
        table.addRow({row.name, stats::TextTable::num(row.r, 3)});
    table.addRow({"(rejected) last_signature",
                  stats::TextTable::num(analysis.shadowCorrelation(),
                                        3)});
    std::printf("%s\n", table.render().c_str());
    std::printf("%llu resolved predictions analysed\n",
                (unsigned long long)analysis.samples());
    return 0;
}
