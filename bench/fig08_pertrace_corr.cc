/**
 * @file
 * Figure 8: per-trace variation of the correlation factor for three
 * features whose *global* correlation is low: PC^delta,
 * signature^delta and PC^depth.
 *
 * Paper: even globally weak features show useful correlation
 * (|r| > 0.5) on a significant number of traces — the reason they are
 * retained despite low overall Pearson factors.
 *
 * Flags: --instructions, --warmup
 */

#include <algorithm>

#include "bench_common.hh"

#include "core/feature_analysis.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    const sim::RunConfig run = runConfig(args);

    banner("Figure 8 — per-trace P-value variation (weak features)",
           "globally weak features still correlate strongly on some "
           "traces, which is why they survive pruning",
           run);

    const ppf::FeatureId features[] = {
        ppf::FeatureId::PcXorDelta,
        ppf::FeatureId::SigXorDelta,
        ppf::FeatureId::PcXorDepth,
    };

    const auto &suite = workloads::spec17Suite();

    struct TraceRow
    {
        std::string workload;
        double r[3];
    };
    std::vector<TraceRow> rows;

    for (const auto &workload : suite) {
        std::fprintf(stderr, "  [run] %-24s ...\n",
                     workload.name.c_str());
        ppf::FeatureAnalysis analysis;
        sim::runSingleCore(
            sim::SystemConfig::defaultConfig().withPrefetcher(
                "spp_ppf"),
            workload, run, &analysis);
        if (analysis.samples() < 100)
            continue; // not enough resolved predictions to interpret
        TraceRow row;
        row.workload = workload.name;
        for (int f = 0; f < 3; ++f)
            row.r[f] = analysis.correlation(features[f]);
        rows.push_back(row);
    }

    // The paper sorts traces by increasing contribution per feature;
    // print each feature's sorted series.
    for (int f = 0; f < 3; ++f) {
        std::vector<double> series;
        for (const TraceRow &row : rows)
            series.push_back(row.r[f]);
        std::sort(series.begin(), series.end());
        std::printf("%s (sorted per-trace r):\n  ",
                    ppf::featureName(features[f]).c_str());
        for (double r : series)
            std::printf("%+.2f ", r);
        int strong = int(std::count_if(
            series.begin(), series.end(),
            [](double r) { return std::abs(r) > 0.5; }));
        std::printf("\n  traces with |r| > 0.5: %d of %zu\n\n", strong,
                    series.size());
    }

    stats::TextTable table({"workload", "pc^delta", "sig^delta",
                            "pc^depth"});
    for (const TraceRow &row : rows) {
        table.addRow({row.workload,
                      stats::TextTable::num(row.r[0], 2),
                      stats::TextTable::num(row.r[1], 2),
                      stats::TextTable::num(row.r[2], 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
