/**
 * @file
 * Figure 9: single-core IPC speedup of BOP, DA-AMPM, SPP and PPF over
 * the no-prefetching baseline, for every SPEC CPU 2017-like workload,
 * plus geometric means over the memory-intensive subset and the full
 * suite.
 *
 * Paper headline numbers: PPF +26.95% over baseline on the
 * memory-intensive subset (= +3.78% over SPP, +4.61% over BOP,
 * +4.63% over DA-AMPM); +15.24% on the full suite (+2.27% over the
 * next best); PPF average lookahead depth 3.97 vs SPP's 3.28.
 *
 * Flags: --instructions, --warmup, --subset (mem-intensive only),
 *   --prefetcher=SPEC[,SPEC...]  replace the paper line-up with the
 *       given registry specs (any <backend>[+ppf]); the default
 *       line-up and its report stay byte-identical when the flag is
 *       absent
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"subset", "prefetcher"});
    const sim::RunConfig run = runConfig(args);
    const bool subset_only = args.has("subset");

    // Optional line-up override: comma-separated registry specs,
    // validated up front so a typo dies before hours of sweeping.
    std::vector<std::string> line_up = sim::paperPrefetchers();
    const bool custom_line_up = args.has("prefetcher");
    if (custom_line_up) {
        line_up.clear();
        std::string list = args.get("prefetcher", "");
        while (!list.empty()) {
            const auto comma = list.find(',');
            const std::string spec = list.substr(0, comma);
            list = comma == std::string::npos
                       ? std::string()
                       : list.substr(comma + 1);
            if (spec.empty())
                continue;
            prefetch::parsePrefetcherSpec(spec);
            line_up.push_back(spec);
        }
        if (line_up.empty())
            fatal("--prefetcher expects at least one spec");
    }

    banner("Figure 9 — single-core speedup over no prefetching",
           "PPF beats SPP by ~3.78% (mem-intensive geomean) and wins "
           "or matches on 19 of 20 apps (loses only on cactuBSSN)",
           run);

    const auto &suite = workloads::spec17Suite();
    const auto mem_subset = workloads::memIntensiveSubset(suite);
    const auto &workload_set = subset_only ? mem_subset : suite;

    const auto rows = sim::sweepPrefetchers(
        sim::SystemConfig::defaultConfig(), line_up, workload_set, run);

    // Column labels: the paper line-up keeps its fixed headers (stdout
    // must stay byte-identical without --prefetcher); a custom line-up
    // labels each column with the spec it ran.
    std::vector<std::string> header = {"workload"};
    if (custom_line_up) {
        header.insert(header.end(), line_up.begin(), line_up.end());
    } else {
        header.insert(header.end(),
                      {"bop", "da_ampm", "spp", "spp_ppf (PPF)"});
    }
    stats::TextTable table(header);
    const auto speedup_row = [&](const std::string &label,
                                 auto &&speedup_of) {
        std::vector<std::string> cells = {label};
        for (const std::string &spec : line_up)
            cells.push_back(pct(speedup_of(spec)));
        table.addRow(cells);
    };
    for (const auto &row : rows) {
        speedup_row(row.workload, [&](const std::string &spec) {
            return row.speedup(spec);
        });
    }
    speedup_row("geomean (mem-intensive)", [&](const std::string &spec) {
        return geomeanSpeedup(rows, spec, mem_subset);
    });
    if (!subset_only) {
        speedup_row("geomean (full suite)", [&](const std::string &spec) {
            return sim::geomeanSpeedup(rows, spec);
        });
    }
    std::printf("%s\n", table.render().c_str());

    // The paper-specific SPP-vs-PPF comparisons only make sense for
    // the default line-up.
    if (custom_line_up)
        return 0;

    // The re-tuned aggressiveness claim: PPF speculates deeper.
    double spp_depth = 0.0, ppf_depth = 0.0;
    int counted = 0;
    for (const auto &row : rows) {
        const auto &spp = row.results.at("spp").spp;
        const auto &ppf = row.results.at("spp_ppf").spp;
        if (spp.issued > 0 && ppf.issued > 0) {
            spp_depth += spp.averageDepth();
            ppf_depth += ppf.averageDepth();
            ++counted;
        }
    }
    if (counted > 0) {
        std::printf("average lookahead depth: SPP %.2f vs PPF %.2f "
                    "(paper: 3.28 vs 3.97, PPF ~21%% deeper)\n",
                    spp_depth / counted, ppf_depth / counted);
    }

    const double ppf = geomeanSpeedup(rows, "spp_ppf", mem_subset);
    const double spp = geomeanSpeedup(rows, "spp", mem_subset);
    std::printf("PPF over SPP (mem-intensive geomean): %s "
                "(paper: +3.78%%)\n",
                pct(ppf / spp).c_str());
    return 0;
}
