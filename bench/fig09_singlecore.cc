/**
 * @file
 * Figure 9: single-core IPC speedup of BOP, DA-AMPM, SPP and PPF over
 * the no-prefetching baseline, for every SPEC CPU 2017-like workload,
 * plus geometric means over the memory-intensive subset and the full
 * suite.
 *
 * Paper headline numbers: PPF +26.95% over baseline on the
 * memory-intensive subset (= +3.78% over SPP, +4.61% over BOP,
 * +4.63% over DA-AMPM); +15.24% on the full suite (+2.27% over the
 * next best); PPF average lookahead depth 3.97 vs SPP's 3.28.
 *
 * Flags: --instructions, --warmup, --subset (mem-intensive only)
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"subset"});
    const sim::RunConfig run = runConfig(args);
    const bool subset_only = args.has("subset");

    banner("Figure 9 — single-core speedup over no prefetching",
           "PPF beats SPP by ~3.78% (mem-intensive geomean) and wins "
           "or matches on 19 of 20 apps (loses only on cactuBSSN)",
           run);

    const auto &suite = workloads::spec17Suite();
    const auto mem_subset = workloads::memIntensiveSubset(suite);
    const auto &workload_set = subset_only ? mem_subset : suite;

    const auto rows = sim::sweepPrefetchers(
        sim::SystemConfig::defaultConfig(), sim::paperPrefetchers(),
        workload_set, run);

    stats::TextTable table(
        {"workload", "bop", "da_ampm", "spp", "spp_ppf (PPF)"});
    for (const auto &row : rows) {
        table.addRow({row.workload, pct(row.speedup("bop")),
                      pct(row.speedup("da_ampm")),
                      pct(row.speedup("spp")),
                      pct(row.speedup("spp_ppf"))});
    }
    table.addRow({"geomean (mem-intensive)",
                  pct(geomeanSpeedup(rows, "bop", mem_subset)),
                  pct(geomeanSpeedup(rows, "da_ampm", mem_subset)),
                  pct(geomeanSpeedup(rows, "spp", mem_subset)),
                  pct(geomeanSpeedup(rows, "spp_ppf", mem_subset))});
    if (!subset_only) {
        table.addRow({"geomean (full suite)",
                      pct(sim::geomeanSpeedup(rows, "bop")),
                      pct(sim::geomeanSpeedup(rows, "da_ampm")),
                      pct(sim::geomeanSpeedup(rows, "spp")),
                      pct(sim::geomeanSpeedup(rows, "spp_ppf"))});
    }
    std::printf("%s\n", table.render().c_str());

    // The re-tuned aggressiveness claim: PPF speculates deeper.
    double spp_depth = 0.0, ppf_depth = 0.0;
    int counted = 0;
    for (const auto &row : rows) {
        const auto &spp = row.results.at("spp").spp;
        const auto &ppf = row.results.at("spp_ppf").spp;
        if (spp.issued > 0 && ppf.issued > 0) {
            spp_depth += spp.averageDepth();
            ppf_depth += ppf.averageDepth();
            ++counted;
        }
    }
    if (counted > 0) {
        std::printf("average lookahead depth: SPP %.2f vs PPF %.2f "
                    "(paper: 3.28 vs 3.97, PPF ~21%% deeper)\n",
                    spp_depth / counted, ppf_depth / counted);
    }

    const double ppf = geomeanSpeedup(rows, "spp_ppf", mem_subset);
    const double spp = geomeanSpeedup(rows, "spp", mem_subset);
    std::printf("PPF over SPP (mem-intensive geomean): %s "
                "(paper: +3.78%%)\n",
                pct(ppf / spp).c_str());
    return 0;
}
