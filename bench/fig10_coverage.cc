/**
 * @file
 * Figure 10: fraction of L2 and LLC demand misses avoided by each
 * prefetcher (coverage), aggregated over the SPEC CPU 2017-like
 * workloads.
 *
 * Paper: PPF has the highest coverage of all prefetchers — 75.5% of
 * L2 misses and 86.9% of LLC misses removed; the next best (DA-AMPM)
 * covers 54.3% / 78.5%.
 *
 * Flags: --instructions, --warmup, --full (all 20 instead of the
 * memory-intensive subset)
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"full"});
    const sim::RunConfig run = runConfig(args);

    banner("Figure 10 — fraction of cache misses covered",
           "PPF covers the most misses at both levels "
           "(paper: 75.5% L2 / 86.9% LLC)",
           run);

    const auto &suite = workloads::spec17Suite();
    const auto workload_set = args.has("full")
        ? suite
        : workloads::memIntensiveSubset(suite);

    const auto rows = sim::sweepPrefetchers(
        sim::SystemConfig::defaultConfig(), sim::paperPrefetchers(),
        workload_set, run);

    stats::TextTable table(
        {"prefetcher", "L2 coverage", "LLC coverage"});
    for (const std::string &prefetcher : sim::paperPrefetchers()) {
        std::uint64_t base_l2 = 0, base_llc = 0;
        std::uint64_t with_l2 = 0, with_llc = 0;
        for (const auto &row : rows) {
            const auto &base = row.results.at("none");
            const auto &with = row.results.at(prefetcher);
            base_l2 += base.l2.demandMisses();
            base_llc += base.llc.demandMisses();
            with_l2 += with.l2.demandMisses();
            with_llc += with.llc.demandMisses();
        }
        const double l2_cov = base_l2 == 0
            ? 0.0
            : 1.0 - double(with_l2) / double(base_l2);
        const double llc_cov = base_llc == 0
            ? 0.0
            : 1.0 - double(with_llc) / double(base_llc);
        table.addRow({prefetcher,
                      stats::TextTable::num(100.0 * l2_cov, 1) + "%",
                      stats::TextTable::num(100.0 * llc_cov, 1) +
                          "%"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("coverage = 1 - (demand misses with prefetcher / "
                "demand misses without), summed over workloads\n");
    return 0;
}
