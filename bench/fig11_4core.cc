/**
 * @file
 * Figure 11: weighted speedup on 4-core mixes of the memory-intensive
 * SPEC CPU 2017 subset, normalised to no prefetching.
 *
 * Paper: PPF +51.2% over baseline on these mixes — +11.4% over SPP,
 * +9.7% over DA-AMPM, +16.9% over BOP; the multi-core gain exceeds
 * the single-core one because filtering protects the *shared* LLC and
 * DRAM bandwidth.
 *
 * Methodology (Section 5.3): per-mix weighted IPC
 * = sum_i IPC_i / IPC_isolated_i, where IPC_isolated uses a 1-core
 * machine with the 4-core LLC capacity; each mix's weighted IPC is
 * normalised to the no-prefetching weighted IPC, and the geometric
 * mean over mixes is reported.
 *
 * Flags: --instructions, --warmup, --mixes (count), --cores, --seed
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"mixes", "cores", "seed"});
    sim::RunConfig run = runConfig(args);
    // Multi-core default: shorter per-core regions keep the bench fast.
    if (!args.has("instructions"))
        run.simInstructions = 400000;
    if (!args.has("warmup"))
        run.warmupInstructions = 100000;
    const unsigned cores = unsigned(args.getInt("cores", 4));
    const unsigned mix_count = unsigned(args.getInt("mixes", 6));
    const std::uint64_t seed = std::uint64_t(args.getInt("seed", 42));

    banner("Figure 11 — 4-core memory-intensive mixes",
           "PPF +51.2% over baseline = +11.4% over SPP (4-core); "
           "multi-core gains exceed single-core",
           run);

    const auto pool =
        workloads::memIntensiveSubset(workloads::spec17Suite());
    const auto mixes = workloads::makeMixes(pool, cores, mix_count,
                                            seed);

    const sim::SystemConfig base = sim::SystemConfig::defaultConfig(
        cores);
    sim::SystemConfig isolated = sim::SystemConfig::defaultConfig();
    isolated.llc = base.llc; // isolated runs use the shared LLC size

    std::vector<std::string> configs = {"none"};
    for (const auto &name : sim::paperPrefetchers())
        configs.push_back(name);

    sim::IsolatedIpcCache isolated_cache;
    // IPC_isolated is a property of the workload (measured once,
    // without prefetching): each scheme's per-core IPC is weighted by
    // the same reference, per Section 5.3.  Prewarm on the job pool so
    // the weighting pass below is all cache hits.
    std::vector<workloads::Workload> isolated_pool;
    for (const auto &mix : mixes)
        isolated_pool.insert(isolated_pool.end(), mix.begin(),
                             mix.end());
    isolated_cache.prewarm(isolated, isolated_pool, run);

    const auto mix_rows = sim::sweepMixes(
        base, sim::paperPrefetchers(), mixes, run);

    // mix -> prefetcher -> weighted IPC
    std::vector<std::map<std::string, double>> weighted(mixes.size());
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        for (const auto &prefetcher : configs) {
            weighted[m][prefetcher] = sim::weightedIpc(
                mix_rows[m].results.at(prefetcher), isolated, mixes[m],
                run, isolated_cache);
        }
    }

    // Per-mix speedups over the no-prefetching weighted IPC, sorted by
    // PPF speedup as in the paper's figure.
    std::vector<std::size_t> order(mixes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return weighted[a]["spp_ppf"] / weighted[a]["none"] <
                         weighted[b]["spp_ppf"] / weighted[b]["none"];
              });

    stats::TextTable table(
        {"mix (sorted)", "bop", "da_ampm", "spp", "spp_ppf (PPF)"});
    std::map<std::string, std::vector<double>> speedups;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const std::size_t m = order[rank];
        std::vector<std::string> row = {"mix" + std::to_string(rank)};
        for (const auto &prefetcher : sim::paperPrefetchers()) {
            const double s =
                weighted[m][prefetcher] / weighted[m]["none"];
            speedups[prefetcher].push_back(s);
            row.push_back(pct(s));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> geo_row = {"geomean"};
    for (const auto &prefetcher : sim::paperPrefetchers())
        geo_row.push_back(pct(stats::geomean(speedups[prefetcher])));
    table.addRow(std::move(geo_row));

    std::printf("%s\n", table.render().c_str());
    const double ppf = stats::geomean(speedups["spp_ppf"]);
    const double spp = stats::geomean(speedups["spp"]);
    std::printf("PPF over SPP (weighted-speedup geomean): %s "
                "(paper 4-core: +11.4%%)\n",
                pct(ppf / spp).c_str());
    return 0;
}
