/**
 * @file
 * Figure 12: weighted speedup on 8-core memory-intensive mixes.
 *
 * Paper: PPF +37.6% over baseline, +9.65% over SPP.  The paper uses
 * shorter 8-core regions (20M warmup / 100M measured instead of
 * 200M / 1B) to bound simulation time; this bench scales the same way
 * relative to fig11 by default.
 *
 * Flags: --instructions, --warmup, --mixes, --seed
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"mixes", "seed"});
    sim::RunConfig run = runConfig(args);
    if (!args.has("instructions"))
        run.simInstructions = 200000;
    if (!args.has("warmup"))
        run.warmupInstructions = 50000;
    const unsigned mix_count = unsigned(args.getInt("mixes", 4));
    const std::uint64_t seed = std::uint64_t(args.getInt("seed", 43));

    banner("Figure 12 — 8-core memory-intensive mixes",
           "PPF +37.6% over baseline = +9.65% over SPP (8-core)",
           run);

    const unsigned cores = 8;
    const auto pool =
        workloads::memIntensiveSubset(workloads::spec17Suite());
    const auto mixes = workloads::makeMixes(pool, cores, mix_count,
                                            seed);

    const sim::SystemConfig base =
        sim::SystemConfig::defaultConfig(cores);
    sim::SystemConfig isolated = sim::SystemConfig::defaultConfig();
    isolated.llc = base.llc;

    std::vector<std::string> configs = {"none"};
    for (const auto &name : sim::paperPrefetchers())
        configs.push_back(name);

    sim::IsolatedIpcCache isolated_cache;
    // IPC_isolated is a property of the workload (measured once,
    // without prefetching, per Section 5.3); prewarm on the job pool
    // so the weighting pass below is all cache hits.
    std::vector<workloads::Workload> isolated_pool;
    for (const auto &mix : mixes)
        isolated_pool.insert(isolated_pool.end(), mix.begin(),
                             mix.end());
    isolated_cache.prewarm(isolated, isolated_pool, run);

    const auto mix_rows = sim::sweepMixes(
        base, sim::paperPrefetchers(), mixes, run);

    std::vector<std::map<std::string, double>> weighted(mixes.size());
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        for (const auto &prefetcher : configs) {
            weighted[m][prefetcher] = sim::weightedIpc(
                mix_rows[m].results.at(prefetcher), isolated, mixes[m],
                run, isolated_cache);
        }
    }

    stats::TextTable table(
        {"mix", "bop", "da_ampm", "spp", "spp_ppf (PPF)"});
    std::map<std::string, std::vector<double>> speedups;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        std::vector<std::string> row = {"mix" + std::to_string(m)};
        for (const auto &prefetcher : sim::paperPrefetchers()) {
            const double s =
                weighted[m][prefetcher] / weighted[m]["none"];
            speedups[prefetcher].push_back(s);
            row.push_back(pct(s));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> geo_row = {"geomean"};
    for (const auto &prefetcher : sim::paperPrefetchers())
        geo_row.push_back(pct(stats::geomean(speedups[prefetcher])));
    table.addRow(std::move(geo_row));

    std::printf("%s\n", table.render().c_str());
    const double ppf = stats::geomean(speedups["spp_ppf"]);
    const double spp = stats::geomean(speedups["spp"]);
    std::printf("PPF over SPP (weighted-speedup geomean): %s "
                "(paper 8-core: +9.65%%)\n",
                pct(ppf / spp).c_str());
    return 0;
}
