/**
 * @file
 * Figure 13: cross-validation on workloads PPF was never tuned on.
 *
 * (a) CloudSuite-like applications: largely prefetch agnostic; the
 *     paper reports PPF +3.78% over baseline vs SPP's +3.08%.
 * (b) SPEC CPU 2006-like suite: PPF +36.3% over baseline on the
 *     memory-intensive subset (+6.1% over SPP, +8.44% over DA-AMPM,
 *     +9.93% over BOP); +19.6% on the full suite (+3.33% over SPP).
 *
 * Flags: --instructions, --warmup
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    const sim::RunConfig run = runConfig(args);

    banner("Figure 13 — IPC speedup for unseen workloads",
           "(a) Cloud-like: small but positive, PPF ahead of SPP; "
           "(b) SPEC'06-like: PPF +6.1% over SPP (mem-intensive)",
           run);

    const sim::SystemConfig base = sim::SystemConfig::defaultConfig();

    // (a) CloudSuite-like.
    std::printf("--- (a) CloudSuite-like ---\n");
    const auto cloud_rows = sim::sweepPrefetchers(
        base, sim::paperPrefetchers(), workloads::cloudSuite(), run);
    stats::TextTable cloud_table(
        {"workload", "bop", "da_ampm", "spp", "spp_ppf (PPF)"});
    for (const auto &row : cloud_rows) {
        cloud_table.addRow({row.workload, pct(row.speedup("bop")),
                            pct(row.speedup("da_ampm")),
                            pct(row.speedup("spp")),
                            pct(row.speedup("spp_ppf"))});
    }
    cloud_table.addRow(
        {"geomean", pct(sim::geomeanSpeedup(cloud_rows, "bop")),
         pct(sim::geomeanSpeedup(cloud_rows, "da_ampm")),
         pct(sim::geomeanSpeedup(cloud_rows, "spp")),
         pct(sim::geomeanSpeedup(cloud_rows, "spp_ppf"))});
    std::printf("%s\n", cloud_table.render().c_str());

    // (b) SPEC CPU 2006-like.
    std::printf("--- (b) SPEC CPU 2006-like ---\n");
    const auto &suite = workloads::spec06Suite();
    const auto mem_subset = workloads::memIntensiveSubset(suite);
    const auto rows = sim::sweepPrefetchers(
        base, sim::paperPrefetchers(), suite, run);

    stats::TextTable table(
        {"workload", "bop", "da_ampm", "spp", "spp_ppf (PPF)"});
    for (const auto &row : rows) {
        table.addRow({row.workload, pct(row.speedup("bop")),
                      pct(row.speedup("da_ampm")),
                      pct(row.speedup("spp")),
                      pct(row.speedup("spp_ppf"))});
    }
    table.addRow({"geomean (mem-intensive)",
                  pct(geomeanSpeedup(rows, "bop", mem_subset)),
                  pct(geomeanSpeedup(rows, "da_ampm", mem_subset)),
                  pct(geomeanSpeedup(rows, "spp", mem_subset)),
                  pct(geomeanSpeedup(rows, "spp_ppf", mem_subset))});
    table.addRow({"geomean (full suite)",
                  pct(sim::geomeanSpeedup(rows, "bop")),
                  pct(sim::geomeanSpeedup(rows, "da_ampm")),
                  pct(sim::geomeanSpeedup(rows, "spp")),
                  pct(sim::geomeanSpeedup(rows, "spp_ppf"))});
    std::printf("%s\n", table.render().c_str());

    const double ppf = geomeanSpeedup(rows, "spp_ppf", mem_subset);
    const double spp = geomeanSpeedup(rows, "spp", mem_subset);
    std::printf("PPF over SPP (SPEC'06-like mem-intensive geomean): "
                "%s (paper: +6.1%%)\n",
                pct(ppf / spp).c_str());
    return 0;
}
