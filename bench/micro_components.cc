/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot components:
 * perceptron inference/update, SPP operate, cache tick and trace
 * generation.  These bound the simulator's own throughput, not the
 * modelled hardware's.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "core/ppf.hh"
#include "dram/dram.hh"
#include "prefetch/spp.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

namespace
{

using namespace pfsim;

void
BM_FeatureIndices(benchmark::State &state)
{
    ppf::FeatureInput input;
    input.triggerAddr = 0x123456780;
    input.pc = 0x400100;
    input.pc1 = 0x400110;
    input.pc2 = 0x400118;
    input.pc3 = 0x400120;
    input.depth = 3;
    input.delta = 2;
    input.confidence = 60;
    input.signature = 0xabc;
    for (auto _ : state) {
        input.triggerAddr += 64;
        benchmark::DoNotOptimize(ppf::computeIndices(input));
    }
}
BENCHMARK(BM_FeatureIndices);

void
BM_PerceptronInference(benchmark::State &state)
{
    ppf::Ppf filter;
    prefetch::SppCandidate candidate;
    candidate.addr = 0x200000000;
    candidate.triggerAddr = 0x123456780;
    candidate.pc = 0x400100;
    candidate.depth = 2;
    candidate.delta = 1;
    candidate.confidence = 70;
    candidate.signature = 0x123;
    for (auto _ : state) {
        candidate.addr += 64;
        benchmark::DoNotOptimize(filter.test(candidate));
    }
}
BENCHMARK(BM_PerceptronInference);

void
BM_PerceptronTraining(benchmark::State &state)
{
    ppf::Ppf filter;
    prefetch::SppCandidate candidate;
    candidate.addr = 0x200000000;
    candidate.triggerAddr = 0x123456780;
    candidate.pc = 0x400100;
    for (auto _ : state) {
        candidate.addr += 64;
        filter.test(candidate);
        filter.notifyIssued(candidate, true);
        filter.onDemand(candidate.addr, 0x400200);
    }
}
BENCHMARK(BM_PerceptronTraining);

struct NullIssuer : prefetch::PrefetchIssuer
{
    bool issuePrefetch(Addr, bool) override { return true; }
};

void
BM_SppOperate(benchmark::State &state)
{
    prefetch::SppPrefetcher spp;
    NullIssuer issuer;
    spp.attach(&issuer);
    Addr addr = Addr{1} << 30;
    for (auto _ : state) {
        prefetch::OperateInfo info;
        info.addr = addr;
        info.pc = 0x400100;
        spp.operate(info);
        addr += 64;
    }
}
BENCHMARK(BM_SppOperate);

void
BM_CacheHit(benchmark::State &state)
{
    dram::Dram memory{dram::DramConfig{}};
    cache::CacheConfig config;
    config.sets = 1024;
    config.ways = 8;
    cache::Cache cache(config, &memory);
    // Warm one block.
    cache::Request req;
    req.addr = 0x10000;
    cache.addRead(req);
    Cycle now = 0;
    for (int i = 0; i < 1000; ++i) {
        cache.tick(++now);
        memory.tick(now);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.demandProbe(0x10000, 0x400100));
}
BENCHMARK(BM_CacheHit);

void
BM_SyntheticTrace(benchmark::State &state)
{
    trace::SyntheticTrace trace(
        workloads::findWorkload("603.bwaves_s-like").make());
    Instruction instr;
    for (auto _ : state) {
        trace.next(instr);
        benchmark::DoNotOptimize(instr);
    }
}
BENCHMARK(BM_SyntheticTrace);

void
BM_WholeSystemCycle(benchmark::State &state)
{
    trace::SyntheticTrace trace(
        workloads::findWorkload("603.bwaves_s-like").make());
    sim::System system(
        sim::SystemConfig::defaultConfig().withPrefetcher("spp_ppf"),
        {&trace});
    for (auto _ : state)
        system.cycle();
    state.counters["instr_per_cycle"] = benchmark::Counter(
        double(system.core(0).retired()),
        benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_WholeSystemCycle);

} // namespace

BENCHMARK_MAIN();
