/**
 * @file
 * Perf-regression smoke harness: simulate a fixed scenario set with
 * the kernel fast path on and off, assert the statistics are
 * identical either way, and archive host-speed telemetry
 * (results/bench_throughput.json) for tools/perf/compare.py.
 *
 * Scenarios stress the kernel differently:
 *  - pointer_chase: a distilled dependent chase, MLP = 1 — almost
 *    every cycle waits on one DRAM access, the fast path's best case;
 *  - 605.mcf_s-like: pointer chasing diluted with cache-resident
 *    reuse, the paper's canonical low-MLP workload;
 *  - 619.lbm_s-like: dense streaming — the machine is almost always
 *    busy, the fast path's worst case (must not regress);
 *  - mix4: a 4-core memory-intensive mix over the shared LLC/DRAM;
 *  - warmup_reuse: the same run cold (simulate warmup, publish a
 *    checkpoint) then warm (restore it) — statistics must match and
 *    speedup_vs_naive records the measured warmup-reuse gain.
 *
 * Flags: --instructions, --warmup, --out=<path> (report destination)
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "bench_common.hh"
#include "sim/multicore.hh"
#include "stats/perf_report.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace pfsim;

/**
 * The distilled pointer-chase/low-MLP kernel: a single dependent
 * chain over a footprint far beyond the LLC, so every load is a miss
 * serialised behind the previous one.  This is the access pattern the
 * registry's 605.mcf_s-like dilutes with cache-resident reuse.
 */
workloads::Workload
pointerChaseKernel()
{
    trace::StreamConfig chase;
    chase.kind = trace::PatternKind::PointerChase;
    chase.weight = 1.0;
    chase.footprintBlocks = std::uint64_t{1} << 20; // 64 MiB

    trace::PhaseConfig phase;
    phase.streams = {chase};
    phase.memRatio = 0.25;
    phase.storeProb = 0.0;
    phase.mispredictRate = 0.0;

    workloads::Workload workload;
    workload.name = "pointer_chase";
    workload.suite = "bench";
    workload.memIntensive = true;
    workload.make = [phase] {
        trace::SyntheticConfig config;
        config.name = "pointer_chase";
        config.seed = 271;
        config.phases = {phase};
        return config;
    };
    return workload;
}

/** Deterministic fingerprint of a single-core run's statistics. */
std::string
digest(const sim::RunResult &r)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "i=%llu c=%llu b=%llu mp=%llu ld=%llu st=%llu "
        "rob=%llu lq=%llu sq=%llu "
        "l2la=%llu l2lh=%llu l2pf=%llu l2pu=%llu l2pl=%llu "
        "llcla=%llu llcpu=%llu "
        "dr=%llu dw=%llu drh=%llu dlat=%llu",
        (unsigned long long)r.core.instructions,
        (unsigned long long)r.core.cycles,
        (unsigned long long)r.core.branches,
        (unsigned long long)r.core.mispredicts,
        (unsigned long long)r.core.loads,
        (unsigned long long)r.core.stores,
        (unsigned long long)r.core.robFullStalls,
        (unsigned long long)r.core.lqFullStalls,
        (unsigned long long)r.core.sqFullStalls,
        (unsigned long long)r.l2.loadAccess,
        (unsigned long long)r.l2.loadHit,
        (unsigned long long)r.l2.pfIssued,
        (unsigned long long)r.l2.pfUseful,
        (unsigned long long)r.l2.pfLate,
        (unsigned long long)r.llc.loadAccess,
        (unsigned long long)r.llc.pfUseful,
        (unsigned long long)r.dram.reads,
        (unsigned long long)r.dram.writes,
        (unsigned long long)r.dram.rowHits,
        (unsigned long long)r.dram.readLatencySum);
    return buf;
}

/** Deterministic fingerprint of a multi-core run's statistics. */
std::string
digest(const sim::MixResult &r)
{
    std::string out;
    char buf[160];
    for (double ipc : r.ipc) {
        std::snprintf(buf, sizeof(buf), "ipc=%.17g ", ipc);
        out += buf;
    }
    std::snprintf(
        buf, sizeof(buf),
        "llcla=%llu llclh=%llu llcpu=%llu dr=%llu dw=%llu dlat=%llu",
        (unsigned long long)r.llc.loadAccess,
        (unsigned long long)r.llc.loadHit,
        (unsigned long long)r.llc.pfUseful,
        (unsigned long long)r.dram.reads,
        (unsigned long long)r.dram.writes,
        (unsigned long long)r.dram.readLatencySum);
    out += buf;
    return out;
}

/** One measured scenario: fast path off, then on, stats must match. */
struct Measured
{
    std::string digestOff;
    std::string digestOn;
    stats::RunThroughput off;
    stats::RunThroughput on;
    std::uint64_t simCycles = 0;
};

Measured
measureSingleCore(const sim::SystemConfig &config,
                  const workloads::Workload &workload,
                  sim::RunConfig run)
{
    Measured m;
    run.fastPath = false;
    const sim::RunResult naive = runSingleCore(config, workload, run);
    run.fastPath = true;
    const sim::RunResult fast = runSingleCore(config, workload, run);
    m.digestOff = digest(naive);
    m.digestOn = digest(fast);
    m.off = naive.throughput;
    m.on = fast.throughput;
    m.simCycles = fast.core.cycles;
    return m;
}

/**
 * Warmup reuse: the "naive" leg simulates the warmup and publishes a
 * checkpoint into a throwaway store, the "fast" leg restores it.  The
 * usual digest comparison doubles as the restore-vs-rerun stat
 * identity check; unexpected store behaviour (a cold run that hits, a
 * warm run that misses) is folded into the digest so it fails the
 * same way.
 */
Measured
measureWarmupReuse(const sim::SystemConfig &config,
                   const workloads::Workload &workload,
                   sim::RunConfig run)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("pfsim_perf_smoke_ckpt_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    run.checkpointDir = dir.string();
    run.fastPath = true;

    Measured m;
    const sim::RunResult cold = runSingleCore(config, workload, run);
    const sim::RunResult warm = runSingleCore(config, workload, run);
    m.digestOff = digest(cold) +
        (cold.throughput.checkpointMisses == 1 ? "" : " NOT-A-MISS");
    m.digestOn = digest(warm) +
        (warm.throughput.checkpointHits == 1 ? "" : " NOT-A-HIT");
    m.off = cold.throughput;
    m.on = warm.throughput;
    m.simCycles = warm.core.cycles;
    std::filesystem::remove_all(dir);
    return m;
}

Measured
measureMix(const sim::SystemConfig &config, const workloads::Mix &mix,
           sim::RunConfig run)
{
    Measured m;
    run.fastPath = false;
    const sim::MixResult naive = runMix(config, mix, run);
    run.fastPath = true;
    const sim::MixResult fast = runMix(config, mix, run);
    m.digestOff = digest(naive);
    m.digestOn = digest(fast);
    m.off = naive.throughput;
    m.on = fast.throughput;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"out"});
    sim::RunConfig run = runConfig(args);
    if (!args.has("instructions"))
        run.simInstructions = 500000;
    if (!args.has("warmup"))
        run.warmupInstructions = 100000;
    const std::string out =
        args.get("out", "results/bench_throughput.json");

    banner("perf smoke — simulation-kernel throughput harness",
           "fast path must be >= 1.5x on pointer-chase workloads and "
           "statistically invisible everywhere",
           run);

    const sim::SystemConfig one =
        sim::SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const sim::SystemConfig four =
        sim::SystemConfig::defaultConfig(4).withPrefetcher("spp_ppf");
    const auto pool =
        workloads::memIntensiveSubset(workloads::spec17Suite());
    const auto mix = workloads::makeMixes(pool, 4, 1, 42).front();

    struct Scenario
    {
        std::string name;
        Measured measured;
    };
    // With MLP = 1 every instruction costs ~25x the sim cycles of the
    // other scenarios, so the chase runs a proportionally smaller slice.
    sim::RunConfig chase_run = run;
    chase_run.simInstructions = run.simInstructions / 10;
    chase_run.warmupInstructions = run.warmupInstructions / 10;

    std::vector<Scenario> scenarios;
    scenarios.push_back(
        {"pointer_chase/spp_ppf/1core",
         measureSingleCore(one, pointerChaseKernel(), chase_run)});
    scenarios.push_back(
        {"605.mcf_s-like/spp_ppf/1core",
         measureSingleCore(one, workloads::findWorkload("605.mcf_s-like"),
                           run)});
    scenarios.push_back(
        {"619.lbm_s-like/spp_ppf/1core",
         measureSingleCore(one, workloads::findWorkload("619.lbm_s-like"),
                           run)});
    scenarios.push_back({"mix4/spp_ppf/4core", measureMix(four, mix, run)});

    // Warmup-dominated split, so the restored leg's saving is visible
    // against the measured region.
    sim::RunConfig reuse_run = run;
    reuse_run.warmupInstructions = run.warmupInstructions * 4;
    reuse_run.simInstructions = run.simInstructions / 5;
    scenarios.push_back(
        {"warmup_reuse/spp_ppf/1core",
         measureWarmupReuse(one,
                            workloads::findWorkload("605.mcf_s-like"),
                            reuse_run)});

    stats::PerfReport report;
    bool ok = true;
    stats::TextTable table(
        {"scenario", "mips (fast)", "mips (naive)", "speedup", "stats"});
    for (const Scenario &s : scenarios) {
        const Measured &m = s.measured;
        const bool equal = m.digestOff == m.digestOn;
        if (!equal) {
            ok = false;
            std::fprintf(stderr,
                         "FAIL %s: fast-path stats diverge\n"
                         "  naive: %s\n  fast:  %s\n",
                         s.name.c_str(), m.digestOff.c_str(),
                         m.digestOn.c_str());
        }

        stats::PerfScenario record;
        record.name = s.name;
        record.instructions = m.on.instructions;
        record.simCycles = m.simCycles;
        record.hostSeconds = m.on.hostSeconds;
        if (m.on.hostSeconds > 0.0)
            record.speedupVsNaive = m.off.hostSeconds / m.on.hostSeconds;
        report.scenarios.push_back(record);

        char mips_on[32], mips_off[32], speedup[32];
        std::snprintf(mips_on, sizeof(mips_on), "%.2f", m.on.mips());
        std::snprintf(mips_off, sizeof(mips_off), "%.2f", m.off.mips());
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      record.speedupVsNaive);
        table.addRow({s.name, mips_on, mips_off, speedup,
                      equal ? "identical" : "DIVERGED"});
    }
    std::printf("%s\n", table.render().c_str());

    report.sampleRss();
    if (!report.writeJson(out))
        ok = false;
    else
        std::printf("report: %s (max rss %llu KiB)\n", out.c_str(),
                    (unsigned long long)report.maxRssKb);

    if (!ok) {
        std::fprintf(stderr, "perf_smoke: FAILED\n");
        return 1;
    }
    return 0;
}
