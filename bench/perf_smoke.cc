/**
 * @file
 * Perf-regression smoke harness: simulate a fixed scenario set under
 * every --fast-path mode (off, skip, wheel), assert the statistics
 * are identical in all three, and archive host-speed telemetry
 * (results/bench_throughput.json) for tools/perf/compare.py.  The
 * recorded speedup is wheel-vs-off; a skip-leg divergence is folded
 * into the digest so it fails the same comparison.
 *
 * Scenarios stress the kernel differently:
 *  - pointer_chase: a distilled dependent chase, MLP = 1 — almost
 *    every cycle waits on one DRAM access, whole-system idle
 *    skipping's best case;
 *  - 605.mcf_s-like: pointer chasing diluted with cache-resident
 *    reuse, the paper's canonical low-MLP workload — busy machine,
 *    the event wheel's target case;
 *  - 619.lbm_s-like: dense streaming — the machine is almost always
 *    busy, the harshest case for any scheduler (must not regress);
 *  - mix4: a 4-core memory-intensive mix over the shared LLC/DRAM;
 *  - mcf_x4: four copies of the mcf-like chase — a homogeneous busy
 *    machine where every core is stalled on its own miss but some
 *    component has work nearly every cycle;
 *  - warmup_reuse: the same run cold (simulate warmup, publish a
 *    checkpoint) then warm (restore it) — statistics must match and
 *    speedup_vs_naive records the measured warmup-reuse gain.
 *
 * Flags: --instructions, --warmup, --out=<path> (report destination)
 */

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.hh"
#include "core/features.hh"
#include "core/weight_tables.hh"
#include "sim/multicore.hh"
#include "stats/perf_report.hh"
#include "trace/synthetic.hh"
#include "util/random.hh"

namespace
{

using namespace pfsim;

/**
 * The distilled pointer-chase/low-MLP kernel: a single dependent
 * chain over a footprint far beyond the LLC, so every load is a miss
 * serialised behind the previous one.  This is the access pattern the
 * registry's 605.mcf_s-like dilutes with cache-resident reuse.
 */
workloads::Workload
pointerChaseKernel()
{
    trace::StreamConfig chase;
    chase.kind = trace::PatternKind::PointerChase;
    chase.weight = 1.0;
    chase.footprintBlocks = std::uint64_t{1} << 20; // 64 MiB

    trace::PhaseConfig phase;
    phase.streams = {chase};
    phase.memRatio = 0.25;
    phase.storeProb = 0.0;
    phase.mispredictRate = 0.0;

    workloads::Workload workload;
    workload.name = "pointer_chase";
    workload.suite = "bench";
    workload.memIntensive = true;
    workload.make = [phase] {
        trace::SyntheticConfig config;
        config.name = "pointer_chase";
        config.seed = 271;
        config.phases = {phase};
        return config;
    };
    return workload;
}

/** Deterministic fingerprint of a single-core run's statistics. */
std::string
digest(const sim::RunResult &r)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "i=%llu c=%llu b=%llu mp=%llu ld=%llu st=%llu "
        "rob=%llu lq=%llu sq=%llu "
        "l2la=%llu l2lh=%llu l2pf=%llu l2pu=%llu l2pl=%llu "
        "llcla=%llu llcpu=%llu "
        "dr=%llu dw=%llu drh=%llu dlat=%llu",
        (unsigned long long)r.core.instructions,
        (unsigned long long)r.core.cycles,
        (unsigned long long)r.core.branches,
        (unsigned long long)r.core.mispredicts,
        (unsigned long long)r.core.loads,
        (unsigned long long)r.core.stores,
        (unsigned long long)r.core.robFullStalls,
        (unsigned long long)r.core.lqFullStalls,
        (unsigned long long)r.core.sqFullStalls,
        (unsigned long long)r.l2.loadAccess,
        (unsigned long long)r.l2.loadHit,
        (unsigned long long)r.l2.pfIssued,
        (unsigned long long)r.l2.pfUseful,
        (unsigned long long)r.l2.pfLate,
        (unsigned long long)r.llc.loadAccess,
        (unsigned long long)r.llc.pfUseful,
        (unsigned long long)r.dram.reads,
        (unsigned long long)r.dram.writes,
        (unsigned long long)r.dram.rowHits,
        (unsigned long long)r.dram.readLatencySum);
    return buf;
}

/** Deterministic fingerprint of a multi-core run's statistics. */
std::string
digest(const sim::MixResult &r)
{
    std::string out;
    char buf[160];
    for (double ipc : r.ipc) {
        std::snprintf(buf, sizeof(buf), "ipc=%.17g ", ipc);
        out += buf;
    }
    std::snprintf(
        buf, sizeof(buf),
        "llcla=%llu llclh=%llu llcpu=%llu dr=%llu dw=%llu dlat=%llu",
        (unsigned long long)r.llc.loadAccess,
        (unsigned long long)r.llc.loadHit,
        (unsigned long long)r.llc.pfUseful,
        (unsigned long long)r.dram.reads,
        (unsigned long long)r.dram.writes,
        (unsigned long long)r.dram.readLatencySum);
    out += buf;
    return out;
}

/** One measured scenario: every fast-path mode, stats must match. */
struct Measured
{
    std::string digestOff;
    std::string digestOn;
    stats::RunThroughput off;
    stats::RunThroughput on;
    std::uint64_t simCycles = 0;

    /** Process peak RSS right after this scenario ran (KiB). */
    std::uint64_t rssKb = 0;
};

Measured
measureSingleCore(const sim::SystemConfig &config,
                  const workloads::Workload &workload,
                  sim::RunConfig run)
{
    Measured m;
    run.fastPath = sim::FastPathMode::Off;
    const sim::RunResult naive = runSingleCore(config, workload, run);
    run.fastPath = sim::FastPathMode::Skip;
    const sim::RunResult skip = runSingleCore(config, workload, run);
    run.fastPath = sim::FastPathMode::Wheel;
    const sim::RunResult wheel = runSingleCore(config, workload, run);
    m.digestOff = digest(naive);
    m.digestOn = digest(wheel) +
        (digest(skip) == m.digestOff ? "" : " SKIP-DIVERGED");
    m.off = naive.throughput;
    m.on = wheel.throughput;
    m.simCycles = wheel.core.cycles;
    m.rssKb = stats::currentPeakRssKb();
    return m;
}

/**
 * Warmup reuse: the "naive" leg simulates the warmup and publishes a
 * checkpoint into a throwaway store, the "fast" leg restores it.  The
 * usual digest comparison doubles as the restore-vs-rerun stat
 * identity check; unexpected store behaviour (a cold run that hits, a
 * warm run that misses) is folded into the digest so it fails the
 * same way.
 */
Measured
measureWarmupReuse(const sim::SystemConfig &config,
                   const workloads::Workload &workload,
                   sim::RunConfig run)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("pfsim_perf_smoke_ckpt_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    run.checkpointDir = dir.string();
    run.fastPath = sim::FastPathMode::Wheel;

    Measured m;
    const sim::RunResult cold = runSingleCore(config, workload, run);
    const sim::RunResult warm = runSingleCore(config, workload, run);
    m.digestOff = digest(cold) +
        (cold.throughput.checkpointMisses == 1 ? "" : " NOT-A-MISS");
    m.digestOn = digest(warm) +
        (warm.throughput.checkpointHits == 1 ? "" : " NOT-A-HIT");
    m.off = cold.throughput;
    m.on = warm.throughput;
    m.simCycles = warm.core.cycles;
    m.rssKb = stats::currentPeakRssKb();
    std::filesystem::remove_all(dir);
    return m;
}

Measured
measureMix(const sim::SystemConfig &config, const workloads::Mix &mix,
           sim::RunConfig run)
{
    Measured m;
    run.fastPath = sim::FastPathMode::Off;
    const sim::MixResult naive = runMix(config, mix, run);
    run.fastPath = sim::FastPathMode::Skip;
    const sim::MixResult skip = runMix(config, mix, run);
    run.fastPath = sim::FastPathMode::Wheel;
    const sim::MixResult wheel = runMix(config, mix, run);
    m.digestOff = digest(naive);
    m.digestOn = digest(wheel) +
        (digest(skip) == m.digestOff ? "" : " SKIP-DIVERGED");
    m.off = naive.throughput;
    m.on = wheel.throughput;
    m.simCycles = wheel.throughput.cycles;
    m.rssKb = stats::currentPeakRssKb();
    return m;
}

/**
 * Deterministic fingerprint of a directly-driven weight-table kernel:
 * every weight plus the accumulated inference sums.  The tiniest
 * kernel divergence — one lane clamped in a different order, one
 * index computed differently — lands in this string.
 */
std::string
kernelDigest(const ppf::WeightTables &w, std::uint64_t sum_acc,
             std::uint64_t candidates)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned f = 0; f < ppf::numFeatures; ++f) {
        for (std::uint32_t i = 0; i < ppf::featureTableSizes[f]; ++i) {
            h ^= std::uint64_t(
                w.weight(ppf::FeatureId(f), i) & 0xff);
            h *= 1099511628211ull;
        }
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "w=%016llx sums=%016llx n=%llu",
                  (unsigned long long)h, (unsigned long long)sum_acc,
                  (unsigned long long)candidates);
    return buf;
}

/** One leg of the filter-rate microbench: its own weight tables,
 *  accumulated inference sums, and accumulated timed seconds. */
struct PpfLeg
{
    explicit PpfLeg(bool vec) : vectorized(vec)
    {
        if (!vec)
            weights.forceKernel(simd::Kernel::Scalar);
    }

    bool vectorized;
    ppf::WeightTables weights;
    std::uint64_t sumAcc = 0;
    std::uint64_t candidates = 0;
    double seconds = 0.0;
};

/** The pregenerated candidate pool both legs consume. */
using BurstPool = std::vector<
    std::array<ppf::FeatureInput, ppf::WeightTables::batchCapacity>>;

/**
 * Run one leg over bursts [first, first + count), timed.  The naive
 * leg is the pre-batching hot path pinned to the scalar kernel: one
 * full computeIndices() + sum() per candidate.  The vectorized leg
 * is the fused burst pipeline on the host-detected kernel: one
 * shared context, the burst-invariant features' weights folded into
 * a bias, fillSharedBurstIndices() straight into the feature-major
 * gather layout, one sumBurst() pass.  Identical candidates and
 * identical interleaved training either way, so the digests prove
 * the kernels bit-identical while the timings give the speedup.
 */
void
runPpfFilterChunk(PpfLeg &leg, const BurstPool &pool,
                  std::uint64_t first, std::uint64_t count)
{
    constexpr std::size_t burst_size = ppf::WeightTables::batchCapacity;
    ppf::WeightTables &weights = leg.weights;
    std::uint64_t sum_acc = 0;

    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t b = first; b < first + count; ++b) {
        const auto &burst = pool[b & (pool.size() - 1)];
        if (leg.vectorized) {
            const ppf::SharedIndexContext ctx =
                ppf::makeSharedContext(burst[0]);
            std::uint32_t
                shared_abs[ppf::burstSharedFeatures.size()];
            ppf::sharedAbsIndices(ctx, weights.tableOffsets(),
                                  shared_abs);
            std::uint32_t
                abs_idx[ppf::burstPerCandidateFeatures.size() *
                        burst_size];
            ppf::fillSharedBurstIndices(ctx, burst.data(), burst_size,
                                        weights.tableOffsets(),
                                        burst_size, abs_idx);
            std::int32_t sums[burst_size];
            weights.sumBurst(abs_idx, burst_size, sums,
                             weights.burstBias(shared_abs));
            for (std::size_t c = 0; c < burst_size; ++c)
                sum_acc += std::uint64_t(std::int64_t(sums[c]));
        } else {
            for (std::size_t c = 0; c < burst_size; ++c)
                sum_acc += std::uint64_t(std::int64_t(
                    weights.sum(ppf::computeIndices(burst[c]))));
        }
        // Training churn, identical in both legs: weights keep moving
        // so the gather never degenerates to a frozen table.
        if ((b & 63) == 63)
            weights.train(ppf::computeIndices(burst[0]),
                          ((b >> 6) & 1) != 0);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;

    leg.seconds += elapsed.count();
    leg.sumAcc += sum_acc;
    leg.candidates += count * burst_size;
}

/**
 * The filter-rate scenario: drive the perceptron inference kernel
 * directly with dense lookahead bursts — no core, caches or filter
 * tables in the way, so the measurement isolates exactly what this
 * PR vectorized: feature-index computation plus the weight sum.
 * Each burst mirrors what SPP hands the filter under deep lookahead
 * (MLP > 1): one trigger address and PC, batchCapacity candidates
 * walking a delta path.
 *
 * The two legs alternate in sub-millisecond chunks rather than
 * running back to back: scheduler and frequency noise on a shared
 * host drifts on the milliseconds scale, and interleaving makes both
 * legs sample the same noise, keeping the ratio honest even when the
 * absolute MIPS wobble.
 */
Measured
measurePpfFilterRate(std::uint64_t bursts)
{
    constexpr std::size_t burst_size = ppf::WeightTables::batchCapacity;
    constexpr std::size_t pool_bursts = 256; // L2-resident input pool

    // Pregenerate the candidate pool outside the timed region so the
    // loops measure the kernel, not the RNG.
    BurstPool pool(pool_bursts);
    Rng rng(97);
    for (auto &burst : pool) {
        const Addr trigger =
            (rng.below(512) << 12) | (rng.below(64) << 6);
        const Pc pc = 0x400000 + (rng.below(64) << 2);
        const Pc pc1 = 0x400000 + (rng.below(64) << 2);
        const Pc pc2 = 0x400000 + (rng.below(64) << 2);
        const Pc pc3 = 0x400000 + (rng.below(64) << 2);
        const int delta = int(rng.range(1, 6));
        const auto signature = std::uint32_t(rng.below(1u << 12));
        for (std::size_t c = 0; c < burst_size; ++c) {
            ppf::FeatureInput &in = burst[c];
            in.triggerAddr = trigger;
            in.pc = pc;
            in.pc1 = pc1;
            in.pc2 = pc2;
            in.pc3 = pc3;
            in.depth = int(c) + 1;
            in.delta = delta;
            in.confidence = 100 - 8 * int(c);
            in.signature = signature;
        }
    }

    PpfLeg scalar_leg(false);
    PpfLeg vector_leg(true);

    // Pre-train both legs identically so the weights are a realistic
    // non-zero spread.
    for (std::size_t i = 0; i < 20000; ++i) {
        const ppf::FeatureIndices idx = ppf::computeIndices(
            pool[i % pool_bursts][i % burst_size]);
        scalar_leg.weights.train(idx, (i & 3) != 0);
        vector_leg.weights.train(idx, (i & 3) != 0);
    }

    constexpr std::uint64_t chunk = 4096;
    for (std::uint64_t first = 0; first < bursts; first += chunk) {
        const std::uint64_t count =
            bursts - first < chunk ? bursts - first : chunk;
        runPpfFilterChunk(scalar_leg, pool, first, count);
        runPpfFilterChunk(vector_leg, pool, first, count);
    }

    Measured m;
    m.digestOff = kernelDigest(scalar_leg.weights, scalar_leg.sumAcc,
                               scalar_leg.candidates);
    m.digestOn = kernelDigest(vector_leg.weights, vector_leg.sumAcc,
                              vector_leg.candidates);
    m.off.instructions = scalar_leg.candidates;
    m.off.hostSeconds = scalar_leg.seconds;
    m.on.instructions = vector_leg.candidates;
    m.on.hostSeconds = vector_leg.seconds;
    m.rssKb = stats::currentPeakRssKb();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv, {"out"});
    sim::RunConfig run = runConfig(args);
    if (!args.has("instructions"))
        run.simInstructions = 500000;
    if (!args.has("warmup"))
        run.warmupInstructions = 100000;
    const std::string out =
        args.get("out", "results/bench_throughput.json");

    banner("perf smoke — simulation-kernel throughput harness",
           "the event wheel must be >= 2x on busy-machine workloads "
           "and statistically invisible everywhere",
           run);

    const sim::SystemConfig one =
        sim::SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const sim::SystemConfig four =
        sim::SystemConfig::defaultConfig(4).withPrefetcher("spp_ppf");
    const auto pool =
        workloads::memIntensiveSubset(workloads::spec17Suite());
    const auto mix = workloads::makeMixes(pool, 4, 1, 42).front();

    struct Scenario
    {
        std::string name;
        Measured measured;
    };
    // With MLP = 1 every instruction costs ~25x the sim cycles of the
    // other scenarios, so the chase runs a proportionally smaller slice.
    sim::RunConfig chase_run = run;
    chase_run.simInstructions = run.simInstructions / 10;
    chase_run.warmupInstructions = run.warmupInstructions / 10;

    std::vector<Scenario> scenarios;
    scenarios.push_back(
        {"pointer_chase/spp_ppf/1core",
         measureSingleCore(one, pointerChaseKernel(), chase_run)});
    scenarios.push_back(
        {"605.mcf_s-like/spp_ppf/1core",
         measureSingleCore(one, workloads::findWorkload("605.mcf_s-like"),
                           run)});
    scenarios.push_back(
        {"619.lbm_s-like/spp_ppf/1core",
         measureSingleCore(one, workloads::findWorkload("619.lbm_s-like"),
                           run)});
    scenarios.push_back({"mix4/spp_ppf/4core", measureMix(four, mix, run)});

    // Homogeneous busy machine: four mcf-like chases.  Unlike mix4's
    // blend, every core runs the wheel's target pattern at once, so
    // this row isolates the busy-cycle scheduling win at 4 cores.
    const workloads::Workload mcf = workloads::findWorkload("605.mcf_s-like");
    scenarios.push_back(
        {"mcf_x4/spp_ppf/4core",
         measureMix(four, workloads::Mix{mcf, mcf, mcf, mcf}, run)});

    // Direct-drive filter-rate kernel bench: scaled off the
    // instruction budget so --instructions shrinks it for quick
    // runs.  The kernel runs tens of nanoseconds per burst, so the
    // legs need millions of bursts to time a window long enough that
    // scheduler noise averages out.
    scenarios.push_back(
        {"ppf_filter_rate/spp_ppf/kernel",
         measurePpfFilterRate(run.simInstructions * 2)});

    // Warmup-dominated split, so the restored leg's saving is visible
    // against the measured region.
    sim::RunConfig reuse_run = run;
    reuse_run.warmupInstructions = run.warmupInstructions * 4;
    reuse_run.simInstructions = run.simInstructions / 5;
    scenarios.push_back(
        {"warmup_reuse/spp_ppf/1core",
         measureWarmupReuse(one,
                            workloads::findWorkload("605.mcf_s-like"),
                            reuse_run)});

    stats::PerfReport report;
    bool ok = true;
    stats::TextTable table(
        {"scenario", "mips (fast)", "mips (naive)", "speedup", "stats"});
    for (const Scenario &s : scenarios) {
        const Measured &m = s.measured;
        const bool equal = m.digestOff == m.digestOn;
        if (!equal) {
            ok = false;
            std::fprintf(stderr,
                         "FAIL %s: fast-path stats diverge\n"
                         "  naive: %s\n  fast:  %s\n",
                         s.name.c_str(), m.digestOff.c_str(),
                         m.digestOn.c_str());
        }

        stats::PerfScenario record;
        record.name = s.name;
        record.instructions = m.on.instructions;
        record.simCycles = m.simCycles;
        record.hostSeconds = m.on.hostSeconds;
        if (m.on.hostSeconds > 0.0)
            record.speedupVsNaive = m.off.hostSeconds / m.on.hostSeconds;
        record.maxRssKb = m.rssKb;
        report.scenarios.push_back(record);

        char mips_on[32], mips_off[32], speedup[32];
        std::snprintf(mips_on, sizeof(mips_on), "%.2f", m.on.mips());
        std::snprintf(mips_off, sizeof(mips_off), "%.2f", m.off.mips());
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      record.speedupVsNaive);
        table.addRow({s.name, mips_on, mips_off, speedup,
                      equal ? "identical" : "DIVERGED"});
    }
    std::printf("%s\n", table.render().c_str());

    report.sampleRss();
    if (!report.writeJson(out))
        ok = false;
    else
        std::printf("report: %s (max rss %llu KiB)\n", out.c_str(),
                    (unsigned long long)report.maxRssKb);

    if (!ok) {
        std::fprintf(stderr, "perf_smoke: FAILED\n");
        return 1;
    }
    return 0;
}
