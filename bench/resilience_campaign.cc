/**
 * @file
 * Resilience campaign: runs a matrix of PPF workloads under a seeded
 * fault plan and reports how the system degrades and recovers —
 * weight-flip recovery latency (online training re-convergence),
 * trace-corruption repair counts, DRAM/MSHR backpressure effects, and
 * fleet-level retry/degrade outcomes.
 *
 * Flags (plus the shared --instructions/--warmup/--jobs/--shards/
 * --resume):
 *   --faults=SPEC   fault plan (see fault/fault.hh for the grammar)
 *   --seed=S        campaign seed; per-job streams derive from it
 *   --retries=N     extra attempts per failed job (default 2)
 *   --backoff-ms=N  base host backoff between attempts (default 0)
 *   --timeout=SECS  per-run cooperative watchdog (default off; note
 *                   that timeout-induced outcomes depend on host speed)
 *   --workloads=K   memory-intensive workloads in the matrix (def. 4)
 *   --audit=N       run the invariant audit every N cycles
 *   --kill-workers=N
 *                   crash-campaign mode (requires --shards): SIGKILL N
 *                   shard workers at spaced points mid-campaign; the
 *                   fleet must re-queue their jobs and still produce
 *                   stdout byte-identical to an undisturbed run
 *
 * stdout is assembled from per-job slots in submission order, so for a
 * fixed spec and seed it is byte-identical across repeated runs,
 * across --jobs values and across --shards values — even with
 * --kill-workers crash injection.  A --faults=job:abort=J plan makes
 * job J hard-kill its own worker process on every attempt (SIGKILL to
 * self under --shards, a plain injected fault in the thread pool), so
 * the coordinator's poison-job quarantine path is testable end to end.
 * Exit status: 0 clean, 2 when any row degraded.
 */

#include <memory>

#include "bench_common.hh"
#include "fault/fault.hh"
#include "sim/service/wire.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv,
                          {"faults", "seed", "retries", "backoff-ms",
                           "timeout", "workloads", "audit",
                           "kill-workers"});
    sim::RunConfig run = runConfig(args);
    run.auditInterval = args.has("audit")
        ? std::uint64_t(args.getUnsigned("audit", 10000))
        : 0;
    if (args.has("kill-workers")) {
        if (run.shards == 0 && !sim::service::workerMode())
            fatal("--kill-workers requires --shards=N (it kills shard "
                  "worker processes)");
        run.shardKillWorkers =
            unsigned(args.getUnsigned("kill-workers", 0));
    }

    const fault::FaultPlan plan =
        fault::FaultPlan::parse(args.get("faults", ""));
    const std::uint64_t seed = args.getUnsigned("seed", 1);
    const double timeout = args.getDouble("timeout", 0.0);
    // On the RunConfig too, so the sharded coordinator's job-timeout
    // watchdog can hard-enforce it on wedged workers.
    run.hostTimeoutSeconds = timeout;

    sim::FleetPolicy policy;
    policy.maxRetries = unsigned(args.getUnsigned("retries", 2));
    policy.backoffMs = unsigned(args.getUnsigned("backoff-ms", 0));
    policy.degradeOnFailure = true;

    banner("Resilience campaign — seeded faults, degraded-mode fleet",
           "PPF's online training is the recovery mechanism: flipped "
           "weights re-converge, so accuracy self-heals",
           run);
    std::printf("faults: %s\n", plan.summary().c_str());
    std::printf("seed:   %llu, retries: %u, policy: degrade\n\n",
                (unsigned long long)seed, policy.maxRetries);

    const auto &suite = workloads::spec17Suite();
    const auto subset = workloads::memIntensiveSubset(suite);
    std::size_t matrix = args.getUnsigned("workloads", 4);
    if (matrix == 0 || matrix > subset.size())
        matrix = subset.size();

    const sim::SystemConfig config =
        sim::SystemConfig::defaultConfig().withPrefetcher("spp_ppf");

    // One result slot per job, owned by exactly one job; stdout is
    // assembled from the slots afterwards, never from completion
    // order.
    std::vector<sim::RunResult> slots(matrix);
    std::vector<sim::ShardJob> job_list;
    job_list.reserve(matrix);
    // Only the flaky job's (sequential) retries touch this counter.
    auto flaky_left = std::make_shared<unsigned>(plan.job.flakyFails);
    for (std::size_t j = 0; j < matrix; ++j) {
        sim::ShardJob job;
        job.run = [&, flaky_left, j]() -> sim::JobReport {
            if (plan.job.crashIndex == std::int64_t(j)) {
                throw fault::InjectedJobFault(
                    "injected crash fault (job " + std::to_string(j) +
                    " fails on every attempt)");
            }
            if (plan.job.abortIndex == std::int64_t(j)) {
                // Hard process death: under --shards the worker really
                // dies (poison-job quarantine); the thread pool treats
                // it as a plain injected failure.
                if (sim::service::workerMode())
                    sim::service::crashWorkerForTest();
                throw fault::InjectedJobFault(
                    "injected abort fault (job " + std::to_string(j) +
                    " kills its worker on every attempt)");
            }
            if (plan.job.flakyIndex == std::int64_t(j) &&
                *flaky_left > 0) {
                --*flaky_left;
                throw fault::InjectedJobFault(
                    "injected flaky fault (job " + std::to_string(j) +
                    ", " + std::to_string(*flaky_left) +
                    " failure(s) left)");
            }
            sim::RunConfig job_run = run;
            job_run.faults = plan.anySystem() ? &plan : nullptr;
            job_run.faultSeed = fault::deriveSeed(seed, j);
            job_run.hostTimeoutSeconds = timeout;
            sim::RunResult result =
                sim::runSingleCore(config, subset[j], job_run);
            sim::JobReport report;
            report.line = result.workload + " IPC " +
                          stats::TextTable::num(result.ipc, 3);
            report.throughput = result.throughput;
            slots[j] = std::move(result);
            return report;
        };
        job.save = [&slots, j](snapshot::Sink &sink) {
            sim::service::writeRunResult(sink, slots[j]);
        };
        job.load = [&slots, j](snapshot::Source &src) {
            sim::service::readRunResult(src, slots[j]);
        };
        job_list.push_back(std::move(job));
    }

    const sim::FleetReport fleet =
        sim::runJobsFleet(job_list, run, "campaign", policy);

    stats::TextTable table({"workload", "status", "attempts", "IPC",
                            "wflip rec/tot", "rec cyc (mean/max)",
                            "spp flip", "dram drop/delay", "mshr win",
                            "trace corr/rep/drop"});
    fault::FaultStats total;
    for (std::size_t j = 0; j < matrix; ++j) {
        const sim::JobOutcome &outcome = fleet.outcomes[j];
        if (!outcome.ok) {
            table.addRow({subset[j].name, "DEGRADED",
                          std::to_string(outcome.attempts), "-", "-",
                          "-", "-", "-", "-", "-"});
            continue;
        }
        const sim::RunResult &r = slots[j];
        const fault::FaultStats &f = r.faults;
        total.add(f);
        table.addRow(
            {r.workload,
             outcome.recoveredAfterRetry() ? "recovered" : "ok",
             std::to_string(outcome.attempts),
             stats::TextTable::num(r.ipc, 3),
             std::to_string(f.weightFlipsRecovered) + "/" +
                 std::to_string(f.weightFlips),
             stats::TextTable::num(f.meanWeightRecoveryCycles(), 0) +
                 "/" + std::to_string(f.weightRecoveryCyclesMax),
             std::to_string(f.sppFlips),
             std::to_string(f.dramDropped) + "/" +
                 std::to_string(f.dramDelayed),
             std::to_string(f.mshrSqueezeWindows),
             std::to_string(f.traceCorrupted) + "/" +
                 std::to_string(f.traceRepaired) + "/" +
                 std::to_string(f.traceDropped)});
    }
    std::printf("%s\n", table.render().c_str());

    if (plan.weights.enabled()) {
        std::printf("weight-flip recovery: %llu of %llu flips "
                    "recovered via online training, mean %.0f cycles, "
                    "max %llu\n",
                    (unsigned long long)total.weightFlipsRecovered,
                    (unsigned long long)total.weightFlips,
                    total.meanWeightRecoveryCycles(),
                    (unsigned long long)total.weightRecoveryCyclesMax);
    }
    std::printf("campaign: %zu runs, %zu degraded, %zu "
                "recovered-after-retry\n",
                fleet.outcomes.size(), fleet.degraded(),
                fleet.recovered());

    // Exit non-zero when degraded so CI and sweep drivers can tell a
    // survived-but-wounded campaign from a clean one.
    return fleet.degraded() > 0 ? 2 : 0;
}
