/**
 * @file
 * Section 6.3: additional memory constraints — the DPC-2 variants
 * with a 512 KB LLC ("small LLC") and 3.2 GB/s DRAM ("low
 * bandwidth"), single core, memory-intensive subset.
 *
 * Paper: PPF provides a greater improvement under the small-LLC
 * condition and matches the best prefetcher (BOP) under low DRAM
 * bandwidth; 605.mcf_s is prefetch averse under low bandwidth
 * (every prefetcher loses there).
 *
 * Flags: --instructions, --warmup
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    const sim::RunConfig run = runConfig(args);

    banner("Section 6.3 — small LLC and low DRAM bandwidth",
           "PPF gains more under a small LLC and matches the best "
           "prefetcher under low bandwidth; mcf is prefetch averse "
           "when bandwidth-starved",
           run);

    const auto workload_set =
        workloads::memIntensiveSubset(workloads::spec17Suite());

    struct Variant
    {
        const char *name;
        sim::SystemConfig config;
    };
    const Variant variants[] = {
        {"default (2MB LLC, 12.8 GB/s)",
         sim::SystemConfig::defaultConfig()},
        {"small LLC (512KB)", sim::SystemConfig::smallLlc()},
        {"low bandwidth (3.2 GB/s)",
         sim::SystemConfig::lowBandwidth()},
    };

    for (const Variant &variant : variants) {
        std::printf("--- %s ---\n", variant.name);
        const auto rows = sim::sweepPrefetchers(
            variant.config, sim::paperPrefetchers(), workload_set,
            run);
        stats::TextTable table({"workload", "bop", "da_ampm", "spp",
                                "spp_ppf (PPF)"});
        for (const auto &row : rows) {
            table.addRow({row.workload, pct(row.speedup("bop")),
                          pct(row.speedup("da_ampm")),
                          pct(row.speedup("spp")),
                          pct(row.speedup("spp_ppf"))});
        }
        table.addRow({"geomean",
                      pct(sim::geomeanSpeedup(rows, "bop")),
                      pct(sim::geomeanSpeedup(rows, "da_ampm")),
                      pct(sim::geomeanSpeedup(rows, "spp")),
                      pct(sim::geomeanSpeedup(rows, "spp_ppf"))});
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
