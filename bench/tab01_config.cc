/**
 * @file
 * Table 1: the simulation parameters, printed from the live
 * configuration structs so the table cannot drift from the code.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    (void)runConfig(args);

    const sim::SystemConfig one = sim::SystemConfig::defaultConfig();
    const sim::SystemConfig four = sim::SystemConfig::defaultConfig(4);
    const sim::SystemConfig eight =
        sim::SystemConfig::defaultConfig(8);

    std::printf("Table 1 — simulation parameters (from live "
                "configuration)\n\n");

    stats::TextTable core({"core", "value"});
    core.addRow({"fetch width",
                 std::to_string(one.core.fetchWidth)});
    core.addRow({"retire width",
                 std::to_string(one.core.retireWidth)});
    core.addRow({"ROB", std::to_string(one.core.robSize)});
    core.addRow({"load queue", std::to_string(one.core.lqSize)});
    core.addRow({"store queue", std::to_string(one.core.sqSize)});
    core.addRow({"branch predictor", one.core.branchPredictor});
    core.addRow({"mispredict penalty",
                 std::to_string(one.core.mispredictPenalty) +
                     " cycles"});
    std::printf("%s\n", core.render().c_str());

    auto cache_row = [](const cache::CacheConfig &config) {
        return std::to_string(config.capacityBytes() / 1024) + " KB, " +
               std::to_string(config.ways) + "-way, " +
               std::to_string(config.latency) + "-cycle, " +
               std::to_string(config.mshrs) + " MSHRs";
    };
    stats::TextTable caches({"cache", "configuration"});
    caches.addRow({"L1I", cache_row(one.l1i)});
    caches.addRow({"L1D", cache_row(one.l1d)});
    caches.addRow({"L2 (per core)", cache_row(one.l2)});
    caches.addRow({"LLC (1-core)", cache_row(one.llc)});
    caches.addRow({"LLC (4-core)", cache_row(four.llc)});
    caches.addRow({"LLC (8-core)", cache_row(eight.llc)});
    caches.addRow({"block size", "64 B; page size 4 KB; LRU "
                                 "everywhere"});
    std::printf("%s\n", caches.render().c_str());

    stats::TextTable dram({"DRAM", "value"});
    dram.addRow({"channels", std::to_string(one.dram.channels)});
    dram.addRow({"banks/channel", std::to_string(one.dram.banks)});
    dram.addRow({"row buffer",
                 std::to_string(one.dram.rowBytes / 1024) + " KB"});
    dram.addRow({"bandwidth", "12.8 GB/s (transfer every " +
                                  std::to_string(
                                      one.dram.transferCycles) +
                                  " cycles at 4 GHz)"});
    dram.addRow({"low-bandwidth variant",
                 "3.2 GB/s (transfer every " +
                     std::to_string(sim::SystemConfig::lowBandwidth()
                                        .dram.transferCycles) +
                     " cycles)"});
    dram.addRow({"row hit / miss / conflict",
                 std::to_string(one.dram.rowHitLatency) + " / " +
                     std::to_string(one.dram.rowMissLatency) + " / " +
                     std::to_string(one.dram.rowConflictLatency) +
                     " cycles"});
    std::printf("%s\n", dram.render().c_str());

    std::printf("prefetching is trained by and injected at the L2, "
                "with fills directed to L2 or LLC (Section 3.1)\n");
    return 0;
}
