/**
 * @file
 * Tables 2 and 3: the Prefetch Table entry layout (85 bits) and the
 * complete SPP+PPF storage budget (322,240 bits = 39.34 KB), computed
 * from the implementation's structural constants.
 */

#include "bench_common.hh"

#include "core/storage.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;
    using namespace pfsim::bench;

    Args args = parseArgs(argc, argv);
    (void)runConfig(args);

    std::printf("Table 2 — metadata stored per Prefetch Table "
                "entry\n\n");
    stats::TextTable entry({"field", "bits", "comment"});
    for (const auto &field : ppf::prefetchTableEntryLayout()) {
        entry.addRow({field.name, std::to_string(field.bits),
                      field.comment});
    }
    entry.addRow({"total",
                  std::to_string(ppf::prefetchTableEntryBits()),
                  "(paper: 85)"});
    std::printf("%s\n", entry.render().c_str());
    std::printf("Reject Table entry: %u bits (no Useful bit; "
                "paper: 84)\n\n",
                ppf::rejectTableEntryBits());

    std::printf("Table 3 — SPP+PPF storage overhead\n\n");
    stats::TextTable budget(
        {"structure", "entries", "components", "total bits"});
    for (const auto &row : ppf::storageBudget()) {
        budget.addRow({row.structure, row.entryCount, row.components,
                       std::to_string(row.totalBits)});
    }
    const std::uint64_t total = ppf::totalStorageBits();
    budget.addRow({"total", "", "",
                   std::to_string(total) + " bits"});
    std::printf("%s\n", budget.render().c_str());
    std::printf("= %.2f KB (paper: 322,240 bits = 39.34 KB)\n",
                double(total) / 8192.0);
    std::printf("\ncompute: summing nine 5-bit weights needs a "
                "four-level adder tree (ceil(log2 9) = 4 steps); "
                "updates are +/-1 on nine weights — comfortably "
                "within L2 access timing (Section 5.6)\n");
    return 0;
}
