file(REMOVE_RECURSE
  "CMakeFiles/abl_generality.dir/abl_generality.cc.o"
  "CMakeFiles/abl_generality.dir/abl_generality.cc.o.d"
  "abl_generality"
  "abl_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
