# Empty compiler generated dependencies file for abl_generality.
# This may be replaced when dependencies are built.
