file(REMOVE_RECURSE
  "CMakeFiles/abl_weight_bits.dir/abl_weight_bits.cc.o"
  "CMakeFiles/abl_weight_bits.dir/abl_weight_bits.cc.o.d"
  "abl_weight_bits"
  "abl_weight_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_weight_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
