# Empty compiler generated dependencies file for abl_weight_bits.
# This may be replaced when dependencies are built.
