file(REMOVE_RECURSE
  "CMakeFiles/fig01_aggressiveness.dir/fig01_aggressiveness.cc.o"
  "CMakeFiles/fig01_aggressiveness.dir/fig01_aggressiveness.cc.o.d"
  "fig01_aggressiveness"
  "fig01_aggressiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_aggressiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
