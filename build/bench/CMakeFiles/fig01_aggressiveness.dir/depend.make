# Empty dependencies file for fig01_aggressiveness.
# This may be replaced when dependencies are built.
