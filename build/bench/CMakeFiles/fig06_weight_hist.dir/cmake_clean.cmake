file(REMOVE_RECURSE
  "CMakeFiles/fig06_weight_hist.dir/fig06_weight_hist.cc.o"
  "CMakeFiles/fig06_weight_hist.dir/fig06_weight_hist.cc.o.d"
  "fig06_weight_hist"
  "fig06_weight_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_weight_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
