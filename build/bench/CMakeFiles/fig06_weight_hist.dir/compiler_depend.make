# Empty compiler generated dependencies file for fig06_weight_hist.
# This may be replaced when dependencies are built.
