file(REMOVE_RECURSE
  "CMakeFiles/fig07_feature_corr.dir/fig07_feature_corr.cc.o"
  "CMakeFiles/fig07_feature_corr.dir/fig07_feature_corr.cc.o.d"
  "fig07_feature_corr"
  "fig07_feature_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_feature_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
