# Empty compiler generated dependencies file for fig07_feature_corr.
# This may be replaced when dependencies are built.
