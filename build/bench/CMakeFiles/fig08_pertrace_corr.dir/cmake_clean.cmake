file(REMOVE_RECURSE
  "CMakeFiles/fig08_pertrace_corr.dir/fig08_pertrace_corr.cc.o"
  "CMakeFiles/fig08_pertrace_corr.dir/fig08_pertrace_corr.cc.o.d"
  "fig08_pertrace_corr"
  "fig08_pertrace_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pertrace_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
