# Empty compiler generated dependencies file for fig08_pertrace_corr.
# This may be replaced when dependencies are built.
