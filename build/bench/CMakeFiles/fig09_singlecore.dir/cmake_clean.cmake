file(REMOVE_RECURSE
  "CMakeFiles/fig09_singlecore.dir/fig09_singlecore.cc.o"
  "CMakeFiles/fig09_singlecore.dir/fig09_singlecore.cc.o.d"
  "fig09_singlecore"
  "fig09_singlecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_singlecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
