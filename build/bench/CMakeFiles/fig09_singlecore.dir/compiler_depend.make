# Empty compiler generated dependencies file for fig09_singlecore.
# This may be replaced when dependencies are built.
