file(REMOVE_RECURSE
  "CMakeFiles/fig10_coverage.dir/fig10_coverage.cc.o"
  "CMakeFiles/fig10_coverage.dir/fig10_coverage.cc.o.d"
  "fig10_coverage"
  "fig10_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
