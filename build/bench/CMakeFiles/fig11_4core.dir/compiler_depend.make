# Empty compiler generated dependencies file for fig11_4core.
# This may be replaced when dependencies are built.
