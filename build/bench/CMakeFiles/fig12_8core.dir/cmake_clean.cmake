file(REMOVE_RECURSE
  "CMakeFiles/fig12_8core.dir/fig12_8core.cc.o"
  "CMakeFiles/fig12_8core.dir/fig12_8core.cc.o.d"
  "fig12_8core"
  "fig12_8core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_8core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
