# Empty compiler generated dependencies file for fig12_8core.
# This may be replaced when dependencies are built.
