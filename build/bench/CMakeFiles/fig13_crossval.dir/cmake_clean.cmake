file(REMOVE_RECURSE
  "CMakeFiles/fig13_crossval.dir/fig13_crossval.cc.o"
  "CMakeFiles/fig13_crossval.dir/fig13_crossval.cc.o.d"
  "fig13_crossval"
  "fig13_crossval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
