# Empty compiler generated dependencies file for fig13_crossval.
# This may be replaced when dependencies are built.
