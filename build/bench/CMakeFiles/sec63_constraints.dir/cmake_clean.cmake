file(REMOVE_RECURSE
  "CMakeFiles/sec63_constraints.dir/sec63_constraints.cc.o"
  "CMakeFiles/sec63_constraints.dir/sec63_constraints.cc.o.d"
  "sec63_constraints"
  "sec63_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
