# Empty dependencies file for sec63_constraints.
# This may be replaced when dependencies are built.
