file(REMOVE_RECURSE
  "CMakeFiles/tab01_config.dir/tab01_config.cc.o"
  "CMakeFiles/tab01_config.dir/tab01_config.cc.o.d"
  "tab01_config"
  "tab01_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
