# Empty dependencies file for tab03_storage.
# This may be replaced when dependencies are built.
