file(REMOVE_RECURSE
  "CMakeFiles/filter_anatomy.dir/filter_anatomy.cc.o"
  "CMakeFiles/filter_anatomy.dir/filter_anatomy.cc.o.d"
  "filter_anatomy"
  "filter_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
