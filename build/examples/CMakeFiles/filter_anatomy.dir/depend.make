# Empty dependencies file for filter_anatomy.
# This may be replaced when dependencies are built.
