
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/pfsim.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/mshr.cc" "src/CMakeFiles/pfsim.dir/cache/mshr.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/cache/mshr.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/pfsim.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/cache/replacement.cc.o.d"
  "/root/repo/src/core/feature_analysis.cc" "src/CMakeFiles/pfsim.dir/core/feature_analysis.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/core/feature_analysis.cc.o.d"
  "/root/repo/src/core/features.cc" "src/CMakeFiles/pfsim.dir/core/features.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/core/features.cc.o.d"
  "/root/repo/src/core/filter_tables.cc" "src/CMakeFiles/pfsim.dir/core/filter_tables.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/core/filter_tables.cc.o.d"
  "/root/repo/src/core/generic_filter.cc" "src/CMakeFiles/pfsim.dir/core/generic_filter.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/core/generic_filter.cc.o.d"
  "/root/repo/src/core/ppf.cc" "src/CMakeFiles/pfsim.dir/core/ppf.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/core/ppf.cc.o.d"
  "/root/repo/src/core/spp_ppf.cc" "src/CMakeFiles/pfsim.dir/core/spp_ppf.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/core/spp_ppf.cc.o.d"
  "/root/repo/src/core/storage.cc" "src/CMakeFiles/pfsim.dir/core/storage.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/core/storage.cc.o.d"
  "/root/repo/src/core/weight_tables.cc" "src/CMakeFiles/pfsim.dir/core/weight_tables.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/core/weight_tables.cc.o.d"
  "/root/repo/src/cpu/branch_predictor.cc" "src/CMakeFiles/pfsim.dir/cpu/branch_predictor.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/cpu/branch_predictor.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/pfsim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/perceptron_bp.cc" "src/CMakeFiles/pfsim.dir/cpu/perceptron_bp.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/cpu/perceptron_bp.cc.o.d"
  "/root/repo/src/dram/dram.cc" "src/CMakeFiles/pfsim.dir/dram/dram.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/dram/dram.cc.o.d"
  "/root/repo/src/prefetch/ampm.cc" "src/CMakeFiles/pfsim.dir/prefetch/ampm.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/prefetch/ampm.cc.o.d"
  "/root/repo/src/prefetch/bop.cc" "src/CMakeFiles/pfsim.dir/prefetch/bop.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/prefetch/bop.cc.o.d"
  "/root/repo/src/prefetch/ip_stride.cc" "src/CMakeFiles/pfsim.dir/prefetch/ip_stride.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/prefetch/ip_stride.cc.o.d"
  "/root/repo/src/prefetch/next_line.cc" "src/CMakeFiles/pfsim.dir/prefetch/next_line.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/prefetch/next_line.cc.o.d"
  "/root/repo/src/prefetch/prefetcher.cc" "src/CMakeFiles/pfsim.dir/prefetch/prefetcher.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/prefetch/prefetcher.cc.o.d"
  "/root/repo/src/prefetch/spp.cc" "src/CMakeFiles/pfsim.dir/prefetch/spp.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/prefetch/spp.cc.o.d"
  "/root/repo/src/prefetch/vldp.cc" "src/CMakeFiles/pfsim.dir/prefetch/vldp.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/prefetch/vldp.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/pfsim.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/pfsim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/multicore.cc" "src/CMakeFiles/pfsim.dir/sim/multicore.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/sim/multicore.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/pfsim.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/sim/runner.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/pfsim.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/sim/system.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/pfsim.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/pearson.cc" "src/CMakeFiles/pfsim.dir/stats/pearson.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/stats/pearson.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/pfsim.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/stats/summary.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/pfsim.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/stats/table.cc.o.d"
  "/root/repo/src/trace/file_trace.cc" "src/CMakeFiles/pfsim.dir/trace/file_trace.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/trace/file_trace.cc.o.d"
  "/root/repo/src/trace/instruction.cc" "src/CMakeFiles/pfsim.dir/trace/instruction.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/trace/instruction.cc.o.d"
  "/root/repo/src/trace/patterns.cc" "src/CMakeFiles/pfsim.dir/trace/patterns.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/trace/patterns.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/CMakeFiles/pfsim.dir/trace/synthetic.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/trace/synthetic.cc.o.d"
  "/root/repo/src/util/args.cc" "src/CMakeFiles/pfsim.dir/util/args.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/util/args.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/pfsim.dir/util/random.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/util/random.cc.o.d"
  "/root/repo/src/workloads/cloud.cc" "src/CMakeFiles/pfsim.dir/workloads/cloud.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/workloads/cloud.cc.o.d"
  "/root/repo/src/workloads/mixes.cc" "src/CMakeFiles/pfsim.dir/workloads/mixes.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/workloads/mixes.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/pfsim.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/spec06.cc" "src/CMakeFiles/pfsim.dir/workloads/spec06.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/workloads/spec06.cc.o.d"
  "/root/repo/src/workloads/spec17.cc" "src/CMakeFiles/pfsim.dir/workloads/spec17.cc.o" "gcc" "src/CMakeFiles/pfsim.dir/workloads/spec17.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
