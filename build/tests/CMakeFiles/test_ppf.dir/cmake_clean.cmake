file(REMOVE_RECURSE
  "CMakeFiles/test_ppf.dir/test_ppf.cc.o"
  "CMakeFiles/test_ppf.dir/test_ppf.cc.o.d"
  "test_ppf"
  "test_ppf.pdb"
  "test_ppf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
