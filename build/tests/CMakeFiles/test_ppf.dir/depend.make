# Empty dependencies file for test_ppf.
# This may be replaced when dependencies are built.
