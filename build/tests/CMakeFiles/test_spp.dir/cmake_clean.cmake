file(REMOVE_RECURSE
  "CMakeFiles/test_spp.dir/test_spp.cc.o"
  "CMakeFiles/test_spp.dir/test_spp.cc.o.d"
  "test_spp"
  "test_spp.pdb"
  "test_spp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
