# Empty compiler generated dependencies file for test_spp.
# This may be replaced when dependencies are built.
