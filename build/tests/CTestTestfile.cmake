# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_spp[1]_include.cmake")
include("/root/repo/build/tests/test_ppf[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
