/**
 * @file
 * Example: define your own synthetic workload with the public trace
 * API and evaluate SPP vs SPP+PPF on it.
 *
 * The workload built here is the canonical filterable situation from
 * the paper's motivation: one clean delta stream that rewards deep
 * lookahead, one erratic twin stream behind different PCs, and a hot
 * cache-resident majority.  SPP's single global confidence cannot
 * separate the twins; PPF's PC- and page-indexed features can.
 *
 * Usage:
 *   custom_workload [--instructions=N] [--warmup=N]
 *                   [--break-prob=P] [--pattern-share=S]
 */

#include <cstdio>

#include "sim/runner.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"
#include "util/args.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;

    Args args(argc, argv,
              {"instructions", "warmup", "break-prob",
               "pattern-share"});
    sim::RunConfig run;
    run.simInstructions =
        InstrCount(args.getInt("instructions", 500000));
    run.warmupInstructions =
        InstrCount(args.getInt("warmup", 125000));
    const double break_prob = args.getDouble("break-prob", 0.12);
    const double share = args.getDouble("pattern-share", 0.04);

    // ---- declare the workload ------------------------------------
    trace::SyntheticConfig config;
    config.name = "custom-clean-vs-dirty";
    config.seed = 20260705;

    trace::StreamConfig clean;
    clean.kind = trace::PatternKind::DeltaSeq;
    clean.deltas = {1, 2, 1, 3};
    clean.breakProb = 0.0;
    clean.weight = share * 0.55;

    trace::StreamConfig dirty = clean;
    dirty.breakProb = break_prob;
    dirty.weight = share * 0.45;

    trace::StreamConfig hot;
    hot.kind = trace::PatternKind::HotReuse;
    hot.footprintBlocks = 320;
    hot.coldProb = 0.0;
    hot.weight = 1.0 - share;

    trace::PhaseConfig phase;
    phase.streams = {clean, dirty, hot};
    phase.memRatio = 0.35;
    phase.storeProb = 0.2;
    config.phases = {phase};

    workloads::Workload workload;
    workload.name = config.name;
    workload.suite = "custom";
    workload.memIntensive = true;
    workload.make = [config] { return config; };

    // ---- evaluate ---------------------------------------------------
    std::printf("custom workload: clean delta stream + erratic twin "
                "(break prob %.2f), pattern share %.2f\n\n",
                break_prob, share);

    stats::TextTable table({"prefetcher", "IPC", "speedup",
                            "avg depth", "accuracy"});
    double base_ipc = 0.0;
    for (const char *name : {"none", "spp", "spp_ppf"}) {
        const sim::RunResult result = sim::runSingleCore(
            sim::SystemConfig::defaultConfig().withPrefetcher(name),
            workload, run);
        if (base_ipc == 0.0)
            base_ipc = result.ipc;
        table.addRow(
            {name, stats::TextTable::num(result.ipc, 3),
             stats::TextTable::pct(result.ipc / base_ipc),
             result.spp.issued
                 ? stats::TextTable::num(result.spp.averageDepth(), 2)
                 : "--",
             result.totalPf()
                 ? stats::TextTable::num(100.0 * result.accuracy(),
                                         1) + "%"
                 : "--"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expected shape: spp_ppf > spp > none, with PPF "
                "speculating deeper than throttled SPP\n");
    return 0;
}
