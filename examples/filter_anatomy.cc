/**
 * @file
 * Example: look inside the perceptron filter.
 *
 * Runs SPP+PPF on a workload, then dissects the filter: decision
 * counts, the training paths that fired, per-feature weight spread,
 * and each feature's outcome correlation — the observables behind the
 * paper's Figures 5-8.
 *
 * Usage:
 *   filter_anatomy [--workload=NAME] [--instructions=N] [--warmup=N]
 */

#include <cstdio>

#include "core/feature_analysis.hh"
#include "core/spp_ppf.hh"
#include "sim/runner.hh"
#include "stats/table.hh"
#include "util/args.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;

    Args args(argc, argv, {"workload", "instructions", "warmup"});
    const std::string workload_name =
        args.get("workload", "623.xalancbmk_s-like");

    sim::RunConfig run;
    run.simInstructions =
        InstrCount(args.getInt("instructions", 500000));
    run.warmupInstructions =
        InstrCount(args.getInt("warmup", 125000));

    ppf::FeatureAnalysis analysis;
    const sim::RunResult result = sim::runSingleCore(
        sim::SystemConfig::defaultConfig().withPrefetcher("spp_ppf"),
        workloads::findWorkload(workload_name), run, &analysis);

    std::printf("filter anatomy: %s (IPC %.3f)\n\n",
                workload_name.c_str(), result.ipc);

    std::printf("-- inference (Figure 5, step 1) --\n");
    std::printf("candidates tested : %llu\n",
                (unsigned long long)result.ppf.candidates);
    std::printf("  -> fill L2      : %llu\n",
                (unsigned long long)result.ppf.acceptedL2);
    std::printf("  -> fill LLC     : %llu\n",
                (unsigned long long)result.ppf.acceptedLlc);
    std::printf("  -> rejected     : %llu\n\n",
                (unsigned long long)result.ppf.rejected);

    std::printf("-- training (Figure 5, steps 3-4) --\n");
    std::printf("useful (prefetch table demand hits) : %llu\n",
                (unsigned long long)result.ppf.trainUseful);
    std::printf("false negatives (reject table hits) : %llu\n",
                (unsigned long long)result.ppf.trainFalseNegative);
    std::printf("useless evictions (negative)        : %llu\n\n",
                (unsigned long long)result.ppf.trainUselessEvict);

    std::printf("-- outcome at the cache --\n");
    std::printf("issued %llu, useful %llu (accuracy %.1f%%), "
                "evicted-unused %llu\n\n",
                (unsigned long long)result.totalPf(),
                (unsigned long long)result.goodPf(),
                100.0 * result.accuracy(),
                (unsigned long long)result.l2.pfUselessEvict);

    std::printf("-- per-feature outcome correlation (Figure 7 "
                "observable) --\n");
    stats::TextTable table({"feature", "Pearson r"});
    for (unsigned f = 0; f < ppf::numFeatures; ++f) {
        table.addRow({ppf::featureName(ppf::FeatureId(f)),
                      stats::TextTable::num(
                          analysis.correlation(ppf::FeatureId(f)),
                          3)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("SPP underneath: %llu triggers, avg lookahead depth "
                "%.2f, alpha-feedback useful prefetches flowing\n",
                (unsigned long long)result.spp.triggers,
                result.spp.averageDepth());
    return 0;
}
