/**
 * @file
 * Example: compare every prefetcher in the library on one workload,
 * printing speedup, coverage, accuracy and traffic side by side —
 * the quickest way to see the coverage/accuracy trade-off the paper
 * opens with.
 *
 * Usage:
 *   prefetcher_shootout [--workload=NAME] [--instructions=N]
 *                       [--warmup=N]
 */

#include <cstdio>

#include "sim/runner.hh"
#include "stats/table.hh"
#include "util/args.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;

    Args args(argc, argv, {"workload", "instructions", "warmup"});
    const std::string workload_name =
        args.get("workload", "603.bwaves_s-like");

    sim::RunConfig run;
    run.simInstructions =
        InstrCount(args.getInt("instructions", 500000));
    run.warmupInstructions =
        InstrCount(args.getInt("warmup", 125000));

    const workloads::Workload &workload =
        workloads::findWorkload(workload_name);

    std::printf("prefetcher shootout on %s\n\n",
                workload.name.c_str());

    const sim::RunResult baseline = sim::runSingleCore(
        sim::SystemConfig::defaultConfig(), workload, run);

    stats::TextTable table({"prefetcher", "IPC", "speedup",
                            "L2 coverage", "accuracy", "issued",
                            "DRAM reads"});
    table.addRow({"none", stats::TextTable::num(baseline.ipc, 3),
                  "--", "--", "--", "0",
                  std::to_string(baseline.dram.reads)});

    for (const char *name : {"next_line", "ip_stride", "bop",
                             "da_ampm", "vldp", "spp", "spp_ppf"}) {
        const sim::RunResult result = sim::runSingleCore(
            sim::SystemConfig::defaultConfig().withPrefetcher(name),
            workload, run);
        const double coverage = baseline.l2.demandMisses() == 0
            ? 0.0
            : 1.0 - double(result.l2.demandMisses()) /
                    double(baseline.l2.demandMisses());
        table.addRow(
            {name, stats::TextTable::num(result.ipc, 3),
             stats::TextTable::pct(result.ipc / baseline.ipc),
             stats::TextTable::num(100.0 * coverage, 1) + "%",
             stats::TextTable::num(100.0 * result.accuracy(), 1) +
                 "%",
             std::to_string(result.totalPf()),
             std::to_string(result.dram.reads)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("coverage: fraction of the baseline's L2 demand "
                "misses removed; accuracy: useful / issued\n");
    return 0;
}
