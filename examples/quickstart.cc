/**
 * @file
 * Quickstart: simulate one workload on the default single-core system
 * with SPP+PPF and print the headline numbers.
 *
 * Usage:
 *   quickstart [--workload=NAME] [--prefetcher=NAME]
 *              [--instructions=N] [--warmup=N] [--audit[=N]]
 *              [--fast-path=off|skip|wheel]
 *
 * --audit[=N] runs the hardware-invariant audit (src/check) every N
 * cycles (default 1, i.e. every cycle); any violation aborts with the
 * component, cycle and offending entry.
 *
 * --fast-path selects the simulation-kernel fast path (DESIGN.md §9
 * and §14): off ticks everything every cycle, skip jumps whole-system
 * idle cycles, wheel (the default) ticks each component only on
 * cycles where it has work.  The printed numbers are identical in
 * every mode.
 */

#include <cstdint>
#include <cstdio>

#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;

    Args args(argc, argv,
              {"workload", "prefetcher", "instructions", "warmup",
               "audit", "fast-path"});

    const std::string workload_name =
        args.get("workload", "603.bwaves_s-like");
    const std::string prefetcher = args.get("prefetcher", "spp_ppf");

    sim::RunConfig run;
    run.simInstructions =
        InstrCount(args.getInt("instructions", 1000000));
    run.warmupInstructions = InstrCount(args.getInt("warmup", 250000));
    if (args.has("audit")) {
        const std::int64_t interval = args.getInt("audit", 1);
        if (interval <= 0)
            fatal("--audit interval must be positive");
        run.auditInterval = std::uint64_t(interval);
    }
    if (!sim::parseFastPathMode(args.get("fast-path", "wheel"),
                                run.fastPath)) {
        fatal("bad --fast-path value (want off|skip|wheel): " +
              args.get("fast-path", ""));
    }

    const workloads::Workload &workload =
        workloads::findWorkload(workload_name);
    sim::SystemConfig config =
        sim::SystemConfig::defaultConfig().withPrefetcher(prefetcher);

    std::printf("pfsim quickstart\n");
    std::printf("  workload    : %s\n", workload.name.c_str());
    std::printf("  prefetcher  : %s\n", prefetcher.c_str());
    std::printf("  instructions: %llu (+%llu warmup)\n",
                (unsigned long long)run.simInstructions,
                (unsigned long long)run.warmupInstructions);
    if (run.auditInterval != 0) {
        std::printf("  audit       : every %llu cycle(s)\n",
                    (unsigned long long)run.auditInterval);
    }

    const sim::RunResult result =
        sim::runSingleCore(config, workload, run);

    std::printf("\nresults\n");
    std::printf("  IPC            : %.4f\n", result.ipc);
    std::printf("  L2 demand MPKI : %.2f\n", result.l2Mpki());
    std::printf("  prefetches     : %llu issued, %llu useful "
                "(accuracy %.1f%%)\n",
                (unsigned long long)result.totalPf(),
                (unsigned long long)result.goodPf(),
                100.0 * result.accuracy());
    if (result.spp.issued > 0) {
        std::printf("  SPP avg depth  : %.2f\n",
                    result.spp.averageDepth());
    }
    if (result.ppf.candidates > 0) {
        std::printf("  PPF decisions  : %llu candidates -> %llu L2, "
                    "%llu LLC, %llu rejected\n",
                    (unsigned long long)result.ppf.candidates,
                    (unsigned long long)result.ppf.acceptedL2,
                    (unsigned long long)result.ppf.acceptedLlc,
                    (unsigned long long)result.ppf.rejected);
    }
    return 0;
}
