/**
 * @file
 * Example: capture a workload to a trace file, then replay it — the
 * ChampSim-style capture-once / evaluate-many workflow.
 *
 * The replay is bit-identical to the source, so prefetcher studies can
 * be re-run from the file without the synthetic generators.
 *
 * Usage:
 *   record_replay [--workload=NAME] [--count=N] [--file=PATH]
 *                 [--instructions=N] [--warmup=N]
 */

#include <cstdio>
#include <memory>

#include "sim/runner.hh"
#include "stats/table.hh"
#include "trace/file_trace.hh"
#include "trace/synthetic.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace pfsim;

    Args args(argc, argv,
              {"workload", "count", "file", "instructions", "warmup"});
    const std::string workload_name =
        args.get("workload", "649.fotonik3d_s-like");
    const std::string path =
        args.get("file", "/tmp/pfsim_example.trace");
    const InstrCount count = InstrCount(args.getInt("count", 600000));

    sim::RunConfig run;
    run.simInstructions =
        InstrCount(args.getInt("instructions", 400000));
    run.warmupInstructions =
        InstrCount(args.getInt("warmup", 100000));

    const workloads::Workload &workload =
        workloads::findWorkload(workload_name);

    // ---- record ----------------------------------------------------
    std::printf("recording %llu instructions of %s to %s ...\n",
                (unsigned long long)count, workload.name.c_str(),
                path.c_str());
    {
        trace::SyntheticTrace source(workload.make());
        trace::recordTrace(source, path, count);
    }

    // ---- replay through the simulator ------------------------------
    // A workload whose make() opens the file each run: the replay is
    // a drop-in TraceSource, so everything downstream (runners,
    // benches) works unchanged.
    std::printf("replaying through the simulator ...\n\n");

    stats::TextTable table({"prefetcher", "IPC (replay)", "speedup"});
    double base_ipc = 0.0;
    for (const char *prefetcher : {"none", "spp", "spp_ppf"}) {
        std::unique_ptr<trace::FileTrace> opened;
        try {
            opened = std::make_unique<trace::FileTrace>(path, true);
        } catch (const trace::TraceError &e) {
            fatal(e.what());
        }
        trace::FileTrace &replay = *opened;
        sim::System system(sim::SystemConfig::defaultConfig()
                               .withPrefetcher(prefetcher),
                           {&replay});
        system.runUntilRetired(run.warmupInstructions);
        system.resetStats();
        system.runUntilRetired(run.simInstructions);
        const double ipc = system.core(0).stats().ipc();
        if (base_ipc == 0.0)
            base_ipc = ipc;
        table.addRow({prefetcher, stats::TextTable::num(ipc, 3),
                      stats::TextTable::pct(ipc / base_ipc)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("trace file: %s (%llu records, ~%.1f MB)\n",
                path.c_str(), (unsigned long long)count,
                double(count) * 25.0 / 1e6);
    std::remove(path.c_str());
    return 0;
}
