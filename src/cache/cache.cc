#include "cache/cache.hh"

#include <cassert>

#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::cache
{

std::uint64_t
CacheConfig::capacityBytes() const
{
    return std::uint64_t(sets) * ways * blockSize;
}

Cache::Cache(CacheConfig config, MemoryLevel *lower)
    : config_(std::move(config)), lower_(lower),
      mshrs_(config_.mshrs), rq_(config_.rqSize), wq_(config_.wqSize),
      pq_(config_.pqSize),
      responses_(std::size_t(config_.rqSize) + config_.pqSize),
      fills_(config_.mshrs)
{
    if (!isPowerOf2(config_.sets))
        fatal(config_.name + ": set count must be a power of two");
    if (lower_ == nullptr)
        fatal(config_.name + ": no lower level");
    setShift_ = blockShift;
    setMask_ = config_.sets - 1;
    blocks_.assign(std::size_t(config_.sets) * config_.ways, Block{});
    policy_ = makePolicy(config_.replacement);
    policy_->initialize(config_.sets, config_.ways);
}

void
Cache::setPrefetcher(prefetch::Prefetcher *prefetcher)
{
    prefetcher_ = prefetcher;
    if (prefetcher_ != nullptr)
        prefetcher_->attach(this);
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    return std::uint32_t(addr >> setShift_) & setMask_;
}

Cache::Block *
Cache::lookup(Addr addr)
{
    const Addr tag = blockAlign(addr);
    const std::uint32_t set = setIndex(addr);
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        Block &b = blocks_[std::size_t(set) * config_.ways + w];
        if (b.valid && b.tag == tag)
            return &b;
    }
    return nullptr;
}

const Cache::Block *
Cache::lookup(Addr addr) const
{
    return const_cast<Cache *>(this)->lookup(addr);
}

bool
Cache::addRead(const Request &req)
{
    if (rq_.size() >= config_.rqSize)
        return false;
    Request r = req;
    r.addr = blockAlign(r.addr);
    r.enqueueCycle = now_;
    // The notify gate is per-level: a request forwarded from above has
    // not yet trained *this* cache's prefetcher.
    r.prefetcherNotified = false;
    rq_.push_back(r);
    wakeSelf(now_ + 1);
    return true;
}

bool
Cache::addWrite(const Request &req)
{
    if (wq_.size() >= config_.wqSize)
        return false;
    Request r = req;
    r.addr = blockAlign(r.addr);
    r.type = AccessType::Writeback;
    r.enqueueCycle = now_;
    wq_.push_back(r);
    wakeSelf(now_ + 1);
    return true;
}

bool
Cache::addPrefetch(const Request &req)
{
    if (pq_.size() >= config_.pqSize)
        return false;
    Request r = req;
    r.addr = blockAlign(r.addr);
    r.type = AccessType::Prefetch;
    r.enqueueCycle = now_;
    pq_.push_back(r);
    wakeSelf(now_ + 1);
    return true;
}

bool
Cache::issuePrefetch(Addr addr, bool fill_this_level)
{
    const Addr block = blockAlign(addr);
    // Issue-time dedup: prefetching a block that is already present or
    // already being fetched is a no-op in hardware; dropping it here
    // keeps the prefetcher's accuracy feedback meaningful.
    if (lookup(block) != nullptr) {
        ++stats_.pfDroppedHit;
        return false;
    }
    if (mshrs_.find(block) != nullptr) {
        ++stats_.pfDroppedMshr;
        return false;
    }
    if (pq_.size() >= config_.pqSize) {
        ++stats_.pfDroppedFull;
        return false;
    }
    Request r;
    r.addr = block;
    r.type = AccessType::Prefetch;
    r.fillThisLevel = fill_this_level;
    r.enqueueCycle = now_;
    pq_.push_back(r);
    ++stats_.pfIssued;
    wakeSelf(now_ + 1);
    return true;
}

void
Cache::returnData(const Request &req, Cycle now)
{
    fills_.push_back({now, req});
    // The lower level responds after this cache's tick within a cycle,
    // so the fill is processed on the next one.
    wakeSelf(now + 1);
}

void
Cache::notifyPrefetcherOperate(const Request &req, bool hit,
                               bool hit_prefetched, Cycle now)
{
    if (prefetcher_ == nullptr || !isDemand(req.type))
        return;
    prefetch::OperateInfo info;
    info.addr = req.addr;
    info.pc = req.pc;
    info.cacheHit = hit;
    info.hitPrefetched = hit_prefetched;
    info.type = req.type;
    info.cycle = now;
    prefetcher_->operate(info);
}

bool
Cache::installBlock(Addr addr, bool dirty, bool prefetched, Cycle now)
{
    const std::uint32_t set = setIndex(addr);
    std::uint32_t way = config_.ways;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!blocks_[std::size_t(set) * config_.ways + w].valid) {
            way = w;
            break;
        }
    }
    if (way == config_.ways)
        way = policy_->victim(set);

    Block &victim = blocks_[std::size_t(set) * config_.ways + way];
    pendingFillInfo_ = prefetch::FillInfo{};
    if (victim.valid) {
        if (victim.dirty) {
            Request wb;
            wb.addr = victim.tag;
            wb.type = AccessType::Writeback;
            if (!lower_->addWrite(wb))
                return false;
            ++stats_.writebacks;
        }
        if (victim.prefetched)
            ++stats_.pfUselessEvict;
        pendingFillInfo_.evictedValid = true;
        pendingFillInfo_.evictedAddr = victim.tag;
        pendingFillInfo_.evictedUnusedPrefetch = victim.prefetched;
    }

    victim.valid = true;
    victim.dirty = dirty;
    victim.prefetched = prefetched;
    victim.tag = blockAlign(addr);
    policy_->insert(set, way, now);
    return true;
}

bool
Cache::processWrite(const Request &req, Cycle now)
{
    Block *b = lookup(req.addr);
    ++stats_.writebackAccess;
    if (b != nullptr) {
        ++stats_.writebackHit;
        b->dirty = true;
        policy_->touch(setIndex(req.addr),
                       std::uint32_t(b - &blocks_[std::size_t(
                           setIndex(req.addr)) * config_.ways]),
                       now);
        return true;
    }
    if (MshrEntry *e = mshrs_.find(req.addr); e != nullptr) {
        // The block is in flight; remember to install it dirty.
        e->dirtyOnFill = true;
        return true;
    }
    // Writeback-allocate: the block's data is complete, no fetch needed.
    return installBlock(req.addr, true, false, now);
}

void
Cache::readHit(Block *b, const Request &req, Cycle now)
{
    const bool hit_prefetched = b->prefetched;
    if (b->prefetched) {
        b->prefetched = false;
        ++stats_.pfUseful;
    }
    if (req.type == AccessType::Rfo && config_.writeAllocateDirty)
        b->dirty = true;
    const std::uint32_t set = setIndex(req.addr);
    policy_->touch(set,
                   std::uint32_t(b - &blocks_[std::size_t(set) *
                                              config_.ways]),
                   now);
    notifyPrefetcherOperate(req, true, hit_prefetched, now);
    if (req.ret != nullptr)
        responses_.push_back({now + config_.latency, req});
}

bool
Cache::processRead(Request &req, Cycle now)
{
    Block *b = lookup(req.addr);
    const bool hit = b != nullptr;

    // Statistics are counted at the points of definitive handling
    // below (hit, merge, forward) so a stalled request retried on a
    // later cycle is not counted twice.
    auto count_access = [&] {
        if (req.type == AccessType::Load) {
            ++stats_.loadAccess;
            if (hit)
                ++stats_.loadHit;
        } else if (req.type == AccessType::Rfo) {
            ++stats_.rfoAccess;
            if (hit)
                ++stats_.rfoHit;
        }
    };

    if (hit) {
        count_access();
        readHit(b, req, now);
        return true;
    }

    // Train the prefetcher exactly once even if the miss stalls and is
    // retried on a later cycle.
    if (!req.prefetcherNotified) {
        notifyPrefetcherOperate(req, false, false, now);
        req.prefetcherNotified = true;
    }

    if (MshrEntry *e = mshrs_.find(req.addr); e != nullptr) {
        count_access();
        if (e->prefetchOnly && isDemand(req.type))
            e->demandMergedIntoPrefetch = true;
        if (req.type == AccessType::Rfo)
            e->rfoSeen = true;
        if (req.ret != nullptr)
            e->waiters.push_back(req);
        return true;
    }

    if (mshrs_.full())
        return false;

    Request down = req;
    down.ret = this;
    down.token = 0;
    if (!lower_->addRead(down))
        return false;

    count_access();
    MshrEntry *e = mshrs_.allocate(req.addr, now);
    assert(e != nullptr);
    e->prefetchOnly = (req.type == AccessType::Prefetch);
    e->rfoSeen = (req.type == AccessType::Rfo);
    e->pc = req.pc;
    e->coreId = req.coreId;
    if (req.ret != nullptr)
        e->waiters.push_back(req);
    return true;
}

bool
Cache::processPrefetch(const Request &req, Cycle now)
{
    if (lookup(req.addr) != nullptr) {
        ++stats_.pfDroppedHit;
        return true;
    }

    if (!req.fillThisLevel) {
        // Low-confidence prefetch: hand it to the next level down and
        // do not pollute this level.
        Request down = req;
        down.ret = nullptr;
        down.fillThisLevel = true;
        if (!lower_->addPrefetch(down))
            return false;
        ++stats_.pfToLower;
        return true;
    }

    if (mshrs_.find(req.addr) != nullptr) {
        ++stats_.pfDroppedMshr;
        return true;
    }
    if (mshrs_.full())
        return false;

    Request down = req;
    down.ret = this;
    down.token = 0;
    if (!lower_->addRead(down))
        return false;

    MshrEntry *e = mshrs_.allocate(req.addr, now);
    assert(e != nullptr);
    e->prefetchOnly = true;
    e->pc = req.pc;
    e->coreId = req.coreId;
    return true;
}

void
Cache::processFills(Cycle now)
{
    while (!fills_.empty() && fills_.front().ready <= now) {
        const Request &req = fills_.front().req;
        MshrEntry *e = mshrs_.find(req.addr);
        if (e == nullptr)
            panic(config_.name + ": fill without MSHR entry");

        Block *existing = lookup(req.addr);
        if (existing != nullptr) {
            // A writeback allocated the block while the miss was in
            // flight; keep the (newer) data and merge flags.
            pendingFillInfo_ = prefetch::FillInfo{};
            if (e->dirtyOnFill)
                existing->dirty = true;
        } else {
            const bool dirty = e->dirtyOnFill ||
                (e->rfoSeen && config_.writeAllocateDirty);
            const bool prefetched =
                e->prefetchOnly && !e->demandMergedIntoPrefetch;
            if (!installBlock(req.addr, dirty, prefetched, now))
                break; // lower WQ full; retry next cycle
        }

        if (e->prefetchOnly) {
            ++stats_.pfFill;
            if (e->demandMergedIntoPrefetch) {
                ++stats_.pfUseful;
                ++stats_.pfLate;
            }
        } else {
            stats_.missLatencySum += now - e->allocCycle;
            ++stats_.missLatencyCount;
        }

        if (prefetcher_ != nullptr) {
            prefetch::FillInfo info = pendingFillInfo_;
            info.addr = req.addr;
            info.wasPrefetch = e->prefetchOnly;
            info.lateUseful = e->prefetchOnly &&
                e->demandMergedIntoPrefetch;
            info.cycle = now;
            prefetcher_->fill(info);
        }

        for (const Request &waiter : e->waiters) {
            if (waiter.ret != nullptr)
                responses_.push_back({now + config_.latency, waiter});
        }
        mshrs_.release(e);
        fills_.pop_front();
    }
}

void
Cache::processResponses(Cycle now)
{
    while (!responses_.empty() && responses_.front().ready <= now) {
        Response resp = responses_.front();
        responses_.pop_front();
        assert(resp.req.ret != nullptr);
        resp.req.ret->returnData(resp.req, now);
    }
}

void
Cache::tick(Cycle now)
{
    now_ = now;
    processFills(now);
    processResponses(now);

    std::uint32_t budget = config_.maxTagsPerCycle;
    while (budget > 0 && !wq_.empty()) {
        if (!processWrite(wq_.front(), now))
            break;
        wq_.pop_front();
        --budget;
    }
    while (budget > 0 && !rq_.empty()) {
        if (!processRead(rq_.front(), now))
            break;
        rq_.pop_front();
        --budget;
    }
    while (budget > 0 && !pq_.empty()) {
        if (!processPrefetch(pq_.front(), now))
            break;
        pq_.pop_front();
        --budget;
    }
}

Cycle
Cache::nextEventCycle(Cycle now) const
{
    // Any queued request or arrived fill is (re)tried on the very next
    // tick — including retries stalled on downstream backpressure,
    // which is conservative but always correct: a stalled retry means
    // the level below is busy anyway.
    if (!fills_.empty() || !wq_.empty() || !rq_.empty() || !pq_.empty())
        return now + 1;
    // Responses are enqueued ready-ordered (every push is tick cycle
    // plus the constant hit latency), so the front is the earliest.
    if (!responses_.empty()) {
        const Cycle ready = responses_.front().ready;
        return ready <= now ? now + 1 : ready;
    }
    return noEventCycle;
}

bool
Cache::probe(Addr addr) const
{
    return lookup(addr) != nullptr;
}

bool
Cache::demandProbe(Addr addr, Pc pc)
{
    Request req;
    req.addr = blockAlign(addr);
    req.type = AccessType::Load;
    req.pc = pc;
    Block *b = lookup(req.addr);
    if (b == nullptr)
        return false;
    // The normal hit path on the block just found (one tag lookup,
    // not two); with no ret there is no response.
    ++stats_.loadAccess;
    ++stats_.loadHit;
    readHit(b, req, now_);
    return true;
}

std::uint64_t
Cache::validBlockCount() const
{
    std::uint64_t count = 0;
    for (const Block &b : blocks_)
        count += b.valid ? 1 : 0;
    return count;
}

} // namespace pfsim::cache
