/**
 * @file
 * A cycle-driven, queue-based set-associative cache with MSHRs and a
 * prefetcher hook — the pfsim equivalent of a ChampSim CACHE instance.
 *
 * Per cycle the cache (a) retires arrived fills, (b) sends matured
 * responses upward, and (c) drains a bounded number of requests from
 * its writeback, read and prefetch queues.  Misses allocate MSHRs and
 * forward to the lower level; fills install blocks (evicting victims,
 * with dirty victims written back) and notify merged waiters.
 *
 * Bandwidth and pollution are therefore real: prefetches occupy queue
 * slots, MSHRs, lower-level bandwidth and cache ways, which is exactly
 * the cost PPF's filtering is designed to avoid.
 */

#ifndef PFSIM_CACHE_CACHE_HH
#define PFSIM_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/mshr.hh"
#include "cache/replacement.hh"
#include "cache/request.hh"
#include "prefetch/prefetcher.hh"
#include "util/ring_buffer.hh"
#include "util/tick_waker.hh"
#include "util/types.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::cache
{

/** Static configuration of one cache level. */
struct CacheConfig
{
    std::string name = "cache";

    /** Number of sets; must be a power of two. */
    std::uint32_t sets = 64;

    /** Associativity. */
    std::uint32_t ways = 8;

    /** Hit latency in cycles, charged on the response path. */
    std::uint32_t latency = 4;

    /** Number of MSHRs. */
    std::uint32_t mshrs = 16;

    /** Demand read queue capacity. */
    std::uint32_t rqSize = 32;

    /** Writeback queue capacity. */
    std::uint32_t wqSize = 32;

    /** Prefetch queue capacity. */
    std::uint32_t pqSize = 32;

    /** Queue entries processed per cycle (tag bandwidth). */
    std::uint32_t maxTagsPerCycle = 2;

    /**
     * True when RFO fills install dirty (the level where stores write
     * their data, i.e. the L1D).
     */
    bool writeAllocateDirty = false;

    /** Replacement policy name. */
    std::string replacement = "lru";

    /** Total capacity in bytes. */
    std::uint64_t capacityBytes() const;
};

/** Counters exposed by each cache level. */
struct CacheStats
{
    std::uint64_t loadAccess = 0;
    std::uint64_t loadHit = 0;
    std::uint64_t rfoAccess = 0;
    std::uint64_t rfoHit = 0;
    std::uint64_t writebackAccess = 0;
    std::uint64_t writebackHit = 0;

    /** Prefetches accepted from the prefetcher into the PQ. */
    std::uint64_t pfIssued = 0;
    /** Prefetches dropped because the block was already present. */
    std::uint64_t pfDroppedHit = 0;
    /** Prefetches dropped because a miss was already outstanding. */
    std::uint64_t pfDroppedMshr = 0;
    /** Prefetches dropped because the PQ was full at issue. */
    std::uint64_t pfDroppedFull = 0;
    /** Prefetches forwarded to fill only the lower level. */
    std::uint64_t pfToLower = 0;
    /** Fills caused by prefetches (this level). */
    std::uint64_t pfFill = 0;
    /** Demand hits on not-yet-used prefetched blocks. */
    std::uint64_t pfUseful = 0;
    /** Useful prefetches whose demand arrived before the fill. */
    std::uint64_t pfLate = 0;
    /** Evictions of prefetched blocks that were never used. */
    std::uint64_t pfUselessEvict = 0;

    /** Dirty evictions written back to the lower level. */
    std::uint64_t writebacks = 0;

    /** Sum of demand miss latencies (allocation to fill), cycles. */
    std::uint64_t missLatencySum = 0;
    std::uint64_t missLatencyCount = 0;

    std::uint64_t demandAccesses() const { return loadAccess + rfoAccess; }
    std::uint64_t demandHits() const { return loadHit + rfoHit; }
    std::uint64_t demandMisses() const
    {
        return demandAccesses() - demandHits();
    }
};

/** One cache level. */
class Cache : public MemoryLevel, public Requestor,
              public prefetch::PrefetchIssuer
{
  public:
    /**
     * @param config static parameters
     * @param lower the next level down (LLC's lower level is DRAM)
     */
    Cache(CacheConfig config, MemoryLevel *lower);

    /** Attach a prefetcher trained by this level's demand stream. */
    void setPrefetcher(prefetch::Prefetcher *prefetcher);

    // MemoryLevel
    bool addRead(const Request &req) override;
    bool addWrite(const Request &req) override;
    bool addPrefetch(const Request &req) override;
    void tick(Cycle now) override;

    /**
     * Earliest cycle after @p now at which ticking this cache could do
     * observable work: the next tick while any request, fill or
     * prefetch queue holds an entry, the maturity cycle of the oldest
     * latency-delayed response, or noEventCycle when fully drained.
     * May under-promise but never over-promise idleness.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Bring the cache's notion of "last ticked cycle" to @p now
     * without doing any work.  Used by the fast path when every
     * skipped tick is provably a no-op: requests enqueued by the core
     * before this cache's next real tick must be stamped with the same
     * cycle the naive loop would have stamped.
     */
    void syncClock(Cycle now) { now_ = now; }

    /** Attach the event-wheel wakeup sink (nullptr detaches). */
    void setWaker(util::TickWaker *waker, unsigned id)
    {
        waker_ = waker;
        wakerId_ = id;
    }

    // Requestor (responses from the lower level)
    void returnData(const Request &req, Cycle now) override;

    // prefetch::PrefetchIssuer
    bool issuePrefetch(Addr addr, bool fill_this_level) override;

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

    /** Zero the statistics block (end of warmup). */
    void resetStats() { stats_ = CacheStats{}; }

    /** True when the block containing @p addr is present (testing). */
    bool probe(Addr addr) const;

    /**
     * Synchronous demand lookup used by the core's fetch stage: on a
     * hit, performs the full hit path (stats, LRU, prefetch-flag
     * consumption) and returns true; on a miss, returns false with no
     * side effects so the caller can enqueue a real read.
     */
    bool demandProbe(Addr addr, Pc pc);

    /** Number of valid blocks (testing / invariants). */
    std::uint64_t validBlockCount() const;

    /** Queue/MSHR occupancy introspection (testing / debugging). */
    std::size_t rqSize() const { return rq_.size(); }
    std::size_t wqSize() const { return wq_.size(); }
    std::size_t pqSize() const { return pq_.size(); }
    std::size_t mshrUsed() const { return mshrs_.used(); }
    std::size_t fillsPending() const { return fills_.size(); }

    /** Mutable MSHR file handle for fault injection (src/fault only). */
    MshrFile &faultInjectMshrs() { return mshrs_; }
    std::size_t responsesPending() const { return responses_.size(); }

    struct Block
    {
        bool valid = false;
        bool dirty = false;
        /** Brought in by a prefetch and not yet referenced. */
        bool prefetched = false;
        Addr tag = 0;
    };

    /** Read-only view of the tag store for the invariant auditor. */
    struct AuditView
    {
        const CacheConfig *config;

        /** Tag store, indexed set * ways + way. */
        const std::vector<Block> *blocks;

        const MshrFile *mshrs;
        const ReplacementPolicy *policy;

        std::size_t rqOccupancy;
        std::size_t wqOccupancy;
        std::size_t pqOccupancy;
    };

    AuditView
    auditState() const
    {
        return {&config_, &blocks_,   &mshrs_,
                policy_.get(), rq_.size(), wq_.size(), pq_.size()};
    }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    struct Response
    {
        Cycle ready;
        Request req;
    };

    std::uint32_t setIndex(Addr addr) const;
    Block *lookup(Addr addr);
    const Block *lookup(Addr addr) const;

    void processFills(Cycle now);
    void processResponses(Cycle now);
    bool processWrite(const Request &req, Cycle now);
    bool processRead(Request &req, Cycle now);
    bool processPrefetch(const Request &req, Cycle now);

    /** The hit half of processRead(), on an already-found block —
     *  shared with demandProbe() so a probe does one tag lookup, not
     *  two. */
    void readHit(Block *b, const Request &req, Cycle now);

    /**
     * Install @p addr into the cache, evicting a victim if needed.
     * @return false when the eviction's writeback could not be
     * enqueued downstream (caller must retry next cycle).
     */
    bool installBlock(Addr addr, bool dirty, bool prefetched, Cycle now);

    void notifyPrefetcherOperate(const Request &req, bool hit,
                                 bool hit_prefetched, Cycle now);

    CacheConfig config_;
    MemoryLevel *lower_;
    prefetch::Prefetcher *prefetcher_ = nullptr;

    std::uint32_t setShift_;
    std::uint32_t setMask_;
    std::vector<Block> blocks_;
    std::unique_ptr<ReplacementPolicy> policy_;
    MshrFile mshrs_;

    util::RingBuffer<Request> rq_;
    util::RingBuffer<Request> wq_;
    util::RingBuffer<Request> pq_;
    util::RingBuffer<Response> responses_;
    util::RingBuffer<Response> fills_;

    /** Pending eviction context for the prefetcher fill() hook. */
    prefetch::FillInfo pendingFillInfo_;

    Cycle now_ = 0;
    CacheStats stats_;

    /** Wake the event wheel for our own next tick after enqueuing
     *  work (no-op when no wheel is attached). */
    void wakeSelf(Cycle at)
    {
        if (waker_)
            waker_->wake(wakerId_, at);
    }

    /** Event-wheel wakeup sink (host-side, not serialized). */
    util::TickWaker *waker_ = nullptr;
    unsigned wakerId_ = 0;
};

} // namespace pfsim::cache

#endif // PFSIM_CACHE_CACHE_HH
