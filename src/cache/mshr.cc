#include "cache/mshr.hh"

#include <cassert>

namespace pfsim::cache
{

MshrFile::MshrFile(std::size_t capacity)
    : entries_(capacity)
{
    assert(capacity > 0);
}

MshrEntry *
MshrFile::find(Addr addr)
{
    for (auto &entry : entries_) {
        if (entry.valid && entry.addr == addr)
            return &entry;
    }
    return nullptr;
}

MshrEntry *
MshrFile::allocate(Addr addr, Cycle now)
{
    assert(find(addr) == nullptr);
    if (full())
        return nullptr;
    for (auto &entry : entries_) {
        if (!entry.valid) {
            entry.valid = true;
            entry.addr = addr;
            // clear() keeps the vector's capacity: waiter lists are
            // pooled across allocations, so steady-state misses do not
            // allocate.
            entry.waiters.clear();
            entry.prefetchOnly = false;
            entry.dirtyOnFill = false;
            entry.rfoSeen = false;
            entry.demandMergedIntoPrefetch = false;
            entry.pc = 0;
            entry.coreId = 0;
            entry.allocCycle = now;
            ++used_;
            return &entry;
        }
    }
    return nullptr;
}

void
MshrFile::faultInjectReserve(std::size_t count)
{
    // Never reserve the whole file: one usable entry keeps forward
    // progress possible so a squeeze window models backpressure, not
    // deadlock.
    reserved_ = count >= entries_.size() ? entries_.size() - 1 : count;
}

void
MshrFile::release(MshrEntry *entry)
{
    assert(entry != nullptr && entry->valid);
    entry->valid = false;
    entry->waiters.clear();
    assert(used_ > 0);
    --used_;
}

} // namespace pfsim::cache
