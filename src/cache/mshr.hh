/**
 * @file
 * Miss status holding registers: track outstanding misses, merge
 * secondary misses, and remember which waiters to notify on fill.
 */

#ifndef PFSIM_CACHE_MSHR_HH
#define PFSIM_CACHE_MSHR_HH

#include <cstdint>
#include <vector>

#include "cache/request.hh"
#include "util/small_vector.hh"
#include "util/types.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::cache
{

/** One outstanding miss. */
struct MshrEntry
{
    bool valid = false;

    /** Block address of the miss. */
    Addr addr = 0;

    /**
     * Requests merged into this miss, to notify on fill.  Small-buffer
     * storage: the common 1-4 waiter case stays inside the entry (no
     * per-miss heap traffic); deeper merge chains spill once and the
     * spill capacity is pooled across reuse.
     */
    util::SmallVector<Request, 4> waiters;

    /** True when the entry was allocated by a prefetch. */
    bool prefetchOnly = false;

    /** A writeback arrived while the miss was in flight. */
    bool dirtyOnFill = false;

    /** At least one merged demand was a store (RFO). */
    bool rfoSeen = false;

    /**
     * True when a demand request merged into a prefetch miss before the
     * fill arrived: the prefetch was useful but late.
     */
    bool demandMergedIntoPrefetch = false;

    /** PC that triggered the original allocation. */
    Pc pc = 0;

    /** Core that triggered the original allocation. */
    int coreId = 0;

    /** Cycle the miss was allocated, for latency stats. */
    Cycle allocCycle = 0;
};

/** Fixed-capacity MSHR file. */
class MshrFile
{
  public:
    explicit MshrFile(std::size_t capacity);

    /** Find the entry for @p addr, or nullptr. */
    MshrEntry *find(Addr addr);

    /**
     * Allocate an entry for @p addr.  @return nullptr when full.
     * The caller must ensure no duplicate entry exists.
     */
    MshrEntry *allocate(Addr addr, Cycle now);

    /** Release the entry (after fill processing). */
    void release(MshrEntry *entry);

    /** True when no entry can be allocated. */
    bool full() const { return used_ + reserved_ >= entries_.size(); }

    std::size_t used() const { return used_; }
    std::size_t capacity() const { return entries_.size(); }

    /**
     * Withhold @p count entries from allocation (fault injection;
     * called only from src/fault).  Entries already in flight are
     * untouched — the file just refuses new allocations while fewer
     * than @p count entries are free.  Pass 0 to release the squeeze.
     */
    void faultInjectReserve(std::size_t count);

    /** Entries currently withheld by fault injection. */
    std::size_t faultReserved() const { return reserved_; }

    /** Read-only view of the raw entries for the invariant auditor. */
    const std::vector<MshrEntry> &auditState() const { return entries_; }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    std::vector<MshrEntry> entries_;
    std::size_t used_ = 0;
    std::size_t reserved_ = 0;
};

} // namespace pfsim::cache

#endif // PFSIM_CACHE_MSHR_HH
