#include "cache/replacement.hh"

#include <cassert>

#include "util/logging.hh"

namespace pfsim::cache
{

void
LruPolicy::initialize(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    lastTouch_.assign(std::size_t(sets) * ways, 0);
    stamp_ = 0;
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way, Cycle)
{
    lastTouch_[std::size_t(set) * ways_ + way] = ++stamp_;
}

std::uint32_t
LruPolicy::victim(std::uint32_t set)
{
    assert(ways_ > 0);
    std::uint32_t victim_way = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
        std::uint64_t touch = lastTouch_[std::size_t(set) * ways_ + w];
        if (touch < oldest) {
            oldest = touch;
            victim_way = w;
        }
    }
    return victim_way;
}

const std::string &
LruPolicy::name() const
{
    static const std::string n = "lru";
    return n;
}

bool
LruPolicy::auditMetadata(std::string &why) const
{
    // The stamps must form a valid recency ordering: no stamp can be
    // newer than the allocator, and within a set every touched way
    // must be distinct (0 marks never-touched ways).
    const std::size_t sets = ways_ == 0 ? 0 : lastTouch_.size() / ways_;
    for (std::size_t set = 0; set < sets; ++set) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const std::uint64_t touch = lastTouch_[set * ways_ + w];
            if (touch > stamp_) {
                why = "set " + std::to_string(set) + " way " +
                      std::to_string(w) + " stamp " +
                      std::to_string(touch) + " > allocator " +
                      std::to_string(stamp_);
                return false;
            }
            if (touch == 0)
                continue;
            for (std::uint32_t v = 0; v < w; ++v) {
                if (lastTouch_[set * ways_ + v] == touch) {
                    why = "set " + std::to_string(set) + " ways " +
                          std::to_string(v) + " and " +
                          std::to_string(w) + " share stamp " +
                          std::to_string(touch);
                    return false;
                }
            }
        }
    }
    return true;
}

void
SrripPolicy::initialize(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    rrpv_.assign(std::size_t(sets) * ways, maxRrpv);
}

void
SrripPolicy::touch(std::uint32_t set, std::uint32_t way, Cycle)
{
    // A re-referenced block is predicted near-immediate.
    rrpv_[std::size_t(set) * ways_ + way] = 0;
}

void
SrripPolicy::insert(std::uint32_t set, std::uint32_t way, Cycle)
{
    // Fills are predicted distant (RRPV = max - 1), so scans pass
    // through without displacing the working set.
    rrpv_[std::size_t(set) * ways_ + way] = maxRrpv - 1;
}

std::uint32_t
SrripPolicy::victim(std::uint32_t set)
{
    assert(ways_ > 0);
    for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (rrpv_[std::size_t(set) * ways_ + w] == maxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < ways_; ++w)
            ++rrpv_[std::size_t(set) * ways_ + w];
    }
}

const std::string &
SrripPolicy::name() const
{
    static const std::string n = "srrip";
    return n;
}

bool
SrripPolicy::auditMetadata(std::string &why) const
{
    for (std::size_t i = 0; i < rrpv_.size(); ++i) {
        if (rrpv_[i] > maxRrpv) {
            why = "entry " + std::to_string(i) + " RRPV " +
                  std::to_string(rrpv_[i]) + " > " +
                  std::to_string(maxRrpv);
            return false;
        }
    }
    return true;
}

std::unique_ptr<ReplacementPolicy>
makePolicy(const std::string &name)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "srrip")
        return std::make_unique<SrripPolicy>();
    fatal("unknown replacement policy: " + name);
}

} // namespace pfsim::cache
