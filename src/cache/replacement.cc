#include "cache/replacement.hh"

#include <cassert>

#include "util/logging.hh"

namespace pfsim::cache
{

void
LruPolicy::initialize(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    lastTouch_.assign(std::size_t(sets) * ways, 0);
    stamp_ = 0;
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way, Cycle)
{
    lastTouch_[std::size_t(set) * ways_ + way] = ++stamp_;
}

std::uint32_t
LruPolicy::victim(std::uint32_t set)
{
    assert(ways_ > 0);
    std::uint32_t victim_way = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
        std::uint64_t touch = lastTouch_[std::size_t(set) * ways_ + w];
        if (touch < oldest) {
            oldest = touch;
            victim_way = w;
        }
    }
    return victim_way;
}

const std::string &
LruPolicy::name() const
{
    static const std::string n = "lru";
    return n;
}

void
SrripPolicy::initialize(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    rrpv_.assign(std::size_t(sets) * ways, maxRrpv);
}

void
SrripPolicy::touch(std::uint32_t set, std::uint32_t way, Cycle)
{
    // A re-referenced block is predicted near-immediate.
    rrpv_[std::size_t(set) * ways_ + way] = 0;
}

void
SrripPolicy::insert(std::uint32_t set, std::uint32_t way, Cycle)
{
    // Fills are predicted distant (RRPV = max - 1), so scans pass
    // through without displacing the working set.
    rrpv_[std::size_t(set) * ways_ + way] = maxRrpv - 1;
}

std::uint32_t
SrripPolicy::victim(std::uint32_t set)
{
    assert(ways_ > 0);
    for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (rrpv_[std::size_t(set) * ways_ + w] == maxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < ways_; ++w)
            ++rrpv_[std::size_t(set) * ways_ + w];
    }
}

const std::string &
SrripPolicy::name() const
{
    static const std::string n = "srrip";
    return n;
}

std::unique_ptr<ReplacementPolicy>
makePolicy(const std::string &name)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "srrip")
        return std::make_unique<SrripPolicy>();
    fatal("unknown replacement policy: " + name);
}

} // namespace pfsim::cache
