/**
 * @file
 * Replacement policy interface and the LRU policy the paper's
 * configuration uses on all levels (Section 5.1).
 */

#ifndef PFSIM_CACHE_REPLACEMENT_HH
#define PFSIM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/types.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::cache
{

/**
 * A replacement policy tracks per-way metadata for every set and picks
 * victims.  Ways are addressed as set * associativity + way.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Size the metadata for @p sets x @p ways. */
    virtual void initialize(std::uint32_t sets, std::uint32_t ways) = 0;

    /** Record a hit on the given way. */
    virtual void touch(std::uint32_t set, std::uint32_t way,
                       Cycle now) = 0;

    /**
     * Record a fill into the given way.  Defaults to touch(); policies
     * that distinguish insertion from promotion (e.g. SRRIP) override.
     */
    virtual void
    insert(std::uint32_t set, std::uint32_t way, Cycle now)
    {
        touch(set, way, now);
    }

    /** Choose a victim way within @p set (all ways valid). */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    virtual const std::string &name() const = 0;

    /**
     * Invariant audit: true when the policy's per-way metadata is
     * internally consistent (a valid recency ordering / in-range
     * prediction values).  On failure, @p why names the offending
     * entry.
     */
    virtual bool
    auditMetadata(std::string &why) const
    {
        (void)why;
        return true;
    }

    /**
     * Snapshot support: policies with mutable metadata override both
     * (definitions in snapshot/state_io.cc); stateless policies keep
     * the no-op defaults.
     */
    virtual void serialize(snapshot::Sink &) const {}
    virtual void deserialize(snapshot::Source &) {}
};

/** Least-recently-used replacement. */
class LruPolicy : public ReplacementPolicy
{
  public:
    void initialize(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way, Cycle now) override;
    std::uint32_t victim(std::uint32_t set) override;
    const std::string &name() const override;
    bool auditMetadata(std::string &why) const override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    std::uint32_t ways_ = 0;
    /** Monotonic per-touch stamp; smallest stamp in a set is LRU. */
    std::uint64_t stamp_ = 0;
    std::vector<std::uint64_t> lastTouch_;
};

/**
 * Static re-reference interval prediction (SRRIP, Jaleel et al.): a
 * 2-bit re-reference prediction value per way; fills insert at a
 * distant interval, hits promote to near, victims are the most
 * distant.  Provided as an alternative to the paper's LRU so the
 * replacement-policy sensitivity of the results can be measured
 * (bench/abl_replacement).
 */
class SrripPolicy : public ReplacementPolicy
{
  public:
    void initialize(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way, Cycle now) override;
    void insert(std::uint32_t set, std::uint32_t way,
                Cycle now) override;
    std::uint32_t victim(std::uint32_t set) override;
    const std::string &name() const override;
    bool auditMetadata(std::string &why) const override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    static constexpr std::uint8_t maxRrpv = 3;

    std::uint32_t ways_ = 0;
    std::vector<std::uint8_t> rrpv_;
};

/** Construct a policy by name ("lru" or "srrip"). */
std::unique_ptr<ReplacementPolicy> makePolicy(const std::string &name);

} // namespace pfsim::cache

#endif // PFSIM_CACHE_REPLACEMENT_HH
