/**
 * @file
 * Memory request record and the completion-routing interfaces that
 * connect the core, the cache levels and DRAM.
 */

#ifndef PFSIM_CACHE_REQUEST_HH
#define PFSIM_CACHE_REQUEST_HH

#include <cstdint>

#include "util/types.hh"

namespace pfsim::cache
{

/** The demand/prefetch/writeback classification of a request. */
enum class AccessType : std::uint8_t
{
    Load,       ///< demand read
    Rfo,        ///< demand read-for-ownership (store miss)
    Prefetch,   ///< prefetch read
    Writeback,  ///< dirty eviction from the level above
    Translation ///< reserved for future TLB modelling
};

/** True for Load/Rfo, the request kinds that train prefetchers. */
constexpr bool
isDemand(AccessType type)
{
    return type == AccessType::Load || type == AccessType::Rfo;
}

class Requestor;

/** One memory request travelling through the hierarchy. */
struct Request
{
    /** Block-aligned physical address. */
    Addr addr = 0;

    /** Request class. */
    AccessType type = AccessType::Load;

    /** PC of the instruction that caused the request (demands only). */
    Pc pc = 0;

    /** Issuing core, for multi-core stats attribution. */
    int coreId = 0;

    /** Cycle at which the request entered the current queue. */
    Cycle enqueueCycle = 0;

    /**
     * Who to notify when data returns.  nullptr for requests that need
     * no response (writebacks, prefetches dropped downstream).
     */
    Requestor *ret = nullptr;

    /**
     * Opaque token the requestor uses to match the response (e.g. the
     * core's load-queue slot).
     */
    std::uint64_t token = 0;

    /**
     * For prefetches: true when the receiving cache should fill itself;
     * false when the prefetch should only fill lower levels (SPP/PPF
     * low-confidence prefetches fill the LLC, not the L2).
     */
    bool fillThisLevel = true;

    /**
     * Internal to Cache: set once the prefetcher's operate() hook has
     * seen this request, so a stalled miss retried on a later cycle
     * does not train the prefetcher twice.
     */
    bool prefetcherNotified = false;
};

/** Interface for components that receive completed requests. */
class Requestor
{
  public:
    virtual ~Requestor() = default;

    /** Called when the data for @p req is available at @p now. */
    virtual void returnData(const Request &req, Cycle now) = 0;
};

/** Interface of a level that accepts requests from above. */
class MemoryLevel
{
  public:
    virtual ~MemoryLevel() = default;

    /** Enqueue a demand read. @return false when the queue is full. */
    virtual bool addRead(const Request &req) = 0;

    /** Enqueue a writeback. @return false when the queue is full. */
    virtual bool addWrite(const Request &req) = 0;

    /** Enqueue a prefetch. @return false when the queue is full. */
    virtual bool addPrefetch(const Request &req) = 0;

    /** Advance one cycle. */
    virtual void tick(Cycle now) = 0;
};

} // namespace pfsim::cache

#endif // PFSIM_CACHE_REQUEST_HH
