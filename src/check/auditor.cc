#include "check/invariant.hh"

#include "util/logging.hh"

namespace pfsim::check
{

std::string
Violation::format() const
{
    return "[audit] cycle " + std::to_string(cycle) + " " + component +
           ": " + invariant + " (" + detail + ")";
}

void
AuditContext::fail(const std::string &component,
                   const std::string &invariant,
                   const std::string &detail)
{
    violations_.push_back({component, invariant, detail, now_});
}

bool
AuditContext::require(bool ok, const std::string &component,
                      const std::string &invariant,
                      const std::string &detail)
{
    if (!ok)
        fail(component, invariant, detail);
    return ok;
}

void
AuditorRegistry::add(std::unique_ptr<Auditor> auditor)
{
    auditors_.push_back(std::move(auditor));
}

std::vector<Violation>
AuditorRegistry::run(Cycle now)
{
    AuditContext ctx(now);
    for (const auto &auditor : auditors_)
        auditor->audit(ctx);
    ++auditsRun_;
    return ctx.violations();
}

void
AuditorRegistry::tolerate(const std::string &invariant)
{
    tolerated_.insert(invariant);
}

bool
AuditorRegistry::isTolerated(const std::string &invariant) const
{
    return tolerated_.count(invariant) != 0;
}

void
AuditorRegistry::enforce(Cycle now)
{
    const std::vector<Violation> violations = run(now);
    if (violations.empty())
        return;

    std::vector<const Violation *> hard;
    for (const Violation &v : violations) {
        if (isTolerated(v.invariant)) {
            ++toleratedViolations_;
            // Cap the warning stream: a long faulted run can tolerate
            // thousands of violations; the count is in the stats.
            if (toleratedViolations_ <= 8)
                warn("tolerated (degraded mode): " + v.format());
        } else {
            hard.push_back(&v);
        }
    }
    if (hard.empty())
        return;

    for (const Violation *v : hard)
        warn(v->format());
    panic("invariant audit failed: " +
          std::to_string(hard.size()) + " violation(s) at cycle " +
          std::to_string(now) + "; first: " + hard.front()->format());
}

} // namespace pfsim::check
