#include "check/auditors.hh"

#include <bit>
#include <cstddef>
#include <cstdio>

// The audit runs inside the simulated cycle loop, potentially every
// cycle, so the hot per-entry loops below test the invariant with
// plain comparisons and only construct report strings once a
// violation is found.  ctx.require() (which builds its detail string
// eagerly) is reserved for the once-per-pass configuration checks.

namespace pfsim::check
{

namespace
{

std::string
hex(std::uint64_t value)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  (unsigned long long)value);
    return buf;
}

} // namespace

void
auditWeightTables(AuditContext &ctx, const std::string &name,
                  const ppf::WeightTables &tables)
{
    const ppf::WeightTables::AuditView view = tables.auditState();

    ctx.require(view.clampMin <= 0 && 0 <= view.clampMax, name,
                "clamp range must straddle zero",
                "clamp [" + std::to_string(view.clampMin) + ", " +
                    std::to_string(view.clampMax) + "]");

    for (unsigned f = 0; f < ppf::numFeatures; ++f) {
        const std::uint32_t begin = view.offsets[f];
        const std::uint32_t end = view.offsets[f + 1];
        const bool enabled = (view.featureMask >> f) & 1;

        if (end - begin != ppf::featureTableSizes[f]) {
            ctx.fail(name, "weight table geometry matches Table 3",
                     "feature " + std::to_string(f) + " holds " +
                         std::to_string(end - begin) + " entries, "
                         "expected " +
                         std::to_string(ppf::featureTableSizes[f]));
        }

        for (std::uint32_t i = begin; i < end; ++i) {
            const int w = view.weights[i];
            if (enabled ? (view.clampMin <= w && w <= view.clampMax)
                        : w == 0) {
                continue;
            }
            // One offender per table keeps reports short.
            if (enabled) {
                ctx.fail(name, "weight within clamp range",
                         "feature " + std::to_string(f) + " index " +
                             std::to_string(i - begin) + " value " +
                             std::to_string(w) + " outside [" +
                             std::to_string(view.clampMin) + ", " +
                             std::to_string(view.clampMax) + "]");
            } else {
                ctx.fail(name, "disabled feature must stay untrained",
                         "feature " + std::to_string(f) + " index " +
                             std::to_string(i - begin) + " value " +
                             std::to_string(w));
            }
            break;
        }
    }

    const int enabled_count = std::popcount(view.featureMask);
    ctx.require(tables.minSum() == enabled_count * view.clampMin &&
                    tables.maxSum() == enabled_count * view.clampMax,
                name, "sum envelope is popcount-derived",
                "minSum " + std::to_string(tables.minSum()) +
                    " maxSum " + std::to_string(tables.maxSum()) +
                    " for " + std::to_string(enabled_count) +
                    " enabled features");
}

void
auditFilterTable(AuditContext &ctx, const std::string &name,
                 const ppf::FilterTable &table,
                 std::uint32_t configured_entries)
{
    const std::vector<ppf::FilterEntry> &entries = table.auditState();

    ctx.require(table.entries() == configured_entries, name,
                "table capacity matches configuration",
                "holds " + std::to_string(table.entries()) +
                    " slots, configured " +
                    std::to_string(configured_entries));

    std::size_t valid = 0;
    bool tag_reported = false;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const ppf::FilterEntry &entry = entries[i];
        if (!entry.valid)
            continue;
        ++valid;
        if (entry.tag >= 64 && !tag_reported) {
            tag_reported = true;
            ctx.fail(name, "tag fits the 6-bit field (Table 2)",
                     "slot " + std::to_string(i) + " tag " +
                         std::to_string(entry.tag));
        }
    }

    ctx.require(valid <= configured_entries, name,
                "occupancy within configured capacity",
                std::to_string(valid) + " valid entries in a " +
                    std::to_string(configured_entries) +
                    "-entry table");
}

void
auditMshrFile(AuditContext &ctx, const std::string &name,
              const cache::MshrFile &mshrs)
{
    const std::vector<cache::MshrEntry> &entries = mshrs.auditState();

    std::size_t valid = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const cache::MshrEntry &entry = entries[i];
        if (!entry.valid)
            continue;
        ++valid;

        if (blockAlign(entry.addr) != entry.addr) {
            ctx.fail(name, "MSHR address is block-aligned",
                     "entry " + std::to_string(i) + " addr " +
                         hex(entry.addr));
        }
        if (entry.allocCycle > ctx.now()) {
            ctx.fail(name, "MSHR allocation cycle not in the future",
                     "entry " + std::to_string(i) + " allocated at " +
                         std::to_string(entry.allocCycle) + " > now " +
                         std::to_string(ctx.now()));
        }

        for (const cache::Request &waiter : entry.waiters) {
            if (blockAlign(waiter.addr) != entry.addr) {
                ctx.fail(name, "merged waiter targets the MSHR's block",
                         "entry " + std::to_string(i) + " addr " +
                             hex(entry.addr) + " waiter addr " +
                             hex(waiter.addr));
                break;
            }
        }

        for (std::size_t j = 0; j < i; ++j) {
            if (entries[j].valid && entries[j].addr == entry.addr) {
                ctx.fail(name, "one MSHR entry per block address",
                         "entries " + std::to_string(j) + " and " +
                             std::to_string(i) + " both track " +
                             hex(entry.addr));
            }
        }
    }

    ctx.require(mshrs.used() == valid, name,
                "used() matches the number of valid entries",
                "used() = " + std::to_string(mshrs.used()) + ", " +
                    std::to_string(valid) + " valid entries");
    ctx.require(mshrs.used() <= mshrs.capacity(), name,
                "occupancy within capacity",
                std::to_string(mshrs.used()) + " used of " +
                    std::to_string(mshrs.capacity()));
}

void
WeightTableAuditor::audit(AuditContext &ctx) const
{
    auditWeightTables(ctx, name_, tables_);
}

void
PpfAuditor::audit(AuditContext &ctx) const
{
    const ppf::Ppf::AuditView view = ppf_.auditState();
    const ppf::PpfConfig &config = *view.config;

    ctx.require(config.tauLo <= config.tauHi, name_,
                "thresholds ordered: tau_lo <= tau_hi",
                "tau_lo " + std::to_string(config.tauLo) +
                    ", tau_hi " + std::to_string(config.tauHi));
    ctx.require(config.thetaN <= 0 && 0 <= config.thetaP, name_,
                "training saturation straddles zero: "
                "theta_n <= 0 <= theta_p",
                "theta_n " + std::to_string(config.thetaN) +
                    ", theta_p " + std::to_string(config.thetaP));

    auditWeightTables(ctx, name_ + ".weights", *view.weights);
    auditFilterTable(ctx, name_ + ".prefetch_table",
                     *view.prefetchTable,
                     config.prefetchTableEntries);
    auditFilterTable(ctx, name_ + ".reject_table", *view.rejectTable,
                     config.rejectTableEntries);

    if (view.sumValid) {
        ctx.require(view.weights->minSum() <= view.lastSum &&
                        view.lastSum <= view.weights->maxSum(),
                    name_,
                    "inference sum within the popcount envelope",
                    "sum " + std::to_string(view.lastSum) +
                        " outside [" +
                        std::to_string(view.weights->minSum()) + ", " +
                        std::to_string(view.weights->maxSum()) + "]");
    }
}

void
CacheAuditor::audit(AuditContext &ctx) const
{
    const cache::Cache::AuditView view = cache_.auditState();
    const cache::CacheConfig &config = *view.config;
    const std::uint32_t sets = config.sets;
    const std::uint32_t ways = config.ways;

    if (!ctx.require(view.blocks->size() ==
                         std::size_t(sets) * ways,
                     name_, "tag store geometry matches configuration",
                     std::to_string(view.blocks->size()) +
                         " blocks for " + std::to_string(sets) + "x" +
                         std::to_string(ways))) {
        return;
    }

    const cache::Cache::Block *blocks = view.blocks->data();
    for (std::uint32_t set = 0; set < sets; ++set) {
        const cache::Cache::Block *row =
            blocks + std::size_t(set) * ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            const cache::Cache::Block &b = row[w];
            if (!b.valid)
                continue;

            if (blockAlign(b.tag) != b.tag) {
                ctx.fail(name_, "resident tag is block-aligned",
                         "set " + std::to_string(set) + " way " +
                             std::to_string(w) + " tag " + hex(b.tag));
            }
            if ((std::uint32_t(b.tag >> blockShift) & (sets - 1)) !=
                set) {
                ctx.fail(name_, "resident tag maps to its set",
                         "set " + std::to_string(set) + " way " +
                             std::to_string(w) + " tag " + hex(b.tag));
            }

            for (std::uint32_t v = 0; v < w; ++v) {
                if (row[v].valid && row[v].tag == b.tag) {
                    ctx.fail(name_, "no duplicate tags within a set",
                             "set " + std::to_string(set) + " ways " +
                                 std::to_string(v) + " and " +
                                 std::to_string(w) + " both hold " +
                                 hex(b.tag));
                }
            }
        }
    }

    ctx.require(view.rqOccupancy <= config.rqSize, name_,
                "read queue within capacity",
                std::to_string(view.rqOccupancy) + " of " +
                    std::to_string(config.rqSize));
    ctx.require(view.wqOccupancy <= config.wqSize, name_,
                "writeback queue within capacity",
                std::to_string(view.wqOccupancy) + " of " +
                    std::to_string(config.wqSize));
    ctx.require(view.pqOccupancy <= config.pqSize, name_,
                "prefetch queue within capacity",
                std::to_string(view.pqOccupancy) + " of " +
                    std::to_string(config.pqSize));

    auditMshrFile(ctx, name_ + ".mshr", *view.mshrs);

    std::string why;
    if (!view.policy->auditMetadata(why)) {
        ctx.fail(name_, "replacement metadata is consistent", why);
    }
}

void
DramAuditor::audit(AuditContext &ctx) const
{
    const dram::DramConfig &config = dram_.config();
    const std::vector<dram::Dram::Channel> &channels =
        dram_.auditState();

    ctx.require(config.writeDrainLow <= config.writeDrainHigh, name_,
                "write drain watermarks ordered",
                "low " + std::to_string(config.writeDrainLow) +
                    " > high " + std::to_string(config.writeDrainHigh));

    if (!ctx.require(channels.size() == config.channels, name_,
                     "channel count matches configuration",
                     std::to_string(channels.size()) + " of " +
                         std::to_string(config.channels))) {
        return;
    }

    for (std::size_t c = 0; c < channels.size(); ++c) {
        const dram::Dram::Channel &channel = channels[c];

        if (channel.banks.size() != config.banks) {
            ctx.fail(name_ + ".ch" + std::to_string(c),
                     "bank count matches configuration",
                     std::to_string(channel.banks.size()) + " of " +
                         std::to_string(config.banks));
            continue;
        }
        if (channel.readQ.size() > config.rqSize) {
            ctx.fail(name_ + ".ch" + std::to_string(c),
                     "read queue within capacity",
                     std::to_string(channel.readQ.size()) + " of " +
                         std::to_string(config.rqSize));
        }
        if (channel.writeQ.size() > config.wqSize) {
            ctx.fail(name_ + ".ch" + std::to_string(c),
                     "write queue within capacity",
                     std::to_string(channel.writeQ.size()) + " of " +
                         std::to_string(config.wqSize));
        }

        for (std::size_t b = 0; b < channel.banks.size(); ++b) {
            const dram::Dram::Bank &bank = channel.banks[b];
            if (bank.rowOpen && bank.openRow % config.banks != b) {
                ctx.fail(name_ + ".ch" + std::to_string(c),
                         "open row belongs to its bank",
                         "bank " + std::to_string(b) + " holds row " +
                             std::to_string(bank.openRow));
            }
        }

        for (const dram::Dram::Pending &pending : channel.readQ) {
            const std::uint64_t home =
                blockNumber(pending.req.addr) & (config.channels - 1);
            if (home != c) {
                ctx.fail(name_ + ".ch" + std::to_string(c),
                         "queued read belongs to its channel",
                         "addr " + hex(pending.req.addr) +
                             " maps to channel " +
                             std::to_string(home));
            }
            if (pending.req.type == cache::AccessType::Writeback) {
                ctx.fail(name_ + ".ch" + std::to_string(c),
                         "read queue holds no writebacks",
                         "addr " + hex(pending.req.addr));
            }
        }
        for (const dram::Dram::Pending &pending : channel.writeQ) {
            const std::uint64_t home =
                blockNumber(pending.req.addr) & (config.channels - 1);
            if (home != c) {
                ctx.fail(name_ + ".ch" + std::to_string(c),
                         "queued write belongs to its channel",
                         "addr " + hex(pending.req.addr) +
                             " maps to channel " +
                             std::to_string(home));
            }
            if (pending.req.type != cache::AccessType::Writeback) {
                ctx.fail(name_ + ".ch" + std::to_string(c),
                         "write queue holds only writebacks",
                         "addr " + hex(pending.req.addr));
            }
        }
    }
}

} // namespace pfsim::check
