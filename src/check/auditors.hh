/**
 * @file
 * Per-component structural auditors.
 *
 * Each auditor validates one component instance against the invariants
 * its design guarantees (paper Sections 3.1 and 4.2 for PPF's tables,
 * the microarchitectural contracts for caches, MSHRs and DRAM).  All
 * of them read the component through its narrow auditState() view and
 * never mutate simulation state.
 */

#ifndef PFSIM_CHECK_AUDITORS_HH
#define PFSIM_CHECK_AUDITORS_HH

#include <string>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "check/invariant.hh"
#include "core/ppf.hh"
#include "core/weight_tables.hh"
#include "dram/dram.hh"

namespace pfsim::check
{

/**
 * Shared check bodies, reusable by auditors that embed another
 * component (the PPF auditor covers its weight tables; the cache
 * auditor covers its MSHR file).
 */
void auditWeightTables(AuditContext &ctx, const std::string &name,
                       const ppf::WeightTables &tables);
void auditFilterTable(AuditContext &ctx, const std::string &name,
                      const ppf::FilterTable &table,
                      std::uint32_t configured_entries);
void auditMshrFile(AuditContext &ctx, const std::string &name,
                   const cache::MshrFile &mshrs);

/**
 * Perceptron weight tables: per-entry clamp bounds, per-feature table
 * geometry, untrained disabled features, and the popcount-derived
 * min/max sum envelope.
 */
class WeightTableAuditor : public Auditor
{
  public:
    WeightTableAuditor(std::string name,
                       const ppf::WeightTables &tables)
        : name_(std::move(name)), tables_(tables)
    {
    }

    const std::string &name() const override { return name_; }
    void audit(AuditContext &ctx) const override;

  private:
    std::string name_;
    const ppf::WeightTables &tables_;
};

/**
 * The whole filter: threshold relationships (tau_lo <= tau_hi,
 * theta_n <= 0 <= theta_p), Prefetch/Reject table capacity and tag
 * width, the weight tables, and the last inference sum against the
 * envelope.
 */
class PpfAuditor : public Auditor
{
  public:
    PpfAuditor(std::string name, const ppf::Ppf &ppf)
        : name_(std::move(name)), ppf_(ppf)
    {
    }

    const std::string &name() const override { return name_; }
    void audit(AuditContext &ctx) const override;

  private:
    std::string name_;
    const ppf::Ppf &ppf_;
};

/**
 * One cache level: per-set tag uniqueness and residency, queue
 * occupancy bounds, the MSHR file, and the replacement policy's
 * metadata consistency.
 */
class CacheAuditor : public Auditor
{
  public:
    CacheAuditor(std::string name, const cache::Cache &cache)
        : name_(std::move(name)), cache_(cache)
    {
    }

    const std::string &name() const override { return name_; }
    void audit(AuditContext &ctx) const override;

  private:
    std::string name_;
    const cache::Cache &cache_;
};

/**
 * The DRAM device: channel/bank geometry, queue occupancy bounds,
 * request routing (every queued request belongs to its channel, write
 * queues hold only writebacks) and bank/row-buffer consistency.
 */
class DramAuditor : public Auditor
{
  public:
    DramAuditor(std::string name, const dram::Dram &dram)
        : name_(std::move(name)), dram_(dram)
    {
    }

    const std::string &name() const override { return name_; }
    void audit(AuditContext &ctx) const override;

  private:
    std::string name_;
    const dram::Dram &dram_;
};

} // namespace pfsim::check

#endif // PFSIM_CHECK_AUDITORS_HH
