/**
 * @file
 * The hardware-invariant audit framework.
 *
 * PPF and the surrounding memory system are built out of tight
 * structural invariants — clamped 5-bit weights, bounded filter
 * tables, unique MSHR entries, per-set tag uniqueness — and silent
 * corruption of any of them produces plausible-but-wrong results
 * rather than crashes.  This layer makes those invariants mechanical:
 * components expose narrow auditState() views, per-component Auditors
 * validate them, and an AuditorRegistry hooked into the simulation
 * loop re-validates every N cycles, aborting with component, cycle and
 * offending entry on the first violation.
 *
 * Auditors are read-only and cheap by design: enabling --audit=N must
 * never perturb simulation results, only confirm them.
 */

#ifndef PFSIM_CHECK_INVARIANT_HH
#define PFSIM_CHECK_INVARIANT_HH

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/types.hh"

namespace pfsim::check
{

/** One detected invariant violation. */
struct Violation
{
    /** Component instance, e.g. "core0.l2" or "ppf.weights". */
    std::string component;

    /** The invariant that failed, e.g. "weight within clamp range". */
    std::string invariant;

    /** The offending entry, e.g. "feature 3 index 1021 value 17". */
    std::string detail;

    /** Simulation cycle of the audit that caught it. */
    Cycle cycle = 0;

    /** Single-line report form. */
    std::string format() const;
};

/** Collector an audit pass writes its findings into. */
class AuditContext
{
  public:
    explicit AuditContext(Cycle now) : now_(now) {}

    Cycle now() const { return now_; }

    /** Record a violation. */
    void fail(const std::string &component, const std::string &invariant,
              const std::string &detail);

    /** Record a violation unless @p ok holds.  @return ok. */
    bool require(bool ok, const std::string &component,
                 const std::string &invariant, const std::string &detail);

    bool clean() const { return violations_.empty(); }
    const std::vector<Violation> &violations() const { return violations_; }

  private:
    Cycle now_;
    std::vector<Violation> violations_;
};

/** A read-only structural checker over one component. */
class Auditor
{
  public:
    virtual ~Auditor() = default;

    /** Component instance name used in violation reports. */
    virtual const std::string &name() const = 0;

    /** Validate every invariant, recording failures into @p ctx. */
    virtual void audit(AuditContext &ctx) const = 0;
};

/**
 * The set of auditors attached to one simulated system, plus the
 * every-N-cycles schedule the sim loop consults.
 */
class AuditorRegistry
{
  public:
    /** Register an auditor (kept for the registry's lifetime). */
    void add(std::unique_ptr<Auditor> auditor);

    /** Audit every @p n cycles; 0 disables auditing. */
    void setInterval(std::uint64_t n) { interval_ = n; }
    std::uint64_t interval() const { return interval_; }

    bool enabled() const { return interval_ != 0; }

    /** True when the sim loop should audit at cycle @p now. */
    bool due(Cycle now) const
    {
        return interval_ != 0 && now % interval_ == 0;
    }

    /** Run every auditor, collecting violations (does not abort). */
    std::vector<Violation> run(Cycle now);

    /**
     * Run every auditor; on any violation, report all of them to
     * stderr and abort via panic().
     */
    void enforce(Cycle now);

    std::size_t size() const { return auditors_.size(); }

    /** Number of completed audit passes (tests / reporting). */
    std::uint64_t auditsRun() const { return auditsRun_; }

    /**
     * Degraded mode: violations of @p invariant are expected side
     * effects of an armed fault injector, so enforce() reports them as
     * warnings and keeps running instead of panicking.  Violations of
     * every other invariant still abort — this is what lets audits
     * under fault injection distinguish injected faults from real
     * bugs.
     */
    void tolerate(const std::string &invariant);

    /** True when @p invariant is tolerated. */
    bool isTolerated(const std::string &invariant) const;

    /** Violations waved through in degraded mode so far. */
    std::uint64_t toleratedViolations() const
    {
        return toleratedViolations_;
    }

  private:
    std::uint64_t interval_ = 0;
    std::uint64_t auditsRun_ = 0;
    std::uint64_t toleratedViolations_ = 0;
    std::set<std::string> tolerated_;
    std::vector<std::unique_ptr<Auditor>> auditors_;
};

} // namespace pfsim::check

#endif // PFSIM_CHECK_INVARIANT_HH
