#include "check/snapshot_audit.hh"

#include <cstddef>
#include <utility>

#include "snapshot/serial.hh"

namespace pfsim::check
{

bool
auditSnapshotImage(const std::vector<std::uint8_t> &bytes,
                   std::string &why)
{
    try {
        snapshot::Source src(bytes.data(), bytes.size());
        if (src.u32() != snapshot::snapshotMagic) {
            why = "bad magic: not a pfsim checkpoint";
            return false;
        }
        const std::uint32_t version = src.u32();
        if (version != snapshot::snapshotVersion) {
            why = "format version " + std::to_string(version) +
                ", this build reads version " +
                std::to_string(snapshot::snapshotVersion);
            return false;
        }
        src.u64(); // config digest: opaque without a live config
        const std::uint32_t count = src.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::string name = src.str();
            const std::uint64_t length = src.u64();
            const std::uint32_t stored_crc = src.u32();
            if (length > src.size() - src.offset()) {
                why = "section '" + name + "' is truncated";
                return false;
            }
            if (snapshot::crc32(src.cursor(), std::size_t(length)) !=
                stored_crc) {
                why = "section '" + name + "' failed its CRC check";
                return false;
            }
            src.advance(std::size_t(length));
        }
        if (!src.exhausted()) {
            why = "trailing bytes after the last section";
            return false;
        }
    } catch (const snapshot::SnapshotError &err) {
        why = err.what();
        return false;
    }
    return true;
}

SnapshotAuditor::SnapshotAuditor(std::string name,
                                 snapshot::SimulationView view,
                                 Cycle minGap)
    : name_(std::move(name)), view_(std::move(view)), minGap_(minGap)
{
}

void
SnapshotAuditor::audit(AuditContext &ctx) const
{
    if (ctx.now() < nextDue_)
        return;
    nextDue_ = ctx.now() + minGap_;

    const std::vector<std::uint8_t> first =
        snapshot::saveSimulation(view_, 0);
    const std::vector<std::uint8_t> second =
        snapshot::saveSimulation(view_, 0);
    if (!ctx.require(first == second, name_,
                     "serialization is deterministic",
                     "two consecutive saves differ")) {
        return;
    }

    std::string why;
    ctx.require(auditSnapshotImage(first, why), name_,
                "snapshot image is structurally sound", why);
}

} // namespace pfsim::check
