/**
 * @file
 * Snapshot auditing: read-only validation of checkpoint images and of
 * the serializer itself.
 *
 * Two layers:
 *
 *  - auditSnapshotImage() walks an image's framing — magic, version,
 *    section names/lengths/CRCs — without deserializing anything, so
 *    any caller (tests, tools, the sweep fleet) can vet a checkpoint
 *    file cheaply before trusting it.
 *
 *  - SnapshotAuditor plugs into the invariant-audit registry: each
 *    pass serializes the live simulation twice and requires the images
 *    to be byte-identical (a non-deterministic serializer would break
 *    the content-addressed store's "racing writers produce identical
 *    files" guarantee) and structurally valid per auditSnapshotImage.
 *    Like every auditor it is strictly read-only: serialize() never
 *    mutates component state.  Unlike the structural auditors a full
 *    pass is expensive, so it self-throttles to a minimum cycle gap
 *    between passes regardless of the registry interval.
 */

#ifndef PFSIM_CHECK_SNAPSHOT_AUDIT_HH
#define PFSIM_CHECK_SNAPSHOT_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant.hh"
#include "snapshot/snapshot.hh"

namespace pfsim::check
{

/**
 * Validate @p bytes as a structurally sound snapshot image: magic,
 * readable version, and every section's framing and CRC.  Does not
 * deserialize and needs no live simulation.  @return true when sound;
 * otherwise false with a one-line reason in @p why.
 */
bool auditSnapshotImage(const std::vector<std::uint8_t> &bytes,
                        std::string &why);

/** Round-trip determinism auditor over a live simulation. */
class SnapshotAuditor : public Auditor
{
  public:
    /**
     * @param name component instance name for violation reports
     * @param view the live objects to snapshot; must outlive the
     * auditor (guaranteed when both live in the same run scope)
     * @param minGap minimum cycles between full passes.  Serializing
     * the whole machine twice costs orders of magnitude more than the
     * structural auditors, so under --audit=1 this auditor
     * self-throttles to one pass per @p minGap cycles (0 = run at
     * every audit boundary); the first call always runs.
     */
    SnapshotAuditor(std::string name, snapshot::SimulationView view,
                    Cycle minGap = 16384);

    const std::string &name() const override { return name_; }
    void audit(AuditContext &ctx) const override;

  private:
    std::string name_;
    snapshot::SimulationView view_;
    Cycle minGap_;
    // Throttle bookkeeping, not simulation state: mutating it keeps
    // audit() observably read-only w.r.t. the simulated machine.
    mutable Cycle nextDue_ = 0;
};

} // namespace pfsim::check

#endif // PFSIM_CHECK_SNAPSHOT_AUDIT_HH
