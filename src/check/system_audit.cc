#include "check/system_audit.hh"

#include <memory>
#include <string>

#include "check/auditors.hh"
#include "core/generic_filter.hh"
#include "core/spp_ppf.hh"

namespace pfsim::check
{

namespace
{

/** Register the PPF auditor when @p prefetcher carries a filter. */
void
attachFilterAuditor(AuditorRegistry &registry,
                    const std::string &name,
                    const prefetch::Prefetcher &prefetcher)
{
    if (const auto *spp_ppf =
            dynamic_cast<const ppf::SppPpfPrefetcher *>(&prefetcher);
        spp_ppf != nullptr) {
        registry.add(std::make_unique<PpfAuditor>(name,
                                                  spp_ppf->filter()));
    } else if (const auto *filtered =
                   dynamic_cast<const ppf::FilteredPrefetcher *>(
                       &prefetcher);
               filtered != nullptr) {
        registry.add(std::make_unique<PpfAuditor>(name,
                                                  filtered->filter()));
    }
}

} // namespace

void
attachSystemAuditors(sim::System &system, std::uint64_t interval)
{
    AuditorRegistry &registry = system.audit();

    for (unsigned i = 0; i < system.coreCount(); ++i) {
        const std::string core = "core" + std::to_string(i);
        registry.add(std::make_unique<CacheAuditor>(core + ".l1i",
                                                    system.l1i(i)));
        registry.add(std::make_unique<CacheAuditor>(core + ".l1d",
                                                    system.l1d(i)));
        registry.add(std::make_unique<CacheAuditor>(core + ".l2",
                                                    system.l2(i)));
        attachFilterAuditor(registry, core + ".ppf",
                            system.prefetcher(i));
    }

    registry.add(std::make_unique<CacheAuditor>("llc", system.llc()));
    registry.add(std::make_unique<DramAuditor>("dram", system.dram()));

    registry.setInterval(interval);
}

} // namespace pfsim::check
