/**
 * @file
 * Wires the per-component auditors onto a fully built System: every
 * cache level (tag store, queues, MSHRs, replacement metadata), the
 * DRAM device, and — when the configured prefetcher carries a
 * perceptron filter — the PPF thresholds, weight tables and
 * Prefetch/Reject tables.
 */

#ifndef PFSIM_CHECK_SYSTEM_AUDIT_HH
#define PFSIM_CHECK_SYSTEM_AUDIT_HH

#include <cstdint>

#include "sim/system.hh"

namespace pfsim::check
{

/**
 * Register auditors for every component of @p system and arm the
 * system's audit registry to run them every @p interval cycles.  The
 * registered auditors reference the system's components, so the
 * registry (owned by the system) must not outlive them — which the
 * System guarantees by construction.
 */
void attachSystemAuditors(sim::System &system, std::uint64_t interval);

} // namespace pfsim::check

#endif // PFSIM_CHECK_SYSTEM_AUDIT_HH
