#include "core/feature_analysis.hh"

#include "util/bits.hh"

namespace pfsim::ppf
{

FeatureAnalysis::FeatureAnalysis()
    : shadowTable_(shadowEntries)
{
    for (unsigned f = 0; f < numFeatures; ++f)
        shadowWeights_[f].assign(featureTableSizes[f], Weight{});
}

void
FeatureAnalysis::record(const FeatureInput &input,
                        const FeatureIndices &idx,
                        const WeightTables &, bool useful)
{
    const double outcome = useful ? 1.0 : -1.0;
    (useful ? positives_ : negatives_) += 1;
    for (unsigned f = 0; f < numFeatures; ++f) {
        Weight &w = shadowWeights_[f][idx[f]];
        perFeature_[f].add(double(w.value()), outcome);
        w.train(useful);
    }

    // Shadow feature: the raw previous signature, which the paper shows
    // carries almost no correlation (Figure 6, right).  Train it with
    // the same perceptron rule so its weight distribution is honest.
    const std::uint32_t shadow_idx =
        input.signature & (shadowEntries - 1);
    Weight &w = shadowTable_[shadow_idx];
    shadowCorr_.add(double(w.value()), outcome);
    w.train(useful);
}

stats::Histogram
FeatureAnalysis::histogram(FeatureId feature) const
{
    stats::Histogram hist(Weight::min, Weight::max);
    for (const Weight &w : shadowWeights_[unsigned(feature)])
        hist.add(w.value());
    return hist;
}

double
FeatureAnalysis::correlation(FeatureId feature) const
{
    return perFeature_[unsigned(feature)].correlation();
}

double
FeatureAnalysis::shadowCorrelation() const
{
    return shadowCorr_.correlation();
}

stats::Histogram
FeatureAnalysis::shadowHistogram() const
{
    stats::Histogram hist(Weight::min, Weight::max);
    for (const Weight &w : shadowTable_)
        hist.add(w.value());
    return hist;
}

std::uint64_t
FeatureAnalysis::samples() const
{
    return perFeature_[0].count();
}

void
FeatureAnalysis::merge(const FeatureAnalysis &other)
{
    for (unsigned f = 0; f < numFeatures; ++f)
        perFeature_[f].merge(other.perFeature_[f]);
    shadowCorr_.merge(other.shadowCorr_);
    positives_ += other.positives_;
    negatives_ += other.negatives_;
}

} // namespace pfsim::ppf
