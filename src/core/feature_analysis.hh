/**
 * @file
 * Instrumentation behind the paper's feature-selection methodology
 * (Section 5.5, Figures 6-8).
 *
 * The analysis keeps its own per-feature shadow weight banks, trained
 * with the perceptron rule on *every* resolved outcome (useful and
 * not-useful alike), and computes Pearson's r between each feature's
 * shadow weight at observation time and the outcome.  Shadow banks
 * are used instead of the filter's live weights because the live
 * training is deliberately sparse on negatives (it only fires on the
 * paper's feedback events), which at scaled run lengths would starve
 * the correlation of negative observations.
 *
 * A shadow "last signature" feature — the example the paper *rejects*
 * in Figure 6 — is trained alongside the real features so the contrast
 * between a kept and a discarded feature can be regenerated.
 */

#ifndef PFSIM_CORE_FEATURE_ANALYSIS_HH
#define PFSIM_CORE_FEATURE_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/features.hh"
#include "core/weight_tables.hh"
#include "stats/histogram.hh"
#include "stats/pearson.hh"

namespace pfsim::ppf
{

/** Per-feature outcome-correlation recorder. */
class FeatureAnalysis
{
  public:
    FeatureAnalysis();

    /**
     * Record one resolved prediction: the feature vector that was
     * used and whether the prefetch turned out useful.
     */
    void record(const FeatureInput &input, const FeatureIndices &idx,
                const WeightTables &tables, bool useful);

    /** Pearson's r between feature weight and outcome. */
    double correlation(FeatureId feature) const;

    /** Histogram of a feature's analysis-trained weights (Figure 6). */
    stats::Histogram histogram(FeatureId feature) const;

    /** Pearson's r of the rejected shadow feature (last signature). */
    double shadowCorrelation() const;

    /** Histogram of the shadow feature's trained weights. */
    stats::Histogram shadowHistogram() const;

    /** Positive / negative outcome counts observed. */
    std::uint64_t positives() const { return positives_; }
    std::uint64_t negatives() const { return negatives_; }

    /** Observations recorded so far. */
    std::uint64_t samples() const;

    /** Merge another trace's accumulators (all-suite analysis). */
    void merge(const FeatureAnalysis &other);

  private:
    std::array<stats::PearsonAccumulator, numFeatures> perFeature_;

    /** Per-feature shadow banks, trained on every resolved outcome. */
    std::array<std::vector<Weight>, numFeatures> shadowWeights_;

    /** Shadow feature: raw last signature, trained but unused. */
    static constexpr std::uint32_t shadowEntries = 2048;
    std::vector<Weight> shadowTable_;
    stats::PearsonAccumulator shadowCorr_;

    std::uint64_t positives_ = 0;
    std::uint64_t negatives_ = 0;
};

} // namespace pfsim::ppf

#endif // PFSIM_CORE_FEATURE_ANALYSIS_HH
