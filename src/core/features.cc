#include "core/features.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::ppf
{

const std::string &
featureName(FeatureId id)
{
    static const std::array<std::string, numFeatures> names = {
        "phys_addr",
        "cache_line",
        "page_addr",
        "page_addr^conf",
        "pc1^pc2>>1^pc3>>2",
        "signature^delta",
        "pc^depth",
        "pc^delta",
        "confidence",
    };
    return names[unsigned(id)];
}

namespace
{

/** 7-bit sign-magnitude delta encoding shared with SPP. */
std::uint32_t
encodeDelta(int delta)
{
    if (delta >= 0)
        return std::uint32_t(delta) & 0x3f;
    return 0x40 | (std::uint32_t(-delta) & 0x3f);
}

} // namespace

FeatureIndices
computeIndices(const FeatureInput &input)
{
    FeatureIndices idx;

    // Three shifted views of the triggering address (Section 4.2: the
    // shifts let the filter weigh overlapping bits most heavily and
    // avoid the destructive interference of folding the address once).
    idx[unsigned(FeatureId::PhysAddr)] =
        std::uint32_t(foldXor(input.triggerAddr, 12));
    idx[unsigned(FeatureId::CacheLine)] =
        std::uint32_t(foldXor(input.triggerAddr >> blockShift, 12));
    idx[unsigned(FeatureId::PageAddr)] =
        std::uint32_t(foldXor(input.triggerAddr >> pageShift, 12));

    idx[unsigned(FeatureId::PageAddrXorConf)] = std::uint32_t(
        (foldXor(input.triggerAddr >> pageShift, 12) ^
         std::uint32_t(input.confidence)) &
        mask(12));

    // Shift older PCs more so identical PCs do not cancel to zero and
    // older history is blurred (Section 4.2).
    const std::uint64_t pc_path =
        input.pc1 ^ (input.pc2 >> 1) ^ (input.pc3 >> 2);
    idx[unsigned(FeatureId::PcPath)] =
        std::uint32_t(foldXor(pc_path, 11));

    idx[unsigned(FeatureId::SigXorDelta)] = std::uint32_t(
        (input.signature ^ encodeDelta(input.delta)) & mask(11));

    idx[unsigned(FeatureId::PcXorDepth)] = std::uint32_t(
        (foldXor(input.pc, 10) ^ std::uint32_t(input.depth)) &
        mask(10));

    idx[unsigned(FeatureId::PcXorDelta)] = std::uint32_t(
        (foldXor(input.pc, 10) ^ encodeDelta(input.delta)) & mask(10));

    int conf = input.confidence;
    if (conf < 0)
        conf = 0;
    if (conf > 127)
        conf = 127;
    idx[unsigned(FeatureId::Confidence)] = std::uint32_t(conf);

    for (unsigned f = 0; f < numFeatures; ++f) {
        if (idx[f] >= featureTableSizes[f])
            panic("feature index out of range");
    }
    return idx;
}

} // namespace pfsim::ppf
