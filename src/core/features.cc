#include "core/features.hh"

#include "core/simd.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::ppf
{

const std::string &
featureName(FeatureId id)
{
    static const std::array<std::string, numFeatures> names = {
        "phys_addr",
        "cache_line",
        "page_addr",
        "page_addr^conf",
        "pc1^pc2>>1^pc3>>2",
        "signature^delta",
        "pc^depth",
        "pc^delta",
        "confidence",
    };
    return names[unsigned(id)];
}

namespace
{

/** 7-bit sign-magnitude delta encoding shared with SPP. */
std::uint32_t
encodeDelta(int delta)
{
    if (delta >= 0)
        return std::uint32_t(delta) & 0x3f;
    return 0x40 | (std::uint32_t(-delta) & 0x3f);
}

} // namespace

FeatureIndices
computeIndices(const FeatureInput &input)
{
    FeatureIndices idx;

    // Three shifted views of the triggering address (Section 4.2: the
    // shifts let the filter weigh overlapping bits most heavily and
    // avoid the destructive interference of folding the address once).
    idx[unsigned(FeatureId::PhysAddr)] =
        std::uint32_t(foldXor(input.triggerAddr, 12));
    idx[unsigned(FeatureId::CacheLine)] =
        std::uint32_t(foldXor(input.triggerAddr >> blockShift, 12));
    idx[unsigned(FeatureId::PageAddr)] =
        std::uint32_t(foldXor(input.triggerAddr >> pageShift, 12));

    idx[unsigned(FeatureId::PageAddrXorConf)] = std::uint32_t(
        (foldXor(input.triggerAddr >> pageShift, 12) ^
         std::uint32_t(input.confidence)) &
        mask(12));

    // Shift older PCs more so identical PCs do not cancel to zero and
    // older history is blurred (Section 4.2).
    const std::uint64_t pc_path =
        input.pc1 ^ (input.pc2 >> 1) ^ (input.pc3 >> 2);
    idx[unsigned(FeatureId::PcPath)] =
        std::uint32_t(foldXor(pc_path, 11));

    idx[unsigned(FeatureId::SigXorDelta)] = std::uint32_t(
        (input.signature ^ encodeDelta(input.delta)) & mask(11));

    idx[unsigned(FeatureId::PcXorDepth)] = std::uint32_t(
        (foldXor(input.pc, 10) ^ std::uint32_t(input.depth)) &
        mask(10));

    idx[unsigned(FeatureId::PcXorDelta)] = std::uint32_t(
        (foldXor(input.pc, 10) ^ encodeDelta(input.delta)) & mask(10));

    int conf = input.confidence;
    if (conf < 0)
        conf = 0;
    if (conf > 127)
        conf = 127;
    idx[unsigned(FeatureId::Confidence)] = std::uint32_t(conf);

    for (unsigned f = 0; f < numFeatures; ++f) {
        if (idx[f] >= featureTableSizes[f])
            panic("feature index out of range");
    }
    return idx;
}

SharedIndexContext
makeSharedContext(const FeatureInput &input)
{
    SharedIndexContext ctx;
    ctx.physIdx = std::uint32_t(foldXor(input.triggerAddr, 12));
    ctx.lineIdx =
        std::uint32_t(foldXor(input.triggerAddr >> blockShift, 12));
    ctx.pageFold =
        std::uint32_t(foldXor(input.triggerAddr >> pageShift, 12));
    const std::uint64_t pc_path =
        input.pc1 ^ (input.pc2 >> 1) ^ (input.pc3 >> 2);
    ctx.pcPathIdx = std::uint32_t(foldXor(pc_path, 11));
    ctx.pcFold = std::uint32_t(foldXor(input.pc, 10));
    return ctx;
}

bool
sharesContext(const FeatureInput &a, const FeatureInput &b)
{
    return a.triggerAddr == b.triggerAddr && a.pc == b.pc &&
           a.pc1 == b.pc1 && a.pc2 == b.pc2 && a.pc3 == b.pc3;
}

FeatureIndices
computeIndices(const SharedIndexContext &ctx,
               const FeatureInput &input)
{
    FeatureIndices idx;

    idx[unsigned(FeatureId::PhysAddr)] = ctx.physIdx;
    idx[unsigned(FeatureId::CacheLine)] = ctx.lineIdx;
    idx[unsigned(FeatureId::PageAddr)] = ctx.pageFold;

    idx[unsigned(FeatureId::PageAddrXorConf)] = std::uint32_t(
        (ctx.pageFold ^ std::uint32_t(input.confidence)) & mask(12));

    idx[unsigned(FeatureId::PcPath)] = ctx.pcPathIdx;

    idx[unsigned(FeatureId::SigXorDelta)] = std::uint32_t(
        (input.signature ^ encodeDelta(input.delta)) & mask(11));

    idx[unsigned(FeatureId::PcXorDepth)] = std::uint32_t(
        (ctx.pcFold ^ std::uint32_t(input.depth)) & mask(10));

    idx[unsigned(FeatureId::PcXorDelta)] = std::uint32_t(
        (ctx.pcFold ^ encodeDelta(input.delta)) & mask(10));

    int conf = input.confidence;
    if (conf < 0)
        conf = 0;
    if (conf > 127)
        conf = 127;
    idx[unsigned(FeatureId::Confidence)] = std::uint32_t(conf);

    for (unsigned f = 0; f < numFeatures; ++f) {
        if (idx[f] >= featureTableSizes[f])
            panic("feature index out of range");
    }
    return idx;
}

void
fillSharedBurstIndices(const SharedIndexContext &ctx,
                       const FeatureInput *inputs, std::size_t n,
                       const std::uint32_t *table_offsets,
                       std::size_t stride, std::uint32_t *abs_idx)
{
    constexpr std::size_t cap = simd::batchWidth;
    if (n > stride || stride != cap)
        panic("fillSharedBurstIndices: stride must be the kernel "
              "batch width");

    // Transpose the per-candidate fields into dense rows first: the
    // row computations below then run over flat uint32 arrays with a
    // compile-time trip count — straight-line code the compiler turns
    // into a handful of vector ops — instead of striding through the
    // FeatureInput structs once per feature.  The full-burst case
    // (the steady state: SPP's lookahead bursts fill every lane) runs
    // the gather with a compile-time trip count so the compiler emits
    // no per-lane exit branches; partial bursts take the runtime-n
    // loop and zero the tail lanes the full-width rows will read.
    std::uint32_t encv[cap];
    std::uint32_t sigv[cap];
    std::uint32_t conf_raw[cap];
    std::uint32_t conf_clamp[cap];
    std::uint32_t depthv[cap];
    const auto gather = [&](std::size_t count) {
        for (std::size_t c = 0; c < count; ++c) {
            const FeatureInput &input = inputs[c];
            encv[c] = encodeDelta(input.delta);
            sigv[c] = input.signature;
            conf_raw[c] = std::uint32_t(input.confidence);
            int conf = input.confidence;
            if (conf < 0)
                conf = 0;
            if (conf > 127)
                conf = 127;
            conf_clamp[c] = std::uint32_t(conf);
            depthv[c] = std::uint32_t(input.depth);
        }
    };
    if (n == cap) {
        gather(cap);
    } else {
        gather(n);
        for (std::size_t c = n; c < cap; ++c) {
            encv[c] = 0;
            sigv[c] = 0;
            conf_raw[c] = 0;
            conf_clamp[c] = 0;
            depthv[c] = 0;
        }
    }

    // Row order is burstPerCandidateFeatures; each row is the exact
    // expression of computeIndices(ctx, input) for that feature,
    // fused with the table-offset add.  One loop per row, each a
    // contiguous full-width store the vectorizer maps onto packed ops
    // (a fused c-major loop would leave strided stores it cannot
    // merge).
    const std::uint32_t off_page_conf =
        table_offsets[unsigned(FeatureId::PageAddrXorConf)];
    const std::uint32_t off_sig_delta =
        table_offsets[unsigned(FeatureId::SigXorDelta)];
    const std::uint32_t off_pc_depth =
        table_offsets[unsigned(FeatureId::PcXorDepth)];
    const std::uint32_t off_pc_delta =
        table_offsets[unsigned(FeatureId::PcXorDelta)];
    const std::uint32_t off_conf =
        table_offsets[unsigned(FeatureId::Confidence)];
    for (std::size_t c = 0; c < cap; ++c)
        abs_idx[0 * cap + c] =
            off_page_conf + ((ctx.pageFold ^ conf_raw[c]) & mask(12));
    for (std::size_t c = 0; c < cap; ++c)
        abs_idx[1 * cap + c] =
            off_sig_delta + ((sigv[c] ^ encv[c]) & mask(11));
    for (std::size_t c = 0; c < cap; ++c)
        abs_idx[2 * cap + c] =
            off_pc_depth + ((ctx.pcFold ^ depthv[c]) & mask(10));
    for (std::size_t c = 0; c < cap; ++c)
        abs_idx[3 * cap + c] =
            off_pc_delta + ((ctx.pcFold ^ encv[c]) & mask(10));
    for (std::size_t c = 0; c < cap; ++c)
        abs_idx[4 * cap + c] = off_conf + conf_clamp[c];

    // Unused lanes point at weight 0: a full-width gather reads them
    // in-bounds and the kernel discards the result.
    if (n < cap) {
        for (std::size_t r = 0; r < burstPerCandidateFeatures.size();
             ++r)
            for (std::size_t c = n; c < cap; ++c)
                abs_idx[r * cap + c] = 0;
    }
}

} // namespace pfsim::ppf
