/**
 * @file
 * PPF's perceptron features (paper Section 4.2).
 *
 * Nine features survive the paper's Pearson-correlation pruning
 * (Section 5.5); each indexes its own weight table.  The table sizes
 * reproduce Table 3 exactly: four 4096-entry tables, two 2048-entry,
 * two 1024-entry and one 128-entry table — 22,656 5-bit weights =
 * 113,280 bits.
 */

#ifndef PFSIM_CORE_FEATURES_HH
#define PFSIM_CORE_FEATURES_HH

#include <array>
#include <cstdint>
#include <string>

#include "util/types.hh"

namespace pfsim::ppf
{

/** Number of perceptron features. */
inline constexpr unsigned numFeatures = 9;

/** Identity of each feature (index into tables and masks). */
enum class FeatureId : unsigned
{
    PhysAddr = 0,     ///< low bits of the triggering physical address
    CacheLine = 1,    ///< triggering address >> 6
    PageAddr = 2,     ///< triggering address >> 12
    PageAddrXorConf = 3, ///< page address hashed with path confidence
    PcPath = 4,       ///< PC_1 ^ (PC_2 >> 1) ^ (PC_3 >> 2)
    SigXorDelta = 5,  ///< current signature hashed with delta
    PcXorDepth = 6,   ///< trigger PC hashed with lookahead depth
    PcXorDelta = 7,   ///< trigger PC hashed with predicted delta
    Confidence = 8,   ///< SPP path confidence, 0..100
};

/** Weight-table entry counts per feature (Table 3 layout). */
inline constexpr std::array<std::uint32_t, numFeatures>
    featureTableSizes = {
        4096, // PhysAddr
        4096, // CacheLine
        4096, // PageAddr
        4096, // PageAddrXorConf
        2048, // PcPath
        2048, // SigXorDelta
        1024, // PcXorDepth
        1024, // PcXorDelta
        128,  // Confidence
};

/** Human-readable feature names (reports, Figures 6-8). */
const std::string &featureName(FeatureId id);

/**
 * The raw metadata a feature vector is computed from.  This is what
 * the Prefetch/Reject tables store (Table 2) so training can re-index
 * the same weights the prediction used.
 */
struct FeatureInput
{
    /** Demand address that triggered the prefetch chain. */
    Addr triggerAddr = 0;

    /** PC of the triggering instruction. */
    Pc pc = 0;

    /** The three most recent PCs before the trigger. */
    Pc pc1 = 0;
    Pc pc2 = 0;
    Pc pc3 = 0;

    /** Lookahead depth of the candidate. */
    int depth = 1;

    /** Predicted delta, in blocks (signed). */
    int delta = 0;

    /** SPP path confidence, 0..100. */
    int confidence = 0;

    /** Signature of the lookahead stage. */
    std::uint32_t signature = 0;
};

/** Index vector: one weight-table index per feature. */
using FeatureIndices = std::array<std::uint32_t, numFeatures>;

/**
 * Compute all nine table indices for @p input.  Every index is within
 * the corresponding featureTableSizes bound.
 */
FeatureIndices computeIndices(const FeatureInput &input);

} // namespace pfsim::ppf

#endif // PFSIM_CORE_FEATURES_HH
