/**
 * @file
 * PPF's perceptron features (paper Section 4.2).
 *
 * Nine features survive the paper's Pearson-correlation pruning
 * (Section 5.5); each indexes its own weight table.  The table sizes
 * reproduce Table 3 exactly: four 4096-entry tables, two 2048-entry,
 * two 1024-entry and one 128-entry table — 22,656 5-bit weights =
 * 113,280 bits.
 */

#ifndef PFSIM_CORE_FEATURES_HH
#define PFSIM_CORE_FEATURES_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/types.hh"

namespace pfsim::ppf
{

/** Number of perceptron features. */
inline constexpr unsigned numFeatures = 9;

/** Identity of each feature (index into tables and masks). */
enum class FeatureId : unsigned
{
    PhysAddr = 0,     ///< low bits of the triggering physical address
    CacheLine = 1,    ///< triggering address >> 6
    PageAddr = 2,     ///< triggering address >> 12
    PageAddrXorConf = 3, ///< page address hashed with path confidence
    PcPath = 4,       ///< PC_1 ^ (PC_2 >> 1) ^ (PC_3 >> 2)
    SigXorDelta = 5,  ///< current signature hashed with delta
    PcXorDepth = 6,   ///< trigger PC hashed with lookahead depth
    PcXorDelta = 7,   ///< trigger PC hashed with predicted delta
    Confidence = 8,   ///< SPP path confidence, 0..100
};

/** Weight-table entry counts per feature (Table 3 layout). */
inline constexpr std::array<std::uint32_t, numFeatures>
    featureTableSizes = {
        4096, // PhysAddr
        4096, // CacheLine
        4096, // PageAddr
        4096, // PageAddrXorConf
        2048, // PcPath
        2048, // SigXorDelta
        1024, // PcXorDepth
        1024, // PcXorDelta
        128,  // Confidence
};

/** Human-readable feature names (reports, Figures 6-8). */
const std::string &featureName(FeatureId id);

/**
 * The raw metadata a feature vector is computed from.  This is what
 * the Prefetch/Reject tables store (Table 2) so training can re-index
 * the same weights the prediction used.
 */
struct FeatureInput
{
    /** Demand address that triggered the prefetch chain. */
    Addr triggerAddr = 0;

    /** PC of the triggering instruction. */
    Pc pc = 0;

    /** The three most recent PCs before the trigger. */
    Pc pc1 = 0;
    Pc pc2 = 0;
    Pc pc3 = 0;

    /** Lookahead depth of the candidate. */
    int depth = 1;

    /** Predicted delta, in blocks (signed). */
    int delta = 0;

    /** SPP path confidence, 0..100. */
    int confidence = 0;

    /** Signature of the lookahead stage. */
    std::uint32_t signature = 0;
};

/** Index vector: one weight-table index per feature. */
using FeatureIndices = std::array<std::uint32_t, numFeatures>;

/**
 * Compute all nine table indices for @p input.  Every index is within
 * the corresponding featureTableSizes bound.
 */
FeatureIndices computeIndices(const FeatureInput &input);

/**
 * The burst-invariant part of the feature indices.  Every candidate
 * of one SPP lookahead burst shares its trigger address, trigger PC
 * and PC history, so the address folds and PC hashes — the expensive
 * part of computeIndices() — are computed once per burst and only the
 * per-candidate depth/delta/confidence/signature mixes remain.
 */
struct SharedIndexContext
{
    std::uint32_t physIdx = 0;   ///< foldXor(triggerAddr, 12)
    std::uint32_t lineIdx = 0;   ///< foldXor(triggerAddr >> 6, 12)
    std::uint32_t pageFold = 0;  ///< foldXor(triggerAddr >> 12, 12)
    std::uint32_t pcPathIdx = 0; ///< foldXor(pc1^(pc2>>1)^(pc3>>2), 11)
    std::uint32_t pcFold = 0;    ///< foldXor(pc, 10)
};

/** Precompute the shared folds of @p input's trigger/PC context. */
SharedIndexContext makeSharedContext(const FeatureInput &input);

/**
 * The burst-invariant features: their index — and therefore their
 * weight — is the same for every candidate of a shared burst, so the
 * batched path folds their weights into one per-burst bias instead of
 * gathering identical values per lane.
 */
inline constexpr std::array<FeatureId, 4> burstSharedFeatures = {
    FeatureId::PhysAddr,
    FeatureId::CacheLine,
    FeatureId::PageAddr,
    FeatureId::PcPath,
};

/** The per-candidate features, in the row order of the batched
 *  kernel's index layout (fillSharedBurstIndices). */
inline constexpr std::array<FeatureId, 5> burstPerCandidateFeatures = {
    FeatureId::PageAddrXorConf,
    FeatureId::SigXorDelta,
    FeatureId::PcXorDepth,
    FeatureId::PcXorDelta,
    FeatureId::Confidence,
};

/**
 * The absolute flat-array indices of the burst-shared features'
 * weights — out[k] for burstSharedFeatures[k] — bit-identical to
 * table_offsets[f] + computeIndices(ctx, input)[f] for any input
 * sharing @p ctx.
 */
inline void
sharedAbsIndices(const SharedIndexContext &ctx,
                 const std::uint32_t *table_offsets, std::uint32_t *out)
{
    out[0] = table_offsets[unsigned(FeatureId::PhysAddr)] + ctx.physIdx;
    out[1] =
        table_offsets[unsigned(FeatureId::CacheLine)] + ctx.lineIdx;
    out[2] =
        table_offsets[unsigned(FeatureId::PageAddr)] + ctx.pageFold;
    out[3] = table_offsets[unsigned(FeatureId::PcPath)] + ctx.pcPathIdx;
}

/** True when @p a and @p b may share one SharedIndexContext. */
bool sharesContext(const FeatureInput &a, const FeatureInput &b);

/**
 * computeIndices() with the shared folds hoisted out: bit-identical
 * to computeIndices(input) whenever @p ctx was built from an input
 * that sharesContext() with @p input.
 */
FeatureIndices computeIndices(const SharedIndexContext &ctx,
                              const FeatureInput &input);

/**
 * The fused burst variant: write the @p n candidates' per-candidate
 * feature indices straight into the feature-major layout
 * WeightTables::sumBurst() consumes — row r holds feature
 * burstPerCandidateFeatures[r], abs_idx[r * stride + c] =
 * table_offsets[f] + index of that feature for inputs[c], with unused
 * lanes c >= n zeroed so full-width gathers stay in-bounds.  The
 * burst-shared features are not filled (their weights travel as the
 * sumBurst bias; see sharedAbsIndices).  @p stride must be the kernel
 * batch width (WeightTables::batchCapacity) and n <= stride.
 *
 * Index values are bit-identical to computeIndices(ctx, inputs[c]):
 * the same expressions run here, only the per-candidate FeatureIndices
 * array and its range-check pass are skipped — every index is bounded
 * by construction (folds and masks), which the equivalence tests
 * assert against the checked path.
 */
void fillSharedBurstIndices(const SharedIndexContext &ctx,
                            const FeatureInput *inputs, std::size_t n,
                            const std::uint32_t *table_offsets,
                            std::size_t stride,
                            std::uint32_t *abs_idx);

} // namespace pfsim::ppf

#endif // PFSIM_CORE_FEATURES_HH
