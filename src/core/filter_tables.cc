#include "core/filter_tables.hh"

#include <cassert>

#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::ppf
{

FilterTable::FilterTable(std::uint32_t entries)
    : table_(entries)
{
    if (!isPowerOf2(entries))
        fatal("filter table size must be a power of two");
    indexBits_ = log2i(entries);
}

std::uint32_t
FilterTable::indexOf(Addr addr) const
{
    return std::uint32_t(blockNumber(addr) & (table_.size() - 1));
}

std::uint8_t
FilterTable::tagOf(Addr addr) const
{
    // Six tag bits above the index bits (Table 2).
    return std::uint8_t((blockNumber(addr) >> indexBits_) & 0x3f);
}

void
FilterTable::insert(Addr addr, const FeatureInput &features,
                    bool prefetched)
{
    FilterEntry &entry = table_[indexOf(addr)];
    entry.valid = true;
    entry.tag = tagOf(addr);
    entry.useful = false;
    entry.prefetched = prefetched;
    entry.features = features;
}

FilterEntry *
FilterTable::slot(Addr addr)
{
    return &table_[indexOf(addr)];
}

FilterEntry *
FilterTable::find(Addr addr)
{
    FilterEntry &entry = table_[indexOf(addr)];
    if (entry.valid && entry.tag == tagOf(addr))
        return &entry;
    return nullptr;
}

void
FilterTable::invalidate(FilterEntry *entry)
{
    assert(entry != nullptr);
    entry->valid = false;
}

} // namespace pfsim::ppf
