/**
 * @file
 * PPF's Prefetch Table and Reject Table (paper Section 3.1 and
 * Table 2): 1,024-entry direct-mapped structures holding the metadata
 * needed to re-index the perceptron weights when feedback arrives.
 *
 * The Prefetch Table records candidates the filter let through; the
 * Reject Table records candidates it dropped, so that a later demand
 * to a rejected address can correct a false negative.
 */

#ifndef PFSIM_CORE_FILTER_TABLES_HH
#define PFSIM_CORE_FILTER_TABLES_HH

#include <cstdint>
#include <vector>

#include "core/features.hh"
#include "util/types.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::ppf
{

/** One entry of the Prefetch/Reject tables. */
struct FilterEntry
{
    bool valid = false;

    /** 6-bit tag over the block address (Table 2). */
    std::uint8_t tag = 0;

    /** The prefetch led to a demand hit (Prefetch Table only). */
    bool useful = false;

    /** The perceptron's original decision (prefetched or rejected). */
    bool prefetched = false;

    /** Metadata to re-compute the feature indices for training. */
    FeatureInput features;
};

/** A 1,024-entry direct-mapped filter table. */
class FilterTable
{
  public:
    explicit FilterTable(std::uint32_t entries = 1024);

    /**
     * Record metadata for the prefetch target @p addr, overwriting any
     * previous occupant of the slot (direct-mapped behaviour).
     */
    void insert(Addr addr, const FeatureInput &features,
                bool prefetched);

    /** Find the entry matching @p addr, or nullptr. */
    FilterEntry *find(Addr addr);

    /**
     * The direct-mapped slot @p addr maps to, regardless of tag —
     * used to observe the entry about to be displaced by an insert.
     */
    FilterEntry *slot(Addr addr);

    /** Invalidate a previously found entry. */
    void invalidate(FilterEntry *entry);

    std::uint32_t entries() const { return std::uint32_t(table_.size()); }

    /** Read-only view of the raw entries for the invariant auditor. */
    const std::vector<FilterEntry> &auditState() const { return table_; }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    std::uint32_t indexOf(Addr addr) const;
    std::uint8_t tagOf(Addr addr) const;

    std::vector<FilterEntry> table_;
    std::uint32_t indexBits_;
};

} // namespace pfsim::ppf

#endif // PFSIM_CORE_FILTER_TABLES_HH
