#include "core/generic_filter.hh"

namespace pfsim::ppf
{

FilteredPrefetcher::FilteredPrefetcher(
    std::unique_ptr<prefetch::Prefetcher> base, PpfConfig config)
    : base_(std::move(base)), ppf_(config),
      name_(base_->name() + "_ppf")
{
    // The base prefetcher issues through us; we issue through the
    // host cache once the filter has ruled.
    base_->attach(this);
}

void
FilteredPrefetcher::operate(const prefetch::OperateInfo &info)
{
    // Feedback first (as in the SPP integration), then let the base
    // produce candidates against this trigger's context.
    ppf_.onDemand(info.addr, info.pc);
    triggerAddr_ = info.addr;
    triggerPc_ = info.pc;
    base_->operate(info);
}

void
FilteredPrefetcher::fill(const prefetch::FillInfo &info)
{
    if (info.evictedValid && info.evictedUnusedPrefetch)
        ppf_.onUselessEviction(info.evictedAddr);
    base_->fill(info);
}

bool
FilteredPrefetcher::issuePrefetch(Addr addr, bool fill_this_level)
{
    // Build the candidate from the prefetcher-agnostic observables
    // (Section 4.2's "derived directly from program execution"
    // features); the SPP-specific fields take neutral values.
    prefetch::SppCandidate candidate;
    candidate.addr = blockAlign(addr);
    candidate.triggerAddr = triggerAddr_;
    candidate.pc = triggerPc_;
    candidate.depth = 1;
    candidate.delta = int(std::int64_t(blockNumber(addr)) -
                          std::int64_t(blockNumber(triggerAddr_)));
    candidate.confidence = 50;
    candidate.signature = 0;
    candidate.fillL2 = fill_this_level;

    switch (ppf_.test(candidate)) {
      case prefetch::SppFilter::Decision::Drop:
        // The base prefetcher sees its candidate refused, exactly as
        // if the queue had been full.
        return false;
      case prefetch::SppFilter::Decision::FillL2:
        fill_this_level = true;
        break;
      case prefetch::SppFilter::Decision::FillLlc:
        fill_this_level = false;
        break;
    }
    if (issuer_ != nullptr &&
        issuer_->issuePrefetch(candidate.addr, fill_this_level)) {
        ppf_.notifyIssued(candidate, fill_this_level);
        return true;
    }
    return false;
}

const std::string &
FilteredPrefetcher::name() const
{
    return name_;
}

} // namespace pfsim::ppf
