/**
 * @file
 * PPF over an arbitrary prefetcher (paper Section 3.2).
 *
 * The paper's case study integrates PPF tightly with SPP (rich
 * metadata: depth, signature, path confidence).  Section 3.2 argues
 * the filter generalises to any prefetcher with the recipe: pass all
 * candidates through the perceptron, store the indexing metadata,
 * and train when feedback arrives.  FilteredPrefetcher implements
 * that recipe for prefetchers that expose nothing beyond their
 * candidate addresses: it interposes on the issuer interface, derives
 * the prefetcher-agnostic features (trigger address, PCs, delta) from
 * the access stream, and substitutes neutral values for the
 * SPP-specific ones (depth 1, empty signature, mid-scale confidence).
 *
 * This is also the ablation vehicle for how much of PPF's win comes
 * from the filter itself versus SPP's exported metadata.
 */

#ifndef PFSIM_CORE_GENERIC_FILTER_HH
#define PFSIM_CORE_GENERIC_FILTER_HH

#include <memory>
#include <string>

#include "core/ppf.hh"
#include "prefetch/prefetcher.hh"

namespace pfsim::ppf
{

/** Any prefetcher, wrapped behind the perceptron filter. */
class FilteredPrefetcher : public prefetch::Prefetcher,
                           private prefetch::PrefetchIssuer
{
  public:
    /**
     * @param base the underlying prefetcher (owned)
     * @param config filter parameters
     */
    explicit FilteredPrefetcher(
        std::unique_ptr<prefetch::Prefetcher> base,
        PpfConfig config = {});

    void operate(const prefetch::OperateInfo &info) override;
    void fill(const prefetch::FillInfo &info) override;
    const std::string &name() const override;

    Ppf &filter() { return ppf_; }
    const Ppf &filter() const { return ppf_; }
    const prefetch::Prefetcher &base() const { return *base_; }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    // prefetch::PrefetchIssuer — interposed between the base
    // prefetcher and the host cache.
    bool issuePrefetch(Addr addr, bool fill_this_level) override;

    std::unique_ptr<prefetch::Prefetcher> base_;
    Ppf ppf_;
    std::string name_;

    /** Context of the demand access currently being operated on. */
    Addr triggerAddr_ = 0;
    Pc triggerPc_ = 0;
};

} // namespace pfsim::ppf

#endif // PFSIM_CORE_GENERIC_FILTER_HH
