#include "core/ppf.hh"

namespace pfsim::ppf
{

Ppf::Ppf(PpfConfig config)
    : config_(config),
      weights_(config.featureMask, config.weightClampBits),
      prefetchTable_(config.prefetchTableEntries),
      rejectTable_(config.rejectTableEntries)
{
}

FeatureInput
Ppf::buildInput(const prefetch::SppCandidate &candidate) const
{
    FeatureInput input;
    input.triggerAddr = candidate.triggerAddr;
    input.pc = candidate.pc;
    input.pc1 = pcHistory_[0];
    input.pc2 = pcHistory_[1];
    input.pc3 = pcHistory_[2];
    input.depth = candidate.depth;
    input.delta = candidate.delta;
    input.confidence = candidate.confidence;
    input.signature = candidate.signature;
    return input;
}

int
Ppf::inferenceSum(const prefetch::SppCandidate &candidate) const
{
    return weights_.sum(computeIndices(buildInput(candidate)));
}

void
Ppf::beginBatch(const prefetch::SppCandidate *candidates,
                std::size_t count)
{
    if (count > prefetch::SppFilter::maxBatch)
        count = prefetch::SppFilter::maxBatch;
    batchSize_ = count;
    batchNext_ = 0;
    if (count == 0)
        return;

    // An SPP burst shares its trigger address and PC across every
    // candidate (the PC history is ours and cannot move mid-call), so
    // the address folds and PC hashes are hoisted and computed once;
    // a mixed burst falls back to the full per-candidate computation.
    // Either way the sums are exactly sum(computeIndices(input)).
    bool shared = true;
    for (std::size_t c = 0; c < count; ++c) {
        batch_[c].candidate = candidates[c];
        shared = shared &&
            candidates[c].triggerAddr == candidates[0].triggerAddr &&
            candidates[c].pc == candidates[0].pc;
    }

    FeatureInput inputs[prefetch::SppFilter::maxBatch];
    for (std::size_t c = 0; c < count; ++c)
        inputs[c] = buildInput(candidates[c]);

    std::int32_t sums[prefetch::SppFilter::maxBatch];
    if (shared) {
        // Fused hot path: indices land straight in the feature-major
        // absolute layout the batched kernel consumes.
        static_assert(prefetch::SppFilter::maxBatch <=
                      WeightTables::batchCapacity);
        const SharedIndexContext ctx = makeSharedContext(inputs[0]);
        std::uint32_t shared_abs[burstSharedFeatures.size()];
        sharedAbsIndices(ctx, weights_.tableOffsets(), shared_abs);
        std::uint32_t abs_idx[burstPerCandidateFeatures.size() *
                              WeightTables::batchCapacity];
        fillSharedBurstIndices(ctx, inputs, count,
                               weights_.tableOffsets(),
                               WeightTables::batchCapacity, abs_idx);
        weights_.sumBurst(abs_idx, count, sums,
                          weights_.burstBias(shared_abs));
    } else {
        FeatureIndices indices[prefetch::SppFilter::maxBatch];
        for (std::size_t c = 0; c < count; ++c)
            indices[c] = computeIndices(inputs[c]);
        weights_.sumBatch(indices, count, sums);
    }
    for (std::size_t c = 0; c < count; ++c)
        batch_[c].sum = sums[c];
}

const Ppf::BatchEntry *
Ppf::batchLookup(const prefetch::SppCandidate &candidate)
{
    for (std::size_t j = batchNext_; j < batchSize_; ++j) {
        if (batch_[j].candidate == candidate) {
            batchNext_ = j + 1;
            ++batchSumHits_;
            return &batch_[j];
        }
    }
    return nullptr;
}

prefetch::SppFilter::Decision
Ppf::test(const prefetch::SppCandidate &candidate)
{
    ++stats_.candidates;
    int sum;
    if (const BatchEntry *cached = batchLookup(candidate);
        cached != nullptr) {
        sum = cached->sum;
    } else {
        sum = weights_.sum(computeIndices(buildInput(candidate)));
    }
    lastSum_ = sum;
    sumValid_ = true;

    if (sum >= config_.tauHi) {
        ++stats_.acceptedL2;
        return Decision::FillL2;
    }
    if (sum >= config_.tauLo) {
        ++stats_.acceptedLlc;
        return Decision::FillLlc;
    }
    ++stats_.rejected;
    recordDisplacedOutcome(*rejectTable_.slot(candidate.addr));
    // The drop path needs the FeatureInput; rebuilding it here is
    // bit-identical (pure function of candidate + PC history) and
    // keeps the accept path free of the copy.
    rejectTable_.insert(candidate.addr, buildInput(candidate), false);
    return Decision::Drop;
}

void
Ppf::notifyIssued(const prefetch::SppCandidate &candidate, bool)
{
    recordDisplacedOutcome(*prefetchTable_.slot(candidate.addr));
    prefetchTable_.insert(candidate.addr, buildInput(candidate), true);
}

void
Ppf::recordDisplacedOutcome(const FilterEntry &displaced)
{
    // Analysis-only observable (Figures 6-8): an entry displaced
    // without ever seeing a demand to its address resolved negative —
    // for a prefetched entry the prefetch went unused during its
    // table residency; for a rejected entry the rejection was
    // correct.  The weights are NOT trained here; the paper trains
    // only on the demand/eviction feedback paths.
    if (analysis_ == nullptr || !displaced.valid || displaced.useful)
        return;
    analysis_->record(displaced.features,
                      computeIndices(displaced.features), weights_,
                      false);
}

void
Ppf::train(const FilterEntry &entry, bool positive)
{
    const FeatureIndices idx = computeIndices(entry.features);
    const int sum = weights_.sum(idx);

    if (analysis_ != nullptr)
        analysis_->record(entry.features, idx, weights_, positive);

    // Saturating training rule (Figure 5b): only adjust while the sum
    // has not moved past theta in the outcome's direction.
    if (positive) {
        if (sum < config_.thetaP)
            weights_.train(idx, true);
    } else {
        if (sum > config_.thetaN)
            weights_.train(idx, false);
    }
}

void
Ppf::onDemand(Addr addr, Pc pc)
{
    // Training and the PC-history shift below change what a sum would
    // be; any precomputed burst is stale from here on.
    invalidateBatch();

    // A demand to a block the filter prefetched: correct positive.
    if (FilterEntry *entry = prefetchTable_.find(addr);
        entry != nullptr && !entry->useful) {
        entry->useful = true;
        ++stats_.trainUseful;
        train(*entry, true);
    }

    // A demand to a block the filter rejected: false negative.
    if (FilterEntry *entry = rejectTable_.find(addr);
        entry != nullptr) {
        ++stats_.trainFalseNegative;
        train(*entry, true);
        rejectTable_.invalidate(entry);
    }

    // Maintain the PC-path history; consecutive duplicates collapse so
    // tight loops still expose three distinct path PCs.
    if (pcHistory_[0] != pc) {
        pcHistory_[2] = pcHistory_[1];
        pcHistory_[1] = pcHistory_[0];
        pcHistory_[0] = pc;
    }
}

void
Ppf::onUselessEviction(Addr addr)
{
    invalidateBatch();
    if (FilterEntry *entry = prefetchTable_.find(addr);
        entry != nullptr && !entry->useful) {
        ++stats_.trainUselessEvict;
        train(*entry, false);
        prefetchTable_.invalidate(entry);
    }
}

int
Ppf::faultInjectWeightFlip(FeatureId feature, std::uint32_t index,
                           unsigned bit)
{
    invalidateBatch();
    const int pre = weights_.weight(feature, index);
    const unsigned raw = unsigned(pre) & ((1u << weightBits) - 1u);
    const unsigned flipped = raw ^ (1u << (bit % weightBits));
    int value = int(flipped);
    if ((flipped & (1u << (weightBits - 1u))) != 0)
        value -= 1 << weightBits;
    if (value < weights_.weightMin())
        value = weights_.weightMin();
    else if (value > weights_.weightMax())
        value = weights_.weightMax();
    weights_.poke(feature, index, value);
    return value;
}

} // namespace pfsim::ppf
