/**
 * @file
 * The Perceptron-based Prefetch Filter (the paper's contribution).
 *
 * PPF sits between the underlying prefetcher and the prefetch queue
 * (Figure 4).  For every candidate it computes nine feature indices,
 * sums the selected 5-bit weights and thresholds the sum twice
 * (Figure 5, step 1):
 *
 *     sum >= tauHi          -> prefetch, fill the L2
 *     tauLo <= sum < tauHi  -> prefetch, fill only the LLC
 *     sum < tauLo           -> reject
 *
 * Candidates that pass are logged in the Prefetch Table; rejected ones
 * in the Reject Table (step 2).  Feedback arrives from L2 demand
 * accesses and evictions (steps 3-4): a demanded address found in the
 * Prefetch Table trains the weights positively (the prefetch was
 * useful); one found in the Reject Table corrects a false negative;
 * and the eviction of a never-used prefetched block trains negatively.
 * Training only happens when the prediction was wrong or the sum's
 * magnitude has not yet saturated past theta (to avoid over-training
 * and keep adaptation fast).
 */

#ifndef PFSIM_CORE_PPF_HH
#define PFSIM_CORE_PPF_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "core/feature_analysis.hh"
#include "core/features.hh"
#include "core/filter_tables.hh"
#include "core/weight_tables.hh"
#include "prefetch/spp.hh"
#include "util/types.hh"

namespace pfsim::ppf
{

/** PPF tuning parameters. */
struct PpfConfig
{
    /** Sum threshold at or above which a candidate fills the L2. */
    int tauHi = 40;

    /**
     * Sum threshold below which a candidate is rejected.  Slightly
     * positive, so an untrained filter starts out skeptical: unknown
     * candidates are dropped until demand traffic to their addresses
     * lands in the Reject Table and trains the weights up.  This is
     * what makes the Reject Table's false-negative path (Figure 5,
     * steps 3-4) the bootstrap mechanism of the filter.
     */
    int tauLo = 2;

    /** Positive training saturation: train up only while sum < this. */
    int thetaP = 72;

    /** Negative training saturation: train down only while sum > this. */
    int thetaN = -72;

    /** Prefetch Table entries. */
    std::uint32_t prefetchTableEntries = 1024;

    /** Reject Table entries. */
    std::uint32_t rejectTableEntries = 1024;

    /** Feature enable mask (bit f = FeatureId f); for ablations. */
    std::uint32_t featureMask = 0x1ff;

    /** Effective weight width in bits (2..5); for ablations. */
    unsigned weightClampBits = 5;
};

/** PPF event counters. */
struct PpfStats
{
    std::uint64_t candidates = 0;
    std::uint64_t acceptedL2 = 0;
    std::uint64_t acceptedLlc = 0;
    std::uint64_t rejected = 0;

    std::uint64_t trainUseful = 0;      ///< prefetch-table demand hits
    std::uint64_t trainFalseNegative = 0; ///< reject-table demand hits
    std::uint64_t trainUselessEvict = 0;  ///< unused-prefetch evictions
};

/** The perceptron filter. */
class Ppf : public prefetch::SppFilter
{
  public:
    explicit Ppf(PpfConfig config = {});

    // prefetch::SppFilter: precompute one lookahead burst's feature
    // indices and inference sums in a single batched kernel pass;
    // the upcoming test() calls are served from this cache.
    void beginBatch(const prefetch::SppCandidate *candidates,
                    std::size_t count) override;

    // prefetch::SppFilter: inference (step 1).
    Decision test(const prefetch::SppCandidate &candidate) override;

    // prefetch::SppFilter: Prefetch Table recording (step 2); only
    // candidates that actually entered the prefetch queue are logged,
    // so table churn reflects real prefetches.
    void notifyIssued(const prefetch::SppCandidate &candidate,
                      bool fill_l2) override;

    /**
     * Feedback from an L2 demand access to @p addr (steps 3 and 4):
     * also shifts the PC history used by the PC-path feature.
     */
    void onDemand(Addr addr, Pc pc);

    /** Feedback from an L2 eviction of a never-used prefetched block. */
    void onUselessEviction(Addr addr);

    /** Inference sum for an arbitrary candidate (tests/analysis). */
    int inferenceSum(const prefetch::SppCandidate &candidate) const;

    const PpfStats &ppfStats() const { return stats_; }
    const PpfConfig &config() const { return config_; }
    const WeightTables &weights() const { return weights_; }

    /** test() calls served from the batched-inference cache (host
     *  telemetry for tests/benches; not simulated machine state). */
    std::uint64_t batchSumHits() const { return batchSumHits_; }

    /**
     * Pin the weight kernel (tests and benches; simulation behaviour
     * is kernel-independent by construction).  @return false when the
     * host cannot run @p k; the current kernel is kept.
     */
    bool forceKernel(simd::Kernel k) { return weights_.forceKernel(k); }

    /** Attach the Figure 6-8 instrumentation (optional). */
    void setAnalysis(FeatureAnalysis *analysis) { analysis_ = analysis; }

    /**
     * Flip bit @p bit (0..weightBits-1) of the stored two's-complement
     * encoding of weight (@p feature, @p index) — a transient soft
     * error (called only from src/fault).  The flipped value is
     * re-clamped to the configured weight range, as real saturating
     * hardware would on the next update.  @return the post-flip value.
     */
    int faultInjectWeightFlip(FeatureId feature, std::uint32_t index,
                              unsigned bit);

    /** Read-only view of the filter's state for the invariant auditor. */
    struct AuditView
    {
        const PpfConfig *config;
        const WeightTables *weights;
        const FilterTable *prefetchTable;
        const FilterTable *rejectTable;

        /** Most recent inference sum; meaningful when sumValid. */
        int lastSum;
        bool sumValid;
    };

    AuditView
    auditState() const
    {
        return {&config_, &weights_, &prefetchTable_, &rejectTable_,
                lastSum_, sumValid_};
    }

    /**
     * Snapshot support (definitions in snapshot/state_io.cc).  The
     * analysis attachment is unowned wiring and is not serialized.
     */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    FeatureInput buildInput(const prefetch::SppCandidate &candidate)
        const;
    void train(const FilterEntry &entry, bool positive);
    void recordDisplacedOutcome(const FilterEntry &displaced);

    /**
     * One precomputed burst candidate (beginBatch).  Only the
     * candidate (for the lookup match) and its sum are kept; a served
     * test() that still needs the FeatureInput — the reject-table
     * insert on a drop — rebuilds it with buildInput(), bit-identical
     * because the invalidation contract guarantees the PC history has
     * not moved since beginBatch().
     */
    struct BatchEntry
    {
        prefetch::SppCandidate candidate;
        int sum = 0;
    };

    /**
     * Drop the precomputed burst.  Called on every path that mutates
     * the weights or the PC history (training feedback, restores,
     * fault injection), so a cached sum can never go stale: between
     * beginBatch() and the test() calls it serves, nothing the sum
     * depends on can change.
     */
    void
    invalidateBatch()
    {
        batchSize_ = 0;
        batchNext_ = 0;
    }

    /**
     * The cached entry for @p candidate, or nullptr.  Consumption
     * follows batch order (the burst contract), so matching resumes
     * where the previous test() left off.
     */
    const BatchEntry *batchLookup(
        const prefetch::SppCandidate &candidate);

    PpfConfig config_;
    WeightTables weights_;
    FilterTable prefetchTable_;
    FilterTable rejectTable_;
    FeatureAnalysis *analysis_ = nullptr;

    /** The last three demand PCs (PC-path feature input). */
    Pc pcHistory_[3] = {0, 0, 0};

    /** Most recent inference sum, kept for the invariant auditor. */
    int lastSum_ = 0;
    bool sumValid_ = false;

    /** Precomputed burst cache (transient; never serialized). */
    std::array<BatchEntry, prefetch::SppFilter::maxBatch> batch_;
    std::size_t batchSize_ = 0;
    std::size_t batchNext_ = 0;

    /** Host-side telemetry: cache-served test() calls. */
    std::uint64_t batchSumHits_ = 0;

    PpfStats stats_;
};

} // namespace pfsim::ppf

#endif // PFSIM_CORE_PPF_HH
