/**
 * @file
 * The SIMD kernels behind PPF's weight tables, and the one header in
 * the tree allowed to include CPU intrinsics (lint rule 9).
 *
 * Three implementations of the same two kernels — batched inference
 * sum and single-candidate train — selected once at construction by
 * runtime CPU detection:
 *
 *   Scalar  portable reference; always available, always the
 *           correctness oracle.
 *   Sse2    x86-64 baseline: 4 candidates per pass, vertical 32-bit
 *           adds, scalar weight loads (SSE2 has no gather).
 *   Avx2    8 candidates per pass via vpgatherdd byte-offset gathers
 *           straight out of the flat weight array.
 *
 * Every implementation is bit-identical to Scalar by construction:
 * weights are int8, sums are exact int32 additions (associative, so
 * lane order cannot matter), disabled features are masked with the
 * same 0/-0x1 multiplier trick as the scalar 0/1 multiply, and the
 * train kernel clamps with the same [lo, hi] bounds in the same
 * single-clamp order as WeightTables::train always has.  The flat
 * array carries gatherPadBytes of tail padding so a kernel may read
 * up to 4 bytes per weight (WeightTables allocates it; the padding
 * is storage-only and never serialized).  The current kernels use
 * scalar byte loads — vpgatherdd was measured slower on
 * GDS-mitigated server parts — but the padding keeps a true gather
 * legal should one win elsewhere.
 *
 * There is deliberately no vectorized single-candidate sum: with only
 * numFeatures weights per candidate, gather setup costs more than the
 * nine scalar loads it replaces (measured ~4x slower on Skylake-class
 * hardware), so WeightTables::sum() always runs the scalar loop and
 * the vector kernels earn their keep at batch width.
 *
 * Compile-time gating: PFSIM_SIMD_LEVEL (set by the PFSIM_SIMD CMake
 * option) caps the dispatch — 0 forces Scalar and compiles no
 * intrinsics at all, 1 caps at Sse2, 2 (the default) enables the full
 * runtime dispatch.  The AVX2 functions carry a target attribute, so
 * they build correctly even without -mavx2 and are only ever called
 * behind the runtime check.
 */

#ifndef PFSIM_CORE_SIMD_HH
#define PFSIM_CORE_SIMD_HH

#include <cstddef>
#include <cstdint>

#ifndef PFSIM_SIMD_LEVEL
#define PFSIM_SIMD_LEVEL 2
#endif

#if defined(__x86_64__) && PFSIM_SIMD_LEVEL > 0
#define PFSIM_SIMD_X86 1
#include <immintrin.h>
#else
#define PFSIM_SIMD_X86 0
#endif

namespace pfsim::simd
{

/** Kernel implementation the weight tables dispatch to. */
enum class Kernel
{
    Scalar,
    Sse2,
    Avx2,
};

/** Bytes of tail padding after the last weight, enough for a kernel
 *  to read 4 bytes per weight (e.g. a vpgatherdd-based one);
 *  harmless (and allocated) for every kernel. */
inline constexpr std::size_t gatherPadBytes = 3;

/** Widest batch a single kernel pass handles (one AVX2 vector). */
inline constexpr std::size_t batchWidth = 8;

inline const char *
kernelName(Kernel k)
{
    switch (k) {
      case Kernel::Scalar:
        return "scalar";
      case Kernel::Sse2:
        return "sse2";
      case Kernel::Avx2:
        return "avx2";
    }
    return "scalar";
}

/** True when @p k can run on this build and this host CPU. */
inline bool
kernelSupported(Kernel k)
{
    switch (k) {
      case Kernel::Scalar:
        return true;
      case Kernel::Sse2:
        return PFSIM_SIMD_X86 != 0 && PFSIM_SIMD_LEVEL >= 1;
      case Kernel::Avx2:
#if PFSIM_SIMD_X86 && PFSIM_SIMD_LEVEL >= 2
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    }
    return false;
}

/**
 * The kernel auto-dispatch picks on this build and host.  SSE2 is
 * preferred over AVX2 when both are available: the AVX2 kernel must
 * live behind a `target("avx2")` attribute (the build never passes
 * -mavx2 globally), which blocks inlining into the dispatch wrapper,
 * and the resulting call overhead measured slightly slower than the
 * fully-inlined SSE2 path on Skylake-class hosts.  AVX2 stays
 * selectable via WeightTables::forceKernel for hardware where it
 * wins — every kernel produces identical bytes, so the choice is
 * speed-only.
 */
inline Kernel
detectKernel()
{
    if (kernelSupported(Kernel::Sse2))
        return Kernel::Sse2;
    return Kernel::Scalar;
}

/**
 * Scalar batched sum, the reference all other kernels must match
 * bit-for-bit.  @p idx is feature-major: feature f's index for
 * candidate c is idx[f * batchWidth + c], already absolute into
 * @p flat.  @p mult is the 0/1 per-feature enable multiplier.
 * @p bias seeds every lane's accumulator — callers hoist the weights
 * of burst-invariant features into it (int32 addition is associative
 * and commutative, so folding them in first cannot change the sum).
 */
inline void
sumBatchScalar(const std::int8_t *flat, const std::uint32_t *idx,
               const std::int32_t *mult, unsigned nfeat, std::size_t n,
               std::int32_t *out, std::int32_t bias = 0)
{
    for (std::size_t c = 0; c < n; ++c) {
        std::int32_t s = bias;
        for (unsigned f = 0; f < nfeat; ++f)
            s += std::int32_t(flat[idx[f * batchWidth + c]]) * mult[f];
        out[c] = s;
    }
}

#if PFSIM_SIMD_X86

/**
 * SSE2 batched sum: candidates vertical in 4-wide int32 lanes, scalar
 * sign-extending weight loads, disabled features AND-masked to zero
 * (identical to multiplying by 0).
 */
inline void
sumBatchSse2(const std::int8_t *flat, const std::uint32_t *idx,
             const std::int32_t *mult, unsigned nfeat, std::size_t n,
             std::int32_t *out, std::int32_t bias = 0)
{
    std::size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        __m128i acc = _mm_set1_epi32(bias);
        for (unsigned f = 0; f < nfeat; ++f) {
            const std::uint32_t *row = idx + f * batchWidth + c;
            const __m128i w = _mm_set_epi32(
                std::int32_t(flat[row[3]]), std::int32_t(flat[row[2]]),
                std::int32_t(flat[row[1]]), std::int32_t(flat[row[0]]));
            // -mult is 0 or ~0: the AND replicates the 0/1 multiply.
            const __m128i enable = _mm_set1_epi32(-mult[f]);
            acc = _mm_add_epi32(acc, _mm_and_si128(w, enable));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + c), acc);
    }
    if (c < n)
        sumBatchScalar(flat, idx + c, mult, nfeat, n - c, out + c,
                       bias);
}

/**
 * SSE2 train: features 0..7 move one step and clamp in parallel
 * 16-bit lanes; only enabled lanes are stored back, so a disabled
 * weight parked outside [lo, hi] by fault injection is never
 * re-clamped (exactly the scalar loop's behaviour).  Features beyond
 * the vector width fall back to the scalar rule.
 */
inline void
trainSse2(std::int8_t *flat, const std::uint32_t *idx,
          std::uint32_t feature_mask, unsigned nfeat, int step, int lo,
          int hi)
{
    const unsigned vec = nfeat < 8 ? nfeat : 8;
    alignas(16) std::int8_t buf[16] = {};
    for (unsigned f = 0; f < vec; ++f)
        buf[f] = flat[idx[f]];

    const __m128i packed =
        _mm_load_si128(reinterpret_cast<const __m128i *>(buf));
    __m128i w = _mm_srai_epi16(_mm_unpacklo_epi8(packed, packed), 8);
    w = _mm_add_epi16(w, _mm_set1_epi16(std::int16_t(step)));
    w = _mm_min_epi16(w, _mm_set1_epi16(std::int16_t(hi)));
    w = _mm_max_epi16(w, _mm_set1_epi16(std::int16_t(lo)));
    // Values sit in [lo, hi], inside int8, so the saturating pack is
    // exact.
    const __m128i narrow = _mm_packs_epi16(w, w);
    _mm_store_si128(reinterpret_cast<__m128i *>(buf), narrow);

    for (unsigned f = 0; f < vec; ++f) {
        if ((feature_mask >> f) & 1)
            flat[idx[f]] = buf[f];
    }
    for (unsigned f = vec; f < nfeat; ++f) {
        if ((feature_mask >> f) & 1) {
            const int v = int(flat[idx[f]]) + step;
            flat[idx[f]] =
                std::int8_t(v < lo ? lo : (v > hi ? hi : v));
        }
    }
}

#if PFSIM_SIMD_LEVEL >= 2

/**
 * AVX2 batched sum: a full 8-wide row per add, so each feature costs
 * one masked 256-bit accumulate instead of SSE2's two.  The weights
 * are fetched with eight scalar sign-extending byte loads rather
 * than vpgatherdd: on GDS-mitigated server parts the gather is
 * microcoded and measured ~15% slower end-to-end than the scalar
 * loads, and the loads keep the kernel inside the flat array's
 * logical bytes (no tail-padding requirement).
 */
__attribute__((target("avx2"))) inline void
sumBatchAvx2(const std::int8_t *flat, const std::uint32_t *idx,
             const std::int32_t *mult, unsigned nfeat, std::size_t n,
             std::int32_t *out, std::int32_t bias = 0)
{
    __m256i acc = _mm256_set1_epi32(bias);
    for (unsigned f = 0; f < nfeat; ++f) {
        const std::uint32_t *row = idx + f * batchWidth;
        const __m256i w = _mm256_set_epi32(
            std::int32_t(flat[row[7]]), std::int32_t(flat[row[6]]),
            std::int32_t(flat[row[5]]), std::int32_t(flat[row[4]]),
            std::int32_t(flat[row[3]]), std::int32_t(flat[row[2]]),
            std::int32_t(flat[row[1]]), std::int32_t(flat[row[0]]));
        // -mult is 0 or ~0: the AND replicates the 0/1 multiply.
        const __m256i enable = _mm256_set1_epi32(-mult[f]);
        acc = _mm256_add_epi32(acc, _mm256_and_si256(w, enable));
    }
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    for (std::size_t c = 0; c < n; ++c)
        out[c] = lanes[c];
}

#endif // PFSIM_SIMD_LEVEL >= 2
#endif // PFSIM_SIMD_X86

/**
 * Dispatched batched sum over up to batchWidth candidates.  Layout
 * and semantics of sumBatchScalar; every kernel produces the same
 * bytes in @p out.
 */
inline void
sumBatch(Kernel k, const std::int8_t *flat, const std::uint32_t *idx,
         const std::int32_t *mult, unsigned nfeat, std::size_t n,
         std::int32_t *out, std::int32_t bias = 0)
{
#if PFSIM_SIMD_X86
#if PFSIM_SIMD_LEVEL >= 2
    if (k == Kernel::Avx2) {
        sumBatchAvx2(flat, idx, mult, nfeat, n, out, bias);
        return;
    }
#endif
    if (k != Kernel::Scalar) {
        sumBatchSse2(flat, idx, mult, nfeat, n, out, bias);
        return;
    }
#else
    (void)k;
#endif
    sumBatchScalar(flat, idx, mult, nfeat, n, out, bias);
}

/** Dispatched single-candidate train (absolute indices). */
inline void
train(Kernel k, std::int8_t *flat, const std::uint32_t *idx,
      std::uint32_t feature_mask, unsigned nfeat, int step, int lo,
      int hi)
{
#if PFSIM_SIMD_X86
    if (k != Kernel::Scalar) {
        trainSse2(flat, idx, feature_mask, nfeat, step, lo, hi);
        return;
    }
#else
    (void)k;
#endif
    for (unsigned f = 0; f < nfeat; ++f) {
        if ((feature_mask >> f) & 1) {
            const int v = int(flat[idx[f]]) + step;
            flat[idx[f]] =
                std::int8_t(v < lo ? lo : (v > hi ? hi : v));
        }
    }
}

} // namespace pfsim::simd

#endif // PFSIM_CORE_SIMD_HH
