#include "core/spp_ppf.hh"

namespace pfsim::ppf
{

SppPpfPrefetcher::SppPpfPrefetcher(SppPpfConfig config)
    : ppf_(config.ppf),
      spp_(std::make_unique<prefetch::SppPrefetcher>(config.spp, &ppf_))
{
}

void
SppPpfPrefetcher::operate(const prefetch::OperateInfo &info)
{
    // The issuer is bound after construction, so forward it lazily.
    spp_->attach(issuer_);

    // Feedback first (steps 3-4 of Figure 5): the demand may vindicate
    // or indict earlier decisions before new candidates are produced.
    ppf_.onDemand(info.addr, info.pc);

    // Then let SPP generate candidates; each one calls back into
    // Ppf::test through the SppFilter interface.
    spp_->operate(info);
}

void
SppPpfPrefetcher::fill(const prefetch::FillInfo &info)
{
    if (info.evictedValid && info.evictedUnusedPrefetch)
        ppf_.onUselessEviction(info.evictedAddr);
    spp_->fill(info);
}

const std::string &
SppPpfPrefetcher::name() const
{
    static const std::string n = "spp_ppf";
    return n;
}

} // namespace pfsim::ppf
