/**
 * @file
 * SPP + PPF: the paper's evaluated configuration.  An SPP instance is
 * re-tuned for maximum coverage (original T_p/T_f throttles effectively
 * discarded, Section 4.1) and every candidate it produces is passed to
 * the perceptron filter, which makes the drop / L2 / LLC decision.
 */

#ifndef PFSIM_CORE_SPP_PPF_HH
#define PFSIM_CORE_SPP_PPF_HH

#include <memory>

#include "core/ppf.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/spp.hh"

namespace pfsim::ppf
{

/** Combined configuration. */
struct SppPpfConfig
{
    /**
     * The aggressive SPP re-tune: thresholds lowered so deep candidate
     * generation reaches the filter instead of being throttled.
     */
    prefetch::SppConfig spp = aggressiveSpp();

    PpfConfig ppf = {};

    /** The paper's aggressive SPP settings. */
    static prefetch::SppConfig
    aggressiveSpp()
    {
        prefetch::SppConfig config;
        // With PPF attached the confidence thresholds no longer gate
        // prefetching; the lookahead floor keeps the walk bounded.
        config.prefetchThreshold = 4;
        config.fillThreshold = 90;
        config.filteredFloor = 4;
        config.maxDepth = 16;
        return config;
    }
};

/** The SPP+PPF prefetcher. */
class SppPpfPrefetcher : public prefetch::Prefetcher
{
  public:
    explicit SppPpfPrefetcher(SppPpfConfig config = {});

    void operate(const prefetch::OperateInfo &info) override;
    void fill(const prefetch::FillInfo &info) override;
    const std::string &name() const override;

    Ppf &filter() { return ppf_; }
    const Ppf &filter() const { return ppf_; }
    prefetch::SppPrefetcher &spp() { return *spp_; }
    const prefetch::SppPrefetcher &spp() const { return *spp_; }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    Ppf ppf_;
    std::unique_ptr<prefetch::SppPrefetcher> spp_;
};

} // namespace pfsim::ppf

#endif // PFSIM_CORE_SPP_PPF_HH
