#include "core/storage.hh"

#include <numeric>

#include "core/features.hh"

namespace pfsim::ppf
{

std::vector<StorageField>
prefetchTableEntryLayout()
{
    // Table 2 of the paper, field for field.
    return {
        {"Valid", 1, "Indicates a valid entry in the table"},
        {"Tag", 6, "Identifier for the entry in the table"},
        {"Useful", 1, "Entry led to a useful demand fetch"},
        {"Perc Decision", 1, "Prefetched vs not-prefetched"},
        {"PC", 12, "Trigger PC (hashed)"},
        {"Address", 24, "Trigger address bits"},
        {"Curr Signature", 10, "Lookahead-stage signature"},
        {"PC_i Hash", 12, "PC_1 ^ PC_2>>1 ^ PC_3>>2"},
        {"Delta", 7, "Predicted delta (sign-magnitude)"},
        {"Confidence", 7, "Path confidence, 0..100"},
        {"Depth", 4, "Lookahead depth"},
    };
}

unsigned
prefetchTableEntryBits()
{
    const auto layout = prefetchTableEntryLayout();
    return std::accumulate(layout.begin(), layout.end(), 0u,
                           [](unsigned acc, const StorageField &f) {
                               return acc + f.bits;
                           });
}

unsigned
rejectTableEntryBits()
{
    // The Reject Table drops the Useful bit (paper footnote 2).
    return prefetchTableEntryBits() - 1;
}

std::vector<StorageRow>
storageBudget()
{
    std::vector<StorageRow> rows;

    rows.push_back({"Signature Table", "256",
                    "Valid(1) Tag(16) LastOffset(6) Sig(12) LRU(8)",
                    std::uint64_t(256) * (1 + 16 + 6 + 12 + 8)});

    rows.push_back({"Pattern Table", "512",
                    "Csig(4) 4xCdelta(4) 4xDelta(7)",
                    std::uint64_t(512) * (4 + 4 * 4 + 4 * 7)});

    std::uint64_t weight_entries = 0;
    for (unsigned f = 0; f < numFeatures; ++f)
        weight_entries += featureTableSizes[f];
    rows.push_back({"Perceptron Weights", "4096*4 2048*2 1024*2 128*1",
                    "5 bits each", weight_entries * 5});

    rows.push_back({"Prefetch Table", "1024",
                    "85 bits (Table 2)",
                    std::uint64_t(1024) * prefetchTableEntryBits()});

    rows.push_back({"Reject Table", "1024", "84 bits (no Useful)",
                    std::uint64_t(1024) * rejectTableEntryBits()});

    rows.push_back({"Global History Register", "8",
                    "Sig(12) Conf(8) LastOffset(6) Delta(7)",
                    std::uint64_t(8) * (12 + 8 + 6 + 7)});

    rows.push_back({"Accuracy Counters", "2", "C_total, C_useful (10)",
                    std::uint64_t(2) * 10});

    rows.push_back({"Global PC Trackers", "3", "PC_1..PC_3 (12 each)",
                    std::uint64_t(3) * 12});

    return rows;
}

std::uint64_t
totalStorageBits()
{
    std::uint64_t total = 0;
    for (const StorageRow &row : storageBudget())
        total += row.totalBits;
    return total;
}

} // namespace pfsim::ppf
