/**
 * @file
 * Hardware storage accounting reproducing the paper's Table 2
 * (Prefetch Table entry layout, 85 bits) and Table 3 (total SPP+PPF
 * budget, 322,240 bits = 39.34 KB).  Computed from the same structural
 * constants the implementation uses, so a change to the configuration
 * shows up in the reproduced tables.
 */

#ifndef PFSIM_CORE_STORAGE_HH
#define PFSIM_CORE_STORAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pfsim::ppf
{

/** One field of a bit-level layout. */
struct StorageField
{
    std::string name;
    unsigned bits;
    std::string comment;
};

/** One structure row of Table 3. */
struct StorageRow
{
    std::string structure;
    std::string entryCount;
    std::string components;
    std::uint64_t totalBits;
};

/** Table 2: the Prefetch Table entry layout. */
std::vector<StorageField> prefetchTableEntryLayout();

/** Bits per Prefetch Table entry (must be 85). */
unsigned prefetchTableEntryBits();

/** Bits per Reject Table entry (no useful bit: 84). */
unsigned rejectTableEntryBits();

/** Table 3: every SPP+PPF structure and its bit budget. */
std::vector<StorageRow> storageBudget();

/** Total budget in bits (must be 322,240). */
std::uint64_t totalStorageBits();

} // namespace pfsim::ppf

#endif // PFSIM_CORE_STORAGE_HH
