#include "core/weight_tables.hh"

#include <algorithm>
#include <bit>
#include <string>

#include "util/logging.hh"

namespace pfsim::ppf
{

WeightTables::WeightTables(std::uint32_t feature_mask,
                           unsigned clamp_bits)
    : featureMask_(feature_mask & ((1u << numFeatures) - 1))
{
    if (clamp_bits < 2 || clamp_bits > weightBits) {
        fatal("weight clamp width must be within [2, " +
              std::to_string(weightBits) + "] bits, got " +
              std::to_string(clamp_bits));
    }
    clampMin_ = -(1 << (clamp_bits - 1));
    clampMax_ = (1 << (clamp_bits - 1)) - 1;
    for (unsigned f = 0; f < numFeatures; ++f)
        tables_[f].assign(featureTableSizes[f], Weight{});
}

bool
WeightTables::enabled(FeatureId feature) const
{
    return (featureMask_ >> unsigned(feature)) & 1;
}

int
WeightTables::sum(const FeatureIndices &idx) const
{
    int s = 0;
    for (unsigned f = 0; f < numFeatures; ++f) {
        if ((featureMask_ >> f) & 1)
            s += tables_[f][idx[f]].value();
    }
    return s;
}

void
WeightTables::train(const FeatureIndices &idx, bool positive)
{
    for (unsigned f = 0; f < numFeatures; ++f) {
        if ((featureMask_ >> f) & 1) {
            Weight &w = tables_[f][idx[f]];
            w.train(positive);
            w.set(std::clamp(w.value(), clampMin_, clampMax_));
        }
    }
}

int
WeightTables::weight(FeatureId feature, std::uint32_t index) const
{
    return tables_[unsigned(feature)][index].value();
}

stats::Histogram
WeightTables::weightHistogram(FeatureId feature) const
{
    stats::Histogram hist(Weight::min, Weight::max);
    for (const Weight &w : tables_[unsigned(feature)])
        hist.add(w.value());
    return hist;
}

int
WeightTables::minSum() const
{
    return int(std::popcount(featureMask_)) * clampMin_;
}

int
WeightTables::maxSum() const
{
    return int(std::popcount(featureMask_)) * clampMax_;
}

} // namespace pfsim::ppf
