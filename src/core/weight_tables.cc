#include "core/weight_tables.hh"

#include <bit>
#include <string>

#include "util/logging.hh"

namespace pfsim::ppf
{

WeightTables::WeightTables(std::uint32_t feature_mask,
                           unsigned clamp_bits)
    : featureMask_(feature_mask & ((1u << numFeatures) - 1)),
      kernel_(simd::detectKernel())
{
    if (clamp_bits < 2 || clamp_bits > weightBits) {
        fatal("weight clamp width must be within [2, " +
              std::to_string(weightBits) + "] bits, got " +
              std::to_string(clamp_bits));
    }
    clampMin_ = -(1 << (clamp_bits - 1));
    clampMax_ = (1 << (clamp_bits - 1)) - 1;

    std::uint32_t offset = 0;
    for (unsigned f = 0; f < numFeatures; ++f) {
        offsets_[f] = offset;
        offset += featureTableSizes[f];
        mult_[f] = std::int32_t((featureMask_ >> f) & 1);
    }
    offsets_[numFeatures] = offset;
    for (std::size_t r = 0; r < burstPerCandidateFeatures.size(); ++r)
        burstMult_[r] = mult_[unsigned(burstPerCandidateFeatures[r])];
    // Tail padding keeps the AVX2 4-byte gather in-bounds on the last
    // weights; the pad bytes are storage-only and never serialized.
    flat_.assign(offset + simd::gatherPadBytes, 0);

    minSum_ = int(std::popcount(featureMask_)) * clampMin_;
    maxSum_ = int(std::popcount(featureMask_)) * clampMax_;
}

void
WeightTables::sumBatch(const FeatureIndices *idx, std::size_t n,
                       std::int32_t *out) const
{
    for (std::size_t base = 0; base < n; base += batchCapacity) {
        const std::size_t chunk = n - base < batchCapacity
            ? n - base
            : batchCapacity;
        // Feature-major absolute offsets; unused lanes point at
        // weight 0 so full-width gathers stay in-bounds (their result
        // is discarded).  The transpose walks candidate-major so each
        // FeatureIndices array is read once, front to back, with
        // compile-time trip counts the compiler fully unrolls.
        std::uint32_t abs_idx[numFeatures * batchCapacity] = {};
        if (chunk == batchCapacity) {
            for (std::size_t c = 0; c < batchCapacity; ++c) {
                const FeatureIndices &one = idx[base + c];
                for (unsigned f = 0; f < numFeatures; ++f)
                    abs_idx[f * batchCapacity + c] =
                        offsets_[f] + one[f];
            }
        } else {
            for (std::size_t c = 0; c < chunk; ++c) {
                const FeatureIndices &one = idx[base + c];
                for (unsigned f = 0; f < numFeatures; ++f)
                    abs_idx[f * batchCapacity + c] =
                        offsets_[f] + one[f];
            }
        }
        simd::sumBatch(kernel_, flat_.data(), abs_idx, mult_.data(),
                       numFeatures, chunk, out + base);
    }
}

void
WeightTables::sumBurst(const std::uint32_t *abs_idx, std::size_t n,
                       std::int32_t *out, std::int32_t bias) const
{
    simd::sumBatch(kernel_, flat_.data(), abs_idx, burstMult_.data(),
                   unsigned(burstPerCandidateFeatures.size()), n, out,
                   bias);
}

void
WeightTables::train(const FeatureIndices &idx, bool positive)
{
    // A stored weight is always within [clampMin_, clampMax_], itself
    // within the physical 5-bit range, so one clamp of value +/- 1 is
    // exactly the old saturate-at-5-bits-then-clamp sequence.
    std::uint32_t abs_idx[numFeatures];
    for (unsigned f = 0; f < numFeatures; ++f)
        abs_idx[f] = offsets_[f] + idx[f];
    simd::train(kernel_, flat_.data(), abs_idx, featureMask_,
                numFeatures, positive ? 1 : -1, clampMin_, clampMax_);
}

stats::Histogram
WeightTables::weightHistogram(FeatureId feature) const
{
    stats::Histogram hist(Weight::min, Weight::max);
    const unsigned f = unsigned(feature);
    for (std::uint32_t i = offsets_[f]; i < offsets_[f + 1]; ++i)
        hist.add(flat_[i]);
    return hist;
}

} // namespace pfsim::ppf
