#include "core/weight_tables.hh"

#include <algorithm>
#include <bit>
#include <string>

#include "util/logging.hh"

namespace pfsim::ppf
{

WeightTables::WeightTables(std::uint32_t feature_mask,
                           unsigned clamp_bits)
    : featureMask_(feature_mask & ((1u << numFeatures) - 1))
{
    if (clamp_bits < 2 || clamp_bits > weightBits) {
        fatal("weight clamp width must be within [2, " +
              std::to_string(weightBits) + "] bits, got " +
              std::to_string(clamp_bits));
    }
    clampMin_ = -(1 << (clamp_bits - 1));
    clampMax_ = (1 << (clamp_bits - 1)) - 1;

    std::uint32_t offset = 0;
    for (unsigned f = 0; f < numFeatures; ++f) {
        offsets_[f] = offset;
        offset += featureTableSizes[f];
        mult_[f] = std::int32_t((featureMask_ >> f) & 1);
    }
    offsets_[numFeatures] = offset;
    flat_.assign(offset, 0);
}

void
WeightTables::train(const FeatureIndices &idx, bool positive)
{
    // A stored weight is always within [clampMin_, clampMax_], itself
    // within the physical 5-bit range, so one clamp of value +/- 1 is
    // exactly the old saturate-at-5-bits-then-clamp sequence.
    const int step = positive ? 1 : -1;
    for (unsigned f = 0; f < numFeatures; ++f) {
        if ((featureMask_ >> f) & 1) {
            std::int8_t &w = flat_[offsets_[f] + idx[f]];
            w = std::int8_t(
                std::clamp(int(w) + step, clampMin_, clampMax_));
        }
    }
}

stats::Histogram
WeightTables::weightHistogram(FeatureId feature) const
{
    stats::Histogram hist(Weight::min, Weight::max);
    const unsigned f = unsigned(feature);
    for (std::uint32_t i = offsets_[f]; i < offsets_[f + 1]; ++i)
        hist.add(flat_[i]);
    return hist;
}

int
WeightTables::minSum() const
{
    return int(std::popcount(featureMask_)) * clampMin_;
}

int
WeightTables::maxSum() const
{
    return int(std::popcount(featureMask_)) * clampMax_;
}

} // namespace pfsim::ppf
