/**
 * @file
 * The hashed-perceptron weight tables of PPF: one table per feature,
 * 5-bit saturating weights in [-16, +15] (paper Section 3.1).
 */

#ifndef PFSIM_CORE_WEIGHT_TABLES_HH
#define PFSIM_CORE_WEIGHT_TABLES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/features.hh"
#include "stats/histogram.hh"
#include "util/sat_counter.hh"

namespace pfsim::ppf
{

/** Weight width in bits (Section 3.1: 5 bits is the sweet spot). */
inline constexpr unsigned weightBits = 5;

/** One 5-bit perceptron weight. */
using Weight = SignedSatCounter<weightBits>;

/** The per-feature weight tables. */
class WeightTables
{
  public:
    /**
     * @param feature_mask bit f enables feature f; disabled features
     * contribute 0 to sums and are never trained (ablation studies).
     * @param clamp_bits effective weight width in [2, 5]: weights are
     * clamped to the narrower range, emulating cheaper storage for
     * the paper's bit-width trade-off study (Section 3.1).
     */
    explicit WeightTables(std::uint32_t feature_mask = 0x1ff,
                          unsigned clamp_bits = weightBits);

    /** Sum the weights selected by @p idx over enabled features. */
    int sum(const FeatureIndices &idx) const;

    /**
     * Perceptron update: move every enabled selected weight one step
     * toward @p positive.
     */
    void train(const FeatureIndices &idx, bool positive);

    /** Read one weight (analysis / tests). */
    int weight(FeatureId feature, std::uint32_t index) const;

    /** True when @p feature participates in predictions. */
    bool enabled(FeatureId feature) const;

    /** Histogram of a feature's trained weights (Figure 6). */
    stats::Histogram weightHistogram(FeatureId feature) const;

    /** Smallest / largest possible sum given the enabled features. */
    int minSum() const;
    int maxSum() const;

    /** Effective weight range after clamping. */
    int weightMin() const { return clampMin_; }
    int weightMax() const { return clampMax_; }

    /** Read-only view of the raw storage for the invariant auditor. */
    struct AuditView
    {
        std::uint32_t featureMask;
        int clampMin;
        int clampMax;
        const std::array<std::vector<Weight>, numFeatures> *tables;
    };

    AuditView
    auditState() const
    {
        return {featureMask_, clampMin_, clampMax_, &tables_};
    }

    /**
     * Fault injection for auditor tests: overwrite one raw weight,
     * bypassing the clamp applied by train().  Never used by the
     * simulator itself.
     */
    void
    poke(FeatureId feature, std::uint32_t index, int value)
    {
        tables_[unsigned(feature)][index].set(value);
    }

  private:
    std::uint32_t featureMask_;
    int clampMin_;
    int clampMax_;
    std::array<std::vector<Weight>, numFeatures> tables_;
};

} // namespace pfsim::ppf

#endif // PFSIM_CORE_WEIGHT_TABLES_HH
