/**
 * @file
 * The hashed-perceptron weight tables of PPF: one table per feature,
 * 5-bit saturating weights in [-16, +15] (paper Section 3.1).
 *
 * Storage is one flat std::int8_t array with per-feature offsets so
 * the inference sum — the hottest loop in the filter — is a single
 * branch-free pass: nine loads, nine 0/1 multiplies, no per-feature
 * vector indirection.
 */

#ifndef PFSIM_CORE_WEIGHT_TABLES_HH
#define PFSIM_CORE_WEIGHT_TABLES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/features.hh"
#include "stats/histogram.hh"
#include "util/sat_counter.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::ppf
{

/** Weight width in bits (Section 3.1: 5 bits is the sweet spot). */
inline constexpr unsigned weightBits = 5;

/** One 5-bit perceptron weight (range constants; storage is flat). */
using Weight = SignedSatCounter<weightBits>;

/** The per-feature weight tables. */
class WeightTables
{
  public:
    /**
     * @param feature_mask bit f enables feature f; disabled features
     * contribute 0 to sums and are never trained (ablation studies).
     * @param clamp_bits effective weight width in [2, 5]: weights are
     * clamped to the narrower range, emulating cheaper storage for
     * the paper's bit-width trade-off study (Section 3.1).
     */
    explicit WeightTables(std::uint32_t feature_mask = 0x1ff,
                          unsigned clamp_bits = weightBits);

    /**
     * Sum the weights selected by @p idx over enabled features.
     * Branch-free: disabled features multiply by 0 instead of
     * branching, so the loop vectorises and never mispredicts.
     */
    int
    sum(const FeatureIndices &idx) const
    {
        int s = 0;
        for (unsigned f = 0; f < numFeatures; ++f)
            s += int(flat_[offsets_[f] + idx[f]]) * mult_[f];
        return s;
    }

    /**
     * Perceptron update: move every enabled selected weight one step
     * toward @p positive.
     */
    void train(const FeatureIndices &idx, bool positive);

    /** Read one weight (analysis / tests). */
    int
    weight(FeatureId feature, std::uint32_t index) const
    {
        return flat_[offsets_[unsigned(feature)] + index];
    }

    /** True when @p feature participates in predictions. */
    bool
    enabled(FeatureId feature) const
    {
        return (featureMask_ >> unsigned(feature)) & 1;
    }

    /** Histogram of a feature's trained weights (Figure 6). */
    stats::Histogram weightHistogram(FeatureId feature) const;

    /** Smallest / largest possible sum given the enabled features. */
    int minSum() const;
    int maxSum() const;

    /** Effective weight range after clamping. */
    int weightMin() const { return clampMin_; }
    int weightMax() const { return clampMax_; }

    /**
     * Read-only view of the raw storage for the invariant auditor:
     * feature f's table is weights[offsets[f]] .. weights[offsets[f+1]]
     * (offsets has numFeatures + 1 fence posts).
     */
    struct AuditView
    {
        std::uint32_t featureMask;
        int clampMin;
        int clampMax;
        const std::int8_t *weights;
        const std::uint32_t *offsets;
    };

    AuditView
    auditState() const
    {
        return {featureMask_, clampMin_, clampMax_, flat_.data(),
                offsets_.data()};
    }

    /**
     * Fault injection for auditor tests: overwrite one raw weight,
     * clamped only to the physical 5-bit range and bypassing the
     * configured clamp applied by train().  Never used by the
     * simulator itself.
     */
    void
    poke(FeatureId feature, std::uint32_t index, int value)
    {
        const int v = value < Weight::min
            ? Weight::min
            : (value > Weight::max ? Weight::max : value);
        flat_[offsets_[unsigned(feature)] + index] = std::int8_t(v);
    }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    std::uint32_t featureMask_;
    int clampMin_;
    int clampMax_;
    /** Fence-post offsets of each feature's table within flat_. */
    std::array<std::uint32_t, numFeatures + 1> offsets_;
    /** 0/1 per-feature multiplier derived from featureMask_. */
    std::array<std::int32_t, numFeatures> mult_;
    std::vector<std::int8_t> flat_;
};

} // namespace pfsim::ppf

#endif // PFSIM_CORE_WEIGHT_TABLES_HH
