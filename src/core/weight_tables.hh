/**
 * @file
 * The hashed-perceptron weight tables of PPF: one table per feature,
 * 5-bit saturating weights in [-16, +15] (paper Section 3.1).
 *
 * Storage is one flat std::int8_t array with per-feature offsets so
 * the inference sum — the hottest loop in the filter — is a single
 * branch-free pass.  Batched sums and the train loop dispatch at
 * construction to the best kernel the host supports (core/simd.hh:
 * scalar, SSE2 or AVX2 gathers); single-candidate sums stay scalar,
 * where they are fastest.  Every kernel is bit-identical to the
 * scalar reference, so figures, audits and snapshots cannot tell them
 * apart.  The flat array carries a few bytes of gather tail padding;
 * only the logical weights are serialized or audited.
 */

#ifndef PFSIM_CORE_WEIGHT_TABLES_HH
#define PFSIM_CORE_WEIGHT_TABLES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/features.hh"
#include "core/simd.hh"
#include "stats/histogram.hh"
#include "util/sat_counter.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::ppf
{

/** Weight width in bits (Section 3.1: 5 bits is the sweet spot). */
inline constexpr unsigned weightBits = 5;

/** One 5-bit perceptron weight (range constants; storage is flat). */
using Weight = SignedSatCounter<weightBits>;

/** The per-feature weight tables. */
class WeightTables
{
  public:
    /** Largest candidate batch one sumBatch() call accepts. */
    static constexpr std::size_t batchCapacity = simd::batchWidth;

    /**
     * @param feature_mask bit f enables feature f; disabled features
     * contribute 0 to sums and are never trained (ablation studies).
     * @param clamp_bits effective weight width in [2, 5]: weights are
     * clamped to the narrower range, emulating cheaper storage for
     * the paper's bit-width trade-off study (Section 3.1).
     */
    explicit WeightTables(std::uint32_t feature_mask = 0x1ff,
                          unsigned clamp_bits = weightBits);

    /**
     * Sum the weights selected by @p idx over enabled features.
     * Branch-free: disabled features multiply by 0 instead of
     * branching.  Always the scalar loop regardless of the dispatch
     * kernel — at one candidate per call, gather setup costs more
     * than nine scalar loads (see simd.hh); the vector kernels serve
     * sumBatch()/sumBurst(), which are bit-identical to this loop.
     */
    int
    sum(const FeatureIndices &idx) const
    {
        int s = 0;
        for (unsigned f = 0; f < numFeatures; ++f)
            s += int(flat_[offsets_[f] + idx[f]]) * mult_[f];
        return s;
    }

    /**
     * Sum @p n candidates (at most batchCapacity) in one kernel pass:
     * out[c] == sum(idx[c]) for every c, bit-identically.
     */
    void sumBatch(const FeatureIndices *idx, std::size_t n,
                  std::int32_t *out) const;

    /**
     * The shared half of a burst's sum: the weights of the
     * burst-invariant features (burstSharedFeatures), masked by their
     * enables, folded into one scalar.  @p shared_abs comes from
     * sharedAbsIndices().  Computed once per burst and passed to
     * sumBurst() as the lane bias — int32 addition is associative and
     * commutative, so the reordering cannot change any sum.
     */
    std::int32_t
    burstBias(const std::uint32_t *shared_abs) const
    {
        std::int32_t s = 0;
        for (std::size_t k = 0; k < burstSharedFeatures.size(); ++k) {
            s += std::int32_t(flat_[shared_abs[k]]) *
                 mult_[unsigned(burstSharedFeatures[k])];
        }
        return s;
    }

    /**
     * Sum a burst already laid out for the kernel: @p abs_idx holds
     * the per-candidate features only (row r is feature
     * burstPerCandidateFeatures[r]) with batchCapacity stride,
     * absolute into the flat array, unused lanes 0; @p bias is the
     * burst's burstBias().  fillSharedBurstIndices() produces exactly
     * this layout from tableOffsets(); out[c] == sum(candidate c's
     * indices) bit-identically.  This is the inference hot path: no
     * transpose, no per-candidate index array, and the shared
     * features' weights are read once per burst instead of once per
     * lane.
     */
    void sumBurst(const std::uint32_t *abs_idx, std::size_t n,
                  std::int32_t *out, std::int32_t bias) const;

    /**
     * Fence-post table offsets (numFeatures + 1 entries): feature f's
     * weights start at tableOffsets()[f] in the flat array.  Callers
     * preparing sumBurst() input add these to the per-feature indices.
     */
    const std::uint32_t *
    tableOffsets() const
    {
        return offsets_.data();
    }

    /**
     * Perceptron update: move every enabled selected weight one step
     * toward @p positive.
     */
    void train(const FeatureIndices &idx, bool positive);

    /** Read one weight (analysis / tests). */
    int
    weight(FeatureId feature, std::uint32_t index) const
    {
        return flat_[offsets_[unsigned(feature)] + index];
    }

    /** True when @p feature participates in predictions. */
    bool
    enabled(FeatureId feature) const
    {
        return (featureMask_ >> unsigned(feature)) & 1;
    }

    /** Histogram of a feature's trained weights (Figure 6). */
    stats::Histogram weightHistogram(FeatureId feature) const;

    /**
     * Smallest / largest possible sum given the enabled features.
     * Cached at construction — audit passes consult these on every
     * sample and must not rescan or recount anything per call.
     */
    int minSum() const { return minSum_; }
    int maxSum() const { return maxSum_; }

    /** Effective weight range after clamping. */
    int weightMin() const { return clampMin_; }
    int weightMax() const { return clampMax_; }

    /** The kernel sum()/train() dispatch to. */
    simd::Kernel kernel() const { return kernel_; }

    /**
     * Force a specific kernel (equivalence tests).  @return false
     * when @p k is unsupported on this build/host (kernel unchanged).
     */
    bool
    forceKernel(simd::Kernel k)
    {
        if (!simd::kernelSupported(k))
            return false;
        kernel_ = k;
        return true;
    }

    /**
     * Read-only view of the raw storage for the invariant auditor:
     * feature f's table is weights[offsets[f]] .. weights[offsets[f+1]]
     * (offsets has numFeatures + 1 fence posts).
     */
    struct AuditView
    {
        std::uint32_t featureMask;
        int clampMin;
        int clampMax;
        const std::int8_t *weights;
        const std::uint32_t *offsets;
    };

    AuditView
    auditState() const
    {
        return {featureMask_, clampMin_, clampMax_, flat_.data(),
                offsets_.data()};
    }

    /**
     * Fault injection for auditor tests: overwrite one raw weight,
     * clamped only to the physical 5-bit range and bypassing the
     * configured clamp applied by train().  Never used by the
     * simulator itself.
     */
    void
    poke(FeatureId feature, std::uint32_t index, int value)
    {
        const int v = value < Weight::min
            ? Weight::min
            : (value > Weight::max ? Weight::max : value);
        flat_[offsets_[unsigned(feature)] + index] = std::int8_t(v);
    }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    std::uint32_t featureMask_;
    int clampMin_;
    int clampMax_;
    /** Fence-post offsets of each feature's table within flat_. */
    std::array<std::uint32_t, numFeatures + 1> offsets_;
    /** 0/1 per-feature multiplier derived from featureMask_. */
    std::array<std::int32_t, numFeatures> mult_;
    /** mult_ repacked in burstPerCandidateFeatures row order, the
     *  enable vector of the sumBurst() kernel rows. */
    std::array<std::int32_t, burstPerCandidateFeatures.size()>
        burstMult_;
    /**
     * All weights back to back, plus simd::gatherPadBytes of zero
     * tail padding for the AVX2 gather; the logical weight count is
     * offsets_[numFeatures].
     */
    std::vector<std::int8_t> flat_;
    /** Kernel chosen by simd::detectKernel() at construction. */
    simd::Kernel kernel_;
    /** Cached sum bounds (popcount(mask) * clamp edge). */
    int minSum_;
    int maxSum_;
};

} // namespace pfsim::ppf

#endif // PFSIM_CORE_WEIGHT_TABLES_HH
