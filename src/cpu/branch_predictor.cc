#include "cpu/branch_predictor.hh"

#include "cpu/perceptron_bp.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::cpu
{

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table_(entries)
{
    if (!isPowerOf2(entries))
        fatal("bimodal table size must be a power of two");
}

bool
BimodalPredictor::predict(Pc pc)
{
    return table_[(pc >> 2) & (table_.size() - 1)].value() >= 0;
}

void
BimodalPredictor::update(Pc pc, bool taken)
{
    table_[(pc >> 2) & (table_.size() - 1)].train(taken);
}

const std::string &
BimodalPredictor::name() const
{
    static const std::string n = "bimodal";
    return n;
}

std::unique_ptr<BranchPredictor>
makeBranchPredictor(const std::string &name)
{
    if (name == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (name == "perceptron")
        return std::make_unique<PerceptronBp>();
    fatal("unknown branch predictor: " + name);
}

} // namespace pfsim::cpu
