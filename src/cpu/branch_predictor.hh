/**
 * @file
 * Branch predictor interface plus a simple bimodal baseline.
 */

#ifndef PFSIM_CPU_BRANCH_PREDICTOR_HH
#define PFSIM_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/sat_counter.hh"
#include "util/types.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::cpu
{

/** Interface of a conditional branch direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(Pc pc) = 0;

    /** Train with the resolved direction. */
    virtual void update(Pc pc, bool taken) = 0;

    virtual const std::string &name() const = 0;

    /**
     * Snapshot support: stateful predictors override both
     * (definitions in snapshot/state_io.cc).
     */
    virtual void serialize(snapshot::Sink &) const {}
    virtual void deserialize(snapshot::Source &) {}
};

/** 2-bit bimodal predictor (baseline / testing). */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(std::size_t entries = 4096);

    bool predict(Pc pc) override;
    void update(Pc pc, bool taken) override;
    const std::string &name() const override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    std::vector<SignedSatCounter<2>> table_;
};

/** Construct a predictor by name ("bimodal" or "perceptron"). */
std::unique_ptr<BranchPredictor>
makeBranchPredictor(const std::string &name);

} // namespace pfsim::cpu

#endif // PFSIM_CPU_BRANCH_PREDICTOR_HH
