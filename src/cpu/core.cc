#include "cpu/core.hh"

#include <bit>
#include <cassert>

#include "cache/cache.hh"
#include "util/logging.hh"

namespace pfsim::cpu
{

namespace
{

constexpr std::uint64_t tokenKindShift = 32;
constexpr std::uint64_t tokenLoad = std::uint64_t{1} << tokenKindShift;
constexpr std::uint64_t tokenStore = std::uint64_t{2} << tokenKindShift;
constexpr std::uint64_t tokenFetch = std::uint64_t{3} << tokenKindShift;
constexpr std::uint64_t tokenSlotMask = 0xffffffffULL;

/** Pop the lowest set bit's index — the first-free-slot answer the
 *  linear queue scan it replaces would give.  The caller has already
 *  checked that a free slot exists. */
std::uint16_t
takeFirstFree(std::vector<std::uint64_t> &mask)
{
    for (std::size_t w = 0;; ++w) {
        if (mask[w] != 0) {
            const unsigned b = unsigned(std::countr_zero(mask[w]));
            mask[w] &= mask[w] - 1;
            return std::uint16_t(w * 64 + b);
        }
    }
}

void
markFree(std::vector<std::uint64_t> &mask, std::size_t slot)
{
    mask[slot / 64] |= std::uint64_t{1} << (slot % 64);
}

} // namespace

Core::Core(CoreConfig config, int core_id, trace::TraceSource *source,
           cache::Cache *l1i, cache::Cache *l1d)
    : config_(std::move(config)), coreId_(core_id), source_(source),
      l1i_(l1i), l1d_(l1d),
      branchPredictor_(makeBranchPredictor(config_.branchPredictor)),
      rob_(config_.robSize), lq_(config_.lqSize), sq_(config_.sqSize)
{
    if (source_ == nullptr || l1i_ == nullptr || l1d_ == nullptr)
        fatal("core wired without trace source or caches");
    unissuedLq_.reserve(config_.lqSize);
    lqFree_.assign((config_.lqSize + 63) / 64, 0);
    for (unsigned i = 0; i < config_.lqSize; ++i)
        markFree(lqFree_, i);
    sqFree_.assign((config_.sqSize + 63) / 64, 0);
    for (unsigned i = 0; i < config_.sqSize; ++i)
        markFree(sqFree_, i);
}

void
Core::resetStats()
{
    stats_ = CoreStats{};
}

std::uint32_t
Core::robTail() const
{
    // robHead_ < robSize and robCount_ <= robSize, so one conditional
    // subtract replaces the (runtime-divisor) modulo.
    const std::uint32_t t = robHead_ + robCount_;
    return t >= config_.robSize ? t - config_.robSize : t;
}

void
Core::retire(Cycle now)
{
    unsigned budget = config_.retireWidth;
    while (budget > 0 && robCount_ > 0) {
        RobEntry &head = rob_[robHead_];
        if (!head.completed || head.readyCycle > now)
            break;
        if (head.kind == Kind::Load) {
            LqEntry &lq = lq_[head.lqSlot];
            assert(lq.valid && lq.completed);
            lq.valid = false;
            markFree(lqFree_, head.lqSlot);
            assert(lqUsed_ > 0);
            --lqUsed_;
        }
        if (++robHead_ == config_.robSize)
            robHead_ = 0;
        --robCount_;
        ++stats_.instructions;
        --budget;
    }
}

void
Core::fetch(Cycle now)
{
    if (now < fetchResumeCycle_ || fetchBlockPending_)
        return;

    unsigned budget = config_.fetchWidth;
    while (budget > 0) {
        if (!havePending_) {
            if (traceExhausted_)
                return;
            if (!source_->next(pending_)) {
                traceExhausted_ = true;
                return;
            }
            havePending_ = true;
        }

        // Instruction fetch: one L1I access per new block.
        const Addr fetch_block = blockAlign(pending_.pc);
        if (fetch_block != lastFetchBlock_) {
            if (l1i_->demandProbe(fetch_block, pending_.pc)) {
                lastFetchBlock_ = fetch_block;
            } else {
                cache::Request req;
                req.addr = fetch_block;
                req.type = cache::AccessType::Load;
                req.pc = pending_.pc;
                req.coreId = coreId_;
                req.ret = this;
                req.token = tokenFetch;
                if (l1i_->addRead(req))
                    fetchBlockPending_ = true;
                return;
            }
        }

        if (robFull()) {
            ++stats_.robFullStalls;
            return;
        }

        RobEntry entry;
        if (pending_.isLoad()) {
            if (lqUsed_ == config_.lqSize) {
                ++stats_.lqFullStalls;
                return;
            }
            const std::uint16_t slot = takeFirstFree(lqFree_);
            LqEntry &lq = lq_[slot];
            lq.valid = true;
            lq.issued = false;
            lq.completed = false;
            lq.addr = pending_.loadAddr;
            lq.pc = pending_.pc;
            lq.robIndex = robTail();
            lq.seq = nextLoadSeq_++;
            lq.dependent = pending_.dependsOnPrev && haveLastLoad_;
            lq.depSlot = lastLoadSlot_;
            lq.depSeq = lastLoadSeq_;
            ++lqUsed_;
            unissuedLq_.push_back(slot);

            haveLastLoad_ = true;
            lastLoadSlot_ = slot;
            lastLoadSeq_ = lq.seq;

            entry.kind = Kind::Load;
            entry.lqSlot = slot;
            entry.completed = false;
            ++stats_.loads;
        } else if (pending_.isStore()) {
            if (sqUsed_ == config_.sqSize) {
                ++stats_.sqFullStalls;
                return;
            }
            const std::uint16_t slot = takeFirstFree(sqFree_);
            SqEntry &sq = sq_[slot];
            sq.valid = true;
            sq.issued = false;
            sq.addr = pending_.storeAddr;
            sq.pc = pending_.pc;
            ++sqUsed_;
            ++unissuedStores_;

            // Stores complete from the pipeline's view at dispatch; the
            // RFO drains in the background but occupies the SQ slot.
            entry.kind = Kind::Store;
            entry.completed = true;
            entry.readyCycle = now + config_.aluLatency;
            ++stats_.stores;
        } else if (pending_.isBranch) {
            const bool predicted = branchPredictor_->predict(pending_.pc);
            branchPredictor_->update(pending_.pc, pending_.branchTaken);
            ++stats_.branches;
            entry.kind = Kind::Branch;
            entry.completed = true;
            entry.readyCycle = now + config_.aluLatency;
            if (predicted != pending_.branchTaken) {
                ++stats_.mispredicts;
                fetchResumeCycle_ = now + config_.mispredictPenalty;
                // Dispatch the branch itself, then stall the front end.
                rob_[robTail()] = entry;
                ++robCount_;
                havePending_ = false;
                return;
            }
        } else {
            entry.kind = Kind::Alu;
            entry.completed = true;
            entry.readyCycle = now + config_.aluLatency;
        }

        rob_[robTail()] = entry;
        ++robCount_;
        havePending_ = false;
        --budget;
    }
}

void
Core::issueLoads(Cycle)
{
    // One pass over the unissued set: gather the oldest
    // dependency-free loads in sequence order, at most loadIssueWidth
    // of them.  Issuing a load never changes another's dependency
    // status within the same cycle, so this picks exactly the loads
    // the oldest-first whole-queue rescan would — the selection (the
    // width smallest sequence numbers among the issueable) does not
    // depend on the walk order, which is what lets unissuedLq_ stay
    // an unordered slot list.
    if (!unissuedLq_.empty()) {
        constexpr unsigned kMaxGather = 16;
        const unsigned width =
            config_.loadIssueWidth < kMaxGather ? config_.loadIssueWidth
                                                : kMaxGather;
        std::uint16_t picks[kMaxGather];
        unsigned n = 0;
        for (const std::uint16_t i : unissuedLq_) {
            const LqEntry &lq = lq_[i];
            assert(lq.valid && !lq.issued);
            if (lq.dependent) {
                const LqEntry &dep = lq_[lq.depSlot];
                if (dep.valid && dep.seq == lq.depSeq && !dep.completed)
                    continue; // producer still outstanding
            }
            // Insertion sort by seq, keeping the width oldest.
            unsigned pos = n;
            while (pos > 0 && lq_[picks[pos - 1]].seq > lq.seq)
                --pos;
            if (pos == width)
                continue;
            if (n < width)
                ++n;
            for (unsigned j = n - 1; j > pos; --j)
                picks[j] = picks[j - 1];
            picks[pos] = i;
        }
        bool issued_any = false;
        for (unsigned j = 0; j < n; ++j) {
            LqEntry &pick = lq_[picks[j]];
            cache::Request req;
            req.addr = pick.addr;
            req.type = cache::AccessType::Load;
            req.pc = pick.pc;
            req.coreId = coreId_;
            req.ret = this;
            req.token = tokenLoad | std::uint64_t(picks[j]);
            if (!l1d_->addRead(req))
                break; // L1D RQ full; retry next cycle
            pick.issued = true;
            issued_any = true;
        }
        if (issued_any) {
            std::size_t out = 0;
            for (const std::uint16_t i : unissuedLq_) {
                if (!lq_[i].issued)
                    unissuedLq_[out++] = i;
            }
            unissuedLq_.resize(out);
        }
    }

    // Drain stores: issue RFOs for unissued SQ entries (bounded by the
    // same width; stores are fire-and-forget from the pipeline's view).
    if (unissuedStores_ != 0) {
        unsigned store_budget = config_.loadIssueWidth;
        unsigned pending = unissuedStores_;
        for (auto &sq : sq_) {
            if (store_budget == 0 || pending == 0)
                break;
            if (!sq.valid || sq.issued)
                continue;
            --pending;
            cache::Request req;
            req.addr = sq.addr;
            req.type = cache::AccessType::Rfo;
            req.pc = sq.pc;
            req.coreId = coreId_;
            req.ret = this;
            req.token =
                tokenStore | std::uint64_t(&sq - sq_.data());
            if (!l1d_->addRead(req))
                break;
            sq.issued = true;
            --unissuedStores_;
            --store_budget;
        }
    }
}

void
Core::returnData(const cache::Request &req, Cycle now)
{
    // Under the event wheel this core may not have ticked for a while;
    // replay the untaken idle cycles before mutating pipeline state so
    // the stall classification is sampled from pre-response state.  The
    // responding cache ticks after this core within a cycle, so every
    // cycle before @p now is already replay-safe.
    syncIdle(now);
    const std::uint64_t kind = req.token >> tokenKindShift;
    const std::size_t slot = std::size_t(req.token & tokenSlotMask);
    if (kind == (tokenLoad >> tokenKindShift)) {
        LqEntry &lq = lq_[slot];
        assert(lq.valid && lq.issued && !lq.completed);
        lq.completed = true;
        RobEntry &rob = rob_[lq.robIndex];
        rob.completed = true;
        rob.readyCycle = now;
    } else if (kind == (tokenStore >> tokenKindShift)) {
        SqEntry &sq = sq_[slot];
        assert(sq.valid && sq.issued);
        sq.valid = false;
        markFree(sqFree_, slot);
        assert(sqUsed_ > 0);
        --sqUsed_;
    } else if (kind == (tokenFetch >> tokenKindShift)) {
        fetchBlockPending_ = false;
        lastFetchBlock_ = blockAlign(req.addr);
    } else {
        panic("core received a response with an unknown token");
    }
    // The response unblocks retire/fetch/dispatch work next cycle.
    if (waker_)
        waker_->wake(wakerId_, now + 1);
}

void
Core::tick(Cycle now)
{
    // Catch up on any cycles the event wheel never ticked (no-op under
    // the naive and skip paths, which tick every processed cycle).
    syncIdle(now - 1);
    ++stats_.cycles;
    syncedCycle_ = now;
    retire(now);
    fetch(now);
    issueLoads(now);
}

Cycle
Core::nextEventCycle(Cycle now) const
{
    const Cycle next = now + 1;

    // The common running-core case first, with O(1) checks: an
    // unblocked front end with instructions to pull or dispatch makes
    // the core busy every cycle.
    const bool fetch_live =
        !fetchBlockPending_ && (havePending_ || !traceExhausted_);
    if (fetch_live && next >= fetchResumeCycle_) {
        if (!havePending_)
            return next; // would pull from the trace
        if (blockAlign(pending_.pc) != lastFetchBlock_)
            return next; // would probe the L1I
        const bool stalled = robFull() ||
            (pending_.isLoad() && lqUsed_ == config_.lqSize) ||
            (pending_.isStore() && sqUsed_ == config_.sqSize);
        if (!stalled)
            return next; // would dispatch
        // A pure structural stall only accrues its stall counter each
        // cycle (replayed by skipIdle); it breaks on retirement or an
        // L1D response, both covered by the events below.
    }

    Cycle event = noEventCycle;

    // Retirement: a completed head retires once its result matures.
    // An incomplete head is waiting on a cache response, and the cache
    // holding it reports the wake-up.
    if (robCount_ > 0) {
        const RobEntry &head = rob_[robHead_];
        if (head.completed) {
            if (head.readyCycle <= next)
                return next;
            event = head.readyCycle;
        }
    }

    // Mispredict bubble: fetch resumes (or resumes stalling) at
    // fetchResumeCycle_.
    if (fetch_live && fetchResumeCycle_ > next &&
        fetchResumeCycle_ < event) {
        event = fetchResumeCycle_;
    }

    // Issue: any dispatch-complete load whose producer has resolved,
    // or any store RFO not yet sent, is issued on the next tick.  The
    // unissued set makes the common nothing-to-issue case O(1) and
    // the rest a walk over exactly the candidates.
    if (unissuedStores_ != 0)
        return next;
    for (const std::uint16_t i : unissuedLq_) {
        const LqEntry &lq = lq_[i];
        if (lq.dependent) {
            const LqEntry &dep = lq_[lq.depSlot];
            if (dep.valid && dep.seq == lq.depSeq && !dep.completed)
                continue;
        }
        return next;
    }
    return event;
}

void
Core::skipIdle(Cycle now, Cycle delta)
{
    syncIdle(now + delta);
}

void
Core::syncIdle(Cycle upTo)
{
    if (upTo <= syncedCycle_)
        return;
    const Cycle first = syncedCycle_ + 1;
    const Cycle delta = upTo - syncedCycle_;
    syncedCycle_ = upTo;
    stats_.cycles += delta;

    // Replay the front end's per-cycle stall accounting.  The replayed
    // span never crosses fetchResumeCycle_ while the front end has
    // work (nextEventCycle reports the resume as an event), so the
    // whole span is either silent or one uniform stall.
    if (fetchBlockPending_ || !havePending_ || first < fetchResumeCycle_)
        return;
    if (robFull())
        stats_.robFullStalls += delta;
    else if (pending_.isLoad() && lqUsed_ == config_.lqSize)
        stats_.lqFullStalls += delta;
    else if (pending_.isStore() && sqUsed_ == config_.sqSize)
        stats_.sqFullStalls += delta;
}

} // namespace pfsim::cpu
