#include "cpu/core.hh"

#include <cassert>

#include "cache/cache.hh"
#include "util/logging.hh"

namespace pfsim::cpu
{

namespace
{

constexpr std::uint64_t tokenKindShift = 32;
constexpr std::uint64_t tokenLoad = std::uint64_t{1} << tokenKindShift;
constexpr std::uint64_t tokenStore = std::uint64_t{2} << tokenKindShift;
constexpr std::uint64_t tokenFetch = std::uint64_t{3} << tokenKindShift;
constexpr std::uint64_t tokenSlotMask = 0xffffffffULL;

} // namespace

Core::Core(CoreConfig config, int core_id, trace::TraceSource *source,
           cache::Cache *l1i, cache::Cache *l1d)
    : config_(std::move(config)), coreId_(core_id), source_(source),
      l1i_(l1i), l1d_(l1d),
      branchPredictor_(makeBranchPredictor(config_.branchPredictor)),
      rob_(config_.robSize), lq_(config_.lqSize), sq_(config_.sqSize)
{
    if (source_ == nullptr || l1i_ == nullptr || l1d_ == nullptr)
        fatal("core wired without trace source or caches");
}

void
Core::resetStats()
{
    stats_ = CoreStats{};
}

std::uint32_t
Core::robTail() const
{
    return (robHead_ + robCount_) % config_.robSize;
}

void
Core::retire(Cycle now)
{
    unsigned budget = config_.retireWidth;
    while (budget > 0 && robCount_ > 0) {
        RobEntry &head = rob_[robHead_];
        if (!head.completed || head.readyCycle > now)
            break;
        if (head.kind == Kind::Load) {
            LqEntry &lq = lq_[head.lqSlot];
            assert(lq.valid && lq.completed);
            lq.valid = false;
            assert(lqUsed_ > 0);
            --lqUsed_;
        }
        robHead_ = (robHead_ + 1) % config_.robSize;
        --robCount_;
        ++stats_.instructions;
        --budget;
    }
}

void
Core::fetch(Cycle now)
{
    if (now < fetchResumeCycle_ || fetchBlockPending_)
        return;

    unsigned budget = config_.fetchWidth;
    while (budget > 0) {
        if (!havePending_) {
            if (traceExhausted_)
                return;
            if (!source_->next(pending_)) {
                traceExhausted_ = true;
                return;
            }
            havePending_ = true;
        }

        // Instruction fetch: one L1I access per new block.
        const Addr fetch_block = blockAlign(pending_.pc);
        if (fetch_block != lastFetchBlock_) {
            if (l1i_->demandProbe(fetch_block, pending_.pc)) {
                lastFetchBlock_ = fetch_block;
            } else {
                cache::Request req;
                req.addr = fetch_block;
                req.type = cache::AccessType::Load;
                req.pc = pending_.pc;
                req.coreId = coreId_;
                req.ret = this;
                req.token = tokenFetch;
                if (l1i_->addRead(req))
                    fetchBlockPending_ = true;
                return;
            }
        }

        if (robFull()) {
            ++stats_.robFullStalls;
            return;
        }

        RobEntry entry;
        if (pending_.isLoad()) {
            if (lqUsed_ == config_.lqSize) {
                ++stats_.lqFullStalls;
                return;
            }
            std::uint16_t slot = 0;
            while (lq_[slot].valid)
                ++slot;
            LqEntry &lq = lq_[slot];
            lq.valid = true;
            lq.issued = false;
            lq.completed = false;
            lq.addr = pending_.loadAddr;
            lq.pc = pending_.pc;
            lq.robIndex = robTail();
            lq.seq = nextLoadSeq_++;
            lq.dependent = pending_.dependsOnPrev && haveLastLoad_;
            lq.depSlot = lastLoadSlot_;
            lq.depSeq = lastLoadSeq_;
            ++lqUsed_;

            haveLastLoad_ = true;
            lastLoadSlot_ = slot;
            lastLoadSeq_ = lq.seq;

            entry.kind = Kind::Load;
            entry.lqSlot = slot;
            entry.completed = false;
            ++stats_.loads;
        } else if (pending_.isStore()) {
            if (sqUsed_ == config_.sqSize) {
                ++stats_.sqFullStalls;
                return;
            }
            std::uint16_t slot = 0;
            while (sq_[slot].valid)
                ++slot;
            SqEntry &sq = sq_[slot];
            sq.valid = true;
            sq.issued = false;
            sq.addr = pending_.storeAddr;
            sq.pc = pending_.pc;
            ++sqUsed_;

            // Stores complete from the pipeline's view at dispatch; the
            // RFO drains in the background but occupies the SQ slot.
            entry.kind = Kind::Store;
            entry.completed = true;
            entry.readyCycle = now + config_.aluLatency;
            ++stats_.stores;
        } else if (pending_.isBranch) {
            const bool predicted = branchPredictor_->predict(pending_.pc);
            branchPredictor_->update(pending_.pc, pending_.branchTaken);
            ++stats_.branches;
            entry.kind = Kind::Branch;
            entry.completed = true;
            entry.readyCycle = now + config_.aluLatency;
            if (predicted != pending_.branchTaken) {
                ++stats_.mispredicts;
                fetchResumeCycle_ = now + config_.mispredictPenalty;
                // Dispatch the branch itself, then stall the front end.
                rob_[robTail()] = entry;
                ++robCount_;
                havePending_ = false;
                return;
            }
        } else {
            entry.kind = Kind::Alu;
            entry.completed = true;
            entry.readyCycle = now + config_.aluLatency;
        }

        rob_[robTail()] = entry;
        ++robCount_;
        havePending_ = false;
        --budget;
    }
}

void
Core::issueLoads(Cycle)
{
    unsigned budget = config_.loadIssueWidth;
    while (budget > 0) {
        // Pick the oldest unissued, dependency-free load.
        LqEntry *pick = nullptr;
        for (auto &lq : lq_) {
            if (!lq.valid || lq.issued)
                continue;
            if (lq.dependent) {
                const LqEntry &dep = lq_[lq.depSlot];
                if (dep.valid && dep.seq == lq.depSeq && !dep.completed)
                    continue; // producer still outstanding
            }
            if (pick == nullptr || lq.seq < pick->seq)
                pick = &lq;
        }
        if (pick == nullptr)
            break;

        cache::Request req;
        req.addr = pick->addr;
        req.type = cache::AccessType::Load;
        req.pc = pick->pc;
        req.coreId = coreId_;
        req.ret = this;
        req.token =
            tokenLoad | std::uint64_t(pick - lq_.data());
        if (!l1d_->addRead(req))
            break; // L1D RQ full; retry next cycle
        pick->issued = true;
        --budget;
    }

    // Drain stores: issue RFOs for unissued SQ entries (bounded by the
    // same width; stores are fire-and-forget from the pipeline's view).
    unsigned store_budget = config_.loadIssueWidth;
    for (auto &sq : sq_) {
        if (store_budget == 0)
            break;
        if (!sq.valid || sq.issued)
            continue;
        cache::Request req;
        req.addr = sq.addr;
        req.type = cache::AccessType::Rfo;
        req.pc = sq.pc;
        req.coreId = coreId_;
        req.ret = this;
        req.token =
            tokenStore | std::uint64_t(&sq - sq_.data());
        if (!l1d_->addRead(req))
            break;
        sq.issued = true;
        --store_budget;
    }
}

void
Core::returnData(const cache::Request &req, Cycle now)
{
    const std::uint64_t kind = req.token >> tokenKindShift;
    const std::size_t slot = std::size_t(req.token & tokenSlotMask);
    if (kind == (tokenLoad >> tokenKindShift)) {
        LqEntry &lq = lq_[slot];
        assert(lq.valid && lq.issued && !lq.completed);
        lq.completed = true;
        RobEntry &rob = rob_[lq.robIndex];
        rob.completed = true;
        rob.readyCycle = now;
    } else if (kind == (tokenStore >> tokenKindShift)) {
        SqEntry &sq = sq_[slot];
        assert(sq.valid && sq.issued);
        sq.valid = false;
        assert(sqUsed_ > 0);
        --sqUsed_;
    } else if (kind == (tokenFetch >> tokenKindShift)) {
        fetchBlockPending_ = false;
        lastFetchBlock_ = blockAlign(req.addr);
    } else {
        panic("core received a response with an unknown token");
    }
}

void
Core::tick(Cycle now)
{
    ++stats_.cycles;
    retire(now);
    fetch(now);
    issueLoads(now);
}

Cycle
Core::nextEventCycle(Cycle now) const
{
    const Cycle next = now + 1;

    // The common running-core case first, with O(1) checks: an
    // unblocked front end with instructions to pull or dispatch makes
    // the core busy every cycle.
    const bool fetch_live =
        !fetchBlockPending_ && (havePending_ || !traceExhausted_);
    if (fetch_live && next >= fetchResumeCycle_) {
        if (!havePending_)
            return next; // would pull from the trace
        if (blockAlign(pending_.pc) != lastFetchBlock_)
            return next; // would probe the L1I
        const bool stalled = robFull() ||
            (pending_.isLoad() && lqUsed_ == config_.lqSize) ||
            (pending_.isStore() && sqUsed_ == config_.sqSize);
        if (!stalled)
            return next; // would dispatch
        // A pure structural stall only accrues its stall counter each
        // cycle (replayed by skipIdle); it breaks on retirement or an
        // L1D response, both covered by the events below.
    }

    Cycle event = noEventCycle;

    // Retirement: a completed head retires once its result matures.
    // An incomplete head is waiting on a cache response, and the cache
    // holding it reports the wake-up.
    if (robCount_ > 0) {
        const RobEntry &head = rob_[robHead_];
        if (head.completed) {
            if (head.readyCycle <= next)
                return next;
            event = head.readyCycle;
        }
    }

    // Mispredict bubble: fetch resumes (or resumes stalling) at
    // fetchResumeCycle_.
    if (fetch_live && fetchResumeCycle_ > next &&
        fetchResumeCycle_ < event) {
        event = fetchResumeCycle_;
    }

    // Issue: any dispatch-complete load whose producer has resolved,
    // or any store RFO not yet sent, is issued on the next tick.
    for (const LqEntry &lq : lq_) {
        if (!lq.valid || lq.issued)
            continue;
        if (lq.dependent) {
            const LqEntry &dep = lq_[lq.depSlot];
            if (dep.valid && dep.seq == lq.depSeq && !dep.completed)
                continue;
        }
        return next;
    }
    for (const SqEntry &sq : sq_) {
        if (sq.valid && !sq.issued)
            return next;
    }
    return event;
}

void
Core::skipIdle(Cycle now, Cycle delta)
{
    stats_.cycles += delta;

    // Replay the front end's per-cycle stall accounting.  The skipped
    // span never crosses fetchResumeCycle_ while the front end has
    // work (nextEventCycle reports the resume as an event), so the
    // whole span is either silent or one uniform stall.
    if (fetchBlockPending_ || !havePending_ ||
        now + 1 < fetchResumeCycle_) {
        return;
    }
    if (robFull())
        stats_.robFullStalls += delta;
    else if (pending_.isLoad() && lqUsed_ == config_.lqSize)
        stats_.lqFullStalls += delta;
    else if (pending_.isStore() && sqUsed_ == config_.sqSize)
        stats_.sqFullStalls += delta;
}

} // namespace pfsim::cpu
