/**
 * @file
 * The out-of-order core model: a ROB-windowed, width-limited pipeline
 * in the style of ChampSim's O3 model.
 *
 * Per cycle the core retires completed instructions in order, fetches
 * and dispatches new instructions from its trace source (stalling on
 * branch mispredictions and structural hazards), and issues ready
 * loads to the L1D.  Loads marked dependent on the previous load are
 * serialised, which is what gives pointer-chasing workloads their low
 * memory-level parallelism.
 */

#ifndef PFSIM_CPU_CORE_HH
#define PFSIM_CPU_CORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/request.hh"
#include "cpu/branch_predictor.hh"
#include "trace/source.hh"
#include "util/tick_waker.hh"
#include "util/types.hh"

namespace pfsim::cache
{
class Cache;
} // namespace pfsim::cache

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::cpu
{

/** Static core parameters (Table 1 style). */
struct CoreConfig
{
    unsigned fetchWidth = 6;
    unsigned retireWidth = 4;
    unsigned robSize = 256;
    unsigned lqSize = 72;
    unsigned sqSize = 56;
    /** Loads issued to the L1D per cycle. */
    unsigned loadIssueWidth = 2;
    /** Cycles of fetch bubble after a mispredicted branch. */
    unsigned mispredictPenalty = 15;
    /** ALU/branch execution latency in cycles. */
    unsigned aluLatency = 1;
    std::string branchPredictor = "perceptron";
};

/** Core statistics. */
struct CoreStats
{
    InstrCount instructions = 0;
    Cycle cycles = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t robFullStalls = 0;
    std::uint64_t lqFullStalls = 0;
    std::uint64_t sqFullStalls = 0;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0 : double(instructions) / double(cycles);
    }
};

/** The core model. */
class Core : public cache::Requestor
{
  public:
    /**
     * @param config core parameters
     * @param core_id this core's index within the system
     * @param source instruction stream
     * @param l1i instruction cache
     * @param l1d data cache
     */
    Core(CoreConfig config, int core_id, trace::TraceSource *source,
         cache::Cache *l1i, cache::Cache *l1d);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Earliest cycle after @p now at which ticking this core could do
     * observable work beyond the bookkeeping skipIdle() replays (cycle
     * and stall counters).  Returning now + 1 means "busy, do not
     * skip"; noEventCycle means the core is fully drained and waiting
     * on nothing internal.  May under-promise (claim an earlier cycle
     * than necessary) but must never over-promise idleness.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account for @p delta consecutive skipped cycles following
     * @p now, during which nextEventCycle() guaranteed every tick
     * would have been a statistics-only no-op: the cycle counter
     * always advances, and a front-end stalled on a full ROB/LQ/SQ
     * accrues its per-cycle stall counter.
     */
    void skipIdle(Cycle now, Cycle delta);

    /**
     * Replay the statistics-only effect of every untaken cycle in
     * (syncedCycle_, upTo] — the lazy form of skipIdle() used by the
     * event wheel, which does not tick idle cores at all.  Valid only
     * when no cycle in that span had observable work (guaranteed by
     * the nextEventCycle() contract: the wheel would have ticked the
     * core otherwise), so the stall classification sampled once holds
     * uniformly across the span.
     */
    void syncIdle(Cycle upTo);

    /** Stamp the lazy-replay clock without accruing statistics (used
     *  after deserialize, where counters already include every cycle
     *  up to the snapshot point). */
    void syncClock(Cycle now) { syncedCycle_ = now; }

    /** Attach the event-wheel wakeup sink (nullptr detaches). */
    void setWaker(util::TickWaker *waker, unsigned id)
    {
        waker_ = waker;
        wakerId_ = id;
    }

    // cache::Requestor (L1D / L1I responses)
    void returnData(const cache::Request &req, Cycle now) override;

    const CoreStats &stats() const { return stats_; }
    CoreStats &stats() { return stats_; }

    /** Instructions retired so far. */
    InstrCount retired() const { return stats_.instructions; }

    /** Reset the retired-instruction and cycle counters (post-warmup). */
    void resetStats();

    /** Occupancy introspection (testing / debugging). */
    unsigned robOccupancy() const { return robCount_; }
    unsigned lqOccupancy() const { return lqUsed_; }
    unsigned sqOccupancy() const { return sqUsed_; }
    bool fetchBlocked() const { return fetchBlockPending_; }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    enum class Kind : std::uint8_t { Alu, Branch, Load, Store };

    struct RobEntry
    {
        bool completed = false;
        Cycle readyCycle = 0;
        Kind kind = Kind::Alu;
        std::uint16_t lqSlot = 0;
    };

    struct LqEntry
    {
        bool valid = false;
        bool issued = false;
        bool completed = false;
        Addr addr = 0;
        Pc pc = 0;
        std::uint32_t robIndex = 0;
        std::uint64_t seq = 0;
        /** Dependent on the load identified by depSlot/depSeq. */
        bool dependent = false;
        std::uint16_t depSlot = 0;
        std::uint64_t depSeq = 0;
    };

    struct SqEntry
    {
        bool valid = false;
        bool issued = false;
        Addr addr = 0;
        Pc pc = 0;
    };

    void retire(Cycle now);
    void fetch(Cycle now);
    void issueLoads(Cycle);

    bool robFull() const { return robCount_ == config_.robSize; }
    std::uint32_t robTail() const;

    CoreConfig config_;
    int coreId_;
    trace::TraceSource *source_;
    cache::Cache *l1i_;
    cache::Cache *l1d_;
    std::unique_ptr<BranchPredictor> branchPredictor_;

    std::vector<RobEntry> rob_;
    std::uint32_t robHead_ = 0;
    std::uint32_t robCount_ = 0;

    std::vector<LqEntry> lq_;
    unsigned lqUsed_ = 0;
    std::vector<SqEntry> sq_;
    unsigned sqUsed_ = 0;

    /** One bit per free LQ/SQ slot: first-free allocation becomes a
     *  count-trailing-zeros instead of a linear valid scan, with the
     *  identical slot choice.  Rebuilt from the queues on restore. */
    std::vector<std::uint64_t> lqFree_;
    std::vector<std::uint64_t> sqFree_;

    /** Slots of the valid-but-unissued LQ entries, appended at
     *  dispatch and compacted after issue, so issueLoads() and
     *  nextEventCycle() walk only the unissued set instead of the
     *  whole (usually saturated) queue.  Order is irrelevant: issue
     *  selection is by sequence number and the wake check is an
     *  existence test.  Rebuilt from lq_ on restore. */
    std::vector<std::uint16_t> unissuedLq_;

    /** Valid-but-unissued SQ entry count, maintained at dispatch and
     *  issue; makes the common nothing-to-drain case O(1).  Stores
     *  must issue in slot order, so they keep the indexed scan.
     *  Recounted from sq_ on restore. */
    unsigned unissuedStores_ = 0;

    /** Fetch is stalled until this cycle (mispredict redirect). */
    Cycle fetchResumeCycle_ = 0;

    /** Last cycle whose statistics have been accrued (lazy replay
     *  clock for the event wheel; host-side, not serialized). */
    Cycle syncedCycle_ = 0;

    /** Event-wheel wakeup sink (host-side, not serialized). */
    util::TickWaker *waker_ = nullptr;
    unsigned wakerId_ = 0;

    /** Fetch is blocked waiting for an L1I fill. */
    bool fetchBlockPending_ = false;

    /** Last instruction block fetched, to dedup L1I accesses. */
    Addr lastFetchBlock_ = ~Addr{0};

    /** Identity of the most recently fetched load (dependences). */
    bool haveLastLoad_ = false;
    std::uint16_t lastLoadSlot_ = 0;
    std::uint64_t lastLoadSeq_ = 0;

    std::uint64_t nextLoadSeq_ = 1;
    bool traceExhausted_ = false;

    /** Fetched but not yet dispatched instruction. */
    bool havePending_ = false;
    Instruction pending_;

    CoreStats stats_;
};

} // namespace pfsim::cpu

#endif // PFSIM_CPU_CORE_HH
