#include "cpu/perceptron_bp.hh"

#include <cstdlib>

#include "util/bits.hh"

namespace pfsim::cpu
{

PerceptronBp::PerceptronBp()
{
    for (auto &table : tables_)
        table.assign(tableSize, SignedSatCounter<6>{});
}

std::array<std::size_t, PerceptronBp::numTables>
PerceptronBp::indices(Pc pc) const
{
    // Feature 0: the PC alone; features 1..3: PC hashed with
    // progressively older 8-bit segments of global history.
    std::array<std::size_t, numTables> idx;
    idx[0] = std::size_t(foldXor(pc >> 2, tableBits));
    for (unsigned t = 1; t < numTables; ++t) {
        std::uint64_t segment = bits(history_, (t - 1) * 8, 8);
        idx[t] = std::size_t(
            foldXor(mix64((pc >> 2) ^ (segment << (t * 4))),
                    tableBits));
    }
    return idx;
}

int
PerceptronBp::sum(const std::array<std::size_t, numTables> &idx) const
{
    int s = 0;
    for (unsigned t = 0; t < numTables; ++t)
        s += tables_[t][idx[t]].value();
    return s;
}

bool
PerceptronBp::predict(Pc pc)
{
    memoIdx_ = indices(pc);
    memoSum_ = sum(memoIdx_);
    memoPc_ = pc;
    memoValid_ = true;
    return memoSum_ >= 0;
}

void
PerceptronBp::update(Pc pc, bool taken)
{
    if (!memoValid_ || memoPc_ != pc) {
        memoIdx_ = indices(pc);
        memoSum_ = sum(memoIdx_);
    }
    memoValid_ = false;
    const int s = memoSum_;
    const bool predicted = s >= 0;

    // Perceptron rule: train on a misprediction, or while the margin
    // has not yet reached theta.
    if (predicted != taken || std::abs(s) <= theta) {
        for (unsigned t = 0; t < numTables; ++t)
            tables_[t][memoIdx_[t]].train(taken);
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

const std::string &
PerceptronBp::name() const
{
    static const std::string n = "perceptron";
    return n;
}

} // namespace pfsim::cpu
