/**
 * @file
 * Hashed-perceptron branch predictor (Jiménez & Lin [20], hashed
 * organisation after Tarjan & Skadron [21]) — the branch predictor the
 * paper's simulation configuration uses, and the same prediction
 * organisation PPF itself builds on.
 */

#ifndef PFSIM_CPU_PERCEPTRON_BP_HH
#define PFSIM_CPU_PERCEPTRON_BP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "util/sat_counter.hh"
#include "util/types.hh"

namespace pfsim::cpu
{

/** Hashed perceptron over PC and segments of global history. */
class PerceptronBp : public BranchPredictor
{
  public:
    PerceptronBp();

    bool predict(Pc pc) override;
    void update(Pc pc, bool taken) override;
    const std::string &name() const override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    static constexpr unsigned numTables = 4;
    static constexpr unsigned tableBits = 12;
    static constexpr std::size_t tableSize = std::size_t{1} << tableBits;

    /** Training threshold (classic theta = 1.93 * h + 14). */
    static constexpr int theta = int(1.93 * 24 + 14);

    std::array<std::size_t, numTables> indices(Pc pc) const;
    int sum(const std::array<std::size_t, numTables> &idx) const;

    /** One weight table per feature. */
    std::vector<SignedSatCounter<6>> tables_[numTables];

    /** Global branch history register. */
    std::uint64_t history_ = 0;

    /** predict() memo consumed by the immediately following
     *  update(pc): the core calls the pair back to back and neither
     *  tables_ nor history_ change in between, so the hashed indices
     *  and weight sum carry over verbatim.  Transient host-side cache
     *  (never serialized): update() and deserialize() invalidate it. */
    Pc memoPc_ = 0;
    bool memoValid_ = false;
    int memoSum_ = 0;
    std::array<std::size_t, numTables> memoIdx_{};
};

} // namespace pfsim::cpu

#endif // PFSIM_CPU_PERCEPTRON_BP_HH
