#include "dram/dram.hh"

#include <cassert>

#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::dram
{

void
DramConfig::setBandwidthGBs(double gb_per_s)
{
    if (gb_per_s <= 0.0)
        fatal("DRAM bandwidth must be positive");
    // transfer time = 64 bytes / BW, expressed in 4 GHz core cycles.
    const double seconds = double(blockSize) / (gb_per_s * 1e9);
    transferCycles = Cycle(seconds * 4e9 + 0.5);
    if (transferCycles == 0)
        transferCycles = 1;
}

Dram::Dram(DramConfig config)
    : config_(std::move(config))
{
    if (!isPowerOf2(config_.channels))
        fatal("DRAM channel count must be a power of two");
    if (isPowerOf2(config_.rowBytes) && isPowerOf2(config_.banks)) {
        rowShift_ = log2i(config_.rowBytes);
        rowMask_ = config_.rowBytes - 1; // non-zero: fast path armed
        bankMask_ = config_.banks - 1;
    }
    channels_.resize(config_.channels);
    for (auto &channel : channels_) {
        channel.banks.resize(config_.banks);
        channel.readQ = util::RingBuffer<Pending>(config_.rqSize);
        channel.writeQ = util::RingBuffer<Pending>(config_.wqSize);
    }
}

unsigned
Dram::channelOf(Addr addr) const
{
    return unsigned(blockNumber(addr)) & (config_.channels - 1);
}

std::uint64_t
Dram::rowIndexOf(Addr addr) const
{
    if (rowMask_ != 0)
        return addr >> rowShift_;
    return addr / config_.rowBytes;
}

unsigned
Dram::bankOf(Addr addr) const
{
    if (rowMask_ != 0)
        return unsigned((addr >> rowShift_) & bankMask_);
    return unsigned(rowIndexOf(addr) % config_.banks);
}

bool
Dram::addRead(const cache::Request &req)
{
    Channel &channel = channels_[channelOf(req.addr)];
    if (channel.readQ.size() >= config_.rqSize)
        return false;
    channel.readQ.push_back({req, req.enqueueCycle});
    // The LLC enqueues during its own tick; DRAM ticks after it in the
    // same cycle, so this request is schedulable one cycle after our
    // last tick (== the cycle currently being processed).
    wakeSelf(now_ + 1);
    return true;
}

bool
Dram::addWrite(const cache::Request &req)
{
    Channel &channel = channels_[channelOf(req.addr)];
    if (channel.writeQ.size() >= config_.wqSize)
        return false;
    channel.writeQ.push_back({req, req.enqueueCycle});
    wakeSelf(now_ + 1);
    return true;
}

bool
Dram::addPrefetch(const cache::Request &req)
{
    // At the DRAM boundary prefetch reads are just reads.
    return addRead(req);
}

Cycle
Dram::issue(Channel &channel, const Pending &pending, Cycle now)
{
    Bank &bank = channel.banks[bankOf(pending.req.addr)];
    const std::uint64_t row = rowIndexOf(pending.req.addr);

    Cycle latency;
    if (bank.rowOpen && bank.openRow == row) {
        latency = config_.rowHitLatency;
        ++stats_.rowHits;
    } else if (!bank.rowOpen) {
        latency = config_.rowMissLatency;
        ++stats_.rowMisses;
    } else {
        latency = config_.rowConflictLatency;
        ++stats_.rowConflicts;
    }

    const Cycle data_ready = now + latency;
    const Cycle data_start =
        data_ready > channel.busFreeCycle ? data_ready
                                          : channel.busFreeCycle;
    const Cycle completion = data_start + config_.transferCycles;

    channel.busFreeCycle = completion;
    stats_.busBusyCycles += config_.transferCycles;
    const bool was_row_hit = bank.rowOpen && bank.openRow == row;
    bank.rowOpen = true;
    bank.openRow = row;
    // Row hits pipeline at the column-command rate (tCCD); activates
    // and precharges occupy the bank for the full access latency.  The
    // shared data bus (busFreeCycle above) is what ultimately bounds
    // streaming bandwidth.
    bank.readyCycle = now + (was_row_hit ? 8 : latency);
    return completion;
}

bool
Dram::schedule(Channel &channel, Cycle now)
{
    // Hysteretic write draining: prioritise writes only while draining.
    if (!channel.drainingWrites &&
        channel.writeQ.size() > config_.writeDrainHigh) {
        channel.drainingWrites = true;
    } else if (channel.drainingWrites &&
               channel.writeQ.size() < config_.writeDrainLow) {
        channel.drainingWrites = false;
    }

    const bool prefer_writes =
        channel.drainingWrites || channel.readQ.empty();
    util::RingBuffer<Pending> &queue =
        prefer_writes && !channel.writeQ.empty() ? channel.writeQ
                                                 : channel.readQ;
    if (queue.empty())
        return false;

    // FR-FCFS with demand priority: demand reads are chosen before
    // prefetch reads (a prefetch stream's dense row hits must not
    // starve latency-critical demand misses); within a class, prefer
    // the oldest row-buffer hit, then the oldest schedulable request.
    std::size_t pick = queue.size();
    bool pick_demand = false;
    bool pick_row_hit = false;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Bank &bank = channel.banks[bankOf(queue[i].req.addr)];
        if (bank.readyCycle > now)
            continue;
        const bool demand = cache::isDemand(queue[i].req.type);
        const bool row_hit = bank.rowOpen &&
            bank.openRow == rowIndexOf(queue[i].req.addr);
        const bool better = pick == queue.size() ||
            (demand && !pick_demand) ||
            (demand == pick_demand && row_hit && !pick_row_hit);
        if (better) {
            pick = i;
            pick_demand = demand;
            pick_row_hit = row_hit;
            if (demand && row_hit)
                break;
        }
    }
    if (pick == queue.size())
        return false;

    Pending pending = queue[pick];
    queue.erase(pick);

    Cycle completion = issue(channel, pending, now);
    const bool is_write =
        pending.req.type == cache::AccessType::Writeback;
    if (is_write) {
        ++stats_.writes;
    } else {
        if (faultHook_ != nullptr && pending.req.ret != nullptr) {
            if (faultHook_->dropResponse(pending.req) &&
                channel.readQ.size() < config_.rqSize) {
                // Response lost after service: re-queue for retry with
                // the original arrival cycle, so the eventual latency
                // stat reflects the full (faulted) round trip.
                channel.readQ.push_back(pending);
                return true;
            }
            completion += faultHook_->responseDelay(pending.req);
        }
        ++stats_.reads;
        stats_.readLatencySum += completion - pending.arrival;
        if (pending.req.ret != nullptr)
            completions_.push({completion, pending.req});
    }
    return true;
}

void
Dram::tick(Cycle now)
{
    now_ = now;
    while (!completions_.empty() && completions_.top().ready <= now) {
        Completion completion = completions_.top();
        completions_.pop();
        completion.req.ret->returnData(completion.req, now);
    }

    for (auto &channel : channels_) {
        // One scheduling decision per channel per cycle.  Column
        // commands pipeline across requests; per-bank activate timing
        // (bank.readyCycle) and the serialised data bus
        // (busFreeCycle) are what bound latency and bandwidth.
        schedule(channel, now);
    }
}

Cycle
Dram::nextEventCycle(Cycle now) const
{
    Cycle event = noEventCycle;
    if (!completions_.empty()) {
        const Cycle ready = completions_.top().ready;
        if (ready <= now + 1)
            return now + 1;
        event = ready;
    }

    // schedule() is a no-op until some request in the channel's
    // *selected* queue reaches a ready bank, so the earliest such
    // cycle is the channel's next event.  Queue sizes are frozen
    // while the kernel skips, which pins both the write-drain
    // hysteresis (projected one update below, its fixed point under
    // frozen sizes) and the queue selection itself.
    for (const auto &channel : channels_) {
        bool draining = channel.drainingWrites;
        if (!draining && channel.writeQ.size() > config_.writeDrainHigh)
            draining = true;
        else if (draining &&
                 channel.writeQ.size() < config_.writeDrainLow)
            draining = false;

        const bool prefer_writes = draining || channel.readQ.empty();
        const util::RingBuffer<Pending> &queue =
            prefer_writes && !channel.writeQ.empty() ? channel.writeQ
                                                     : channel.readQ;
        for (const Pending &pending : queue) {
            const Bank &bank = channel.banks[bankOf(pending.req.addr)];
            if (bank.readyCycle <= now + 1)
                return now + 1;
            if (bank.readyCycle < event)
                event = bank.readyCycle;
        }
    }
    return event;
}

std::size_t
Dram::pendingReads() const
{
    std::size_t n = 0;
    for (const auto &channel : channels_)
        n += channel.readQ.size();
    return n;
}

std::size_t
Dram::pendingWrites() const
{
    std::size_t n = 0;
    for (const auto &channel : channels_)
        n += channel.writeQ.size();
    return n;
}

} // namespace pfsim::dram
