/**
 * @file
 * A bandwidth- and row-buffer-aware DRAM model.
 *
 * The model captures what matters for prefetch-filtering studies: a
 * finite data bus (64-byte transfers serialised per channel at the
 * configured bandwidth), per-bank row buffers with hit/miss/conflict
 * latencies, bank-level parallelism, and read-over-write priority with
 * watermark-based write draining.  The paper's memory configurations —
 * 12.8 GB/s default and the 3.2 GB/s "low bandwidth" variant of
 * Section 5.2 — are both expressed through DramConfig.
 */

#ifndef PFSIM_DRAM_DRAM_HH
#define PFSIM_DRAM_DRAM_HH

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "cache/request.hh"
#include "util/ring_buffer.hh"
#include "util/tick_waker.hh"
#include "util/types.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::dram
{

/** Static DRAM parameters, in core cycles. */
struct DramConfig
{
    std::string name = "dram";

    /** Independent channels, each with its own data bus. */
    unsigned channels = 1;

    /** Banks per channel. */
    unsigned banks = 8;

    /** Row-buffer size in bytes. */
    std::uint64_t rowBytes = 8192;

    /** Latency of a row-buffer hit (activate already done). */
    Cycle rowHitLatency = 55;

    /** Latency when the bank has no row open. */
    Cycle rowMissLatency = 110;

    /** Latency when a different row must be closed first. */
    Cycle rowConflictLatency = 165;

    /**
     * Cycles the data bus is occupied per 64-byte transfer.  20 cycles
     * at a 4 GHz core models 12.8 GB/s; 80 cycles models 3.2 GB/s.
     */
    Cycle transferCycles = 20;

    /** Read queue capacity (per channel). */
    std::uint32_t rqSize = 48;

    /** Write queue capacity (per channel). */
    std::uint32_t wqSize = 48;

    /** Start draining writes when the write queue exceeds this. */
    std::uint32_t writeDrainHigh = 36;

    /** Stop draining writes when the write queue falls below this. */
    std::uint32_t writeDrainLow = 12;

    /** Configure transferCycles from bandwidth at a 4 GHz core. */
    void setBandwidthGBs(double gb_per_s);
};

/** DRAM statistics. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;
    /** Cycles the data bus spent transferring. */
    std::uint64_t busBusyCycles = 0;
    /** Sum of read queueing+service latencies. */
    std::uint64_t readLatencySum = 0;
};

/**
 * Fault hook consulted on the read-response path.  Implemented only by
 * src/fault injectors; a null hook (the default) leaves behaviour
 * bit-identical to a fault-free build.
 */
class DramFaultHook
{
  public:
    virtual ~DramFaultHook() = default;

    /**
     * True when this serviced read's response should be lost: the
     * request is re-queued and retried (bus/bank time already spent is
     * wasted), never silently dropped.
     */
    virtual bool dropResponse(const cache::Request &req) = 0;

    /** Extra cycles to add to this response's completion. */
    virtual Cycle responseDelay(const cache::Request &req) = 0;
};

/** The DRAM device: the bottom of every hierarchy. */
class Dram : public cache::MemoryLevel
{
  public:
    explicit Dram(DramConfig config);

    bool addRead(const cache::Request &req) override;
    bool addWrite(const cache::Request &req) override;
    bool addPrefetch(const cache::Request &req) override;
    void tick(Cycle now) override;

    /**
     * Earliest cycle after @p now at which ticking the DRAM could do
     * observable work: the next tick while any channel queue holds a
     * request, the ready cycle of the earliest pending completion, or
     * noEventCycle when fully drained.  May under-promise but never
     * over-promise idleness.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Bring the DRAM's notion of "last ticked cycle" to @p now without
     * doing any work.  Only the event wheel needs DRAM to know the
     * time between ticks: a request arriving from the LLC mid-cycle
     * must wake the DRAM for the *same* cycle (it ticks after the LLC
     * in the naive order).
     */
    void syncClock(Cycle now) { now_ = now; }

    /** Attach the event-wheel wakeup sink (nullptr detaches). */
    void setWaker(util::TickWaker *waker, unsigned id)
    {
        waker_ = waker;
        wakerId_ = id;
    }

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return config_; }

    /** Zero the statistics block (end of warmup). */
    void resetStats() { stats_ = DramStats{}; }

    /** Outstanding queued requests (testing). */
    std::size_t pendingReads() const;
    std::size_t pendingWrites() const;

    struct Pending
    {
        cache::Request req;
        Cycle arrival;
    };

    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Cycle readyCycle = 0;
    };

    struct Channel
    {
        util::RingBuffer<Pending> readQ;
        util::RingBuffer<Pending> writeQ;
        std::vector<Bank> banks;
        Cycle busFreeCycle = 0;
        bool drainingWrites = false;
    };

    /** Read-only view of the channel state for the invariant auditor. */
    const std::vector<Channel> &auditState() const { return channels_; }

    /** Install (or clear, with nullptr) the response fault hook. */
    void faultInjectHook(DramFaultHook *hook) { faultHook_ = hook; }

    /**
     * Snapshot support (definitions in snapshot/state_io.cc).  The
     * fault hook is an unowned wiring pointer and is not serialized.
     */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    struct Completion
    {
        Cycle ready;
        cache::Request req;

        bool
        operator>(const Completion &other) const
        {
            return ready > other.ready;
        }
    };

    unsigned channelOf(Addr addr) const;
    std::uint64_t rowIndexOf(Addr addr) const;
    unsigned bankOf(Addr addr) const;

    /** Try to issue one request on @p channel; @return true if issued. */
    bool schedule(Channel &channel, Cycle now);

    /** Issue @p pending on @p channel; returns its completion cycle. */
    Cycle issue(Channel &channel, const Pending &pending, Cycle now);

    /** Wake the event wheel for our own next tick after enqueuing
     *  work (no-op when no wheel is attached). */
    void wakeSelf(Cycle at)
    {
        if (waker_)
            waker_->wake(wakerId_, at);
    }

    DramConfig config_;
    /** Shift/mask forms of rowBytes and banks when both are powers of
     *  two (the common case), so the per-request address decode in the
     *  FR-FCFS scan is shift+and instead of integer div/mod.  Zero
     *  rowMask_ means "not power-of-two, use the slow path".  Derived
     *  from config_ in the constructor (config category, never
     *  serialized). */
    unsigned rowShift_ = 0;
    std::uint64_t rowMask_ = 0;
    std::uint64_t bankMask_ = 0;
    std::vector<Channel> channels_;
    /** Last ticked/synced cycle (host-side scheduling aid; rebuilt
     *  from System::now_ on restore, not serialized). */
    Cycle now_ = 0;
    /** Event-wheel wakeup sink (host-side, not serialized). */
    util::TickWaker *waker_ = nullptr;
    unsigned wakerId_ = 0;
    DramFaultHook *faultHook_ = nullptr;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>> completions_;
    DramStats stats_;
};

} // namespace pfsim::dram

#endif // PFSIM_DRAM_DRAM_HH
