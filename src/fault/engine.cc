#include "fault/engine.hh"

namespace pfsim::fault
{

void
Injector::finish(Cycle now)
{
    (void)now;
}

Injector &
FaultEngine::add(std::unique_ptr<Injector> injector)
{
    injectors_.push_back(std::move(injector));
    return *injectors_.back();
}

void
FaultEngine::finish(Cycle now)
{
    for (const auto &injector : injectors_)
        injector->finish(now);
}

FaultStats
FaultEngine::stats() const
{
    FaultStats total;
    for (const auto &injector : injectors_)
        injector->accumulate(total);
    return total;
}

} // namespace pfsim::fault
