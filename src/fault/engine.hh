/**
 * @file
 * The fault engine: a per-run container of armed injectors, ticked by
 * sim::System once per cycle.
 *
 * The engine is owned by the run driver (sim::runSingleCore) and
 * attached to the System by non-owning pointer, mirroring how the
 * audit registry is wired.  A run with no armed faults never creates
 * an engine, so the zero-fault fast path is a single null check.
 */

#ifndef PFSIM_FAULT_ENGINE_HH
#define PFSIM_FAULT_ENGINE_HH

#include <memory>
#include <vector>

#include "fault/fault.hh"
#include "util/types.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::fault
{

/**
 * One armed fault source.  Injectors are constructed from
 * (spec, derived seed) only, so the injection schedule is a pure
 * function of the plan and the seed — never of wall-clock time or
 * thread interleaving.
 */
class Injector
{
  public:
    virtual ~Injector() = default;

    /** Advance to cycle @p now; inject if an event is due. */
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest cycle after @p now at which this injector must be
     * ticked (fast-path contract: may under-promise, never
     * over-promise idleness).  The conservative default — busy every
     * cycle — keeps any injector that does not override this exactly
     * on its naive-loop schedule.
     */
    virtual Cycle nextEventCycle(Cycle now) const { return now + 1; }

    /** Called once when the run ends, to settle pending bookkeeping. */
    virtual void finish(Cycle now);

    /** Fold this injector's counters into @p stats. */
    virtual void accumulate(FaultStats &stats) const = 0;

    /**
     * Snapshot support: stateful injectors override both
     * (definitions in snapshot/state_io.cc).
     */
    virtual void serialize(snapshot::Sink &) const {}
    virtual void deserialize(snapshot::Source &) {}
};

/** The per-run collection of armed injectors. */
class FaultEngine
{
  public:
    /** Take ownership of @p injector and arm it. */
    Injector &add(std::unique_ptr<Injector> injector);

    /** Tick every armed injector. */
    void
    tick(Cycle now)
    {
        for (const auto &injector : injectors_)
            injector->tick(now);
    }

    /** Earliest next-event cycle over every armed injector. */
    Cycle
    nextEventCycle(Cycle now) const
    {
        Cycle event = noEventCycle;
        for (const auto &injector : injectors_) {
            const Cycle e = injector->nextEventCycle(now);
            if (e < event)
                event = e;
        }
        return event;
    }

    /** Settle bookkeeping at end of run (cycle @p now). */
    void finish(Cycle now);

    bool empty() const { return injectors_.empty(); }

    /** Aggregate counters over all armed injectors. */
    FaultStats stats() const;

    /**
     * Snapshot support (definitions in snapshot/state_io.cc): the
     * engine on both sides must hold the same armed injectors, in the
     * same order, which follows from an identical fault plan.
     */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    std::vector<std::unique_ptr<Injector>> injectors_;
};

} // namespace pfsim::fault

#endif // PFSIM_FAULT_ENGINE_HH
