#include "fault/fault.hh"

#include <cerrno>
#include <cstdlib>
#include <vector>

#include "util/logging.hh"

namespace pfsim::fault
{

namespace
{

/** Split @p text on @p sep, keeping empty pieces out. */
std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(sep, start);
        const std::string piece = text.substr(
            start, end == std::string::npos ? end : end - start);
        if (!piece.empty())
            parts.push_back(piece);
        if (end == std::string::npos)
            break;
        start = end + 1;
    }
    return parts;
}

double
parseDouble(const std::string &kind, const std::string &key,
            const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        fatal("--faults: " + kind + " " + key + " expects a number, "
              "got \"" + value + "\"");
    }
    return v;
}

double
parseRate(const std::string &kind, const std::string &key,
          const std::string &value)
{
    const double v = parseDouble(kind, key, value);
    if (v < 0.0 || v > 1.0) {
        fatal("--faults: " + kind + " " + key + " must be within "
              "[0, 1], got " + value);
    }
    return v;
}

std::int64_t
parseInt(const std::string &kind, const std::string &key,
         const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        fatal("--faults: " + kind + " " + key + " expects an integer, "
              "got \"" + value + "\"");
    }
    return v;
}

std::uint64_t
parseCount(const std::string &kind, const std::string &key,
           const std::string &value)
{
    const std::int64_t v = parseInt(kind, key, value);
    if (v < 0) {
        fatal("--faults: " + kind + " " + key + " must be >= 0, got " +
              value);
    }
    return std::uint64_t(v);
}

[[noreturn]] void
unknownKey(const std::string &kind, const std::string &key,
           const std::string &accepted)
{
    fatal("--faults: unknown " + kind + " key \"" + key +
          "\"; accepted: " + accepted);
}

} // namespace

bool
FaultPlan::any() const
{
    return anySystem() || job.enabled();
}

bool
FaultPlan::anySystem() const
{
    return trace.enabled() || weights.enabled() || spp.enabled() ||
           dram.enabled() || mshr.enabled();
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &clause : split(spec, ';')) {
        const std::size_t colon = clause.find(':');
        const std::string kind = clause.substr(0, colon);
        const std::string rest =
            colon == std::string::npos ? "" : clause.substr(colon + 1);

        if (kind != "trace" && kind != "weights" && kind != "spp" &&
            kind != "dram" && kind != "mshr" && kind != "job") {
            fatal("--faults: unknown fault kind \"" + kind +
                  "\"; accepted: trace, weights, spp, dram, mshr, job");
        }

        for (const std::string &pair : split(rest, ',')) {
            const std::size_t eq = pair.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == pair.size()) {
                fatal("--faults: expected key=value in \"" + pair +
                      "\" (fault kind " + kind + ")");
            }
            const std::string key = pair.substr(0, eq);
            const std::string value = pair.substr(eq + 1);

            if (kind == "trace") {
                if (key == "rate")
                    plan.trace.rate = parseRate(kind, key, value);
                else if (key == "budget")
                    plan.trace.budget = parseRate(kind, key, value);
                else
                    unknownKey(kind, key, "rate, budget");
            } else if (kind == "weights") {
                if (key == "rate")
                    plan.weights.rate = parseRate(kind, key, value);
                else if (key == "burst")
                    plan.weights.burst =
                        unsigned(parseCount(kind, key, value));
                else
                    unknownKey(kind, key, "rate, burst");
            } else if (kind == "spp") {
                if (key == "rate")
                    plan.spp.rate = parseRate(kind, key, value);
                else
                    unknownKey(kind, key, "rate");
            } else if (kind == "dram") {
                if (key == "drop")
                    plan.dram.dropRate = parseRate(kind, key, value);
                else if (key == "delay")
                    plan.dram.delayRate = parseRate(kind, key, value);
                else if (key == "extra")
                    plan.dram.extraCycles = parseCount(kind, key, value);
                else
                    unknownKey(kind, key, "drop, delay, extra");
            } else if (kind == "mshr") {
                if (key == "reserve")
                    plan.mshr.reserve =
                        std::uint32_t(parseCount(kind, key, value));
                else if (key == "period")
                    plan.mshr.period = parseCount(kind, key, value);
                else if (key == "duty")
                    plan.mshr.duty = parseCount(kind, key, value);
                else
                    unknownKey(kind, key, "reserve, period, duty");
            } else { // job
                if (key == "crash")
                    plan.job.crashIndex = parseInt(kind, key, value);
                else if (key == "flaky")
                    plan.job.flakyIndex = parseInt(kind, key, value);
                else if (key == "fails")
                    plan.job.flakyFails =
                        unsigned(parseCount(kind, key, value));
                else if (key == "abort")
                    plan.job.abortIndex = parseInt(kind, key, value);
                else
                    unknownKey(kind, key, "crash, flaky, fails, abort");
            }
        }
    }

    if (plan.weights.enabled() && plan.weights.burst == 0)
        fatal("--faults: weights burst must be >= 1");
    if (plan.mshr.enabled()) {
        if (plan.mshr.period == 0)
            fatal("--faults: mshr period must be >= 1 cycle");
        if (plan.mshr.duty == 0 || plan.mshr.duty > plan.mshr.period) {
            fatal("--faults: mshr duty must be within [1, period=" +
                  std::to_string(plan.mshr.period) + "] cycles");
        }
    }
    if (plan.job.flakyIndex >= 0 && plan.job.flakyFails == 0)
        fatal("--faults: job fails must be >= 1 for a flaky job");
    return plan;
}

std::string
FaultPlan::summary() const
{
    std::string out;
    auto append = [&out](const std::string &piece) {
        if (!out.empty())
            out += "; ";
        out += piece;
    };
    if (trace.enabled()) {
        append("trace rate=" + std::to_string(trace.rate) +
               " budget=" + std::to_string(trace.budget));
    }
    if (weights.enabled()) {
        append("weights rate=" + std::to_string(weights.rate) +
               " burst=" + std::to_string(weights.burst));
    }
    if (spp.enabled())
        append("spp rate=" + std::to_string(spp.rate));
    if (dram.enabled()) {
        append("dram drop=" + std::to_string(dram.dropRate) +
               " delay=" + std::to_string(dram.delayRate) + " extra=" +
               std::to_string(dram.extraCycles));
    }
    if (mshr.enabled()) {
        append("mshr reserve=" + std::to_string(mshr.reserve) +
               " period=" + std::to_string(mshr.period) + " duty=" +
               std::to_string(mshr.duty));
    }
    if (job.enabled()) {
        std::string piece = "job";
        if (job.crashIndex >= 0)
            piece += " crash=" + std::to_string(job.crashIndex);
        if (job.flakyIndex >= 0) {
            piece += " flaky=" + std::to_string(job.flakyIndex) +
                     " fails=" + std::to_string(job.flakyFails);
        }
        if (job.abortIndex >= 0)
            piece += " abort=" + std::to_string(job.abortIndex);
        append(piece);
    }
    return out.empty() ? "none" : out;
}

void
FaultStats::add(const FaultStats &other)
{
    traceCorrupted += other.traceCorrupted;
    traceRepaired += other.traceRepaired;
    traceDropped += other.traceDropped;
    weightFlips += other.weightFlips;
    weightFlipsRecovered += other.weightFlipsRecovered;
    weightRecoveryCyclesSum += other.weightRecoveryCyclesSum;
    if (other.weightRecoveryCyclesMax > weightRecoveryCyclesMax)
        weightRecoveryCyclesMax = other.weightRecoveryCyclesMax;
    sppFlips += other.sppFlips;
    dramDropped += other.dramDropped;
    dramDelayed += other.dramDelayed;
    mshrSqueezeWindows += other.mshrSqueezeWindows;
}

InjectedJobFault::InjectedJobFault(const std::string &what)
    : std::runtime_error(what)
{
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    // One splitmix64 round over the mixed inputs: cheap, stateless and
    // decorrelated for adjacent (base, stream) pairs.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace pfsim::fault
