/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A FaultPlan describes a seeded fault campaign: which fault classes
 * are armed, at what rates, and with which structural parameters.  It
 * is parsed from the shared --faults=<spec> flag and carried (by
 * pointer) inside sim::RunConfig, so every run of a sweep can rebuild
 * its own injectors from (plan, seed, job index) — injections are a
 * pure function of those three values, never of thread interleaving,
 * which keeps faulted sweeps bit-identical across --jobs values.
 *
 * Spec grammar (see EXPERIMENTS.md):
 *
 *   <spec>  := <fault> [ ";" <fault> ]...
 *   <fault> := <kind> [ ":" <key> "=" <value> [ "," <key> "=" <value> ]... ]
 *   <kind>  := "trace" | "weights" | "spp" | "dram" | "mshr" | "job"
 *
 * Example:
 *   --faults="weights:rate=0.00002;dram:drop=0.01,delay=0.05,extra=300"
 *
 * All rates are probabilities in [0, 1]; out-of-range or malformed
 * values are rejected with a one-line actionable fatal().
 */

#ifndef PFSIM_FAULT_FAULT_HH
#define PFSIM_FAULT_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/types.hh"

namespace pfsim::fault
{

/** Trace-input corruption: malformed records on the way into the core. */
struct TraceFaultSpec
{
    /** Per-record probability of corrupting the record. */
    double rate = 0.0;

    /**
     * Error budget: maximum tolerated fraction of repaired/dropped
     * records before the run gives up with a structured failure
     * (ErrorBudgetExceeded) instead of silently simulating garbage.
     */
    double budget = 0.25;

    bool enabled() const { return rate > 0.0; }
};

/** Transient soft errors in the PPF weight tables. */
struct WeightFaultSpec
{
    /** Per-cycle probability of a bit-flip event. */
    double rate = 0.0;

    /** Bit flips injected per event. */
    unsigned burst = 1;

    bool enabled() const { return rate > 0.0; }
};

/** Transient soft errors in SPP's signature/pattern tables. */
struct SppFaultSpec
{
    /** Per-cycle probability of a bit-flip event. */
    double rate = 0.0;

    bool enabled() const { return rate > 0.0; }
};

/** DRAM backpressure faults: lost and delayed responses. */
struct DramFaultSpec
{
    /** Per-response probability that a read response is dropped and
     *  must be re-issued by the controller (retried, not lost). */
    double dropRate = 0.0;

    /** Per-response probability of an extra completion delay. */
    double delayRate = 0.0;

    /** Extra cycles added to a delayed response. */
    Cycle extraCycles = 200;

    bool enabled() const { return dropRate > 0.0 || delayRate > 0.0; }
};

/** Forced MSHR exhaustion windows at the L2s. */
struct MshrFaultSpec
{
    /** MSHR entries withheld from allocation during a window. */
    std::uint32_t reserve = 0;

    /** Cycles between window starts. */
    Cycle period = 20000;

    /** Window length in cycles (must not exceed period). */
    Cycle duty = 5000;

    bool enabled() const { return reserve > 0; }
};

/** Fleet-level job faults, applied by the campaign driver. */
struct JobFaultSpec
{
    /** Submission index of a job that fails on every attempt; -1 off. */
    std::int64_t crashIndex = -1;

    /** Submission index of a job that fails @ref flakyFails times and
     *  then succeeds; -1 off. */
    std::int64_t flakyIndex = -1;

    /** Failed attempts before a flaky job recovers. */
    unsigned flakyFails = 1;

    /**
     * Submission index of a job that hard-kills its own process on
     * every attempt (SIGKILL in a shard worker, an injected exception
     * in a thread pool); -1 off.  Exercises the sweep service's crash
     * isolation and poison-job quarantine paths.
     */
    std::int64_t abortIndex = -1;

    bool
    enabled() const
    {
        return crashIndex >= 0 || flakyIndex >= 0 || abortIndex >= 0;
    }
};

/** A complete, validated fault campaign description. */
struct FaultPlan
{
    TraceFaultSpec trace;
    WeightFaultSpec weights;
    SppFaultSpec spp;
    DramFaultSpec dram;
    MshrFaultSpec mshr;
    JobFaultSpec job;

    /** True when any fault class is armed. */
    bool any() const;

    /** True when any in-system (non-job) fault class is armed. */
    bool anySystem() const;

    /**
     * Parse a --faults=<spec> string.  Unknown kinds/keys, rates
     * outside [0, 1] and malformed numbers are fatal() with a one-line
     * actionable message.  An empty spec yields an all-off plan.
     */
    static FaultPlan parse(const std::string &spec);

    /** One-line human-readable summary of the armed fault classes. */
    std::string summary() const;
};

/** Everything the injectors counted during one run. */
struct FaultStats
{
    /** Trace records corrupted by the injector. */
    std::uint64_t traceCorrupted = 0;

    /** Malformed records repaired by the sanitizer (error-budget path). */
    std::uint64_t traceRepaired = 0;

    /** Records dropped (truncation holes). */
    std::uint64_t traceDropped = 0;

    std::uint64_t weightFlips = 0;
    std::uint64_t weightFlipsRecovered = 0;

    /** Sum/max of per-flip recovery latencies, in cycles, over the
     *  recovered flips (see WeightFlipInjector for the definition). */
    std::uint64_t weightRecoveryCyclesSum = 0;
    Cycle weightRecoveryCyclesMax = 0;

    std::uint64_t sppFlips = 0;

    std::uint64_t dramDropped = 0;
    std::uint64_t dramDelayed = 0;

    /** Completed MSHR-exhaustion windows. */
    std::uint64_t mshrSqueezeWindows = 0;

    /** Mean weight-flip recovery latency over recovered flips. */
    double
    meanWeightRecoveryCycles() const
    {
        return weightFlipsRecovered == 0
            ? 0.0
            : double(weightRecoveryCyclesSum) /
                double(weightFlipsRecovered);
    }

    /** Fold @p other into this. */
    void add(const FaultStats &other);
};

/**
 * Thrown by a campaign driver to model a job-level failure (the
 * always-crashing or flaky job of a JobFaultSpec).  Distinct from
 * simulator exceptions so a log line unambiguously says "injected".
 */
class InjectedJobFault : public std::runtime_error
{
  public:
    explicit InjectedJobFault(const std::string &what);
};

/**
 * Derive an independent injector seed from a campaign seed and a
 * stream id (job index, injector kind).  splitmix64-based, so distinct
 * streams are decorrelated even for adjacent ids.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream);

} // namespace pfsim::fault

#endif // PFSIM_FAULT_FAULT_HH
