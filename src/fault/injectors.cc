#include "fault/injectors.hh"

#include <cstdlib>
#include <limits>

namespace pfsim::fault
{

namespace
{

/** Addresses at or above this limit are treated as corrupt. */
constexpr Addr addrLimit = Addr{1} << 48;

/** Draw the next event cycle for a per-cycle event probability. */
Cycle
nextEventAfter(Rng &rng, Cycle now, double rate)
{
    if (rate <= 0.0)
        return std::numeric_limits<Cycle>::max();
    return now + rng.geometric(1.0 / rate);
}

} // namespace

ErrorBudgetExceeded::ErrorBudgetExceeded(const std::string &what)
    : std::runtime_error(what)
{
}

CorruptingTrace::CorruptingTrace(trace::TraceSource &inner,
                                 const TraceFaultSpec &spec,
                                 std::uint64_t seed)
    : inner_(inner), spec_(spec), rng_(seed)
{
}

bool
CorruptingTrace::next(Instruction &out)
{
    for (;;) {
        if (!inner_.next(out))
            return false;
        if (!rng_.chance(spec_.rate))
            return true;
        switch (rng_.below(3)) {
          case 0:
            // Garbage flag byte: branch metadata inconsistent with the
            // instruction class (a decoded-garbage-opcode stand-in).
            out.isBranch = false;
            out.branchTaken = true;
            ++stats_.traceCorrupted;
            return true;
          case 1:
            // Out-of-range load address, far beyond physical memory.
            out.loadAddr = rng_.next() | (Addr{1} << 62);
            ++stats_.traceCorrupted;
            return true;
          default:
            // Dropped record: a truncation hole in the stream.
            ++stats_.traceCorrupted;
            ++stats_.traceDropped;
            break;
        }
    }
}

const std::string &
CorruptingTrace::name() const
{
    return inner_.name();
}

void
CorruptingTrace::accumulate(FaultStats &stats) const
{
    stats.add(stats_);
}

SanitizingTrace::SanitizingTrace(trace::TraceSource &inner, double budget)
    : inner_(inner), budget_(budget)
{
}

bool
SanitizingTrace::next(Instruction &out)
{
    if (!inner_.next(out))
        return false;
    ++seen_;

    bool repaired = false;
    if (out.branchTaken && !out.isBranch) {
        out.branchTaken = false;
        repaired = true;
    }
    if (out.loadAddr >= addrLimit) {
        out.loadAddr &= addrLimit - 1;
        if (out.loadAddr == 0)
            out.loadAddr = blockSize;
        repaired = true;
    }
    if (out.storeAddr >= addrLimit) {
        out.storeAddr &= addrLimit - 1;
        if (out.storeAddr == 0)
            out.storeAddr = blockSize;
        repaired = true;
    }
    if (repaired)
        ++stats_.traceRepaired;

    // Enforce the error budget once enough records have been seen for
    // the fraction to be meaningful.
    if (seen_ >= 256 &&
        double(stats_.traceRepaired) > budget_ * double(seen_)) {
        throw ErrorBudgetExceeded(
            "trace error budget exceeded: repaired " +
            std::to_string(stats_.traceRepaired) + " of " +
            std::to_string(seen_) + " records (budget " +
            std::to_string(budget_) + ")");
    }
    return true;
}

const std::string &
SanitizingTrace::name() const
{
    return inner_.name();
}

void
SanitizingTrace::accumulate(FaultStats &stats) const
{
    stats.add(stats_);
}

WeightFlipInjector::WeightFlipInjector(ppf::Ppf &ppf,
                                       const WeightFaultSpec &spec,
                                       std::uint64_t seed)
    : ppf_(ppf), spec_(spec), rng_(seed)
{
    for (unsigned f = 0; f < ppf::numFeatures; ++f) {
        if (ppf_.weights().enabled(ppf::FeatureId(f)))
            enabled_.push_back(ppf::FeatureId(f));
    }
    nextEvent_ = enabled_.empty()
        ? std::numeric_limits<Cycle>::max()
        : nextEventAfter(rng_, 0, spec_.rate);
}

void
WeightFlipInjector::tick(Cycle now)
{
    if (now >= nextEvent_) {
        inject(now);
        nextEvent_ = nextEventAfter(rng_, now, spec_.rate);
    }
    // Recovery scan: cheap enough every 64 cycles, and 64 cycles of
    // quantisation noise is negligible against training timescales.
    if (!outstanding_.empty() && (now & 63) == 0)
        checkRecovery(now);
}

Cycle
WeightFlipInjector::nextEventCycle(Cycle now) const
{
    Cycle event = nextEvent_ <= now ? now + 1 : nextEvent_;
    if (!outstanding_.empty()) {
        // The recovery scan runs on every 64-cycle boundary while
        // flips are outstanding; fast-forwarding past one would change
        // the recorded recovery latencies.
        const Cycle scan = (now + 64) & ~Cycle{63};
        if (scan < event)
            event = scan;
    }
    return event;
}

void
WeightFlipInjector::inject(Cycle now)
{
    for (unsigned n = 0; n < spec_.burst; ++n) {
        const ppf::FeatureId feature =
            enabled_[rng_.below(enabled_.size())];
        const std::uint32_t index = std::uint32_t(
            rng_.below(ppf::featureTableSizes[unsigned(feature)]));
        const unsigned bit = unsigned(rng_.below(ppf::weightBits));
        const int pre = ppf_.weights().weight(feature, index);
        const int post = ppf_.faultInjectWeightFlip(feature, index, bit);
        ++stats_.weightFlips;
        if (post == pre) {
            // Clamping undid the flip: recovered instantly.
            ++stats_.weightFlipsRecovered;
        } else {
            outstanding_.push_back({feature, index, pre, now});
        }
    }
}

void
WeightFlipInjector::checkRecovery(Cycle now)
{
    std::size_t kept = 0;
    for (std::size_t i = 0; i < outstanding_.size(); ++i) {
        const OutstandingFlip &flip = outstanding_[i];
        const int current =
            ppf_.weights().weight(flip.feature, flip.index);
        // Recovered once training has pulled the weight back to within
        // one training step of its pre-flip value.
        if (std::abs(current - flip.preValue) <= 1) {
            const Cycle latency = now - flip.cycle;
            ++stats_.weightFlipsRecovered;
            stats_.weightRecoveryCyclesSum += latency;
            if (latency > stats_.weightRecoveryCyclesMax)
                stats_.weightRecoveryCyclesMax = latency;
        } else {
            outstanding_[kept++] = flip;
        }
    }
    outstanding_.resize(kept);
}

void
WeightFlipInjector::finish(Cycle now)
{
    checkRecovery(now);
}

void
WeightFlipInjector::accumulate(FaultStats &stats) const
{
    stats.add(stats_);
}

SppFlipInjector::SppFlipInjector(prefetch::SppPrefetcher &spp,
                                 const SppFaultSpec &spec,
                                 std::uint64_t seed)
    : spp_(spp), spec_(spec), rng_(seed),
      nextEvent_(nextEventAfter(rng_, 0, spec.rate))
{
}

void
SppFlipInjector::tick(Cycle now)
{
    if (now < nextEvent_)
        return;
    if (spp_.faultInjectBitFlip(rng_))
        ++stats_.sppFlips;
    nextEvent_ = nextEventAfter(rng_, now, spec_.rate);
}

Cycle
SppFlipInjector::nextEventCycle(Cycle now) const
{
    return nextEvent_ <= now ? now + 1 : nextEvent_;
}

void
SppFlipInjector::accumulate(FaultStats &stats) const
{
    stats.add(stats_);
}

DramFaultInjector::DramFaultInjector(dram::Dram &dram,
                                     const DramFaultSpec &spec,
                                     std::uint64_t seed)
    : dram_(dram), spec_(spec), rng_(seed)
{
    dram_.faultInjectHook(this);
}

DramFaultInjector::~DramFaultInjector()
{
    dram_.faultInjectHook(nullptr);
}

void
DramFaultInjector::tick(Cycle now)
{
    // Event-driven from the DRAM response path; nothing to do per
    // cycle.
    (void)now;
}

Cycle
DramFaultInjector::nextEventCycle(Cycle now) const
{
    // Purely hook-driven: ticking never does anything.
    (void)now;
    return noEventCycle;
}

bool
DramFaultInjector::dropResponse(const cache::Request &req)
{
    (void)req;
    if (!rng_.chance(spec_.dropRate))
        return false;
    ++stats_.dramDropped;
    return true;
}

Cycle
DramFaultInjector::responseDelay(const cache::Request &req)
{
    (void)req;
    if (!rng_.chance(spec_.delayRate))
        return 0;
    ++stats_.dramDelayed;
    return spec_.extraCycles;
}

void
DramFaultInjector::accumulate(FaultStats &stats) const
{
    stats.add(stats_);
}

MshrSqueezeInjector::MshrSqueezeInjector(cache::MshrFile &mshrs,
                                         const MshrFaultSpec &spec,
                                         std::uint64_t seed)
    : mshrs_(mshrs), spec_(spec)
{
    // A seeded phase offset decorrelates squeeze windows across cores
    // while keeping them a pure function of the seed.
    Rng rng(seed);
    windowStart_ = rng.below(spec_.period);
}

void
MshrSqueezeInjector::tick(Cycle now)
{
    if (!active_) {
        if (now >= windowStart_) {
            mshrs_.faultInjectReserve(spec_.reserve);
            active_ = true;
        }
    } else if (now >= windowStart_ + spec_.duty) {
        mshrs_.faultInjectReserve(0);
        active_ = false;
        ++stats_.mshrSqueezeWindows;
        windowStart_ += spec_.period;
    }
}

Cycle
MshrSqueezeInjector::nextEventCycle(Cycle now) const
{
    const Cycle edge =
        active_ ? windowStart_ + spec_.duty : windowStart_;
    return edge <= now ? now + 1 : edge;
}

void
MshrSqueezeInjector::finish(Cycle now)
{
    (void)now;
    if (active_) {
        mshrs_.faultInjectReserve(0);
        active_ = false;
        ++stats_.mshrSqueezeWindows;
    }
}

void
MshrSqueezeInjector::accumulate(FaultStats &stats) const
{
    stats.add(stats_);
}

} // namespace pfsim::fault
