/**
 * @file
 * The concrete fault injectors.
 *
 * Every injector owns its own Rng seeded via deriveSeed(), so each
 * fault stream is independent and reproducible: the same (plan, seed)
 * pair flips the same bits on the same cycles regardless of --jobs or
 * host scheduling.
 *
 * Trace corruption is modelled as a pair of TraceSource decorators:
 * CorruptingTrace damages records on the way out of the real source,
 * and SanitizingTrace is the recovery path — it repairs what it can,
 * counts what it repaired, and throws ErrorBudgetExceeded when the
 * damage fraction exceeds the configured budget, turning silent
 * garbage-in-garbage-out into a structured, retryable failure.
 */

#ifndef PFSIM_FAULT_INJECTORS_HH
#define PFSIM_FAULT_INJECTORS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/mshr.hh"
#include "core/ppf.hh"
#include "dram/dram.hh"
#include "fault/engine.hh"
#include "fault/fault.hh"
#include "prefetch/spp.hh"
#include "trace/source.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace pfsim::fault
{

/**
 * Thrown when SanitizingTrace has repaired or dropped more than the
 * configured fraction of records: the input is too damaged to trust.
 */
class ErrorBudgetExceeded : public std::runtime_error
{
  public:
    explicit ErrorBudgetExceeded(const std::string &what);
};

/**
 * TraceSource decorator that corrupts records: garbage flag bytes
 * (branch metadata inconsistent with the instruction), out-of-range
 * addresses, and dropped records (truncation holes).
 */
class CorruptingTrace : public trace::TraceSource
{
  public:
    CorruptingTrace(trace::TraceSource &inner,
                    const TraceFaultSpec &spec, std::uint64_t seed);

    bool next(Instruction &out) override;
    const std::string &name() const override;

    /** Fold the corruption counters into @p stats. */
    void accumulate(FaultStats &stats) const;

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    trace::TraceSource &inner_;
    TraceFaultSpec spec_;
    Rng rng_;
    FaultStats stats_;
};

/**
 * TraceSource decorator that repairs malformed records and enforces
 * the error budget.  This is the recovery path a production frontend
 * would sit behind: damaged records are clamped back into the valid
 * domain instead of feeding undefined state into the core.
 */
class SanitizingTrace : public trace::TraceSource
{
  public:
    SanitizingTrace(trace::TraceSource &inner, double budget);

    bool next(Instruction &out) override;
    const std::string &name() const override;

    /** Fold the repair counters into @p stats. */
    void accumulate(FaultStats &stats) const;

    std::uint64_t repaired() const { return stats_.traceRepaired; }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    trace::TraceSource &inner_;
    double budget_;
    std::uint64_t seen_ = 0;
    FaultStats stats_;
};

/**
 * Seeded bit-flips in the PPF weight tables, with recovery tracking:
 * a flip is "recovered" once online training has driven the damaged
 * weight back to within one training step of its pre-flip value.  The
 * per-flip latency from injection to recovery is the re-convergence
 * metric reported by the resilience campaign.
 */
class WeightFlipInjector : public Injector
{
  public:
    WeightFlipInjector(ppf::Ppf &ppf, const WeightFaultSpec &spec,
                       std::uint64_t seed);

    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void finish(Cycle now) override;
    void accumulate(FaultStats &stats) const override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    struct OutstandingFlip
    {
        ppf::FeatureId feature;
        std::uint32_t index;
        int preValue;
        Cycle cycle;
    };

    void inject(Cycle now);
    void checkRecovery(Cycle now);

    ppf::Ppf &ppf_;
    WeightFaultSpec spec_;
    Rng rng_;
    std::vector<ppf::FeatureId> enabled_;
    Cycle nextEvent_;
    std::vector<OutstandingFlip> outstanding_;
    FaultStats stats_;
};

/** Seeded bit-flips in SPP's signature/pattern tables. */
class SppFlipInjector : public Injector
{
  public:
    SppFlipInjector(prefetch::SppPrefetcher &spp,
                    const SppFaultSpec &spec, std::uint64_t seed);

    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void accumulate(FaultStats &stats) const override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    prefetch::SppPrefetcher &spp_;
    SppFaultSpec spec_;
    Rng rng_;
    Cycle nextEvent_;
    FaultStats stats_;
};

/**
 * DRAM response faults: drops (response lost, request retried by the
 * controller) and delays (extra completion latency).  Installed into
 * the Dram via faultInjectHook(); tick() is a no-op because the hook
 * is event-driven from the response path.
 */
class DramFaultInjector : public Injector, public dram::DramFaultHook
{
  public:
    DramFaultInjector(dram::Dram &dram, const DramFaultSpec &spec,
                      std::uint64_t seed);
    ~DramFaultInjector() override;

    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void accumulate(FaultStats &stats) const override;

    bool dropResponse(const cache::Request &req) override;
    Cycle responseDelay(const cache::Request &req) override;

    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    dram::Dram &dram_;
    DramFaultSpec spec_;
    Rng rng_;
    FaultStats stats_;
};

/**
 * Periodic MSHR-exhaustion windows: every period cycles, reserve part
 * of a cache's MSHR file for duty cycles, forcing the miss path to
 * exercise its backpressure/retry handling.
 */
class MshrSqueezeInjector : public Injector
{
  public:
    MshrSqueezeInjector(cache::MshrFile &mshrs,
                        const MshrFaultSpec &spec, std::uint64_t seed);

    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void finish(Cycle now) override;
    void accumulate(FaultStats &stats) const override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    cache::MshrFile &mshrs_;
    MshrFaultSpec spec_;
    Cycle windowStart_;
    bool active_ = false;
    FaultStats stats_;
};

} // namespace pfsim::fault

#endif // PFSIM_FAULT_INJECTORS_HH
