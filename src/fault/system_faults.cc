#include "fault/system_faults.hh"

#include <memory>

#include "core/generic_filter.hh"
#include "core/spp_ppf.hh"
#include "fault/injectors.hh"

namespace pfsim::fault
{

namespace
{

/** Seed-stream bases, one per injector kind (cores offset within). */
enum : std::uint64_t
{
    streamWeights = 0x100,
    streamSpp = 0x200,
    streamMshr = 0x300,
    streamDram = 0x400,
};

/** The Ppf behind @p prefetcher, or nullptr when it has no filter. */
ppf::Ppf *
filterOf(prefetch::Prefetcher &prefetcher)
{
    if (auto *spp_ppf =
            dynamic_cast<ppf::SppPpfPrefetcher *>(&prefetcher);
        spp_ppf != nullptr) {
        return &spp_ppf->filter();
    }
    if (auto *filtered =
            dynamic_cast<ppf::FilteredPrefetcher *>(&prefetcher);
        filtered != nullptr) {
        return &filtered->filter();
    }
    return nullptr;
}

/** The SPP engine behind @p prefetcher, or nullptr. */
prefetch::SppPrefetcher *
sppOf(prefetch::Prefetcher &prefetcher)
{
    if (auto *spp_ppf =
            dynamic_cast<ppf::SppPpfPrefetcher *>(&prefetcher);
        spp_ppf != nullptr) {
        return &spp_ppf->spp();
    }
    return dynamic_cast<prefetch::SppPrefetcher *>(&prefetcher);
}

} // namespace

void
attachSystemFaults(sim::System &system, const FaultPlan &plan,
                   std::uint64_t seed, FaultEngine &engine)
{
    for (unsigned i = 0; i < system.coreCount(); ++i) {
        if (plan.weights.enabled()) {
            if (ppf::Ppf *filter = filterOf(system.prefetcher(i));
                filter != nullptr) {
                engine.add(std::make_unique<WeightFlipInjector>(
                    *filter, plan.weights,
                    deriveSeed(seed, streamWeights + i)));
            }
        }
        if (plan.spp.enabled()) {
            if (prefetch::SppPrefetcher *spp =
                    sppOf(system.prefetcher(i));
                spp != nullptr) {
                engine.add(std::make_unique<SppFlipInjector>(
                    *spp, plan.spp, deriveSeed(seed, streamSpp + i)));
            }
        }
        if (plan.mshr.enabled()) {
            engine.add(std::make_unique<MshrSqueezeInjector>(
                system.l2(i).faultInjectMshrs(), plan.mshr,
                deriveSeed(seed, streamMshr + i)));
        }
    }

    if (plan.dram.enabled()) {
        engine.add(std::make_unique<DramFaultInjector>(
            system.dram(), plan.dram, deriveSeed(seed, streamDram)));
    }

    // Degraded-mode audits: a weight flip is re-clamped on injection
    // and SPP counters saturate, so these invariants should hold even
    // under fire — tolerating them is belt and braces that keeps an
    // audited fault campaign from confusing an injected soft error
    // with a simulator bug, while every untouched invariant still
    // aborts on violation.
    if (plan.weights.enabled()) {
        system.audit().tolerate("weight within clamp range");
        system.audit().tolerate("inference sum within the popcount "
                                "envelope");
    }

    system.setFaultEngine(&engine);
}

} // namespace pfsim::fault
