/**
 * @file
 * Wiring a FaultPlan into an assembled system, mirroring
 * check::attachSystemAuditors.
 */

#ifndef PFSIM_FAULT_SYSTEM_FAULTS_HH
#define PFSIM_FAULT_SYSTEM_FAULTS_HH

#include <cstdint>

#include "fault/engine.hh"
#include "fault/fault.hh"
#include "sim/system.hh"

namespace pfsim::fault
{

/**
 * Build every in-system injector the plan arms, register them with
 * @p engine (which must outlive @p system's run), attach the engine to
 * the system's cycle loop, and mark the audit invariants that armed
 * soft-error injectors may legitimately violate as tolerated.
 *
 * Per-injector seeds are derived from (@p seed, injector kind, core),
 * so a sweep passes each job its own seed and gets decorrelated but
 * reproducible fault streams.
 */
void attachSystemFaults(sim::System &system, const FaultPlan &plan,
                        std::uint64_t seed, FaultEngine &engine);

} // namespace pfsim::fault

#endif // PFSIM_FAULT_SYSTEM_FAULTS_HH
