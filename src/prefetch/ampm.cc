#include "prefetch/ampm.hh"

#include <algorithm>

#include "util/small_vector.hh"

namespace pfsim::prefetch
{

AmpmPrefetcher::AmpmPrefetcher(AmpmConfig config)
    : config_(config), zones_(config.zones)
{
}

AmpmPrefetcher::Zone *
AmpmPrefetcher::findZone(Addr page)
{
    for (auto &zone : zones_) {
        if (zone.valid && zone.page == page)
            return &zone;
    }
    return nullptr;
}

AmpmPrefetcher::Zone *
AmpmPrefetcher::allocateZone(Addr page)
{
    Zone *victim = &zones_[0];
    for (auto &zone : zones_) {
        if (!zone.valid) {
            victim = &zone;
            break;
        }
        if (zone.lastUse < victim->lastUse)
            victim = &zone;
    }
    victim->valid = true;
    victim->page = page;
    victim->accessed = 0;
    victim->prefetched = 0;
    return victim;
}

bool
AmpmPrefetcher::lineAccessed(const Zone &zone, int line) const
{
    if (line < 0 || line >= int(blocksPerPage))
        return false;
    return (zone.accessed >> line) & 1;
}

void
AmpmPrefetcher::operate(const OperateInfo &info)
{
    const Addr page = pageNumber(info.addr);
    const int line = int(pageOffset(info.addr));

    Zone *zone = findZone(page);
    if (zone == nullptr)
        zone = allocateZone(page);
    zone->lastUse = ++useStamp_;
    zone->accessed |= std::uint64_t{1} << line;

    // Gather stride candidates whose history supports continuation.
    // At most two per stride magnitude, so the default configuration
    // (maxStride 16) stays entirely in the inline buffer: this runs on
    // every demand access and must not touch the heap.
    util::SmallVector<int, 32> candidates;
    for (int mag = 1; mag <= config_.maxStride; ++mag) {
        for (int k : {mag, -mag}) {
            const int target = line + k;
            if (target < 0 || target >= int(blocksPerPage))
                continue;
            const std::uint64_t bit = std::uint64_t{1} << target;
            if ((zone->accessed | zone->prefetched) & bit)
                continue;
            if (lineAccessed(*zone, line - k) &&
                lineAccessed(*zone, line - 2 * k)) {
                candidates.push_back(target);
            }
        }
    }

    // DRAM-aware ordering: issue candidates in the same DRAM row as the
    // trigger first so they coalesce into one row activation.
    const std::uint64_t trigger_row = info.addr / config_.rowBytes;
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](int a, int b) {
                         const Addr addr_a = (page << pageShift) |
                             (Addr(a) << blockShift);
                         const Addr addr_b = (page << pageShift) |
                             (Addr(b) << blockShift);
                         const bool row_a =
                             addr_a / config_.rowBytes == trigger_row;
                         const bool row_b =
                             addr_b / config_.rowBytes == trigger_row;
                         return row_a > row_b;
                     });

    unsigned issued = 0;
    for (int target : candidates) {
        if (issued >= config_.degree)
            break;
        const Addr addr = (page << pageShift) |
                          (Addr(target) << blockShift);
        if (issuer_->issuePrefetch(addr, true)) {
            zone->prefetched |= std::uint64_t{1} << target;
            ++issued;
        }
    }
}

void
AmpmPrefetcher::fill(const FillInfo &)
{
}

const std::string &
AmpmPrefetcher::name() const
{
    static const std::string n = "da_ampm";
    return n;
}

} // namespace pfsim::prefetch
