/**
 * @file
 * Access Map Pattern Matching prefetcher (Ishii et al. [11]) with the
 * DRAM-aware issue ordering of DA-AMPM [32], the paper's second
 * comparison baseline.
 *
 * AMPM keeps a per-zone (page) bitmap of accessed and prefetched lines.
 * On each access to line l it searches fixed strides k: when both
 * l - k and l - 2k were accessed, the pattern is assumed to continue
 * and l + k is prefetched.  DA-AMPM's refinement is to gather the
 * stride candidates and issue the ones falling in the currently open
 * DRAM row first, improving row-buffer locality.
 */

#ifndef PFSIM_PREFETCH_AMPM_HH
#define PFSIM_PREFETCH_AMPM_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace pfsim::prefetch
{

/** AMPM tuning knobs. */
struct AmpmConfig
{
    /** Tracked zones (fully associative, LRU). */
    std::size_t zones = 64;

    /** Maximum stride magnitude searched. */
    int maxStride = 16;

    /** Maximum prefetches issued per trigger. */
    unsigned degree = 2;

    /** DRAM row size used for the DRAM-aware ordering, bytes. */
    std::uint64_t rowBytes = 8192;
};

/** The DA-AMPM prefetcher. */
class AmpmPrefetcher : public Prefetcher
{
  public:
    explicit AmpmPrefetcher(AmpmConfig config = {});

    void operate(const OperateInfo &info) override;
    void fill(const FillInfo &info) override;
    const std::string &name() const override;

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    struct Zone
    {
        bool valid = false;
        Addr page = 0;
        std::uint64_t accessed = 0;   ///< bit per line: demanded
        std::uint64_t prefetched = 0; ///< bit per line: prefetch issued
        std::uint64_t lastUse = 0;
    };

    Zone *findZone(Addr page);
    Zone *allocateZone(Addr page);
    bool lineAccessed(const Zone &zone, int line) const;

    AmpmConfig config_;
    std::vector<Zone> zones_;
    std::uint64_t useStamp_ = 0;
};

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_AMPM_HH
