#include "prefetch/bop.hh"

#include <algorithm>

#include "util/bits.hh"

namespace pfsim::prefetch
{

BopPrefetcher::BopPrefetcher(BopConfig config)
    : config_(config)
{
    // The offset list from the BOP paper: positive integers <= 256
    // whose prime factorisation uses only 2, 3 and 5.
    for (int d = 1; d <= 256; ++d) {
        int r = d;
        for (int p : {2, 3, 5}) {
            while (r % p == 0)
                r /= p;
        }
        if (r == 1)
            offsets_.push_back(d);
    }
    scores_.assign(offsets_.size(), 0);
    rrTable_.assign(config_.rrEntries, 0);
}

void
BopPrefetcher::resetRound()
{
    std::fill(scores_.begin(), scores_.end(), 0);
    testIndex_ = 0;
    rounds_ = 0;
}

bool
BopPrefetcher::rrContains(Addr block) const
{
    const std::size_t idx =
        std::size_t(mix64(block)) & (rrTable_.size() - 1);
    return rrTable_[idx] == block;
}

void
BopPrefetcher::rrInsert(Addr block)
{
    const std::size_t idx =
        std::size_t(mix64(block)) & (rrTable_.size() - 1);
    rrTable_[idx] = block;
}

void
BopPrefetcher::learn(Addr block)
{
    // Test one candidate offset per trigger.
    const int d = offsets_[testIndex_];
    if (block >= Addr(d) && rrContains(block - Addr(d))) {
        if (++scores_[testIndex_] >= config_.scoreMax) {
            // Early finish: adopt the saturated offset.
            prefetchOffset_ = d;
            prefetchOn_ = true;
            resetRound();
            return;
        }
    }

    if (++testIndex_ == offsets_.size()) {
        testIndex_ = 0;
        if (++rounds_ >= config_.roundMax) {
            const auto best =
                std::max_element(scores_.begin(), scores_.end());
            const int best_score = *best;
            prefetchOffset_ =
                offsets_[std::size_t(best - scores_.begin())];
            prefetchOn_ = best_score > config_.badScore;
            resetRound();
        }
    }
}

void
BopPrefetcher::operate(const OperateInfo &info)
{
    // BOP triggers on misses and on hits to prefetched lines.
    if (info.cacheHit && !info.hitPrefetched)
        return;

    const Addr block = blockNumber(info.addr);
    learn(block);

    if (prefetchOn_) {
        for (unsigned i = 1; i <= config_.degree; ++i) {
            const Addr target =
                block + Addr(prefetchOffset_) * Addr(i);
            // Physical-address prefetching stops at the page boundary,
            // as in the DPC-2/ChampSim implementation.
            if (pageNumber(target << blockShift) !=
                pageNumber(info.addr)) {
                break;
            }
            issuer_->issuePrefetch(target << blockShift, true);
        }
    }
}

void
BopPrefetcher::fill(const FillInfo &info)
{
    // Recent-request bookkeeping per the BOP paper: a completed demand
    // fill of X records X itself; a completed prefetch fill of X + D
    // records X ("a prefetch of offset D issued at X was timely").
    const Addr block = blockNumber(info.addr);
    if (info.wasPrefetch) {
        if (block >= Addr(prefetchOffset_))
            rrInsert(block - Addr(prefetchOffset_));
    } else {
        rrInsert(block);
    }
}

const std::string &
BopPrefetcher::name() const
{
    static const std::string n = "bop";
    return n;
}

} // namespace pfsim::prefetch
