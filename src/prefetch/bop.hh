/**
 * @file
 * Best-Offset Prefetcher (Michaud, HPCA 2016 [34]) — winner of DPC-2
 * and one of the paper's three comparison baselines.
 *
 * BOP continuously evaluates a fixed list of candidate offsets.  For
 * each demand miss (or prefetched hit) to line X it tests one candidate
 * offset d per round-robin step: if X - d is found in the recent-request
 * table, offset d would have been timely, so d's score increases.  At
 * the end of a learning round the best-scoring offset becomes the
 * prefetch offset.  A best score below the bad-score threshold turns
 * prefetching off for the next round.
 */

#ifndef PFSIM_PREFETCH_BOP_HH
#define PFSIM_PREFETCH_BOP_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace pfsim::prefetch
{

/** Tuning knobs of the BOP learning machinery. */
struct BopConfig
{
    /** Recent-request table entries (power of two). */
    std::size_t rrEntries = 256;

    /**
     * Stop a learning round when a score reaches this.  The BOP paper
     * uses 31 with 100 rounds over billion-instruction runs; pfsim's
     * scaled runs (DESIGN.md) shorten the learning round
     * proportionally so the offset locks in within the measured
     * region.
     */
    int scoreMax = 12;

    /** Stop a learning round after this many full offset sweeps. */
    int roundMax = 20;

    /** Best scores below this disable prefetching for a round. */
    int badScore = 1;

    /** Prefetch degree with the selected offset. */
    unsigned degree = 1;
};

/** The Best-Offset prefetcher. */
class BopPrefetcher : public Prefetcher
{
  public:
    explicit BopPrefetcher(BopConfig config = {});

    void operate(const OperateInfo &info) override;
    void fill(const FillInfo &info) override;
    const std::string &name() const override;

    /** Currently selected offset, in blocks (testing/introspection). */
    int currentOffset() const { return prefetchOffset_; }

    /** True while prefetching is enabled (testing/introspection). */
    bool prefetchEnabled() const { return prefetchOn_; }

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    void resetRound();
    void learn(Addr block);
    bool rrContains(Addr block) const;
    void rrInsert(Addr block);

    BopConfig config_;

    /** Candidate offsets: 1..8 plus the classic 2^a*3^b*5^c values. */
    std::vector<int> offsets_;
    std::vector<int> scores_;
    std::size_t testIndex_ = 0;
    int rounds_ = 0;

    int prefetchOffset_ = 1;
    bool prefetchOn_ = true;

    /** Recent base requests, direct-mapped with tag. */
    std::vector<Addr> rrTable_;
};

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_BOP_HH
