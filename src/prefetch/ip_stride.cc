#include "prefetch/ip_stride.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::prefetch
{

IpStridePrefetcher::IpStridePrefetcher(std::size_t entries,
                                       unsigned degree)
    : table_(entries), degree_(degree == 0 ? 1 : degree)
{
    if (!isPowerOf2(entries))
        fatal("ip_stride table size must be a power of two");
}

void
IpStridePrefetcher::operate(const OperateInfo &info)
{
    const std::size_t idx =
        std::size_t(info.pc >> 2) & (table_.size() - 1);
    Entry &entry = table_[idx];
    const Addr block = blockNumber(info.addr);

    if (!entry.valid || entry.tag != info.pc) {
        entry.valid = true;
        entry.tag = info.pc;
        entry.lastBlock = block;
        entry.stride = 0;
        entry.confidence.set(0);
        return;
    }

    const std::int64_t stride =
        std::int64_t(block) - std::int64_t(entry.lastBlock);
    entry.lastBlock = block;
    if (stride == 0)
        return;

    if (stride == entry.stride) {
        entry.confidence.increment();
    } else {
        entry.stride = stride;
        entry.confidence.set(0);
        return;
    }

    if (entry.confidence.value() >= 2) {
        for (unsigned i = 1; i <= degree_; ++i) {
            const std::int64_t target =
                std::int64_t(block) + stride * std::int64_t(i);
            if (target <= 0)
                break;
            issuer_->issuePrefetch(Addr(target) << blockShift, true);
        }
    }
}

void
IpStridePrefetcher::fill(const FillInfo &)
{
}

const std::string &
IpStridePrefetcher::name() const
{
    static const std::string n = "ip_stride";
    return n;
}

} // namespace pfsim::prefetch
