/**
 * @file
 * Classic PC-indexed stride prefetcher (Baer & Chen style [7, 8]):
 * per-PC last address, stride and a confidence counter.
 */

#ifndef PFSIM_PREFETCH_IP_STRIDE_HH
#define PFSIM_PREFETCH_IP_STRIDE_HH

#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/sat_counter.hh"

namespace pfsim::prefetch
{

/** PC-indexed stride prefetcher. */
class IpStridePrefetcher : public Prefetcher
{
  public:
    /**
     * @param entries tracker table size (power of two)
     * @param degree prefetches issued per confident trigger
     */
    explicit IpStridePrefetcher(std::size_t entries = 256,
                                unsigned degree = 3);

    void operate(const OperateInfo &info) override;
    void fill(const FillInfo &info) override;
    const std::string &name() const override;

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    struct Entry
    {
        bool valid = false;
        Pc tag = 0;
        Addr lastBlock = 0;
        std::int64_t stride = 0;
        UnsignedSatCounter<2> confidence;
    };

    std::vector<Entry> table_;
    unsigned degree_;
};

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_IP_STRIDE_HH
