#include "prefetch/next_line.hh"

namespace pfsim::prefetch
{

NextLinePrefetcher::NextLinePrefetcher(unsigned degree)
    : degree_(degree == 0 ? 1 : degree)
{
}

void
NextLinePrefetcher::operate(const OperateInfo &info)
{
    for (unsigned i = 1; i <= degree_; ++i)
        issuer_->issuePrefetch(info.addr + Addr(i) * blockSize, true);
}

void
NextLinePrefetcher::fill(const FillInfo &)
{
}

const std::string &
NextLinePrefetcher::name() const
{
    static const std::string n = "next_line";
    return n;
}

} // namespace pfsim::prefetch
