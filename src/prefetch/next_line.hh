/**
 * @file
 * Next-line prefetcher: the simplest spatial prefetcher, used as a
 * sanity baseline and in tests.
 */

#ifndef PFSIM_PREFETCH_NEXT_LINE_HH
#define PFSIM_PREFETCH_NEXT_LINE_HH

#include "prefetch/prefetcher.hh"

namespace pfsim::prefetch
{

/** Prefetch the next @p degree sequential blocks on every demand. */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned degree = 1);

    void operate(const OperateInfo &info) override;
    void fill(const FillInfo &info) override;
    const std::string &name() const override;

  private:
    unsigned degree_;
};

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_NEXT_LINE_HH
