#include "prefetch/pmp.hh"

#include "prefetch/registry/registry.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::prefetch
{

namespace
{

/** Rotate a 64-bit offset bitmap right by @p n positions. */
constexpr std::uint64_t
rotr64(std::uint64_t v, unsigned n)
{
    n &= 63;
    return n == 0 ? v : (v >> n) | (v << (64 - n));
}

} // namespace

PmpPrefetcher::PmpPrefetcher(PmpConfig config)
    : config_(config)
{
    if (!isPowerOf2(config_.ptEntries))
        fatal("PMP pattern table entries must be a power of two");
    ft_.assign(config_.ftEntries, {});
    at_.assign(config_.atEntries, {});
    pt_.assign(config_.ptEntries, {});
}

std::uint32_t
PmpPrefetcher::patternKey(Pc pc, unsigned offset) const
{
    // Trigger context: a folded PC signature concatenated with the
    // trigger offset, so the same instruction triggering at different
    // region positions trains distinct (rotation-anchored) patterns.
    const std::uint64_t sig = foldXor(mix64(pc), 10);
    return std::uint32_t((sig << 6) | (offset & 63));
}

PmpPrefetcher::FtEntry *
PmpPrefetcher::findFt(Addr page)
{
    for (FtEntry &entry : ft_) {
        if (entry.valid && entry.page == page)
            return &entry;
    }
    return nullptr;
}

PmpPrefetcher::AtEntry *
PmpPrefetcher::findAt(Addr page)
{
    for (AtEntry &entry : at_) {
        if (entry.valid && entry.page == page)
            return &entry;
    }
    return nullptr;
}

void
PmpPrefetcher::mergePattern(const AtEntry &entry)
{
    // A pattern with only its trigger bit set carries no prediction;
    // merging it would just decay every learned offset.
    const std::uint64_t anchored =
        rotr64(entry.bitmap, entry.triggerOffset);
    if ((anchored & ~std::uint64_t{1}) == 0)
        return;

    const std::uint32_t key =
        patternKey(entry.triggerPc, entry.triggerOffset);
    const std::size_t idx =
        std::size_t(mix64(key)) & (pt_.size() - 1);
    PtEntry &pattern = pt_[idx];
    if (!pattern.valid || pattern.tag != key) {
        // Direct-mapped replacement: a new trigger context takes the
        // slot and starts counting from its own pattern.
        pattern.valid = true;
        pattern.tag = key;
        pattern.counters.fill(0);
    }

    const std::uint8_t max =
        std::uint8_t((1u << config_.counterBits) - 1);
    for (unsigned i = 0; i < 64; ++i) {
        if ((anchored >> i) & 1) {
            if (pattern.counters[i] < max)
                ++pattern.counters[i];
        } else if (pattern.counters[i] > 0) {
            // Decay offsets this region did not touch: merging is a
            // vote, and absences count against an offset.
            --pattern.counters[i];
        }
    }
    ++stats_.merges;
}

void
PmpPrefetcher::predict(Addr page, unsigned offset, Pc pc)
{
    const std::uint32_t key = patternKey(pc, offset);
    const std::size_t idx =
        std::size_t(mix64(key)) & (pt_.size() - 1);
    const PtEntry &pattern = pt_[idx];
    if (!pattern.valid || pattern.tag != key)
        return;
    ++stats_.patternHits;

    const unsigned hi = config_.hiConfidence;
    const unsigned lo = (hi + 1) / 2;
    unsigned issued = 0;
    // Walk outward from the trigger (position 0 is the trigger
    // itself): nearer offsets are likelier to be timely, so they get
    // the degree budget first.
    for (unsigned i = 1; i < 64 && issued < config_.degree; ++i) {
        const unsigned c = pattern.counters[i];
        if (c < lo)
            continue;
        const unsigned target = (offset + i) & 63;
        const Addr addr =
            (page << pageShift) | (Addr(target) << blockShift);
        if (issuer_->issuePrefetch(addr, c >= hi)) {
            ++issued;
            ++stats_.issued;
        }
    }
}

void
PmpPrefetcher::promote(const FtEntry &ft, unsigned second_offset)
{
    AtEntry *slot = nullptr;
    for (AtEntry &entry : at_) {
        if (!entry.valid) {
            slot = &entry;
            break;
        }
        if (slot == nullptr || entry.lru < slot->lru)
            slot = &entry;
    }
    if (slot->valid)
        mergePattern(*slot);

    slot->valid = true;
    slot->page = ft.page;
    slot->triggerOffset = ft.offset;
    slot->triggerPc = ft.pc;
    slot->bitmap = (std::uint64_t{1} << ft.offset) |
                   (std::uint64_t{1} << second_offset);
    slot->lru = ++lruStamp_;
    ++stats_.promotions;
}

void
PmpPrefetcher::operate(const OperateInfo &info)
{
    // Spatial pattern learning observes misses and first touches of
    // prefetched blocks — the accesses a pattern must cover.
    if (info.cacheHit && !info.hitPrefetched)
        return;

    const Addr page = pageNumber(info.addr);
    const unsigned offset = pageOffset(info.addr);

    if (AtEntry *at = findAt(page); at != nullptr) {
        at->bitmap |= std::uint64_t{1} << offset;
        at->lru = ++lruStamp_;
        return;
    }

    if (FtEntry *ft = findFt(page); ft != nullptr) {
        if (ft->offset == offset) {
            ft->lru = ++lruStamp_;
            return;
        }
        const FtEntry promoted = *ft;
        ft->valid = false;
        promote(promoted, offset);
        return;
    }

    // First access to the region: predict from the merged pattern,
    // then start tracking it in the Filter Table.
    ++stats_.triggers;
    predict(page, offset, info.pc);

    FtEntry *slot = nullptr;
    for (FtEntry &entry : ft_) {
        if (!entry.valid) {
            slot = &entry;
            break;
        }
        if (slot == nullptr || entry.lru < slot->lru)
            slot = &entry;
    }
    // FT eviction drops the region: one access is no pattern yet.
    slot->valid = true;
    slot->page = page;
    slot->offset = std::uint8_t(offset);
    slot->pc = info.pc;
    slot->lru = ++lruStamp_;
}

void
PmpPrefetcher::fill(const FillInfo &)
{
    // Pattern accumulation is driven purely by the demand stream.
}

const std::string &
PmpPrefetcher::name() const
{
    static const std::string n = "pmp";
    return n;
}

BackendInfo
pmpBackend()
{
    BackendInfo info;
    info.name = "pmp";
    info.summary =
        "pattern-merging spatial prefetcher (Jiang et al., MICRO 2021)";
    info.make = [](const BackendConfigs &configs) {
        return std::make_unique<PmpPrefetcher>(configs.pmp);
    };
    info.storageBits = [](const BackendConfigs &configs) {
        return PmpPrefetcher::storageBits(configs.pmp);
    };
    return info;
}

std::uint64_t
PmpPrefetcher::storageBits(const PmpConfig &config)
{
    // FT entry: valid 1 + page tag 30 + offset 6 + PC signature 16
    //           + LRU 8.
    const std::uint64_t ft_entry = 1 + 30 + 6 + 16 + 8;
    // AT entry: valid 1 + page tag 30 + trigger offset 6 + trigger PC
    //           signature 16 + 64-bit bitmap + LRU 8.
    const std::uint64_t at_entry = 1 + 30 + 6 + 16 + 64 + 8;
    // PT entry: valid 1 + tag 16 + 64 counters.
    const std::uint64_t pt_entry = 1 + 16 + 64 * config.counterBits;
    return config.ftEntries * ft_entry + config.atEntries * at_entry +
           config.ptEntries * pt_entry;
}

} // namespace pfsim::prefetch
