/**
 * @file
 * PMP — pattern-merging prefetching (Jiang et al., MICRO 2021; the
 * zeal4u/PMP reference implementation).  A spatial prefetcher in the
 * SMS/Bingo family: it records which blocks of a 4 KB region a program
 * touches as an offset bitmap, and *merges* the bitmaps of regions
 * that share a trigger context into one table of per-offset saturating
 * counters, instead of storing each pattern verbatim.  Merging is what
 * keeps the storage small: similar-but-not-identical patterns
 * reinforce the offsets they agree on and decay the ones they do not.
 *
 * Three tables, as in the reference implementation:
 *
 *  - Filter Table (FT): regions seen exactly once, holding the trigger
 *    offset and PC.  A second access to a different block promotes the
 *    region to the accumulation table.
 *  - Accumulation Table (AT): active regions accumulating their offset
 *    bitmap.  Eviction (capacity or LRU) merges the pattern.
 *  - Pattern Table (PT): merged patterns keyed by the trigger context
 *    (PC signature x trigger offset), one saturating counter per
 *    rotated offset.  Offsets present in a merged pattern count up;
 *    absent ones decay, so stale blocks stop being predicted.
 *
 * On the first access to a region the merged pattern is looked up and
 * every offset whose counter clears the confidence thresholds is
 * prefetched — high-confidence offsets fill the L2, the rest only the
 * LLC (the same two-level fill the paper's filter emits).  Patterns
 * are stored rotated so the trigger offset is position zero, which is
 * what lets one merged pattern serve triggers anywhere in a region.
 */

#ifndef PFSIM_PREFETCH_PMP_HH
#define PFSIM_PREFETCH_PMP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace pfsim::prefetch
{

/** PMP tuning knobs. */
struct PmpConfig
{
    /** Filter Table entries (single-access regions). */
    unsigned ftEntries = 64;

    /** Accumulation Table entries (regions gathering their bitmap). */
    unsigned atEntries = 32;

    /** Pattern Table entries (merged patterns), power of two. */
    unsigned ptEntries = 256;

    /** Bits per per-offset counter (saturates at 2^bits - 1). */
    unsigned counterBits = 3;

    /**
     * Counter value at or above which an offset fills the L2; at or
     * above half of it (rounded up) the offset still fills the LLC.
     */
    unsigned hiConfidence = 5;

    /** Maximum prefetches issued per region trigger. */
    unsigned degree = 8;
};

/** PMP event counters (host-side introspection; serialized). */
struct PmpStats
{
    std::uint64_t triggers = 0;   ///< first accesses to a region
    std::uint64_t promotions = 0; ///< FT -> AT promotions
    std::uint64_t merges = 0;     ///< AT patterns merged into the PT
    std::uint64_t patternHits = 0; ///< triggers finding a merged pattern
    std::uint64_t issued = 0;     ///< prefetches issued
};

/** The pattern-merging prefetcher. */
class PmpPrefetcher : public Prefetcher
{
  public:
    explicit PmpPrefetcher(PmpConfig config = {});

    void operate(const OperateInfo &info) override;
    void fill(const FillInfo &info) override;
    const std::string &name() const override;

    const PmpStats &pmpStats() const { return stats_; }
    const PmpConfig &config() const { return config_; }

    /** Hardware storage budget of this configuration, in bits. */
    static std::uint64_t storageBits(const PmpConfig &config);

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    /** A single-access region awaiting its second touch. */
    struct FtEntry
    {
        bool valid = false;
        Addr page = 0;
        std::uint8_t offset = 0;
        Pc pc = 0;
        std::uint64_t lru = 0;
    };

    /** An active region accumulating its offset bitmap. */
    struct AtEntry
    {
        bool valid = false;
        Addr page = 0;
        std::uint8_t triggerOffset = 0;
        Pc triggerPc = 0;
        std::uint64_t bitmap = 0;
        std::uint64_t lru = 0;
    };

    /** A merged pattern: one counter per trigger-anchored offset. */
    struct PtEntry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::array<std::uint8_t, 64> counters{};
    };

    /** Trigger-context key: PC signature x trigger offset. */
    std::uint32_t patternKey(Pc pc, unsigned offset) const;

    /** Merge @p entry's anchored bitmap into the Pattern Table. */
    void mergePattern(const AtEntry &entry);

    /** Predict and issue prefetches for a fresh region trigger. */
    void predict(Addr page, unsigned offset, Pc pc);

    FtEntry *findFt(Addr page);
    AtEntry *findAt(Addr page);

    /** Promote @p ft to the AT (evicting and merging the LRU entry). */
    void promote(const FtEntry &ft, unsigned second_offset);

    PmpConfig config_;
    std::vector<FtEntry> ft_;
    std::vector<AtEntry> at_;
    std::vector<PtEntry> pt_;

    /** LRU clock shared by the FT and AT (monotonic touch stamp). */
    std::uint64_t lruStamp_ = 0;

    PmpStats stats_;
};

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_PMP_HH
