#include "prefetch/prefetcher.hh"

// The prefetcher interface is header-only; this translation unit keeps
// the header honest (it must compile stand-alone).
