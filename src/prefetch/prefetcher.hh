/**
 * @file
 * The prefetcher interface, mirroring ChampSim's L2 prefetcher hooks:
 * operate() on every demand access, fill() on every cache fill, and an
 * issuer callback for injecting prefetches into the host cache.
 *
 * Every prefetcher in this repository (next-line, IP-stride, BOP,
 * DA-AMPM, SPP, SPP+PPF) implements this interface, which is what lets
 * the bench harness swap them freely (DESIGN.md, decision 2).
 */

#ifndef PFSIM_PREFETCH_PREFETCHER_HH
#define PFSIM_PREFETCH_PREFETCHER_HH

#include <memory>
#include <string>

#include "cache/request.hh"
#include "util/types.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::prefetch
{

/** Information passed to operate() on each demand access. */
struct OperateInfo
{
    /** Block-aligned address of the demand access. */
    Addr addr = 0;

    /** PC of the triggering instruction. */
    Pc pc = 0;

    /** True when the access hit in the host cache. */
    bool cacheHit = false;

    /**
     * True when the access hit a block that was brought in by a
     * prefetch and had not been used before (a useful prefetch).
     */
    bool hitPrefetched = false;

    /** Load or Rfo. */
    cache::AccessType type = cache::AccessType::Load;

    /** Current cycle. */
    Cycle cycle = 0;
};

/** Information passed to fill() when a block is installed. */
struct FillInfo
{
    /** Block-aligned address of the installed block. */
    Addr addr = 0;

    /** True when the fill was triggered by a prefetch. */
    bool wasPrefetch = false;

    /**
     * True when a demand merged into the prefetch's miss before the
     * fill arrived: the prefetch was useful, just late.
     */
    bool lateUseful = false;

    /** True when a valid block was evicted to make room. */
    bool evictedValid = false;

    /** Block-aligned address of the evicted block (when valid). */
    Addr evictedAddr = 0;

    /**
     * True when the evicted block was prefetched and never used by a
     * demand access: the pollution event PPF trains on.
     */
    bool evictedUnusedPrefetch = false;

    /** Current cycle. */
    Cycle cycle = 0;
};

/** Callback interface the host cache exposes to its prefetcher. */
class PrefetchIssuer
{
  public:
    virtual ~PrefetchIssuer() = default;

    /**
     * Issue a prefetch for the block containing @p addr.
     *
     * @param fill_this_level true to fill the host cache (and below);
     *        false to fill only the next level down (the LLC when the
     *        host is the L2 — SPP/PPF's low-confidence fill path).
     * @return true when the prefetch was accepted into the queue.
     */
    virtual bool issuePrefetch(Addr addr, bool fill_this_level) = 0;
};

/** Base class of all prefetchers. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Bind the host cache's issue callback; called once at wiring. */
    void attach(PrefetchIssuer *issuer) { issuer_ = issuer; }

    /** Hook invoked on every demand access to the host cache. */
    virtual void operate(const OperateInfo &info) = 0;

    /** Hook invoked on every fill into the host cache. */
    virtual void fill(const FillInfo &info) = 0;

    /** Prefetcher name for reports. */
    virtual const std::string &name() const = 0;

    /**
     * Snapshot support: stateful prefetchers override both
     * (definitions in snapshot/state_io.cc); stateless ones (none,
     * next-line) keep the no-op defaults.
     */
    virtual void serialize(snapshot::Sink &) const {}
    virtual void deserialize(snapshot::Source &) {}

  protected:
    PrefetchIssuer *issuer_ = nullptr;
};

/** A prefetcher that never prefetches (the paper's baseline). */
class NoPrefetcher : public Prefetcher
{
  public:
    void operate(const OperateInfo &) override {}
    void fill(const FillInfo &) override {}

    const std::string &
    name() const override
    {
        static const std::string n = "none";
        return n;
    }
};

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_PREFETCHER_HH
