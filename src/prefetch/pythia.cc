#include "prefetch/pythia.hh"

#include "prefetch/registry/registry.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::prefetch
{

PythiaPrefetcher::PythiaPrefetcher(PythiaConfig config)
    : config_(config), rng_(config.seed)
{
    if (config_.actions.empty() || config_.actions[0] != 0)
        fatal("Pythia needs a non-empty action list starting with the "
              "no-prefetch action 0");
    if (config_.alphaDen <= 0 || config_.gammaDen <= 0)
        fatal("Pythia alpha/gamma denominators must be positive");
    if (config_.eqSize == 0)
        fatal("Pythia evaluation queue must have at least one entry");
    if (config_.qTableEntriesLog2 == 0 ||
        config_.qTableEntriesLog2 > 20) {
        fatal("Pythia Q-table log2 size out of range");
    }

    const std::size_t entries =
        std::size_t(1) << config_.qTableEntriesLog2;
    q1_.assign(entries * config_.actions.size(), 0);
    q2_.assign(entries * config_.actions.size(), 0);
    eq_.assign(config_.eqSize, {});
}

void
PythiaPrefetcher::featureIndices(Pc pc, int delta, std::uint32_t &idx1,
                                 std::uint32_t &idx2) const
{
    const std::uint64_t entry_mask =
        (std::uint64_t(1) << config_.qTableEntriesLog2) - 1;

    // Feature 1: PC x current delta — the program-context feature the
    // Pythia paper finds most predictive.
    const std::uint64_t f1 =
        std::uint64_t(pc) * 0x9E3779B97F4A7C15ULL +
        std::uint64_t(std::int64_t(delta));
    idx1 = std::uint32_t(mix64(f1) & entry_mask);

    // Feature 2: the recent delta history, PC-free, so strided sweeps
    // generalise across the instructions driving them.
    std::uint64_t f2 = 0;
    for (std::int32_t d : deltaHistory_)
        f2 = mix64(f2 ^ (std::uint64_t(std::int64_t(d)) + 0x1F0D1ULL));
    idx2 = std::uint32_t(f2 & entry_mask);
}

std::int32_t
PythiaPrefetcher::vote(std::uint32_t idx1, std::uint32_t idx2,
                       std::uint32_t action) const
{
    const std::size_t n = config_.actions.size();
    return q1_[std::size_t(idx1) * n + action] +
           q2_[std::size_t(idx2) * n + action];
}

std::uint32_t
PythiaPrefetcher::bestAction(std::uint32_t idx1,
                             std::uint32_t idx2) const
{
    // First maximum wins: ties resolve by action-list order, which
    // keeps same-seed replays bit-identical.
    std::uint32_t best = 0;
    std::int32_t best_q = vote(idx1, idx2, 0);
    for (std::uint32_t a = 1; a < config_.actions.size(); ++a) {
        const std::int32_t q = vote(idx1, idx2, a);
        if (q > best_q) {
            best = a;
            best_q = q;
        }
    }
    return best;
}

void
PythiaPrefetcher::retire(std::size_t slot)
{
    EqEntry &entry = eq_[slot];
    if (!entry.valid)
        return;

    // Finalize the delayed reward: a demand hit already rewarded the
    // entry; otherwise the prefetch was junk, or the action was the
    // (mildly penalised) choice not to prefetch.
    if (!entry.rewarded) {
        entry.reward = entry.addr != 0 ? config_.rewardInaccurate
                                       : config_.rewardNone;
    }

    // SARSA target: reward plus the discounted Q-value of the decision
    // that followed this one — the next ring slot, since the ring is
    // insertion-ordered and this is its oldest entry.
    const EqEntry &succ = eq_[(slot + 1) % eq_.size()];
    std::int32_t next_q = 0;
    if (succ.valid)
        next_q = vote(succ.idx1, succ.idx2, succ.action);
    const std::int32_t target =
        entry.reward * 256 +
        std::int32_t(std::int64_t(config_.gammaNum) * next_q /
                     config_.gammaDen);

    // Split the TD error evenly across the two feature tables; all
    // arithmetic is integer fixed-point (1/256 units) so replay and
    // snapshot restore stay bit-identical.
    const std::size_t n = config_.actions.size();
    std::int32_t &q1 = q1_[std::size_t(entry.idx1) * n + entry.action];
    std::int32_t &q2 = q2_[std::size_t(entry.idx2) * n + entry.action];
    const std::int32_t error = target - (q1 + q2);
    q1 += error / (2 * config_.alphaDen);
    q2 += error / (2 * config_.alphaDen);
    ++stats_.updates;

    entry.valid = false;
}

void
PythiaPrefetcher::operate(const OperateInfo &info)
{
    const Addr block = info.addr >> blockShift;

    // Any demand touching a block we prefetched earns that decision
    // its accuracy reward, whether the access hit or merged late.
    for (EqEntry &entry : eq_) {
        if (entry.valid && !entry.rewarded && entry.addr == info.addr) {
            entry.rewarded = true;
            entry.reward = config_.rewardAccurate;
            ++stats_.accurate;
        }
    }

    // Decisions trigger on the learning stream (misses and first
    // touches of prefetched blocks), like the other L2 prefetchers.
    if (info.cacheHit && !info.hitPrefetched)
        return;

    int delta = 0;
    if (haveLast_) {
        const std::int64_t d = std::int64_t(block) -
                               std::int64_t(lastBlock_);
        if (d > -64 && d < 64)
            delta = int(d);
    }
    lastBlock_ = block;
    haveLast_ = true;
    for (std::size_t i = deltaHistory_.size() - 1; i > 0; --i)
        deltaHistory_[i] = deltaHistory_[i - 1];
    deltaHistory_[0] = delta;

    std::uint32_t idx1 = 0;
    std::uint32_t idx2 = 0;
    featureIndices(info.pc, delta, idx1, idx2);

    ++stats_.decisions;
    std::uint32_t action;
    if (config_.epsilonInverse != 0 &&
        rng_.below(config_.epsilonInverse) == 0) {
        action = std::uint32_t(rng_.below(config_.actions.size()));
        ++stats_.explored;
    } else {
        action = bestAction(idx1, idx2);
    }

    // Execute the action.  Cross-page targets and queue rejections
    // leave addr at 0: the block was never prefetched, so the decision
    // retires with the no-prefetch reward rather than waiting for a
    // demand hit that cannot come.
    Addr issued_addr = 0;
    const int offset = config_.actions[action];
    if (offset != 0) {
        const Addr target = Addr(std::int64_t(block) + offset)
                            << blockShift;
        if (pageNumber(target) == pageNumber(info.addr) &&
            issuer_->issuePrefetch(target, true)) {
            issued_addr = target;
            ++stats_.issued;
        }
    }

    // Record the decision: retire the ring slot it displaces (that
    // entry's successor — the next slot — is still present, which is
    // what the SARSA bootstrap needs).
    retire(eqPos_);
    EqEntry &entry = eq_[eqPos_];
    entry.valid = true;
    entry.addr = issued_addr;
    entry.idx1 = idx1;
    entry.idx2 = idx2;
    entry.action = action;
    entry.rewarded = false;
    entry.reward = 0;
    eqPos_ = (eqPos_ + 1) % eq_.size();
}

void
PythiaPrefetcher::fill(const FillInfo &)
{
    // Rewards are assigned from the demand stream at EQ retirement.
}

const std::string &
PythiaPrefetcher::name() const
{
    static const std::string n = "pythia";
    return n;
}

BackendInfo
pythiaBackend()
{
    BackendInfo info;
    info.name = "pythia";
    info.summary =
        "tabular Q-learning prefetcher (Bera et al., MICRO 2021)";
    info.make = [](const BackendConfigs &configs) {
        return std::make_unique<PythiaPrefetcher>(configs.pythia);
    };
    info.storageBits = [](const BackendConfigs &configs) {
        return PythiaPrefetcher::storageBits(configs.pythia);
    };
    return info;
}

std::uint64_t
PythiaPrefetcher::storageBits(const PythiaConfig &config)
{
    const std::uint64_t entries = std::uint64_t(1)
                                  << config.qTableEntriesLog2;
    // Two Q-tables, 16-bit fixed-point value per (entry, action).
    const std::uint64_t q_bits = 2 * entries * config.actions.size() * 16;
    // EQ entry: valid 1 + rewarded 1 + block tag 40 + two feature
    // indices + action id 6 + reward 8.
    const std::uint64_t eq_entry =
        1 + 1 + 40 + 2 * config.qTableEntriesLog2 + 6 + 8;
    return q_bits + config.eqSize * eq_entry;
}

} // namespace pfsim::prefetch
