/**
 * @file
 * A Pythia-style reinforcement-learning prefetcher (Bera et al.,
 * MICRO 2021).  Prefetching is framed as a Markov decision process:
 * the *state* is a pair of program-context features, the *actions* are
 * candidate prefetch offsets (including "no prefetch"), and a tabular
 * Q-value store — one table per feature, votes summed — scores every
 * action.  Decisions are epsilon-greedy off the repository's seeded
 * deterministic RNG; rewards arrive *late* (a prefetch is only known
 * accurate when a demand hits it), so issued decisions wait in an
 * evaluation queue (EQ) and their Q-update runs when they retire,
 * SARSA-style, bootstrapped from the Q-value of the decision that
 * followed them.
 *
 * Substitutions against the paper, in the spirit of DESIGN.md's table:
 * Q-values are integer fixed-point (1/256 units) rather than floats so
 * snapshots and cross-host sweeps stay bit-identical, and the reward
 * scheme is collapsed to accurate / inaccurate / no-prefetch levels —
 * the bandwidth-aware reward split needs DRAM occupancy feedback the
 * L2 hook does not export.  All learning runs on the demand stream the
 * Prefetcher interface already delivers, which is exactly the
 * integration the PPF generality recipe expects.
 */

#ifndef PFSIM_PREFETCH_PYTHIA_HH
#define PFSIM_PREFETCH_PYTHIA_HH

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/random.hh"

namespace pfsim::prefetch
{

/** Pythia tuning knobs. */
struct PythiaConfig
{
    /** log2 of the entries in each feature's Q-table. */
    unsigned qTableEntriesLog2 = 10;

    /**
     * Candidate actions as block offsets from the trigger; 0 is the
     * mandatory "no prefetch" action.
     */
    std::vector<int> actions = {0, 1, 2, 3, 4, 6, 8, -1, -2, -4};

    /** Explore with probability 1/epsilonInverse (0 disables). */
    std::uint32_t epsilonInverse = 256;

    /** Learning-rate divisor: Q moves by (target - Q) / alphaDen. */
    int alphaDen = 8;

    /** Discount as a rational: future value scales by num/den. */
    int gammaNum = 1;
    int gammaDen = 2;

    /** Reward for a prefetch a demand hit before EQ retirement. */
    int rewardAccurate = 20;

    /** Reward for a prefetch no demand ever hit. */
    int rewardInaccurate = -14;

    /** Reward for choosing not to prefetch. */
    int rewardNone = -2;

    /** Evaluation-queue depth (decisions awaiting their reward). */
    unsigned eqSize = 64;

    /** RNG seed of the epsilon-greedy exploration stream. */
    std::uint64_t seed = 0xA11CE5EEDULL;
};

/** Pythia event counters (host-side introspection; serialized). */
struct PythiaStats
{
    std::uint64_t decisions = 0;  ///< state evaluations
    std::uint64_t explored = 0;   ///< epsilon-greedy random actions
    std::uint64_t issued = 0;     ///< prefetches issued
    std::uint64_t accurate = 0;   ///< EQ entries rewarded by a demand
    std::uint64_t updates = 0;    ///< Q-value updates applied
};

/** The tabular Q-learning prefetcher. */
class PythiaPrefetcher : public Prefetcher
{
  public:
    explicit PythiaPrefetcher(PythiaConfig config = {});

    void operate(const OperateInfo &info) override;
    void fill(const FillInfo &info) override;
    const std::string &name() const override;

    const PythiaStats &pythiaStats() const { return stats_; }
    const PythiaConfig &config() const { return config_; }

    /** Q-vote for (current tables, state @p idx1/@p idx2, action). */
    std::int32_t vote(std::uint32_t idx1, std::uint32_t idx2,
                      std::uint32_t action) const;

    /** Hardware storage budget of this configuration, in bits. */
    static std::uint64_t storageBits(const PythiaConfig &config);

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    /** One issued decision awaiting its delayed reward. */
    struct EqEntry
    {
        bool valid = false;
        /** Prefetched block address, or 0 for the no-prefetch action. */
        Addr addr = 0;
        std::uint32_t idx1 = 0;
        std::uint32_t idx2 = 0;
        std::uint32_t action = 0;
        bool rewarded = false;
        std::int32_t reward = 0;
    };

    /** Feature indices of the current trigger context. */
    void featureIndices(Pc pc, int delta, std::uint32_t &idx1,
                        std::uint32_t &idx2) const;

    /** Retire the EQ slot about to be overwritten: finalize its
     *  reward and apply the SARSA update against its successor. */
    void retire(std::size_t slot);

    /** Greedy action (exploration aside) for the given state. */
    std::uint32_t bestAction(std::uint32_t idx1,
                             std::uint32_t idx2) const;

    PythiaConfig config_;

    /** Q-value tables, one per feature: [entry * actions + action],
     *  fixed-point 1/256 units. */
    std::vector<std::int32_t> q1_;
    std::vector<std::int32_t> q2_;

    /** Evaluation queue: ring of past decisions, insertion order. */
    std::vector<EqEntry> eq_;
    std::size_t eqPos_ = 0;

    /** Last four block deltas (feature 2's program context). */
    std::array<std::int32_t, 4> deltaHistory_{};

    /** Previous trigger block, for the delta computation. */
    Addr lastBlock_ = 0;
    bool haveLast_ = false;

    /** Deterministic exploration stream. */
    Rng rng_;

    PythiaStats stats_;
};

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_PYTHIA_HH
