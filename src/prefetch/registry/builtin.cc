/**
 * @file
 * The built-in prefetcher zoo, assembled in one function.  Everything
 * the old if/else factory in sim/system.cc constructed is here, with
 * the same configurations, so specs keep producing byte-identical
 * simulations; PMP and Pythia bring their descriptors from their own
 * translation units.
 *
 * Storage budgets for the classical backends are derived from their
 * structure sizes the same way core/storage.cc derives the paper's
 * Table 3 (tag and field widths stated per entry); SPP+PPF reports the
 * paper's audited 322,240-bit total directly.
 */

#include "core/storage.hh"
#include "prefetch/ampm.hh"
#include "prefetch/bop.hh"
#include "prefetch/ip_stride.hh"
#include "prefetch/next_line.hh"
#include "prefetch/registry/registry.hh"
#include "prefetch/vldp.hh"

namespace pfsim::prefetch
{

namespace
{

BackendInfo
noneBackend()
{
    BackendInfo info;
    info.name = "none";
    info.summary = "no prefetching (the paper's baseline)";
    // Filtering nothing is a no-op; the parser rejects "none+ppf".
    info.filterable = false;
    info.make = [](const BackendConfigs &) {
        return std::make_unique<NoPrefetcher>();
    };
    info.storageBits = [](const BackendConfigs &) {
        return std::uint64_t(0);
    };
    return info;
}

BackendInfo
nextLineBackend()
{
    BackendInfo info;
    info.name = "next_line";
    info.summary = "stateless next-line prefetcher";
    info.make = [](const BackendConfigs &) {
        return std::make_unique<NextLinePrefetcher>();
    };
    info.storageBits = [](const BackendConfigs &) {
        return std::uint64_t(0);
    };
    return info;
}

BackendInfo
ipStrideBackend()
{
    BackendInfo info;
    info.name = "ip_stride";
    info.summary = "PC-indexed stride prefetcher (Baer-Chen style)";
    info.make = [](const BackendConfigs &) {
        return std::make_unique<IpStridePrefetcher>();
    };
    info.storageBits = [](const BackendConfigs &) {
        // 256 trackers: valid 1 + PC tag 16 + last block 40 +
        // stride 12 + confidence 2.
        return std::uint64_t(256) * (1 + 16 + 40 + 12 + 2);
    };
    return info;
}

BackendInfo
bopBackend()
{
    BackendInfo info;
    info.name = "bop";
    info.summary = "best-offset prefetcher (Michaud, HPCA 2016)";
    info.make = [](const BackendConfigs &) {
        return std::make_unique<BopPrefetcher>();
    };
    info.storageBits = [](const BackendConfigs &) {
        // RR table 256 x 12-bit tag, 52 candidate offsets x 12-bit
        // score, current/best offset and round bookkeeping ~64.
        return std::uint64_t(256) * 12 + 52 * 12 + 64;
    };
    return info;
}

BackendInfo
daAmpmBackend()
{
    BackendInfo info;
    info.name = "da_ampm";
    info.summary = "DRAM-aware AMPM (access-map pattern matching)";
    info.make = [](const BackendConfigs &) {
        return std::make_unique<AmpmPrefetcher>();
    };
    info.storageBits = [](const BackendConfigs &) {
        // 64 zones: valid 1 + page tag 30 + LRU 8 + access and
        // prefetch maps (64 x 2-bit states).
        return std::uint64_t(64) * (1 + 30 + 8 + 64 * 2);
    };
    return info;
}

BackendInfo
vldpBackend()
{
    BackendInfo info;
    info.name = "vldp";
    info.summary = "variable-length delta prefetcher (MICRO 2015)";
    info.make = [](const BackendConfigs &) {
        return std::make_unique<VldpPrefetcher>();
    };
    info.storageBits = [](const BackendConfigs &) {
        // DHB 16 x (page tag 30 + last offset 6 + 3 deltas x 7 +
        // LRU 8), three DPTs 64 x (key 21 + delta 7 + conf 2), OPT
        // 64 x (delta 7 + conf 2).
        return std::uint64_t(16) * (30 + 6 + 3 * 7 + 8) +
               std::uint64_t(3) * 64 * (21 + 7 + 2) +
               std::uint64_t(64) * (7 + 2);
    };
    return info;
}

BackendInfo
sppBackend()
{
    BackendInfo info;
    info.name = "spp";
    info.summary = "signature path prefetcher (MICRO 2016 baseline)";
    info.make = [](const BackendConfigs &configs) {
        return std::make_unique<SppPrefetcher>(configs.spp);
    };
    info.storageBits = [](const BackendConfigs &configs) {
        const SppConfig &c = configs.spp;
        // ST entry: valid 1 + tag 16 + last offset 6 + signature +
        // LRU 8; PT entry: Csig 4 + 4 slots x (Cdelta 4 + delta 7);
        // GHR entry: sig + conf 8 + offset 6 + delta 7.
        return std::uint64_t(c.stSets) * c.stWays *
                   (1 + 16 + 6 + c.signatureBits + 8) +
               std::uint64_t(c.ptEntries) * (4 + 4 * (4 + 7)) +
               std::uint64_t(c.ghrEntries) *
                   (c.signatureBits + 8 + 6 + 7);
    };
    return info;
}

BackendInfo
sppPpfBackend()
{
    BackendInfo info;
    info.name = "spp_ppf";
    info.summary =
        "SPP with the tightly-integrated perceptron filter (the paper)";
    // Already filtered: "spp_ppf+ppf" (and the old factory's
    // "spp_ppf_ppf") is a double filter and is rejected.
    info.filterable = false;
    info.make = [](const BackendConfigs &configs) {
        return std::make_unique<ppf::SppPpfPrefetcher>(configs.sppPpf);
    };
    info.storageBits = [](const BackendConfigs &) {
        // The audited Table 3 total (core/storage.cc): 322,240 bits.
        return ppf::totalStorageBits();
    };
    return info;
}

} // namespace

void
registerBuiltinBackends()
{
    registerPrefetcherBackend(noneBackend());
    registerPrefetcherBackend(nextLineBackend());
    registerPrefetcherBackend(ipStrideBackend());
    registerPrefetcherBackend(bopBackend());
    registerPrefetcherBackend(daAmpmBackend());
    registerPrefetcherBackend(vldpBackend());
    registerPrefetcherBackend(sppBackend());
    registerPrefetcherBackend(sppPpfBackend());
    registerPrefetcherBackend(pmpBackend());
    registerPrefetcherBackend(pythiaBackend());
}

} // namespace pfsim::prefetch
