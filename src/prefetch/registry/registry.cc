#include "prefetch/registry/registry.hh"

#include "core/generic_filter.hh"
#include "util/logging.hh"

namespace pfsim::prefetch
{

namespace
{

/** The registry grammar, quoted verbatim by every parse rejection. */
const char grammarNote[] =
    " (valid specs: <backend> or <backend>+ppf; run with "
    "--list-prefetchers for the backend names)";

std::vector<BackendInfo> &
backendTable()
{
    static std::vector<BackendInfo> table;
    return table;
}

/**
 * Built-in registration runs on the first registry query, not at
 * static-initialization time: explicit and idempotent, so tests may
 * also call registerBuiltinBackends() directly.
 */
void
ensureBuiltins()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    registerBuiltinBackends();
}

} // namespace

void
registerPrefetcherBackend(BackendInfo info)
{
    if (info.name.empty())
        fatal("prefetcher backend registered without a name");
    if (!info.make || !info.storageBits) {
        fatal("prefetcher backend '" + info.name +
              "' registered without a factory or storage report");
    }
    for (const BackendInfo &existing : backendTable()) {
        if (existing.name == info.name) {
            fatal("prefetcher backend '" + info.name +
                  "' registered twice");
        }
    }
    backendTable().push_back(std::move(info));
}

const std::vector<BackendInfo> &
prefetcherBackends()
{
    ensureBuiltins();
    return backendTable();
}

const BackendInfo *
findPrefetcherBackend(const std::string &name)
{
    for (const BackendInfo &info : prefetcherBackends()) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

bool
tryParsePrefetcherSpec(const std::string &text, PrefetcherSpec &spec,
                       std::string &error)
{
    ensureBuiltins();

    std::string base = text;
    bool filtered = false;

    // Split one "+<modifier>" off the end; "ppf" is the only modifier.
    if (const auto plus = base.find('+'); plus != std::string::npos) {
        const std::string modifier = base.substr(plus + 1);
        base = base.substr(0, plus);
        if (modifier != "ppf") {
            error = "unknown prefetcher modifier '+" + modifier +
                    "' in '" + text + "'" + grammarNote;
            return false;
        }
        filtered = true;
    }

    // Legacy "<base>_ppf" spelling: strip the suffix exactly once.
    // The old factory recursed here, which is how "spp_ppf_ppf" and
    // "none_ppf" slipped through; registered names ("spp_ppf") are
    // matched before any stripping and never re-derived.
    if (!filtered && findPrefetcherBackend(base) == nullptr &&
        base.size() > 4 &&
        base.compare(base.size() - 4, 4, "_ppf") == 0) {
        base = base.substr(0, base.size() - 4);
        filtered = true;
    }

    const BackendInfo *info = findPrefetcherBackend(base);
    if (info == nullptr) {
        error = "unknown prefetcher backend '" + base + "' in '" +
                text + "'" + grammarNote;
        return false;
    }

    if (filtered && !info->filterable) {
        if (base == "none") {
            error = "'" + text + "' filters the no-op backend: the "
                    "perceptron would never see a candidate" +
                    grammarNote;
        } else {
            error = "'" + text + "' double-filters '" + base +
                    "', which is already PPF-filtered" + grammarNote;
        }
        return false;
    }

    // "spp+ppf" means the paper's tight integration (exported SPP
    // metadata feeding the perceptron), not a metadata-free generic
    // wrap around plain SPP — canonicalise to the registered backend.
    if (filtered && base == "spp") {
        base = "spp_ppf";
        filtered = false;
    }

    spec.base = base;
    spec.filtered = filtered;
    spec.canonical = filtered ? base + "+ppf" : base;
    return true;
}

PrefetcherSpec
parsePrefetcherSpec(const std::string &text)
{
    PrefetcherSpec spec;
    std::string error;
    if (!tryParsePrefetcherSpec(text, spec, error))
        fatal(error);
    return spec;
}

std::unique_ptr<Prefetcher>
makePrefetcherFromSpec(const std::string &text,
                       const BackendConfigs &configs)
{
    const PrefetcherSpec spec = parsePrefetcherSpec(text);
    const BackendInfo *info = findPrefetcherBackend(spec.base);
    std::unique_ptr<Prefetcher> base = info->make(configs);
    if (!spec.filtered)
        return base;
    return std::make_unique<ppf::FilteredPrefetcher>(
        std::move(base), configs.sppPpf.ppf);
}

std::string
describeBackend(const BackendInfo &info, const BackendConfigs &configs)
{
    const std::uint64_t bits = info.storageBits(configs);
    // Tenths of a KB, rounded: precise enough to compare budgets,
    // stable enough to diff in CI.
    const std::uint64_t tenth_kb = (bits * 10 + 4096) / 8192;
    std::string row = info.name;
    row.append(row.size() < 12 ? 12 - row.size() : 1, ' ');
    row += std::to_string(bits) + " bits (" +
           std::to_string(tenth_kb / 10) + "." +
           std::to_string(tenth_kb % 10) + " KB)  ";
    row += info.filterable ? "[+ppf ok] " : "[no +ppf] ";
    row += info.summary;
    return row;
}

} // namespace pfsim::prefetch
