/**
 * @file
 * The prefetcher backend registry (ROADMAP item 2): every prefetcher
 * family in the repository is a registered backend descriptor — name,
 * one-line summary, factory, storage-budget report and a filterable
 * flag — and the `--prefetcher` flag is parsed against one composable
 * spec grammar instead of the old if/else factory chain:
 *
 *     <backend>            a registered backend by name
 *     <backend>+ppf        the backend wrapped behind the generic
 *                          perceptron filter (paper Section 3.2)
 *     <backend>_ppf        legacy spelling of <backend>+ppf, kept so
 *                          existing scripts and reports parse
 *                          unchanged
 *
 * Two compositions are rejected rather than silently constructed, with
 * a one-line fatal naming the grammar: filtering "none" (a no-op — the
 * filter would never see a candidate) and filtering "spp_ppf" or any
 * already-filtered spec (a double filter; the old factory's suffix
 * recursion accepted "spp_ppf_ppf").  "spp+ppf" canonicalises to
 * "spp_ppf", the paper's tight integration with exported SPP metadata,
 * not the metadata-free generic wrap.
 *
 * Registration is a plain descriptor handed to
 * registerPrefetcherBackend().  Each substantial backend exposes its
 * descriptor from its own translation unit (pmpBackend(),
 * pythiaBackend()); builtin.cc assembles the full zoo in one place
 * because self-registering global constructors in a static library are
 * dropped by the linker unless referenced (DESIGN.md §15).  Adding a
 * backend is: implement Prefetcher, expose a descriptor, add one line
 * to registerBuiltinBackends().
 */

#ifndef PFSIM_PREFETCH_REGISTRY_REGISTRY_HH
#define PFSIM_PREFETCH_REGISTRY_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/spp_ppf.hh"
#include "prefetch/pmp.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/pythia.hh"
#include "prefetch/spp.hh"

namespace pfsim::prefetch
{

/**
 * Per-backend tuning parameters the factories draw from.  One struct
 * rather than N factory signatures, so SystemConfig can carry every
 * backend's knobs and a spec string alone selects the construction.
 */
struct BackendConfigs
{
    SppConfig spp;
    ppf::SppPpfConfig sppPpf;
    PmpConfig pmp;
    PythiaConfig pythia;
};

/** A registered prefetcher backend. */
struct BackendInfo
{
    /** Spec name, e.g. "pmp". */
    std::string name;

    /** One-line description for --list-prefetchers. */
    std::string summary;

    /**
     * True when <name>+ppf is a valid composition.  False for "none"
     * (filtering nothing is a no-op) and "spp_ppf" (already filtered).
     */
    bool filterable = true;

    /** Construct the backend from its configuration. */
    std::function<std::unique_ptr<Prefetcher>(const BackendConfigs &)>
        make;

    /** Hardware storage budget in bits under @p configs. */
    std::function<std::uint64_t(const BackendConfigs &)> storageBits;
};

/**
 * Register @p info.  fatal() on a duplicate name or a descriptor
 * missing its factory or storage report — a half-described backend
 * would corrupt every listing and bench that iterates the zoo.
 */
void registerPrefetcherBackend(BackendInfo info);

/** Every registered backend, in registration order. */
const std::vector<BackendInfo> &prefetcherBackends();

/** The backend named @p name, or nullptr. */
const BackendInfo *findPrefetcherBackend(const std::string &name);

/** A parsed --prefetcher spec. */
struct PrefetcherSpec
{
    /** Registered backend name ("spp+ppf" canonicalises to base
     *  "spp_ppf" here — the tight integration, not a generic wrap). */
    std::string base;

    /** Wrap the base behind the generic perceptron filter. */
    bool filtered = false;

    /** Canonical spelling: "<base>" or "<base>+ppf". */
    std::string canonical;
};

/**
 * Parse @p text against the spec grammar.  On failure returns false
 * and fills @p error with the one-line diagnosis (unknown backend,
 * no-op filter, double filter, unknown modifier), always naming the
 * valid grammar.  Never constructs anything.
 */
bool tryParsePrefetcherSpec(const std::string &text,
                            PrefetcherSpec &spec, std::string &error);

/** tryParsePrefetcherSpec, fatal() on failure. */
PrefetcherSpec parsePrefetcherSpec(const std::string &text);

/**
 * Build the prefetcher @p text names: the backend itself, or the
 * backend behind a ppf::FilteredPrefetcher when the spec composes
 * +ppf.  fatal() on a spec the grammar rejects.
 */
std::unique_ptr<Prefetcher>
makePrefetcherFromSpec(const std::string &text,
                       const BackendConfigs &configs);

/**
 * One row of the --list-prefetchers report: "<name>  <bits> bits
 * (<KB> KB)  [+ppf] <summary>".  Exposed so the CI smoke can check
 * the exact lines against prefetcherBackends().
 */
std::string describeBackend(const BackendInfo &info,
                            const BackendConfigs &configs);

/** PMP's backend descriptor (defined alongside it in pmp.cc). */
BackendInfo pmpBackend();

/** Pythia's backend descriptor (defined in pythia.cc). */
BackendInfo pythiaBackend();

/**
 * Register every built-in backend (defined in builtin.cc, invoked
 * lazily by the registry accessors).  Explicit rather than
 * global-constructor self-registration: in a static library the
 * linker drops unreferenced registrar objects, and a zoo that varies
 * with link order is worse than one assembled in a single function.
 */
void registerBuiltinBackends();

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_REGISTRY_REGISTRY_HH
