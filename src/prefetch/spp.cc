#include "prefetch/spp.hh"

#include <cassert>
#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::prefetch
{

SppPrefetcher::SppPrefetcher(SppConfig config, SppFilter *filter)
    : config_(config), filter_(filter),
      st_(std::size_t(config.stSets) * config.stWays),
      pt_(config.ptEntries), ghr_(config.ghrEntries)
{
    if (!isPowerOf2(config_.stSets))
        fatal("SPP signature table sets must be a power of two");
}

std::uint32_t
SppPrefetcher::encodeDelta(int delta)
{
    // 7-bit sign-magnitude encoding, as in the original design.
    if (delta >= 0)
        return std::uint32_t(delta) & 0x3f;
    return 0x40 | (std::uint32_t(-delta) & 0x3f);
}

std::uint32_t
SppPrefetcher::nextSignature(std::uint32_t sig, int delta) const
{
    const std::uint32_t sig_mask =
        (std::uint32_t{1} << config_.signatureBits) - 1;
    return ((sig << 3) ^ encodeDelta(delta)) & sig_mask;
}

double
SppPrefetcher::alpha() const
{
    if (cTotal_ < 16)
        return 0.9; // optimistic start before statistics accumulate
    double a = double(cUseful_) / double(cTotal_);
    if (a > 1.0)
        a = 1.0;
    return a;
}

SppPrefetcher::StEntry *
SppPrefetcher::stLookup(Addr page)
{
    const std::size_t set = std::size_t(page) & (config_.stSets - 1);
    const std::uint16_t tag = std::uint16_t(page >> 6);
    for (unsigned w = 0; w < config_.stWays; ++w) {
        StEntry &entry = st_[set * config_.stWays + w];
        if (entry.valid && entry.tag == tag)
            return &entry;
    }
    return nullptr;
}

SppPrefetcher::StEntry *
SppPrefetcher::stAllocate(Addr page)
{
    const std::size_t set = std::size_t(page) & (config_.stSets - 1);
    StEntry *victim = &st_[set * config_.stWays];
    for (unsigned w = 0; w < config_.stWays; ++w) {
        StEntry &entry = st_[set * config_.stWays + w];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lru < victim->lru)
            victim = &entry;
    }
    victim->valid = true;
    victim->tag = std::uint16_t(page >> 6);
    victim->signature = 0;
    victim->lastOffset = 0;
    return victim;
}

void
SppPrefetcher::ptTrain(std::uint32_t sig, int delta)
{
    PtEntry &entry = pt_[sig % config_.ptEntries];

    if (entry.cSig.increment()) {
        // C_sig saturated: halve all counters to age the distribution.
        entry.cSig.halve();
        for (auto &slot : entry.slots)
            slot.count.halve();
        entry.cSig.increment();
    }

    PtSlot *match = nullptr;
    PtSlot *weakest = &entry.slots[0];
    for (auto &slot : entry.slots) {
        if (slot.count.value() > 0 && slot.delta == delta) {
            match = &slot;
            break;
        }
        if (slot.count.value() < weakest->count.value())
            weakest = &slot;
    }
    if (match != nullptr) {
        match->count.increment();
    } else {
        weakest->delta = std::int16_t(delta);
        weakest->count.set(1);
    }
}

void
SppPrefetcher::ghrRecord(std::uint32_t sig, int confidence,
                         unsigned offset, int delta)
{
    GhrEntry &entry = ghr_[ghrNext_];
    ghrNext_ = (ghrNext_ + 1) % ghr_.size();
    entry.valid = true;
    entry.signature = std::uint16_t(sig);
    entry.confidence = confidence;
    entry.lastOffset = std::uint8_t(offset);
    entry.delta = std::int16_t(delta);
}

const SppPrefetcher::GhrEntry *
SppPrefetcher::ghrMatch(unsigned offset) const
{
    for (const auto &entry : ghr_) {
        if (!entry.valid)
            continue;
        const int landing =
            int(entry.lastOffset) + int(entry.delta) -
            int(blocksPerPage);
        if (landing >= 0 && unsigned(landing) == offset)
            return &entry;
    }
    return nullptr;
}

bool
SppPrefetcher::emitCandidate(const SppCandidate &candidate)
{
    ++stats_.candidates;

    if (filter_ != nullptr) {
        switch (filter_->test(candidate)) {
          case SppFilter::Decision::Drop:
            ++stats_.filterDropped;
            return false;
          case SppFilter::Decision::FillL2:
            break;
          case SppFilter::Decision::FillLlc:
            if (issuer_->issuePrefetch(candidate.addr, false)) {
                ++cTotal_;
                ++stats_.issued;
                stats_.depthSum += std::uint64_t(candidate.depth);
                filter_->notifyIssued(candidate, false);
                return true;
            }
            return false;
        }
        if (issuer_->issuePrefetch(candidate.addr, true)) {
            ++cTotal_;
            ++stats_.issued;
            stats_.depthSum += std::uint64_t(candidate.depth);
            filter_->notifyIssued(candidate, true);
            return true;
        }
        return false;
    }

    // Unfiltered SPP: T_p gating happened in lookahead; T_f picks the
    // fill level.
    if (issuer_->issuePrefetch(candidate.addr, candidate.fillL2)) {
        ++cTotal_;
        ++stats_.issued;
        stats_.depthSum += std::uint64_t(candidate.depth);
        return true;
    }
    return false;
}

void
SppPrefetcher::lookahead(Addr page, unsigned offset, std::uint32_t sig,
                         Pc pc, Addr trigger_addr)
{
    double path_conf = 100.0;
    const double a = alpha();
    std::uint32_t cur_sig = sig;
    int cur_offset = int(offset);
    unsigned issued_this_trigger = 0;

    for (unsigned depth = 1; depth <= config_.maxDepth; ++depth) {
        const PtEntry &entry = pt_[cur_sig % config_.ptEntries];
        const int c_sig = int(entry.cSig.value());
        if (c_sig == 0)
            break;

        // Evaluate every delta slot at this depth.  Candidates that
        // pass the static gates are collected into one burst so an
        // attached filter can precompute its inference for all of
        // them in a single batched kernel pass; the dynamic
        // per-trigger issue cap is applied at emit time with the same
        // sequential count the per-slot loop used, so the emitted set
        // and every side effect are identical to emitting in place.
        static_assert(SppConfig::ptDeltaSlots <= SppFilter::maxBatch);
        std::array<SppCandidate, SppConfig::ptDeltaSlots> burst;
        std::size_t burst_count = 0;
        int best_delta = 0;
        double best_conf = -1.0;
        for (const auto &slot : entry.slots) {
            if (slot.count.value() == 0)
                continue;
            const double c_d =
                100.0 * double(slot.count.value()) / double(c_sig);
            const double p_d = depth == 1
                ? c_d
                : a * c_d * path_conf / 100.0;

            if (c_d > best_conf) {
                best_conf = c_d;
                best_delta = slot.delta;
            }

            const int target = cur_offset + int(slot.delta);
            if (target < 0 || target >= int(blocksPerPage))
                continue; // cross-page handled via the GHR below

            const bool above_tp =
                p_d >= double(config_.prefetchThreshold);
            const bool forced = depth <= config_.forcedDepth;
            const bool filter_floor =
                filter_ != nullptr &&
                p_d >= double(config_.filteredFloor);
            if (!above_tp && !forced && !filter_floor)
                continue;

            SppCandidate candidate;
            candidate.addr = (page << pageShift) |
                             (Addr(unsigned(target)) << blockShift);
            candidate.triggerAddr = trigger_addr;
            candidate.pc = pc;
            candidate.depth = int(depth);
            candidate.confidence = int(std::lround(p_d));
            candidate.delta = slot.delta;
            candidate.signature = cur_sig;
            candidate.fillL2 = p_d >= double(config_.fillThreshold);
            burst[burst_count++] = candidate;
        }

        if (filter_ != nullptr && burst_count > 0)
            filter_->beginBatch(burst.data(), burst_count);
        for (std::size_t i = 0; i < burst_count; ++i) {
            if (issued_this_trigger >= config_.maxPrefetchesPerTrigger)
                break;
            if (emitCandidate(burst[i]))
                ++issued_this_trigger;
        }

        if (best_conf < 0.0)
            break;

        // Descend along the strongest delta.
        const double next_path = depth == 1
            ? best_conf
            : a * best_conf * path_conf / 100.0;

        const bool continue_forced = depth < config_.forcedDepth;
        const bool continue_normal = filter_ == nullptr
            ? next_path >= double(config_.prefetchThreshold)
            : next_path >= double(config_.filteredFloor);
        if (!continue_forced && !continue_normal)
            break;

        const int next_offset = cur_offset + best_delta;
        if (next_offset < 0 || next_offset >= int(blocksPerPage)) {
            // Crossing the page: remember the path in the GHR so the
            // first access to the neighbouring page can continue it.
            ghrRecord(cur_sig, int(std::lround(next_path)),
                      unsigned(cur_offset), best_delta);
            break;
        }

        cur_sig = nextSignature(cur_sig, best_delta);
        cur_offset = next_offset;
        path_conf = next_path;
    }
}

void
SppPrefetcher::operate(const OperateInfo &info)
{
    if (info.hitPrefetched)
        ++cUseful_;

    // Periodically age the global accuracy counters.
    if (cTotal_ >= 1024) {
        cTotal_ /= 2;
        cUseful_ /= 2;
    }

    const Addr page = pageNumber(info.addr);
    const unsigned offset = pageOffset(info.addr);
    ++stats_.triggers;

    StEntry *entry = stLookup(page);
    if (entry != nullptr) {
        entry->lru = ++lruStamp_;
        const int delta = int(offset) - int(entry->lastOffset);
        if (delta == 0)
            return; // same block; nothing to learn
        ptTrain(entry->signature, delta);
        entry->signature =
            std::uint16_t(nextSignature(entry->signature, delta));
        entry->lastOffset = std::uint8_t(offset);
        lookahead(page, offset, entry->signature, info.pc, info.addr);
        return;
    }

    // First access to a page: try to continue a cross-page path.
    entry = stAllocate(page);
    entry->lru = ++lruStamp_;
    entry->lastOffset = std::uint8_t(offset);
    if (const GhrEntry *ghr = ghrMatch(offset); ghr != nullptr) {
        entry->signature = std::uint16_t(
            nextSignature(ghr->signature, ghr->delta));
        ++stats_.ghrBootstraps;
        lookahead(page, offset, entry->signature, info.pc, info.addr);
    } else {
        entry->signature = 0;
    }
}

void
SppPrefetcher::fill(const FillInfo &info)
{
    // A demand that merged into a prefetch miss before the fill means
    // the prefetch was useful (just late); hitPrefetched in operate()
    // covers the timely case.
    if (info.wasPrefetch && info.lateUseful)
        ++cUseful_;
}

const std::string &
SppPrefetcher::name() const
{
    static const std::string n = "spp";
    return n;
}

bool
SppPrefetcher::faultInjectBitFlip(Rng &rng)
{
    // Half the events strike the Signature Table (only meaningful on a
    // valid entry's compressed history); the rest strike the Pattern
    // Table's learned deltas and occurrence counters.
    if (rng.below(2) == 0) {
        std::vector<std::size_t> valid;
        for (std::size_t i = 0; i < st_.size(); ++i) {
            if (st_[i].valid)
                valid.push_back(i);
        }
        if (!valid.empty()) {
            StEntry &entry = st_[valid[rng.below(valid.size())]];
            const unsigned bit =
                unsigned(rng.below(config_.signatureBits));
            entry.signature =
                std::uint16_t(entry.signature ^ (1u << bit));
            return true;
        }
    }

    PtEntry &entry = pt_[rng.below(pt_.size())];
    PtSlot &slot = entry.slots[rng.below(entry.slots.size())];
    switch (rng.below(3)) {
      case 0:
        // Delta field: 7-bit sign-magnitude encoding in hardware.
        slot.delta =
            std::int16_t(slot.delta ^ std::int16_t(1 << rng.below(7)));
        return true;
      case 1:
        slot.count.set(slot.count.value() ^ (1u << rng.below(4)));
        return true;
      default:
        entry.cSig.set(entry.cSig.value() ^ (1u << rng.below(4)));
        return true;
    }
}

} // namespace pfsim::prefetch
