/**
 * @file
 * Signature Path Prefetcher (Kim et al., MICRO 2016 [2]) — the paper's
 * underlying prefetcher.
 *
 * SPP compresses the recent intra-page delta history into a 12-bit
 * signature (Signature Table), correlates signatures with likely next
 * deltas and their occurrence counts (Pattern Table), and speculates
 * down the predicted path ("lookahead"), compounding per-step
 * confidence C_d with the global accuracy alpha:
 *
 *     P_d = alpha * C_d * P_{d-1}
 *
 * Without a filter, P_d is thresholded against T_p (prefetch at all)
 * and T_f (fill L2 vs LLC), the mechanism PPF replaces.  With a filter
 * attached (SppFilter), every candidate on the path is handed to the
 * filter, which makes the drop / fill-L2 / fill-LLC decision — this is
 * the "original thresholds discarded" re-tuning of Section 4.1.
 *
 * A Global History Register carries signatures across page boundaries
 * so a pattern learnt in one page bootstraps prefetching in the next.
 */

#ifndef PFSIM_PREFETCH_SPP_HH
#define PFSIM_PREFETCH_SPP_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/random.hh"
#include "util/sat_counter.hh"

namespace pfsim::prefetch
{

/** SPP structural and threshold parameters (paper Table 3 defaults). */
struct SppConfig
{
    /** Signature Table: stSets * stWays entries (256 total). */
    unsigned stSets = 64;
    unsigned stWays = 4;

    /** Pattern Table entries, indexed by signature. */
    unsigned ptEntries = 512;

    /** Delta slots per Pattern Table entry. */
    static constexpr unsigned ptDeltaSlots = 4;

    /** Global History Register entries. */
    unsigned ghrEntries = 8;

    /** Signature width in bits. */
    unsigned signatureBits = 12;

    /** Prefetch threshold T_p on the 0..100 confidence scale. */
    int prefetchThreshold = 25;

    /** Fill threshold T_f: at or above fills L2, below fills LLC. */
    int fillThreshold = 90;

    /** Hard bound on lookahead depth (structural safety limit). */
    unsigned maxDepth = 16;

    /** Maximum prefetches issued per trigger access. */
    unsigned maxPrefetchesPerTrigger = 12;

    /**
     * When non-zero, lookahead proceeds to at least this depth using
     * the highest-confidence delta even below T_p (the re-tuned
     * aggressiveness sweep of Figure 1).
     */
    unsigned forcedDepth = 0;

    /**
     * Path-confidence floor below which lookahead stops when a filter
     * is attached.  With PPF attached, SPP runs this aggressively and
     * relies on the filter to reject the junk.
     */
    int filteredFloor = 4;
};

/** One prefetch candidate produced during lookahead. */
struct SppCandidate
{
    /** Proposed prefetch target (block-aligned). */
    Addr addr = 0;

    /** Demand address that triggered the chain. */
    Addr triggerAddr = 0;

    /** PC of the triggering instruction. */
    Pc pc = 0;

    /** Lookahead depth (1 = non-speculative). */
    int depth = 1;

    /** Path confidence P_d, 0..100. */
    int confidence = 0;

    /** Predicted delta for this candidate, in blocks (signed). */
    int delta = 0;

    /** Signature of the lookahead stage that produced the candidate. */
    std::uint32_t signature = 0;

    /** SPP's own fill-level suggestion (P_d >= T_f). */
    bool fillL2 = false;

    /** Member-wise equality (batch-handoff matching in the filter). */
    bool operator==(const SppCandidate &) const = default;
};

/** Decision interface PPF implements. */
class SppFilter
{
  public:
    enum class Decision
    {
        Drop,
        FillL2,
        FillLlc,
    };

    /** Largest burst beginBatch() is ever handed. */
    static constexpr std::size_t maxBatch = 8;

    virtual ~SppFilter() = default;

    /**
     * Announce the candidates of one lookahead burst before they are
     * test()ed individually.  Purely a performance hint: a filter may
     * precompute its inference for the whole burst in one batched
     * kernel pass and serve the upcoming test() calls from that
     * cache.  The contract: every candidate subsequently test()ed
     * before the next beginBatch() is drawn from @p candidates in
     * order (possibly skipping some), and the caller guarantees no
     * training feedback arrives between beginBatch() and those
     * test() calls.  The default does nothing, so filters that do
     * not batch are unaffected.
     */
    virtual void
    beginBatch(const SppCandidate *candidates, std::size_t count)
    {
        (void)candidates;
        (void)count;
    }

    /** Decide the fate of one candidate. */
    virtual Decision test(const SppCandidate &candidate) = 0;

    /**
     * Called after an accepted candidate was actually injected into
     * the prefetch queue (duplicates of in-flight or resident blocks
     * are deduplicated by the cache and never reported).  This is
     * the point at which PPF logs the candidate in its Prefetch Table
     * (Figure 5, step 2).
     */
    virtual void notifyIssued(const SppCandidate &candidate,
                              bool fill_l2) = 0;
};

/** Aggregate counters for analysis and the Figure 1/9 benches. */
struct SppStats
{
    std::uint64_t triggers = 0;
    std::uint64_t issued = 0;
    std::uint64_t depthSum = 0;
    std::uint64_t candidates = 0;
    std::uint64_t filterDropped = 0;
    std::uint64_t ghrBootstraps = 0;

    double
    averageDepth() const
    {
        return issued == 0 ? 0.0
                           : double(depthSum) / double(issued);
    }
};

/** The SPP prefetcher. */
class SppPrefetcher : public Prefetcher
{
  public:
    explicit SppPrefetcher(SppConfig config = {},
                           SppFilter *filter = nullptr);

    void operate(const OperateInfo &info) override;
    void fill(const FillInfo &info) override;
    const std::string &name() const override;

    const SppStats &sppStats() const { return stats_; }
    const SppConfig &config() const { return config_; }

    /** Global accuracy alpha in [0, 1]. */
    double alpha() const;

    /** Encode a signed block delta into its 7-bit representation. */
    static std::uint32_t encodeDelta(int delta);

    /**
     * Flip one bit of the learned table state — a transient soft error
     * (called only from src/fault).  Targets a valid Signature Table
     * entry's compressed history, or a Pattern Table slot's delta or
     * occurrence counter.  All draws come from @p rng, so identical
     * seeds flip identical bits.  @return false when the tables are
     * still cold and nothing was flipped.
     */
    bool faultInjectBitFlip(Rng &rng);

    /** Advance a signature by one delta. */
    std::uint32_t nextSignature(std::uint32_t sig, int delta) const;

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    struct StEntry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::uint8_t lastOffset = 0;
        std::uint16_t signature = 0;
        std::uint64_t lru = 0;
    };

    struct PtSlot
    {
        std::int16_t delta = 0;
        UnsignedSatCounter<4> count;
    };

    struct PtEntry
    {
        UnsignedSatCounter<4> cSig;
        std::array<PtSlot, SppConfig::ptDeltaSlots> slots;
    };

    struct GhrEntry
    {
        bool valid = false;
        std::uint16_t signature = 0;
        int confidence = 0;
        std::uint8_t lastOffset = 0;
        std::int16_t delta = 0;
    };

    StEntry *stLookup(Addr page);
    StEntry *stAllocate(Addr page);
    void ptTrain(std::uint32_t sig, int delta);
    void lookahead(Addr page, unsigned offset, std::uint32_t sig,
                   Pc pc, Addr trigger_addr);
    void ghrRecord(std::uint32_t sig, int confidence, unsigned offset,
                   int delta);
    const GhrEntry *ghrMatch(unsigned offset) const;

    /** Issue (or filter) one candidate; returns true when issued. */
    bool emitCandidate(const SppCandidate &candidate);

    SppConfig config_;
    SppFilter *filter_;

    std::vector<StEntry> st_;
    std::vector<PtEntry> pt_;
    std::vector<GhrEntry> ghr_;
    std::size_t ghrNext_ = 0;
    std::uint64_t lruStamp_ = 0;

    /** Global accuracy tracking (C_total / C_useful, Table 3). */
    std::uint64_t cTotal_ = 0;
    std::uint64_t cUseful_ = 0;

    SppStats stats_;
};

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_SPP_HH
