#include "prefetch/vldp.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::prefetch
{

VldpPrefetcher::VldpPrefetcher(VldpConfig config)
    : config_(config), dhb_(config.dhbEntries)
{
    if (!isPowerOf2(config_.dptEntries))
        fatal("VLDP DPT size must be a power of two");
    for (auto &table : dpt_)
        table.assign(config_.dptEntries, DptEntry{});
}

VldpPrefetcher::DhbEntry *
VldpPrefetcher::dhbLookup(Addr page)
{
    for (auto &entry : dhb_) {
        if (entry.valid && entry.page == page)
            return &entry;
    }
    return nullptr;
}

VldpPrefetcher::DhbEntry *
VldpPrefetcher::dhbAllocate(Addr page)
{
    DhbEntry *victim = &dhb_[0];
    for (auto &entry : dhb_) {
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lastUse < victim->lastUse)
            victim = &entry;
    }
    *victim = DhbEntry{};
    victim->valid = true;
    victim->page = page;
    return victim;
}

std::uint64_t
VldpPrefetcher::historyHash(const DhbEntry &entry, unsigned len) const
{
    // Hash the newest len deltas (order-sensitive); 7-bit
    // sign-magnitude encoding keeps +d and -d distinct.
    auto encode = [](int d) {
        return d >= 0 ? std::uint64_t(d) & 0x3f
                      : 0x40 | (std::uint64_t(-d) & 0x3f);
    };
    std::uint64_t key = 0;
    for (unsigned i = 0; i < len; ++i)
        key = (key << 7) ^ encode(entry.deltas[i]);
    return mix64(key ^ (std::uint64_t(len) << 58));
}

bool
VldpPrefetcher::predict(const DhbEntry &entry, int &delta) const
{
    // Longest matching history wins.
    for (unsigned len = std::min(entry.deltaCount,
                                 VldpConfig::historyLength);
         len >= 1; --len) {
        const std::uint64_t hash = historyHash(entry, len);
        const DptEntry &candidate =
            dpt_[len - 1][hash & (config_.dptEntries - 1)];
        // Predict only from confirmed entries: a pattern must repeat
        // once before it drives prefetches.
        if (candidate.valid &&
            candidate.key == std::uint32_t(hash >> 32) &&
            candidate.accuracy.value() >= 1) {
            delta = candidate.prediction;
            return true;
        }
    }
    return false;
}

void
VldpPrefetcher::train(const DhbEntry &entry, int delta)
{
    for (unsigned len = 1;
         len <= std::min(entry.deltaCount, VldpConfig::historyLength);
         ++len) {
        const std::uint64_t hash = historyHash(entry, len);
        const std::uint32_t key = std::uint32_t(hash >> 32);
        DptEntry &slot = dpt_[len - 1][hash & (config_.dptEntries - 1)];
        if (slot.valid && slot.key == key) {
            if (slot.prediction == delta) {
                slot.accuracy.increment();
            } else if (slot.accuracy.value() == 0) {
                slot.prediction = delta;
            } else {
                slot.accuracy.set(slot.accuracy.value() - 1);
            }
        } else {
            slot.valid = true;
            slot.key = key;
            slot.prediction = delta;
            slot.accuracy.set(0);
        }
    }
}

void
VldpPrefetcher::operate(const OperateInfo &info)
{
    const Addr page = pageNumber(info.addr);
    const int offset = int(pageOffset(info.addr));

    DhbEntry *entry = dhbLookup(page);
    if (entry == nullptr) {
        // First access to the page: allocate, and use the OPT to
        // predict the first delta from the landing offset.
        entry = dhbAllocate(page);
        entry->lastUse = ++useStamp_;
        entry->lastOffset = offset;
        const OptEntry &opt = opt_[unsigned(offset)];
        if (opt.valid && opt.accuracy.value() >= 1) {
            const int target = offset + opt.firstDelta;
            if (target >= 0 && target < int(blocksPerPage)) {
                issuer_->issuePrefetch(
                    (page << pageShift) |
                        (Addr(unsigned(target)) << blockShift),
                    true);
            }
        }
        return;
    }

    entry->lastUse = ++useStamp_;
    const int delta = offset - entry->lastOffset;
    if (delta == 0)
        return;

    // Train: the OPT on the page's first delta, the DPTs on history.
    if (entry->deltaCount == 0) {
        OptEntry &opt = opt_[unsigned(entry->lastOffset)];
        if (opt.valid && opt.firstDelta == delta) {
            opt.accuracy.increment();
        } else if (!opt.valid || opt.accuracy.value() == 0) {
            opt.valid = true;
            opt.firstDelta = delta;
            opt.accuracy.set(0);
        } else {
            opt.accuracy.set(opt.accuracy.value() - 1);
        }
    } else {
        train(*entry, delta);
    }

    // Shift the history and chain predictions for the degree.
    for (unsigned i = VldpConfig::historyLength - 1; i >= 1; --i)
        entry->deltas[i] = entry->deltas[i - 1];
    entry->deltas[0] = delta;
    if (entry->deltaCount < VldpConfig::historyLength)
        ++entry->deltaCount;
    entry->lastOffset = offset;

    DhbEntry lookahead = *entry;
    int current = offset;
    for (unsigned d = 0; d < config_.degree; ++d) {
        int next_delta = 0;
        if (!predict(lookahead, next_delta))
            break;
        const int target = current + next_delta;
        if (target < 0 || target >= int(blocksPerPage))
            break;
        issuer_->issuePrefetch(
            (page << pageShift) |
                (Addr(unsigned(target)) << blockShift),
            true);
        // Advance the speculative history.
        for (unsigned i = VldpConfig::historyLength - 1; i >= 1; --i)
            lookahead.deltas[i] = lookahead.deltas[i - 1];
        lookahead.deltas[0] = next_delta;
        if (lookahead.deltaCount < VldpConfig::historyLength)
            ++lookahead.deltaCount;
        current = target;
    }
}

void
VldpPrefetcher::fill(const FillInfo &)
{
}

const std::string &
VldpPrefetcher::name() const
{
    static const std::string n = "vldp";
    return n;
}

} // namespace pfsim::prefetch
