/**
 * @file
 * Variable Length Delta Prefetcher (Shevgoor et al., MICRO 2015 [35])
 * — the other modern lookahead prefetcher the paper's related work
 * discusses (Section 7.2).
 *
 * VLDP correlates variable-length histories of intra-page deltas with
 * the next delta, using a cascade of Delta Prediction Tables: DPT-1
 * maps the last delta to a prediction, DPT-2 the last two, DPT-3 the
 * last three; the longest-history table that hits wins.  An Offset
 * Prediction Table covers the first access of a page (no delta
 * history yet), and a small Delta History Buffer tracks per-page
 * state.  Multi-degree prefetching chains predictions.
 *
 * Provided both as an additional baseline and as another base for the
 * generic perceptron filter ("vldp_ppf").
 */

#ifndef PFSIM_PREFETCH_VLDP_HH
#define PFSIM_PREFETCH_VLDP_HH

#include <array>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/sat_counter.hh"

namespace pfsim::prefetch
{

/** VLDP structural parameters (paper defaults, scaled like the rest). */
struct VldpConfig
{
    /** Delta History Buffer entries (pages tracked, fully assoc). */
    std::size_t dhbEntries = 16;

    /** Entries per Delta Prediction Table. */
    std::size_t dptEntries = 64;

    /** Offset Prediction Table entries (one per page offset). */
    static constexpr std::size_t optEntries = 64;

    /** Delta history length (number of DPT levels). */
    static constexpr unsigned historyLength = 3;

    /** Prefetch degree: predictions chained per trigger. */
    unsigned degree = 4;
};

/** The VLDP prefetcher. */
class VldpPrefetcher : public Prefetcher
{
  public:
    explicit VldpPrefetcher(VldpConfig config = {});

    void operate(const OperateInfo &info) override;
    void fill(const FillInfo &info) override;
    const std::string &name() const override;

    /** Snapshot support (definitions in snapshot/state_io.cc). */
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    struct DhbEntry
    {
        bool valid = false;
        Addr page = 0;
        int lastOffset = 0;
        /** Most recent deltas, [0] newest. */
        std::array<int, VldpConfig::historyLength> deltas = {0, 0, 0};
        unsigned deltaCount = 0;
        std::uint64_t lastUse = 0;
    };

    struct DptEntry
    {
        bool valid = false;
        std::uint32_t key = 0;
        int prediction = 0;
        /** 2-bit accuracy counter gates replacement. */
        UnsignedSatCounter<2> accuracy;
    };

    struct OptEntry
    {
        bool valid = false;
        int firstDelta = 0;
        UnsignedSatCounter<2> accuracy;
    };

    DhbEntry *dhbLookup(Addr page);
    DhbEntry *dhbAllocate(Addr page);

    /** Hash the newest @p len deltas of @p entry (index + tag). */
    std::uint64_t historyHash(const DhbEntry &entry,
                              unsigned len) const;

    /**
     * Predict the next delta from the longest matching history.
     * @return true and sets @p delta on a hit.
     */
    bool predict(const DhbEntry &entry, int &delta) const;

    /** Train the DPT cascade with the observed @p delta. */
    void train(const DhbEntry &entry, int delta);

    VldpConfig config_;
    std::vector<DhbEntry> dhb_;
    /** dpt_[i] is indexed by a hash of the last i+1 deltas. */
    std::array<std::vector<DptEntry>, VldpConfig::historyLength> dpt_;
    std::array<OptEntry, VldpConfig::optEntries> opt_;
    std::uint64_t useStamp_ = 0;
};

} // namespace pfsim::prefetch

#endif // PFSIM_PREFETCH_VLDP_HH
