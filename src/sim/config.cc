#include "sim/config.hh"

#include "util/bits.hh"

namespace pfsim::sim
{

SystemConfig
SystemConfig::defaultConfig(unsigned cores)
{
    SystemConfig config;
    config.cores = cores;

    config.core = cpu::CoreConfig{};

    config.l1i.name = "L1I";
    config.l1i.sets = 64; // 32 KB, 8-way
    config.l1i.ways = 8;
    config.l1i.latency = 4;
    config.l1i.mshrs = 8;
    config.l1i.rqSize = 16;
    config.l1i.wqSize = 16;
    config.l1i.pqSize = 8;

    config.l1d.name = "L1D";
    config.l1d.sets = 64; // 32 KB, 8-way
    config.l1d.ways = 8;
    config.l1d.latency = 5;
    config.l1d.mshrs = 16;
    config.l1d.rqSize = 32;
    config.l1d.wqSize = 32;
    config.l1d.pqSize = 16;
    config.l1d.writeAllocateDirty = true;

    config.l2.name = "L2";
    config.l2.sets = 1024; // 512 KB, 8-way
    config.l2.ways = 8;
    config.l2.latency = 10;
    config.l2.mshrs = 32;
    config.l2.rqSize = 32;
    config.l2.wqSize = 32;
    config.l2.pqSize = 48;

    config.llc.name = "LLC";
    config.llc.sets = 2048 * cores; // 2 MB per core, 16-way
    config.llc.ways = 16;
    config.llc.latency = 25;
    config.llc.mshrs = 64 * cores;
    config.llc.rqSize = 48 * cores;
    config.llc.wqSize = 48 * cores;
    config.llc.pqSize = 48 * cores;
    config.llc.maxTagsPerCycle = 2 * cores;

    config.dram = dram::DramConfig{};
    config.dram.setBandwidthGBs(12.8);

    return config;
}

SystemConfig
SystemConfig::smallLlc()
{
    SystemConfig config = defaultConfig(1);
    config.llc.sets = 512; // 512 KB, 16-way
    return config;
}

SystemConfig
SystemConfig::lowBandwidth()
{
    SystemConfig config = defaultConfig(1);
    config.dram.setBandwidthGBs(3.2);
    return config;
}

SystemConfig
SystemConfig::withPrefetcher(const std::string &name) const
{
    SystemConfig config = *this;
    config.prefetcher = name;
    return config;
}

bool
parseFastPathMode(const std::string &text, FastPathMode &mode)
{
    if (text == "off") {
        mode = FastPathMode::Off;
        return true;
    }
    if (text == "skip") {
        mode = FastPathMode::Skip;
        return true;
    }
    if (text == "wheel" || text == "on") {
        mode = FastPathMode::Wheel;
        return true;
    }
    return false;
}

const char *
fastPathModeName(FastPathMode mode)
{
    switch (mode) {
    case FastPathMode::Off:
        return "off";
    case FastPathMode::Skip:
        return "skip";
    case FastPathMode::Wheel:
        return "wheel";
    }
    return "off";
}

} // namespace pfsim::sim
