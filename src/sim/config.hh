/**
 * @file
 * Whole-system configuration (the paper's Table 1) and the named
 * variants of Section 5.2 (small LLC, low DRAM bandwidth).
 */

#ifndef PFSIM_SIM_CONFIG_HH
#define PFSIM_SIM_CONFIG_HH

#include <string>

#include "cache/cache.hh"
#include "core/spp_ppf.hh"
#include "cpu/core.hh"
#include "dram/dram.hh"
#include "prefetch/pmp.hh"
#include "prefetch/pythia.hh"
#include "prefetch/spp.hh"

namespace pfsim::sim
{

/**
 * How System::step() advances simulated time.  All three modes are
 * bit-identical in statistics, stdout and snapshots; they differ only
 * in which host work they avoid:
 *
 *  - Off:   the naive reference — tick every component every cycle.
 *  - Skip:  PR 4's whole-system idle skipping — jump over cycles where
 *           *no* component has work, tick everything otherwise.
 *  - Wheel: the event-wheel scheduler — tick each component only on
 *           cycles where *it* has work, even inside busy cycles.
 */
enum class FastPathMode
{
    Off,
    Skip,
    Wheel,
};

/** Parse off|skip|wheel (plus on/off legacy aliases: on == wheel).
 *  Returns false when @p text names no mode. */
bool parseFastPathMode(const std::string &text, FastPathMode &mode);

/** The flag spelling of @p mode: "off", "skip" or "wheel". */
const char *fastPathModeName(FastPathMode mode);

/** Complete configuration of an N-core system. */
struct SystemConfig
{
    unsigned cores = 1;

    cpu::CoreConfig core;
    cache::CacheConfig l1i;
    cache::CacheConfig l1d;
    cache::CacheConfig l2;
    cache::CacheConfig llc;
    dram::DramConfig dram;

    /**
     * L2 prefetcher spec, parsed against the registry grammar
     * (prefetch/registry/registry.hh): any registered backend name
     * ("none", "next_line", "ip_stride", "bop", "da_ampm", "vldp",
     * "spp", "spp_ppf", "pmp", "pythia"), optionally composed with
     * the generic perceptron filter as "<backend>+ppf" (legacy
     * "<backend>_ppf" spelling accepted).
     */
    std::string prefetcher = "none";

    /** SPP parameters when the spec selects "spp". */
    prefetch::SppConfig sppConfig;

    /** SPP+PPF parameters when the spec selects "spp_ppf"; its .ppf
     *  member also configures every generic "+ppf" composition. */
    ppf::SppPpfConfig sppPpfConfig;

    /** PMP parameters when the spec selects "pmp". */
    prefetch::PmpConfig pmpConfig;

    /** Pythia parameters when the spec selects "pythia". */
    prefetch::PythiaConfig pythiaConfig;

    /**
     * Default configuration for @p cores cores: private 32 KB L1s and
     * 512 KB L2s, a shared 2 MB/core 16-way LLC, one 12.8 GB/s DRAM
     * channel, LRU everywhere, perceptron branch prediction — the
     * paper's simulation parameters.
     */
    static SystemConfig defaultConfig(unsigned cores = 1);

    /** Section 5.2 variant: LLC reduced to 512 KB (single core). */
    static SystemConfig smallLlc();

    /** Section 5.2 variant: DRAM limited to 3.2 GB/s (single core). */
    static SystemConfig lowBandwidth();

    /** Copy of this config with a different prefetcher selected. */
    SystemConfig withPrefetcher(const std::string &name) const;
};

} // namespace pfsim::sim

#endif // PFSIM_SIM_CONFIG_HH
