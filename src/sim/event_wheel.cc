#include "sim/event_wheel.hh"

#include <algorithm>

namespace pfsim::sim
{

EventWheel::EventWheel(unsigned components)
    : comps_(components),
      words_((components + 63) / 64),
      dueCycle_(components, noEventCycle),
      buckets_(std::size_t(kBuckets) * words_, 0),
      current_(words_, 0)
{
}

void
EventWheel::reset(Cycle now)
{
    cursor_ = now;
    farMin_ = noEventCycle;
    processingCycle_ = 0;
    processing_ = false;
    lastTaken_ = -1;
    std::fill(dueCycle_.begin(), dueCycle_.end(), noEventCycle);
    std::fill(buckets_.begin(), buckets_.end(), 0);
    std::fill(current_.begin(), current_.end(), 0);
}

void
EventWheel::refreshFar()
{
    farMin_ = noEventCycle;
    for (unsigned i = 0; i < comps_; ++i) {
        if (dueCycle_[i] != noEventCycle)
            insert(i, dueCycle_[i]);
    }
}

Cycle
EventWheel::openNext(Cycle limit)
{
    processing_ = false;
    for (;;) {
        if (cursor_ >= limit)
            return noEventCycle;
        // A component scheduled more than kBuckets ahead has no calendar
        // bit; once the window reaches its recorded minimum, re-derive
        // bits (and an exact farMin_) from ground truth so the scan
        // below cannot pass over it.
        if (farMin_ <= cursor_ + kBuckets)
            refreshFar();
        const Cycle stop = std::min(limit, cursor_ + kBuckets);
        for (Cycle t = cursor_ + 1; t <= stop; ++t) {
            std::uint64_t *slot =
                &buckets_[std::size_t(slotOf(t)) * words_];
            bool found = false;
            for (unsigned w = 0; w < words_; ++w) {
                std::uint64_t bits = slot[w];
                if (!bits) {
                    current_[w] = 0;
                    continue;
                }
                std::uint64_t keep = 0;
                std::uint64_t cur = 0;
                while (bits) {
                    const unsigned b = unsigned(std::countr_zero(bits));
                    bits &= bits - 1;
                    const Cycle due = dueCycle_[w * 64 + b];
                    // Bits due this cycle move to the pending set; a bit
                    // survives in the slot only while it still names the
                    // slot's live due cycle a whole calendar turn later.
                    if (due == t) {
                        cur |= std::uint64_t{1} << b;
                        found = true;
                    } else if (due != noEventCycle && due > t &&
                               slotOf(due) == slotOf(t)) {
                        keep |= std::uint64_t{1} << b;
                    }
                }
                slot[w] = keep;
                current_[w] = cur;
            }
            if (found) {
                cursor_ = t;
                processingCycle_ = t;
                processing_ = true;
                lastTaken_ = -1;
                return t;
            }
        }
        if (stop == limit) {
            cursor_ = limit;
            return noEventCycle;
        }
        cursor_ = stop;
        // Whole window empty: everything still scheduled is far-future.
        // farMin_ is exact here (refreshFar ran if it was in range), so
        // either nothing is due before the limit, or the wheel can jump
        // straight to just before the next far event.
        if (farMin_ > limit) {
            cursor_ = limit;
            return noEventCycle;
        }
        if (farMin_ > cursor_ + 1)
            cursor_ = farMin_ - 1;
    }
}

} // namespace pfsim::sim
