/**
 * @file
 * Calendar-wheel tick scheduler for System's --fast-path=wheel mode.
 *
 * The wheel holds one slot per component (a dense id space assigned by
 * System) and answers "which cycle has observable work next, and which
 * components have work on it?".  Ground truth is dueCycle_[comp] — the
 * earliest cycle at which component comp may do observable work, or
 * noEventCycle when it is drained.  The bucket calendar (kBuckets slots of
 * one bitmask word group each) is only an acceleration index over
 * dueCycle_: a bucket bit may be stale (the component was rescheduled) or
 * missing (the due cycle was beyond the calendar horizon when recorded),
 * and both cases are recovered exactly — stale bits are dropped when their
 * slot is scanned, missing bits are re-inserted by the O(components)
 * rebase scan that runs when a whole calendar window comes up empty.
 *
 * Determinism: the schedule is a pure function of simulated state.  After
 * a snapshot restore, System rebuilds the wheel from each component's
 * nextEventCycle() and the result is equivalent to the pre-save wheel (a
 * wake hint merged before the save can only be earlier-or-equal to the
 * rebuilt due cycle, and an early tick on a workless component is a state
 * no-op by the nextEventCycle contract — but in practice rebuild is exact
 * because every wake call site corresponds to a concrete queue entry that
 * nextEventCycle also reports).
 *
 * The schedule/wake/takeCurrent hot path is defined inline here: the
 * wheel fields millions of calls per simulated second, and out-of-line
 * call overhead on these leaf methods was a measurable fraction of
 * wheel-mode runtime.
 */

#ifndef PFSIM_SIM_EVENT_WHEEL_HH
#define PFSIM_SIM_EVENT_WHEEL_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/tick_waker.hh"
#include "util/types.hh"

namespace pfsim::sim
{

class EventWheel final : public util::TickWaker
{
  public:
    explicit EventWheel(unsigned components);

    /** Forget every scheduled event and rebase the wheel at @p now
     *  (all cycles <= now are considered consumed). */
    void reset(Cycle now);

    /**
     * Authoritative (re)schedule: component @p component's next observable
     * work is at @p at exactly, per its nextEventCycle().  Overwrites any
     * earlier wake hint — the component was just ticked (or freshly
     * enumerated by a rebuild), so its own report is ground truth.
     * noEventCycle unschedules the component.
     */
    void schedule(unsigned component, Cycle at)
    {
        if (component >= comps_)
            panic("event wheel: schedule for unknown component");
        if (at == noEventCycle) {
            dueCycle_[component] = noEventCycle;
            return;
        }
        if (at <= cursor_)
            panic("event wheel: schedule in the past violates the "
                  "nextEventCycle contract");
        dueCycle_[component] = at;
        insert(component, at);
    }

    /**
     * Keep-earliest wake hint (util::TickWaker).  Ignored when the
     * component is already due at or before @p at.  A wake targeting the
     * cycle currently being processed joins that cycle's pending set; it
     * must target a component that has not been taken yet this cycle
     * (cross-component work always flows from lower to higher component
     * id within a cycle — System's id layout mirrors the naive tick
     * order), anything else panics.
     */
    void wake(unsigned component, Cycle at) override
    {
        if (component >= comps_)
            panic("event wheel: wake for unknown component");
        if (at >= dueCycle_[component])
            return; // already due earlier-or-equal; keep-earliest
        if (processing_ && at == processingCycle_) {
            // Same-cycle wakeup: work handed to a component later in this
            // cycle's tick order.  The id layout makes request flow
            // strictly ascending, so the target must not have ticked yet.
            if (int(component) <= lastTaken_)
                panic("event wheel: same-cycle wake flows backward "
                      "against the tick order");
            dueCycle_[component] = at;
            current_[component / 64] |= std::uint64_t{1} << (component % 64);
            return;
        }
        if (at <= cursor_)
            panic("event wheel: wake in the past");
        dueCycle_[component] = at;
        insert(component, at);
    }

    /**
     * Find the first cycle in (cursor, limit] with at least one due
     * component, consuming empty cycles as it goes, and open it for
     * iteration via takeCurrent() — the slot's verified due set is
     * captured in the same scan that finds the cycle.  Returns the
     * opened cycle, or noEventCycle after advancing the internal cursor
     * to @p limit when nothing is due in the range.
     */
    Cycle openNext(Cycle limit);

    /**
     * Pop the lowest-id component still pending in the cycle opened by
     * openNext(), or -1 when the cycle is exhausted.  Same-cycle wakes
     * landing on not-yet-taken components during a tick are picked up by
     * subsequent calls, preserving the naive loop's ascending tick order.
     */
    int takeCurrent()
    {
        const unsigned first = unsigned(lastTaken_ + 1);
        for (unsigned w = first / 64; w < words_; ++w) {
            std::uint64_t bits = current_[w];
            if (w == first / 64)
                bits &= ~std::uint64_t{0} << (first % 64);
            if (!bits)
                continue;
            const unsigned b = unsigned(std::countr_zero(bits));
            const unsigned id = w * 64 + b;
            current_[w] &= ~(std::uint64_t{1} << b);
            dueCycle_[id] = noEventCycle; // consumed; requeue via schedule()
            lastTaken_ = int(id);
            return int(id);
        }
        processing_ = false;
        return -1;
    }

    /** Component's authoritative due cycle (noEventCycle if unscheduled). */
    Cycle due(unsigned component) const { return dueCycle_[component]; }

    unsigned components() const { return comps_; }

  private:
    static constexpr Cycle kBuckets = 256;

    unsigned slotOf(Cycle at) const
    {
        return unsigned(at & (kBuckets - 1));
    }

    /** Record @p at in the calendar if it falls inside the current
     *  window (cursor_, cursor_ + kBuckets]; far events only lower
     *  farMin_ until refreshFar() brings them into range. */
    void insert(unsigned component, Cycle at)
    {
        if (at - cursor_ <= kBuckets) {
            buckets_[std::size_t(slotOf(at)) * words_ + component / 64] |=
                std::uint64_t{1} << (component % 64);
        } else if (at < farMin_) {
            farMin_ = at;
        }
    }

    /** Re-derive calendar bits and an exact farMin_ from dueCycle_;
     *  O(components), runs only when the window reaches farMin_. */
    void refreshFar();

    unsigned comps_;
    unsigned words_;
    std::vector<Cycle> dueCycle_;
    /** kBuckets groups of words_ bitmask words. */
    std::vector<std::uint64_t> buckets_;
    /** Pending set of the cycle opened by openNext(). */
    std::vector<std::uint64_t> current_;
    /** All cycles <= cursor_ have been consumed. */
    Cycle cursor_ = 0;
    /** Lower bound on the earliest due cycle that may lack a calendar
     *  bit (scheduled > kBuckets ahead).  May be stale-low after a
     *  reschedule — refreshFar() restores exactness — but is never
     *  stale-high, so no event can be jumped over. */
    Cycle farMin_ = noEventCycle;
    /** Cycle opened by openNext(), valid while processing_. */
    Cycle processingCycle_ = 0;
    bool processing_ = false;
    /** Highest component id handed out by takeCurrent() this cycle. */
    int lastTaken_ = -1;
};

} // namespace pfsim::sim

#endif // PFSIM_SIM_EVENT_WHEEL_HH
