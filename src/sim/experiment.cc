#include "sim/experiment.hh"

#include <cstdio>

#include "stats/summary.hh"
#include "util/logging.hh"

namespace pfsim::sim
{

const std::vector<std::string> &
paperPrefetchers()
{
    static const std::vector<std::string> lineup = {
        "bop", "da_ampm", "spp", "spp_ppf"};
    return lineup;
}

double
SweepRow::speedup(const std::string &prefetcher) const
{
    const auto base = results.find("none");
    const auto with = results.find(prefetcher);
    if (base == results.end() || with == results.end())
        fatal("sweep row missing results for " + prefetcher);
    if (base->second.ipc <= 0.0)
        return 1.0;
    return with->second.ipc / base->second.ipc;
}

std::vector<SweepRow>
sweepPrefetchers(const SystemConfig &base,
                 const std::vector<std::string> &prefetchers,
                 const std::vector<workloads::Workload> &workload_set,
                 const RunConfig &run)
{
    std::vector<std::string> all = {"none"};
    all.insert(all.end(), prefetchers.begin(), prefetchers.end());

    std::vector<SweepRow> rows;
    for (const auto &workload : workload_set) {
        SweepRow row;
        row.workload = workload.name;
        for (const auto &name : all) {
            std::fprintf(stderr, "  [run] %-24s %-10s ...",
                         workload.name.c_str(), name.c_str());
            std::fflush(stderr);
            RunResult result =
                runSingleCore(base.withPrefetcher(name), workload, run);
            std::fprintf(stderr, " ipc=%.3f\n", result.ipc);
            row.results.emplace(name, std::move(result));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

double
geomeanSpeedup(const std::vector<SweepRow> &rows,
               const std::string &prefetcher)
{
    std::vector<double> speedups;
    for (const auto &row : rows)
        speedups.push_back(row.speedup(prefetcher));
    return stats::geomean(speedups);
}

double
geomeanSpeedup(const std::vector<SweepRow> &rows,
               const std::string &prefetcher,
               const std::vector<workloads::Workload> &subset)
{
    std::vector<double> speedups;
    for (const auto &row : rows) {
        for (const auto &workload : subset) {
            if (workload.name == row.workload) {
                speedups.push_back(row.speedup(prefetcher));
                break;
            }
        }
    }
    return stats::geomean(speedups);
}

} // namespace pfsim::sim
