#include "sim/experiment.hh"

#include <cstdio>

#include "sim/parallel.hh"
#include "sim/service/wire.hh"
#include "stats/summary.hh"
#include "util/logging.hh"

namespace pfsim::sim
{

const std::vector<std::string> &
paperPrefetchers()
{
    static const std::vector<std::string> lineup = {
        "bop", "da_ampm", "spp", "spp_ppf"};
    return lineup;
}

double
SweepRow::speedup(const std::string &prefetcher) const
{
    const auto base = results.find("none");
    const auto with = results.find(prefetcher);
    if (base == results.end() || with == results.end())
        fatal("sweep row missing results for " + prefetcher);
    if (base->second.ipc <= 0.0) {
        fatal("sweep row for " + workload + ": baseline \"none\" IPC "
              "is not positive; cannot compute a speedup for " +
              prefetcher);
    }
    return with->second.ipc / base->second.ipc;
}

std::vector<SweepRow>
sweepPrefetchers(const SystemConfig &base,
                 const std::vector<std::string> &prefetchers,
                 const std::vector<workloads::Workload> &workload_set,
                 const RunConfig &run, stats::FleetThroughput *fleet)
{
    std::vector<std::string> all = {"none"};
    all.insert(all.end(), prefetchers.begin(), prefetchers.end());

    // One slot per (workload, prefetcher) pair, owned by exactly one
    // job: assembly below reads them in submission order, so the rows
    // are bit-identical to a serial sweep for any jobs value.
    std::vector<RunResult> slots(workload_set.size() * all.size());
    std::vector<ShardJob> job_list;
    job_list.reserve(slots.size());
    for (std::size_t w = 0; w < workload_set.size(); ++w) {
        for (std::size_t p = 0; p < all.size(); ++p) {
            const std::size_t slot = w * all.size() + p;
            ShardJob job;
            job.run = [&base, &workload_set, &all, &slots, &run, w, p,
                       slot]() -> JobReport {
                RunResult result = runSingleCore(
                    base.withPrefetcher(all[p]), workload_set[w], run);
                char line[96];
                std::snprintf(line, sizeof(line),
                              "%-24s %-10s ipc=%.3f  %6.2f Mips",
                              workload_set[w].name.c_str(),
                              all[p].c_str(), result.ipc,
                              result.throughput.mips());
                JobReport report{line, result.throughput};
                slots[slot] = std::move(result);
                return report;
            };
            job.save = [&slots, slot](snapshot::Sink &sink) {
                service::writeRunResult(sink, slots[slot]);
            };
            job.load = [&slots, slot](snapshot::Source &src) {
                service::readRunResult(src, slots[slot]);
            };
            job_list.push_back(std::move(job));
        }
    }

    const stats::FleetThroughput telemetry =
        runJobsFleet(job_list, run, "run").throughput;
    if (fleet != nullptr)
        *fleet = telemetry;

    std::vector<SweepRow> rows;
    rows.reserve(workload_set.size());
    for (std::size_t w = 0; w < workload_set.size(); ++w) {
        SweepRow row;
        row.workload = workload_set[w].name;
        for (std::size_t p = 0; p < all.size(); ++p)
            row.results.emplace(all[p],
                                std::move(slots[w * all.size() + p]));
        rows.push_back(std::move(row));
    }
    return rows;
}

double
geomeanSpeedup(const std::vector<SweepRow> &rows,
               const std::string &prefetcher)
{
    std::vector<double> speedups;
    for (const auto &row : rows)
        speedups.push_back(row.speedup(prefetcher));
    return stats::geomean(speedups);
}

double
geomeanSpeedup(const std::vector<SweepRow> &rows,
               const std::string &prefetcher,
               const std::vector<workloads::Workload> &subset)
{
    std::vector<double> speedups;
    for (const auto &row : rows) {
        for (const auto &workload : subset) {
            if (workload.name == row.workload) {
                speedups.push_back(row.speedup(prefetcher));
                break;
            }
        }
    }
    return stats::geomean(speedups);
}

} // namespace pfsim::sim
