/**
 * @file
 * Experiment orchestration shared by the bench binaries: prefetcher
 * sweeps over workload sets, speedup aggregation, and the standard
 * prefetcher line-up the paper compares (BOP, DA-AMPM, SPP, PPF).
 */

#ifndef PFSIM_SIM_EXPERIMENT_HH
#define PFSIM_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/multicore.hh"
#include "sim/runner.hh"
#include "stats/throughput.hh"
#include "workloads/registry.hh"

namespace pfsim::sim
{

/** The paper's comparison line-up, in Figure 9 order. */
const std::vector<std::string> &paperPrefetchers();

/** Results of one workload across several prefetchers. */
struct SweepRow
{
    std::string workload;

    /** Keyed by prefetcher name; "none" is the baseline. */
    std::map<std::string, RunResult> results;

    /**
     * IPC speedup of @p prefetcher over the no-prefetch baseline.
     * fatal() when either result is missing or the baseline IPC is
     * not strictly positive — a speedup over nothing is meaningless.
     */
    double speedup(const std::string &prefetcher) const;
};

/**
 * Run every workload under "none" plus @p prefetchers on the job-pool
 * sweep engine (sim/parallel.hh, run.jobs workers), printing one
 * progress line per completed run to stderr.  Rows are assembled in
 * workload order regardless of completion order, so results are
 * bit-identical for every jobs value.  When @p fleet is non-null the
 * sweep's aggregate simulation-throughput telemetry is stored there.
 */
std::vector<SweepRow>
sweepPrefetchers(const SystemConfig &base,
                 const std::vector<std::string> &prefetchers,
                 const std::vector<workloads::Workload> &workload_set,
                 const RunConfig &run,
                 stats::FleetThroughput *fleet = nullptr);

/** Geomean of per-workload speedups for @p prefetcher. */
double geomeanSpeedup(const std::vector<SweepRow> &rows,
                      const std::string &prefetcher);

/** Geomean over the subset of rows whose workload is mem-intensive. */
double geomeanSpeedup(const std::vector<SweepRow> &rows,
                      const std::string &prefetcher,
                      const std::vector<workloads::Workload> &subset);

} // namespace pfsim::sim

#endif // PFSIM_SIM_EXPERIMENT_HH
