/**
 * @file
 * Experiment orchestration shared by the bench binaries: prefetcher
 * sweeps over workload sets, speedup aggregation, and the standard
 * prefetcher line-up the paper compares (BOP, DA-AMPM, SPP, PPF).
 */

#ifndef PFSIM_SIM_EXPERIMENT_HH
#define PFSIM_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/multicore.hh"
#include "sim/runner.hh"
#include "workloads/registry.hh"

namespace pfsim::sim
{

/** The paper's comparison line-up, in Figure 9 order. */
const std::vector<std::string> &paperPrefetchers();

/** Results of one workload across several prefetchers. */
struct SweepRow
{
    std::string workload;

    /** Keyed by prefetcher name; "none" is the baseline. */
    std::map<std::string, RunResult> results;

    /** IPC speedup of @p prefetcher over the no-prefetch baseline. */
    double speedup(const std::string &prefetcher) const;
};

/**
 * Run every workload under "none" plus @p prefetchers, printing one
 * progress line per run to stderr.
 */
std::vector<SweepRow>
sweepPrefetchers(const SystemConfig &base,
                 const std::vector<std::string> &prefetchers,
                 const std::vector<workloads::Workload> &workload_set,
                 const RunConfig &run);

/** Geomean of per-workload speedups for @p prefetcher. */
double geomeanSpeedup(const std::vector<SweepRow> &rows,
                      const std::string &prefetcher);

/** Geomean over the subset of rows whose workload is mem-intensive. */
double geomeanSpeedup(const std::vector<SweepRow> &rows,
                      const std::string &prefetcher,
                      const std::vector<workloads::Workload> &subset);

} // namespace pfsim::sim

#endif // PFSIM_SIM_EXPERIMENT_HH
