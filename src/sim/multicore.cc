#include "sim/multicore.hh"

#include <chrono>
#include <cstdio>
#include <map>

#include "check/system_audit.hh"
#include "sim/parallel.hh"
#include "sim/service/wire.hh"
#include "snapshot/checkpoint_store.hh"
#include "snapshot/snapshot.hh"
#include "stats/summary.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace pfsim::sim
{

MixResult
runMix(const SystemConfig &config, const workloads::Mix &mix,
       const RunConfig &run)
{
    if (mix.size() != config.cores)
        fatal("mix size does not match core count");

    const auto host_start = std::chrono::steady_clock::now();

    std::vector<std::unique_ptr<trace::SyntheticTrace>> traces;
    std::vector<trace::TraceSource *> sources;
    for (const auto &workload : mix) {
        traces.push_back(
            std::make_unique<trace::SyntheticTrace>(workload.make()));
        sources.push_back(traces.back().get());
    }

    System system(config, sources);
    system.setFastPath(run.fastPath);
    if (run.auditInterval != 0)
        check::attachSystemAuditors(system, run.auditInterval);

    // Warmup reuse, mirroring runSingleCore: the mix key joins the
    // workload names and the digest covers every core's trace config.
    // Mixes never run with a fault plan, so the view has no fault
    // decorators or engine.
    const bool reuse = run.warmupReuse && !run.checkpointDir.empty() &&
        run.warmupInstructions > 0;
    std::uint64_t ckpt_hits = 0;
    std::uint64_t ckpt_misses = 0;
    std::uint64_t warmup_cycles_saved = 0;
    if (reuse) {
        snapshot::SimulationView view;
        view.system = &system;
        for (const auto &trace : traces)
            view.traces.push_back(trace.get());

        std::string key;
        std::vector<trace::SyntheticConfig> workload_configs;
        for (const auto &workload : mix) {
            if (!key.empty())
                key += "+";
            key += workload.name;
            workload_configs.push_back(workload.make());
        }
        const std::uint64_t digest =
            snapshot::warmupDigest(config, run.warmupInstructions,
                                   workload_configs, nullptr, 0);
        const snapshot::CheckpointStore store(run.checkpointDir);
        bool restored = false;
        std::vector<std::uint8_t> image;
        if (store.tryLoad(key, digest, image)) {
            try {
                snapshot::restoreSimulation(image, view, digest);
                restored = true;
            } catch (const snapshot::SnapshotError &err) {
                warn("checkpoint " + store.pathFor(key, digest) +
                     " unusable (" + std::string(err.what()) +
                     "); re-simulating warmup");
            }
        }
        if (restored) {
            ckpt_hits = 1;
            warmup_cycles_saved = system.now();
        } else {
            system.runUntilRetired(run.warmupInstructions);
            store.publish(key, digest,
                          snapshot::saveSimulation(view, digest));
            ckpt_misses = 1;
        }
    } else {
        system.runUntilRetired(run.warmupInstructions);
    }
    system.resetStats();

    // Region of interest: each core's first simInstructions after
    // warmup.  All cores keep executing until the last one finishes,
    // so shared-resource contention stays realistic throughout; each
    // core's IPC is taken at the cycle it completed its region.
    std::vector<Cycle> done_cycle(config.cores, 0);
    const Cycle start = system.now();
    unsigned remaining = config.cores;
    InstrCount watchdog_last = 0;
    Cycle watchdog_cycle = system.now();

    while (remaining > 0) {
        // Cores only retire on real ticks, so each done_cycle[i]
        // crossing is observed on exactly the cycle the naive loop
        // would record; the limit keeps the watchdog cadence exact.
        system.step(watchdog_cycle + 1000001);
        InstrCount total_retired = 0;
        for (unsigned i = 0; i < config.cores; ++i) {
            total_retired += system.core(i).retired();
            if (done_cycle[i] == 0 &&
                system.core(i).retired() >= run.simInstructions) {
                done_cycle[i] = system.now();
                --remaining;
            }
        }
        if (total_retired != watchdog_last) {
            watchdog_last = total_retired;
            watchdog_cycle = system.now();
        } else if (system.now() - watchdog_cycle > 1000000) {
            panic("multi-core system made no progress for 1M cycles");
        }
    }

    // Flush wheel-mode lazy deltas before any statistics are read.
    system.settle();

    MixResult result;
    result.prefetcher = config.prefetcher;
    for (unsigned i = 0; i < config.cores; ++i) {
        result.workloads.push_back(mix[i].name);
        result.ipc.push_back(double(run.simInstructions) /
                             double(done_cycle[i] - start));
    }
    result.llc = system.llc().stats();
    result.dram = system.dram().stats();

    // All cores simulate warmup plus at least their region of
    // interest; watchdog_last holds the fleet's total retired count at
    // the cycle the last core finished.
    result.throughput.instructions =
        config.cores * run.warmupInstructions + watchdog_last;
    result.throughput.cycles = system.now();
    result.throughput.coreTicks = system.tickCounts().core;
    result.throughput.cacheTicks = system.tickCounts().cache;
    result.throughput.dramTicks = system.tickCounts().dram;
    result.throughput.faultTicks = system.tickCounts().fault;
    result.throughput.checkpointHits = ckpt_hits;
    result.throughput.checkpointMisses = ckpt_misses;
    result.throughput.warmupCyclesSaved = warmup_cycles_saved;
    result.throughput.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    return result;
}

std::vector<MixSweepRow>
sweepMixes(const SystemConfig &base,
           const std::vector<std::string> &prefetchers,
           const std::vector<workloads::Mix> &mixes,
           const RunConfig &run, stats::FleetThroughput *fleet)
{
    std::vector<std::string> all = {"none"};
    all.insert(all.end(), prefetchers.begin(), prefetchers.end());

    // Slot layout mirrors sweepPrefetchers: one owner per slot, rows
    // assembled in submission order below.
    std::vector<MixResult> slots(mixes.size() * all.size());
    std::vector<ShardJob> job_list;
    job_list.reserve(slots.size());
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        for (std::size_t p = 0; p < all.size(); ++p) {
            const std::size_t slot = m * all.size() + p;
            ShardJob job;
            job.run = [&base, &mixes, &all, &slots, &run, m, p,
                       slot]() -> JobReport {
                MixResult result = runMix(base.withPrefetcher(all[p]),
                                          mixes[m], run);
                char line[96];
                std::snprintf(line, sizeof(line),
                              "mix%-3zu %-10s ipc(mean)=%.3f  "
                              "%6.2f Mips",
                              m, all[p].c_str(),
                              stats::mean(result.ipc),
                              result.throughput.mips());
                JobReport report{line, result.throughput};
                slots[slot] = std::move(result);
                return report;
            };
            job.save = [&slots, slot](snapshot::Sink &sink) {
                service::writeMixResult(sink, slots[slot]);
            };
            job.load = [&slots, slot](snapshot::Source &src) {
                service::readMixResult(src, slots[slot]);
            };
            job_list.push_back(std::move(job));
        }
    }

    const stats::FleetThroughput telemetry =
        runJobsFleet(job_list, run, "mix").throughput;
    if (fleet != nullptr)
        *fleet = telemetry;

    std::vector<MixSweepRow> rows(mixes.size());
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        for (std::size_t p = 0; p < all.size(); ++p)
            rows[m].results.emplace(all[p],
                                    std::move(slots[m * all.size() + p]));
    }
    return rows;
}

std::string
IsolatedIpcCache::key(const SystemConfig &config,
                      const workloads::Workload &workload,
                      const RunConfig &run)
{
    return config.prefetcher + "|" + workload.name + "|" +
        std::to_string(config.llc.sets) + "|" +
        std::to_string(run.simInstructions);
}

double
IsolatedIpcCache::get(const SystemConfig &config,
                      const workloads::Workload &workload,
                      const RunConfig &run)
{
    const std::string k = key(config, workload, run);
    if (auto it = cache_.find(k); it != cache_.end())
        return it->second;
    const RunResult result = runSingleCore(config, workload, run);
    cache_[k] = result.ipc;
    return result.ipc;
}

void
IsolatedIpcCache::prewarm(
    const SystemConfig &config,
    const std::vector<workloads::Workload> &workload_set,
    const RunConfig &run)
{
    // Dedup against both the cache and repeats within workload_set.
    std::vector<const workloads::Workload *> missing;
    std::map<std::string, bool> queued;
    for (const auto &workload : workload_set) {
        const std::string k = key(config, workload, run);
        if (cache_.count(k) != 0 || queued.count(k) != 0)
            continue;
        queued[k] = true;
        missing.push_back(&workload);
    }

    std::vector<double> ipcs(missing.size(), 0.0);
    std::vector<ShardJob> job_list;
    job_list.reserve(missing.size());
    for (std::size_t i = 0; i < missing.size(); ++i) {
        ShardJob job;
        job.run = [&config, &missing, &ipcs, &run, i]() -> JobReport {
            const RunResult result =
                runSingleCore(config, *missing[i], run);
            char line[96];
            std::snprintf(line, sizeof(line),
                          "%-24s %-10s ipc=%.3f  %6.2f Mips",
                          missing[i]->name.c_str(),
                          config.prefetcher.c_str(), result.ipc,
                          result.throughput.mips());
            ipcs[i] = result.ipc;
            return JobReport{line, result.throughput};
        };
        job.save = [&ipcs, i](snapshot::Sink &sink) {
            sink.f64(ipcs[i]);
        };
        job.load = [&ipcs, i](snapshot::Source &src) {
            ipcs[i] = src.f64();
        };
        job_list.push_back(std::move(job));
    }
    runJobsFleet(job_list, run, "isolated");

    for (std::size_t i = 0; i < missing.size(); ++i)
        cache_[key(config, *missing[i], run)] = ipcs[i];
}

double
weightedIpc(const MixResult &result,
            const SystemConfig &isolated_config,
            const workloads::Mix &mix, const RunConfig &run,
            IsolatedIpcCache &cache)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        const double isolated =
            cache.get(isolated_config, mix[i], run);
        if (isolated > 0.0)
            sum += result.ipc[i] / isolated;
    }
    return sum;
}

} // namespace pfsim::sim
