#include "sim/multicore.hh"

#include <map>

#include "check/system_audit.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace pfsim::sim
{

MixResult
runMix(const SystemConfig &config, const workloads::Mix &mix,
       const RunConfig &run)
{
    if (mix.size() != config.cores)
        fatal("mix size does not match core count");

    std::vector<std::unique_ptr<trace::SyntheticTrace>> traces;
    std::vector<trace::TraceSource *> sources;
    for (const auto &workload : mix) {
        traces.push_back(
            std::make_unique<trace::SyntheticTrace>(workload.make()));
        sources.push_back(traces.back().get());
    }

    System system(config, sources);
    if (run.auditInterval != 0)
        check::attachSystemAuditors(system, run.auditInterval);
    system.runUntilRetired(run.warmupInstructions);
    system.resetStats();

    // Region of interest: each core's first simInstructions after
    // warmup.  All cores keep executing until the last one finishes,
    // so shared-resource contention stays realistic throughout; each
    // core's IPC is taken at the cycle it completed its region.
    std::vector<Cycle> done_cycle(config.cores, 0);
    const Cycle start = system.now();
    unsigned remaining = config.cores;
    InstrCount watchdog_last = 0;
    Cycle watchdog_cycle = system.now();

    while (remaining > 0) {
        system.cycle();
        InstrCount total_retired = 0;
        for (unsigned i = 0; i < config.cores; ++i) {
            total_retired += system.core(i).retired();
            if (done_cycle[i] == 0 &&
                system.core(i).retired() >= run.simInstructions) {
                done_cycle[i] = system.now();
                --remaining;
            }
        }
        if (total_retired != watchdog_last) {
            watchdog_last = total_retired;
            watchdog_cycle = system.now();
        } else if (system.now() - watchdog_cycle > 1000000) {
            panic("multi-core system made no progress for 1M cycles");
        }
    }

    MixResult result;
    result.prefetcher = config.prefetcher;
    for (unsigned i = 0; i < config.cores; ++i) {
        result.workloads.push_back(mix[i].name);
        result.ipc.push_back(double(run.simInstructions) /
                             double(done_cycle[i] - start));
    }
    result.llc = system.llc().stats();
    result.dram = system.dram().stats();
    return result;
}

double
IsolatedIpcCache::get(const SystemConfig &config,
                      const workloads::Workload &workload,
                      const RunConfig &run)
{
    const std::string key = config.prefetcher + "|" + workload.name +
        "|" + std::to_string(config.llc.sets) + "|" +
        std::to_string(run.simInstructions);
    if (auto it = cache_.find(key); it != cache_.end())
        return it->second;
    const RunResult result = runSingleCore(config, workload, run);
    cache_[key] = result.ipc;
    return result.ipc;
}

double
weightedIpc(const MixResult &result,
            const SystemConfig &isolated_config,
            const workloads::Mix &mix, const RunConfig &run,
            IsolatedIpcCache &cache)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        const double isolated =
            cache.get(isolated_config, mix[i], run);
        if (isolated > 0.0)
            sum += result.ipc[i] / isolated;
    }
    return sum;
}

} // namespace pfsim::sim
