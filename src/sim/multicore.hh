/**
 * @file
 * Multi-programmed runner: the paper's Section 5.3 multi-core
 * methodology.  Every core runs its own workload over a shared LLC and
 * shared DRAM; per-core IPC is measured over each core's own region of
 * interest (the first N retired instructions after warmup).
 */

#ifndef PFSIM_SIM_MULTICORE_HH
#define PFSIM_SIM_MULTICORE_HH

#include <map>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/runner.hh"
#include "workloads/mixes.hh"

namespace pfsim::sim
{

/** Result of one multi-core mix run. */
struct MixResult
{
    std::string prefetcher;
    std::vector<std::string> workloads;

    /** Per-core IPC over that core's region of interest. */
    std::vector<double> ipc;

    cache::CacheStats llc;
    dram::DramStats dram;
};

/** Run @p mix (one workload per core). */
MixResult runMix(const SystemConfig &config,
                 const workloads::Mix &mix, const RunConfig &run);

/**
 * Memoising cache of isolated single-core IPCs, used by the weighted
 * speedup computation: IPC_isolated is measured on a 1-core machine
 * with the multi-core machine's LLC capacity (paper Section 5.3).
 */
class IsolatedIpcCache
{
  public:
    /** Isolated IPC of @p workload under @p config (1-core). */
    double get(const SystemConfig &config,
               const workloads::Workload &workload,
               const RunConfig &run);

  private:
    std::map<std::string, double> cache_;
};

/**
 * Weighted IPC of a mix result: sum_i IPC_i / IPC_isolated_i.
 * @p isolated_config must be the 1-core system with the shared LLC's
 * capacity and the same prefetcher.
 */
double weightedIpc(const MixResult &result,
                   const SystemConfig &isolated_config,
                   const workloads::Mix &mix, const RunConfig &run,
                   IsolatedIpcCache &cache);

} // namespace pfsim::sim

#endif // PFSIM_SIM_MULTICORE_HH
