/**
 * @file
 * Multi-programmed runner: the paper's Section 5.3 multi-core
 * methodology.  Every core runs its own workload over a shared LLC and
 * shared DRAM; per-core IPC is measured over each core's own region of
 * interest (the first N retired instructions after warmup).
 */

#ifndef PFSIM_SIM_MULTICORE_HH
#define PFSIM_SIM_MULTICORE_HH

#include <map>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/runner.hh"
#include "stats/throughput.hh"
#include "workloads/mixes.hh"

namespace pfsim::sim
{

/** Result of one multi-core mix run. */
struct MixResult
{
    std::string prefetcher;
    std::vector<std::string> workloads;

    /** Per-core IPC over that core's region of interest. */
    std::vector<double> ipc;

    cache::CacheStats llc;
    dram::DramStats dram;

    /**
     * Host-speed telemetry (wall-clock, simulated MIPS across all
     * cores).  hostSeconds is the only non-deterministic field of a
     * MixResult — comparisons must ignore it.
     */
    stats::RunThroughput throughput;
};

/** Run @p mix (one workload per core). */
MixResult runMix(const SystemConfig &config,
                 const workloads::Mix &mix, const RunConfig &run);

/** Results of one mix across several prefetchers. */
struct MixSweepRow
{
    /** Keyed by prefetcher name; "none" is the baseline. */
    std::map<std::string, MixResult> results;
};

/**
 * Run every mix under "none" plus @p prefetchers on the job-pool
 * sweep engine (sim/parallel.hh, run.jobs workers).  Rows follow the
 * order of @p mixes regardless of completion order, so results are
 * bit-identical for every jobs value.  When @p fleet is non-null the
 * sweep's aggregate throughput telemetry is stored there.
 */
std::vector<MixSweepRow>
sweepMixes(const SystemConfig &base,
           const std::vector<std::string> &prefetchers,
           const std::vector<workloads::Mix> &mixes,
           const RunConfig &run,
           stats::FleetThroughput *fleet = nullptr);

/**
 * Memoising cache of isolated single-core IPCs, used by the weighted
 * speedup computation: IPC_isolated is measured on a 1-core machine
 * with the multi-core machine's LLC capacity (paper Section 5.3).
 */
class IsolatedIpcCache
{
  public:
    /** Isolated IPC of @p workload under @p config (1-core). */
    double get(const SystemConfig &config,
               const workloads::Workload &workload,
               const RunConfig &run);

    /**
     * Fill the cache for every distinct workload in @p workload_set
     * using the job pool (run.jobs workers), so later get() calls are
     * hits.  The cache itself is not thread-safe; prewarm is the
     * parallel path, get() stays serial.
     */
    void prewarm(const SystemConfig &config,
                 const std::vector<workloads::Workload> &workload_set,
                 const RunConfig &run);

  private:
    static std::string key(const SystemConfig &config,
                           const workloads::Workload &workload,
                           const RunConfig &run);

    std::map<std::string, double> cache_;
};

/**
 * Weighted IPC of a mix result: sum_i IPC_i / IPC_isolated_i.
 * @p isolated_config must be the 1-core system with the shared LLC's
 * capacity and the same prefetcher.
 */
double weightedIpc(const MixResult &result,
                   const SystemConfig &isolated_config,
                   const workloads::Mix &mix, const RunConfig &run,
                   IsolatedIpcCache &cache);

} // namespace pfsim::sim

#endif // PFSIM_SIM_MULTICORE_HH
