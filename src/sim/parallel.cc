#include "sim/parallel.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "sim/service/service.hh"
#include "util/thread_pool.hh"

namespace pfsim::sim
{

namespace
{

/** First line of a (possibly multi-line) failure message. */
std::string
firstLine(const std::string &text)
{
    const std::size_t newline = text.find('\n');
    return newline == std::string::npos ? text : text.substr(0, newline);
}

/** What to do after a failed attempt. */
enum class FailAction
{
    Retry,    ///< attempts remain: back off and re-run
    Degraded, ///< exhausted, policy degrades: row tagged, fleet lives
    Rethrow,  ///< exhausted, legacy policy: propagate the exception
};

} // namespace

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs == 0)
        return util::hardwareConcurrency();
    return jobs;
}

std::size_t
FleetReport::degraded() const
{
    return std::size_t(std::count_if(
        outcomes.begin(), outcomes.end(),
        [](const JobOutcome &o) { return !o.ok; }));
}

std::size_t
FleetReport::recovered() const
{
    return std::size_t(std::count_if(
        outcomes.begin(), outcomes.end(),
        [](const JobOutcome &o) { return o.recoveredAfterRetry(); }));
}

FleetReport
runJobsResilient(const std::vector<Job> &job_list, unsigned jobs,
                 const std::string &tag, const FleetPolicy &policy)
{
    const unsigned workers = resolveJobs(jobs);
    const std::size_t total = job_list.size();
    const bool resilient =
        policy.maxRetries > 0 || policy.degradeOnFailure;

    FleetReport report;
    report.throughput.jobs = workers;
    report.outcomes.assign(total, JobOutcome{});

    std::mutex progress_mutex;
    std::size_t done = 0;

    // Emit one whole progress line with a single fputs under the
    // lock: lines from concurrent jobs can only interleave whole,
    // never mid-line.
    auto emit = [&](const std::string &text) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++done;
        char head[48];
        std::snprintf(head, sizeof(head), "  [%s %zu/%zu] ",
                      tag.c_str(), done, total);
        std::fputs((head + text + "\n").c_str(), stderr);
    };

    auto on_fail = [&](std::size_t i, unsigned attempt,
                       const std::string &message) {
        JobOutcome &outcome = report.outcomes[i];
        outcome.error = message;
        outcome.attempts = attempt;
        if (attempt <= policy.maxRetries)
            return FailAction::Retry;
        outcome.ok = false;
        if (!policy.degradeOnFailure)
            return FailAction::Rethrow;
        emit("job " + std::to_string(i) + " DEGRADED after " +
                    std::to_string(attempt) + " attempt(s): " + message);
        return FailAction::Degraded;
    };

    const auto wall_start = std::chrono::steady_clock::now();
    util::parallelFor(workers, total, [&](std::size_t i) {
        for (unsigned attempt = 1;; ++attempt) {
            FailAction action = FailAction::Retry;
            try {
                const JobReport job_report = job_list[i]();
                JobOutcome &outcome = report.outcomes[i];
                outcome.ok = true;
                outcome.attempts = attempt;
                std::string line = job_report.line;
                if (attempt > 1) {
                    line += " (recovered after " +
                            std::to_string(attempt - 1) + " retr" +
                            (attempt == 2 ? "y)" : "ies)");
                }
                std::lock_guard<std::mutex> lock(progress_mutex);
                ++done;
                char head[48];
                std::snprintf(head, sizeof(head), "  [%s %zu/%zu] ",
                              tag.c_str(), done, total);
                std::fputs((head + line + "\n").c_str(), stderr);
                report.throughput.add(job_report.throughput);
                return;
            } catch (const std::exception &e) {
                action = on_fail(i, attempt, firstLine(e.what()));
                if (action == FailAction::Rethrow)
                    throw;
            } catch (...) {
                action = on_fail(i, attempt, "unknown error");
                if (action == FailAction::Rethrow)
                    throw;
            }
            if (action == FailAction::Degraded)
                return;
            if (policy.backoffMs > 0) {
                // Exponential, capped so a deep retry cannot shift
                // into overflow or hour-long sleeps.
                const unsigned shift = std::min(attempt - 1, 10u);
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    std::uint64_t(policy.backoffMs) << shift));
            }
        }
    });
    report.throughput.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    if (resilient) {
        // Final summary distinguishing clean, recovered-after-retry
        // and degraded sweeps; flushed so an archived log always ends
        // with the verdict even if the process dies right after.
        std::fprintf(stderr, "  [%s] %s | degraded=%zu recovered=%zu\n",
                     tag.c_str(), report.throughput.summary().c_str(),
                     report.degraded(), report.recovered());
        std::fflush(stderr);
    } else {
        std::fprintf(stderr, "  [%s] %s\n", tag.c_str(),
                     report.throughput.summary().c_str());
    }
    return report;
}

stats::FleetThroughput
runJobs(const std::vector<Job> &job_list, unsigned jobs,
        const std::string &tag)
{
    return runJobsResilient(job_list, jobs, tag, FleetPolicy{})
        .throughput;
}

FleetReport
runJobsFleet(const std::vector<ShardJob> &job_list,
             const RunConfig &run, const std::string &tag,
             const FleetPolicy &policy)
{
    if (service::workerMode() || run.shards > 0)
        return service::runShardedJobs(job_list, run, tag, policy);
    std::vector<Job> plain;
    plain.reserve(job_list.size());
    for (const ShardJob &job : job_list)
        plain.push_back(job.run);
    return runJobsResilient(plain, run.jobs, tag, policy);
}

} // namespace pfsim::sim
