#include "sim/parallel.hh"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/thread_pool.hh"

namespace pfsim::sim
{

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs == 0)
        return util::hardwareConcurrency();
    return jobs;
}

stats::FleetThroughput
runJobs(const std::vector<Job> &job_list, unsigned jobs,
        const std::string &tag)
{
    const unsigned workers = resolveJobs(jobs);
    const std::size_t total = job_list.size();

    stats::FleetThroughput fleet;
    fleet.jobs = workers;

    std::mutex progress_mutex;
    std::size_t done = 0;

    const auto wall_start = std::chrono::steady_clock::now();
    util::parallelFor(workers, total, [&](std::size_t i) {
        const JobReport report = job_list[i]();

        // Compose the whole progress line first, then emit it with one
        // fputs under the lock: lines from concurrent jobs can only
        // interleave whole, never mid-line.
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++done;
        char head[48];
        std::snprintf(head, sizeof(head), "  [%s %zu/%zu] ",
                      tag.c_str(), done, total);
        const std::string line = head + report.line + "\n";
        std::fputs(line.c_str(), stderr);
        fleet.add(report.throughput);
    });
    fleet.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

    std::fprintf(stderr, "  [%s] %s\n", tag.c_str(),
                 fleet.summary().c_str());
    return fleet;
}

} // namespace pfsim::sim
