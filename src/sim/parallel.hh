/**
 * @file
 * Job-pool sweep engine: runs independent simulations side by side on
 * a fixed-size worker pool while keeping results bit-identical to a
 * serial sweep.
 *
 * Every (workload, prefetcher) single-core run and every multi-core
 * mix run owns its whole system and RNG state, so runs are
 * embarrassingly parallel; the only things the engine must get right
 * are (1) results keyed by submission index, never completion order,
 * (2) progress lines written as single atomic writes so they cannot
 * interleave mid-line, and (3) fleet-wide simulation-throughput
 * telemetry (stats/throughput.hh).
 *
 * sim::sweepPrefetchers and sim::sweepMixes are built on runJobs;
 * bench binaries select the pool width with --jobs=N (RunConfig::jobs).
 */

#ifndef PFSIM_SIM_PARALLEL_HH
#define PFSIM_SIM_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "stats/throughput.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::sim
{

struct RunConfig;

/**
 * Resolve a RunConfig::jobs value into a worker count: 0 (the
 * default) selects the host's hardware concurrency, anything else is
 * used as-is.  Always at least 1.
 */
unsigned resolveJobs(unsigned jobs);

/** What one finished job reports back to the sweep engine. */
struct JobReport
{
    /** Progress text for this run, without trailing newline. */
    std::string line;

    /** Host-speed telemetry folded into the fleet aggregate. */
    stats::RunThroughput throughput;
};

/**
 * One schedulable unit.  The callable runs a complete simulation,
 * stores its result into a slot only it owns (pre-allocated by the
 * caller, so assembly order never depends on completion order) and
 * returns its progress report.
 */
using Job = std::function<JobReport()>;

/**
 * Run @p job_list on a pool of resolveJobs(@p jobs) workers
 * (util/thread_pool.hh); jobs == 1 executes inline on the calling
 * thread, preserving the serial behaviour exactly.
 *
 * Progress: one atomic stderr write per completed job of the form
 * "  [<tag> <done>/<total>] <line>\n" (completion order), plus a
 * fleet-throughput footer once all jobs finished.  Returns the fleet
 * telemetry so callers can archive aggregate MIPS.
 */
stats::FleetThroughput runJobs(const std::vector<Job> &job_list,
                               unsigned jobs, const std::string &tag);

/** How a resilient fleet treats failing jobs. */
struct FleetPolicy
{
    /** Re-run a failed job up to this many extra attempts. */
    unsigned maxRetries = 0;

    /**
     * Host milliseconds slept before retry attempt k, scaled as
     * backoffMs << (k-1): transient host-level failures (memory
     * pressure, a watchdog timeout) get breathing room.
     */
    unsigned backoffMs = 0;

    /**
     * When true, a job whose attempts are exhausted becomes a tagged
     * degraded row and the sweep keeps going; when false, the failure
     * propagates exactly like the legacy engine (first exception, by
     * submission index, rethrown after in-flight jobs finish).
     */
    bool degradeOnFailure = false;
};

/** Per-job resolution of a resilient sweep. */
struct JobOutcome
{
    /** The job eventually produced its result slot. */
    bool ok = true;

    /** Attempts consumed (1 = clean first run). */
    unsigned attempts = 1;

    /** First line of the final failure, empty when ok. */
    std::string error;

    /** Succeeded, but only after at least one retry. */
    bool recoveredAfterRetry() const { return ok && attempts > 1; }
};

/** What a resilient sweep hands back to the campaign driver. */
struct FleetReport
{
    stats::FleetThroughput throughput;

    /** One outcome per job, keyed by submission index. */
    std::vector<JobOutcome> outcomes;

    /** Jobs that exhausted their attempts. */
    std::size_t degraded() const;

    /** Jobs that needed a retry but finished. */
    std::size_t recovered() const;
};

/**
 * runJobs with failure handling (the fault-campaign entry point):
 * each job is retried per @p policy, a recovered job's progress line
 * is tagged "(recovered after N retries)", and exhausted jobs become
 * degraded rows instead of aborting the fleet.  The footer summarises
 * degraded/recovered counts and is flushed, so archived logs always
 * distinguish clean, recovered and degraded sweeps.
 */
FleetReport runJobsResilient(const std::vector<Job> &job_list,
                             unsigned jobs, const std::string &tag,
                             const FleetPolicy &policy);

/**
 * A Job that can also move its result slot across a process boundary:
 * save serializes the slot the run callable filled, load restores a
 * slot another process computed.  The hooks use the snapshot wire
 * format (explicit little-endian, doubles as bit patterns), so a
 * sharded sweep assembles slots bit-identical to an in-process one.
 */
struct ShardJob
{
    Job run;
    std::function<void(snapshot::Sink &)> save;
    std::function<void(snapshot::Source &)> load;
};

/**
 * The fleet entry point every engine campaign goes through.  Plain
 * thread-pool scheduling when RunConfig::shards == 0 (bit-identical
 * to runJobsResilient); with --shards=N the campaign is dispatched to
 * the multi-process sweep service (sim/service): worker processes,
 * crash isolation, heartbeat watchdogs and the resumable campaign
 * journal.  stdout assembled from the slots is byte-identical across
 * all three modes (--jobs=1, --jobs=N, --shards=N).
 */
FleetReport runJobsFleet(const std::vector<ShardJob> &job_list,
                         const RunConfig &run, const std::string &tag,
                         const FleetPolicy &policy = FleetPolicy{});

} // namespace pfsim::sim

#endif // PFSIM_SIM_PARALLEL_HH
