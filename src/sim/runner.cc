#include "sim/runner.hh"

#include <chrono>

#include "check/system_audit.hh"
#include "core/spp_ppf.hh"
#include "trace/synthetic.hh"

namespace pfsim::sim
{

RunResult
runSingleCore(const SystemConfig &config,
              const workloads::Workload &workload, const RunConfig &run,
              ppf::FeatureAnalysis *analysis)
{
    const auto host_start = std::chrono::steady_clock::now();
    trace::SyntheticTrace trace(workload.make());
    System system(config, {&trace});

    if (run.auditInterval != 0)
        check::attachSystemAuditors(system, run.auditInterval);

    if (analysis != nullptr) {
        if (auto *spp_ppf = dynamic_cast<ppf::SppPpfPrefetcher *>(
                &system.prefetcher(0));
            spp_ppf != nullptr) {
            spp_ppf->filter().setAnalysis(analysis);
        }
    }

    system.runUntilRetired(run.warmupInstructions);
    system.resetStats();
    system.runUntilRetired(run.simInstructions);

    RunResult result;
    result.workload = workload.name;
    result.prefetcher = config.prefetcher;
    result.core = system.core(0).stats();
    result.ipc = result.core.ipc();
    result.l1d = system.l1d(0).stats();
    result.l2 = system.l2(0).stats();
    result.llc = system.llc().stats();
    result.dram = system.dram().stats();

    if (auto *spp = dynamic_cast<prefetch::SppPrefetcher *>(
            &system.prefetcher(0));
        spp != nullptr) {
        result.spp = spp->sppStats();
    } else if (auto *spp_ppf = dynamic_cast<ppf::SppPpfPrefetcher *>(
                   &system.prefetcher(0));
               spp_ppf != nullptr) {
        result.spp = spp_ppf->spp().sppStats();
        result.ppf = spp_ppf->filter().ppfStats();
    }

    result.throughput.instructions =
        run.warmupInstructions + result.core.instructions;
    result.throughput.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    return result;
}

} // namespace pfsim::sim
