#include "sim/runner.hh"

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "check/snapshot_audit.hh"
#include "check/system_audit.hh"
#include "core/spp_ppf.hh"
#include "fault/injectors.hh"
#include "fault/system_faults.hh"
#include "snapshot/checkpoint_store.hh"
#include "snapshot/snapshot.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace pfsim::sim
{

RunResult
runSingleCore(const SystemConfig &config,
              const workloads::Workload &workload, const RunConfig &run,
              ppf::FeatureAnalysis *analysis)
{
    const auto host_start = std::chrono::steady_clock::now();
    trace::SyntheticTrace trace(workload.make());

    // Trace faults ride on decorators around the real source, so the
    // fault-free path stays exactly the pre-fault pipeline.
    const fault::FaultPlan *plan = run.faults;
    std::unique_ptr<fault::CorruptingTrace> corrupting;
    std::unique_ptr<fault::SanitizingTrace> sanitizing;
    trace::TraceSource *source = &trace;
    if (plan != nullptr && plan->trace.enabled()) {
        corrupting = std::make_unique<fault::CorruptingTrace>(
            trace, plan->trace, fault::deriveSeed(run.faultSeed, 1));
        sanitizing = std::make_unique<fault::SanitizingTrace>(
            *corrupting, plan->trace.budget);
        source = sanitizing.get();
    }

    System system(config, {source});
    system.setFastPath(run.fastPath);

    fault::FaultEngine engine;
    if (plan != nullptr && plan->anySystem())
        fault::attachSystemFaults(system, *plan, run.faultSeed, engine);

    if (run.auditInterval != 0)
        check::attachSystemAuditors(system, run.auditInterval);

    if (analysis != nullptr) {
        if (auto *spp_ppf = dynamic_cast<ppf::SppPpfPrefetcher *>(
                &system.prefetcher(0));
            spp_ppf != nullptr) {
            spp_ppf->filter().setAnalysis(analysis);
        }
    }

    std::function<bool()> abort_check;
    if (run.hostTimeoutSeconds > 0.0) {
        const auto deadline =
            host_start +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(run.hostTimeoutSeconds));
        abort_check = [deadline] {
            return std::chrono::steady_clock::now() >= deadline;
        };
    }

    // A watchdog abort names the run it cancelled and its wall-clock
    // cost, so a sweep's degraded row tells which job blew the budget
    // without correlating timestamps by hand.
    auto run_guarded = [&](InstrCount instructions) {
        try {
            system.runUntilRetired(instructions, abort_check);
        } catch (const RunAborted &err) {
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - host_start)
                    .count();
            char elapsed_text[32];
            std::snprintf(elapsed_text, sizeof(elapsed_text), "%.1f",
                          elapsed);
            throw RunAborted(std::string(err.what()) + " (" +
                             workload.name + "/" + config.prefetcher +
                             " after " + elapsed_text + "s host)");
        }
    };

    // Warmup reuse: with a checkpoint store configured, restore the
    // post-warmup machine state when a matching image exists, else
    // simulate the warmup and publish one for later jobs.  An unusable
    // image (truncated, corrupt, version or digest skew) is rejected
    // by restoreSimulation before any live state is touched, so the
    // fallback warmup runs on an untouched System and the measured
    // region stays bit-identical to a straight-through run.
    const bool reuse = run.warmupReuse && !run.checkpointDir.empty() &&
        run.warmupInstructions > 0;
    std::uint64_t ckpt_hits = 0;
    std::uint64_t ckpt_misses = 0;
    std::uint64_t warmup_cycles_saved = 0;
    snapshot::SimulationView view;
    view.system = &system;
    view.traces = {&trace};
    view.corrupting = corrupting.get();
    view.sanitizing = sanitizing.get();
    view.faults = engine.empty() ? nullptr : &engine;

    if (run.auditInterval != 0) {
        system.audit().add(std::make_unique<check::SnapshotAuditor>(
            "snapshot", view));
    }

    if (reuse) {
        const std::uint64_t digest = snapshot::warmupDigest(
            config, run.warmupInstructions, {workload.make()}, plan,
            run.faultSeed);
        const snapshot::CheckpointStore store(run.checkpointDir);
        bool restored = false;
        std::vector<std::uint8_t> image;
        if (store.tryLoad(workload.name, digest, image)) {
            try {
                snapshot::restoreSimulation(image, view, digest);
                restored = true;
            } catch (const snapshot::SnapshotError &err) {
                warn("checkpoint " +
                     store.pathFor(workload.name, digest) +
                     " unusable (" + std::string(err.what()) +
                     "); re-simulating warmup");
            }
        }
        if (restored) {
            ckpt_hits = 1;
            warmup_cycles_saved = system.now();
        } else {
            run_guarded(run.warmupInstructions);
            store.publish(workload.name, digest,
                          snapshot::saveSimulation(view, digest));
            ckpt_misses = 1;
        }
    } else {
        run_guarded(run.warmupInstructions);
    }
    system.resetStats();
    run_guarded(run.simInstructions);

    engine.finish(system.now());
    system.setFaultEngine(nullptr);

    RunResult result;
    result.workload = workload.name;
    result.prefetcher = config.prefetcher;
    result.core = system.core(0).stats();
    result.ipc = result.core.ipc();
    result.l1d = system.l1d(0).stats();
    result.l2 = system.l2(0).stats();
    result.llc = system.llc().stats();
    result.dram = system.dram().stats();

    if (auto *spp = dynamic_cast<prefetch::SppPrefetcher *>(
            &system.prefetcher(0));
        spp != nullptr) {
        result.spp = spp->sppStats();
    } else if (auto *spp_ppf = dynamic_cast<ppf::SppPpfPrefetcher *>(
                   &system.prefetcher(0));
               spp_ppf != nullptr) {
        result.spp = spp_ppf->spp().sppStats();
        result.ppf = spp_ppf->filter().ppfStats();
    }

    result.faults = engine.stats();
    if (corrupting != nullptr)
        corrupting->accumulate(result.faults);
    if (sanitizing != nullptr)
        sanitizing->accumulate(result.faults);

    result.throughput.instructions =
        run.warmupInstructions + result.core.instructions;
    result.throughput.cycles = system.now();
    result.throughput.coreTicks = system.tickCounts().core;
    result.throughput.cacheTicks = system.tickCounts().cache;
    result.throughput.dramTicks = system.tickCounts().dram;
    result.throughput.faultTicks = system.tickCounts().fault;
    result.throughput.checkpointHits = ckpt_hits;
    result.throughput.checkpointMisses = ckpt_misses;
    result.throughput.warmupCyclesSaved = warmup_cycles_saved;
    result.throughput.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    return result;
}

} // namespace pfsim::sim
