/**
 * @file
 * Single-core experiment runner: builds a system around one workload,
 * warms it up, simulates a measured region and collects every
 * statistics block (paper Section 5.3 methodology, scaled).
 */

#ifndef PFSIM_SIM_RUNNER_HH
#define PFSIM_SIM_RUNNER_HH

#include <string>

#include "cache/cache.hh"
#include "core/ppf.hh"
#include "cpu/core.hh"
#include "dram/dram.hh"
#include "fault/fault.hh"
#include "prefetch/spp.hh"
#include "sim/config.hh"
#include "sim/system.hh"
#include "stats/throughput.hh"
#include "workloads/registry.hh"

namespace pfsim::sim
{

/** Run-length parameters (paper: 200M warmup + 1B measured; scaled). */
struct RunConfig
{
    InstrCount warmupInstructions = 250000;
    InstrCount simInstructions = 1000000;

    /**
     * Run the hardware-invariant audit (src/check) every N cycles;
     * 0 disables it.  Any violation aborts with component, cycle and
     * offending entry.
     */
    std::uint64_t auditInterval = 0;

    /**
     * Simulation-kernel fast path (--fast-path=off|skip|wheel).
     * Statistics are bit-identical in every mode; the slower modes
     * only cost host time and exist to validate (and measure) the
     * faster ones.
     */
    FastPathMode fastPath = FastPathMode::Wheel;

    /**
     * Worker threads for the sweep engines (sim/parallel.hh): 0 (the
     * default) selects the host's hardware concurrency, 1 runs every
     * job serially on the calling thread — today's behaviour.  Each
     * individual run is always single-threaded; jobs only controls
     * how many independent runs are in flight, and sweep results are
     * bit-identical for every value.
     */
    unsigned jobs = 0;

    /**
     * Armed fault campaign for this run (non-owning; null, the
     * default, is the strictly fault-free fast path: no decorators,
     * no engine, byte-identical to a build without src/fault).
     */
    const fault::FaultPlan *faults = nullptr;

    /**
     * Seed for this run's injector streams; a sweep derives one per
     * job (fault::deriveSeed(campaign seed, job index)) so faulted
     * sweeps stay bit-identical across --jobs values.
     */
    std::uint64_t faultSeed = 1;

    /**
     * Cooperative per-run watchdog: the run throws RunAborted once it
     * has consumed this much host wall-clock.  0 disables.  A
     * resilient sweep (sim/parallel.hh) turns the abort into a retry
     * or a degraded row.
     */
    double hostTimeoutSeconds = 0.0;

    /**
     * Directory of the content-addressed checkpoint store
     * (--checkpoint-dir).  Empty (the default) disables warmup reuse
     * entirely; when set, a run first looks for a checkpoint keyed by
     * (workload, warmupDigest) and either restores it — skipping the
     * warmup simulation — or simulates the warmup and publishes one.
     * Measured-region statistics are bit-identical either way.
     */
    std::string checkpointDir;

    /**
     * Master switch for warmup reuse (--warmup-reuse[=off]); only
     * meaningful when checkpointDir is set.  Off forces every run to
     * simulate its own warmup even with a store configured.
     */
    bool warmupReuse = true;

    /**
     * Shard worker *processes* for the sweep engines
     * (--shards=N[,respawn=K,heartbeat=MS]).  0 (the default) keeps
     * the in-process thread pool; N >= 1 dispatches campaigns to the
     * crash-isolated sweep service (sim/service), whose stdout is
     * byte-identical to every --jobs value.
     */
    unsigned shards = 0;

    /**
     * Worker deaths charged to a single job before the coordinator
     * quarantines it as poison (degraded row / fatal per FleetPolicy).
     */
    unsigned shardRespawn = 3;

    /**
     * Shard worker heartbeat period in milliseconds; the coordinator
     * SIGKILLs and respawns a worker silent for ~5 periods.  0
     * disables the liveness watchdog.
     */
    unsigned shardHeartbeatMs = 250;

    /**
     * Campaign journal location (write-ahead log of finalized jobs,
     * sharded runs only).
     */
    std::string journalPath = "results/campaign.journal";

    /**
     * Resume from journalPath (--resume=PATH): rows already finalized
     * there replay without re-running; a journal that fails its
     * fail-closed validation restarts the campaign from scratch.
     */
    bool resumeCampaign = false;

    /**
     * Fault-injection hook for the crash-campaign mode: SIGKILL this
     * many workers at spaced points mid-campaign
     * (resilience_campaign --kill-workers=N).  Final stdout must stay
     * byte-identical regardless.
     */
    unsigned shardKillWorkers = 0;
};

/** Everything measured by one single-core run. */
struct RunResult
{
    std::string workload;
    std::string prefetcher;

    double ipc = 0.0;
    cpu::CoreStats core;
    cache::CacheStats l1d;
    cache::CacheStats l2;
    cache::CacheStats llc;
    dram::DramStats dram;

    /** Populated when the prefetcher is SPP or SPP+PPF. */
    prefetch::SppStats spp;

    /** Populated when the prefetcher is SPP+PPF. */
    ppf::PpfStats ppf;

    /**
     * Fault-injection counters (zero for fault-free runs): flips
     * injected and recovered, records corrupted/repaired, responses
     * dropped/delayed, squeeze windows completed.
     */
    fault::FaultStats faults;

    /**
     * Host-speed telemetry of this run (wall-clock, simulated MIPS).
     * The only RunResult field that is *not* deterministic across
     * repeats — comparisons and reports must ignore it.
     */
    stats::RunThroughput throughput;

    /** Total prefetches injected at the L2 (TOTAL_PF of Figure 1). */
    std::uint64_t
    totalPf() const
    {
        return l2.pfIssued;
    }

    /**
     * Demand accesses served out of prefetched blocks at the L2 or the
     * LLC (GOOD_PF of Figure 1).
     */
    std::uint64_t
    goodPf() const
    {
        return l2.pfUseful + llc.pfUseful;
    }

    /** Prefetch accuracy estimate in [0, 1]. */
    double
    accuracy() const
    {
        if (totalPf() == 0)
            return 0.0;
        double a = double(goodPf()) / double(totalPf());
        return a > 1.0 ? 1.0 : a;
    }

    /** L2 demand MPKI over the measured region. */
    double
    l2Mpki() const
    {
        return core.instructions == 0
            ? 0.0
            : 1000.0 * double(l2.demandMisses()) /
                double(core.instructions);
    }
};

/**
 * Run @p workload on a system configured by @p config.  When
 * @p analysis is non-null and the prefetcher is SPP+PPF, the filter's
 * Figure 6-8 instrumentation is attached to it.
 */
RunResult runSingleCore(const SystemConfig &config,
                        const workloads::Workload &workload,
                        const RunConfig &run,
                        ppf::FeatureAnalysis *analysis = nullptr);

} // namespace pfsim::sim

#endif // PFSIM_SIM_RUNNER_HH
