#include "sim/service/journal.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "sim/service/protocol.hh"
#include "snapshot/serial.hh"

namespace pfsim::sim::service
{

namespace
{

/** "PFCJ" little-endian. */
constexpr std::uint32_t kMagic = 0x4a434650u;
constexpr std::uint32_t kVersion = 1;

constexpr std::uint8_t kCampaignRecord = 1;
constexpr std::uint8_t kJobRecord = 2;

/** Same sanity cap as the pipe protocol: a corrupted length field
 *  must become a load failure, not a giant allocation. */
constexpr std::uint32_t kMaxBody = 1u << 28;

[[noreturn]] void
ioError(const std::string &what)
{
    throw ServiceError(what + ": " + std::strerror(errno));
}

void
writeAllFd(int fd, const std::uint8_t *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ioError("journal write failed");
        }
        data += n;
        size -= std::size_t(n);
    }
}

std::vector<std::uint8_t>
readWholeFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        ioError("cannot open journal " + path);
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[65536];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int saved = errno;
            ::close(fd);
            errno = saved;
            ioError("cannot read journal " + path);
        }
        if (n == 0)
            break;
        bytes.insert(bytes.end(), chunk, chunk + n);
    }
    ::close(fd);
    return bytes;
}

JournalCampaign
decodeCampaign(snapshot::Source &body)
{
    JournalCampaign campaign;
    campaign.ordinal = body.u32();
    campaign.jobCount = body.u32();
    campaign.tag = body.str();
    return campaign;
}

JournalRecord
decodeRecord(snapshot::Source &body)
{
    JournalRecord record;
    record.campaign = body.u32();
    record.index = body.u32();
    record.ok = body.b();
    record.attempts = body.u32();
    record.error = body.str();
    record.line = body.str();
    record.payload.assign(body.u32(), 0);
    if (!record.payload.empty())
        body.raw(record.payload.data(), record.payload.size());
    return record;
}

} // namespace

Journal
Journal::create(const std::string &path, std::uint64_t identity)
{
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_APPEND |
                              O_CLOEXEC,
                          0644);
    if (fd < 0)
        ioError("cannot create journal " + path);
    Journal journal(fd);
    snapshot::Sink header;
    header.u32(kMagic);
    header.u32(kVersion);
    header.u64(identity);
    writeAllFd(fd, header.buffer().data(), header.buffer().size());
    if (::fsync(fd) != 0)
        ioError("cannot fsync journal " + path);
    return journal;
}

Journal
Journal::resume(const std::string &path, std::uint64_t identity,
                JournalContents &contents)
{
    const std::vector<std::uint8_t> bytes = readWholeFile(path);
    try {
        snapshot::Source src(bytes.data(), bytes.size());
        if (bytes.size() < 16 || src.u32() != kMagic)
            throw ServiceError("not a campaign journal");
        if (const std::uint32_t version = src.u32();
            version != kVersion) {
            throw ServiceError("journal format version " +
                               std::to_string(version) +
                               " (this build writes " +
                               std::to_string(kVersion) + ")");
        }
        if (src.u64() != identity) {
            throw ServiceError(
                "journal was written by a different command line; "
                "resume requires the identical bench invocation");
        }
        while (!src.exhausted()) {
            const std::uint8_t type = src.u8();
            const std::uint32_t length = src.u32();
            if (length > kMaxBody)
                throw ServiceError("journal record length corrupt");
            std::vector<std::uint8_t> body(length, 0);
            if (length > 0)
                src.raw(body.data(), body.size());
            const std::uint32_t crc = src.u32();
            if (snapshot::crc32(body.data(), body.size()) != crc)
                throw ServiceError("journal record CRC mismatch");
            snapshot::Source record(body.data(), body.size());
            if (type == kCampaignRecord) {
                contents.campaigns.push_back(decodeCampaign(record));
            } else if (type == kJobRecord) {
                contents.records.push_back(decodeRecord(record));
            } else {
                throw ServiceError("unknown journal record type " +
                                   std::to_string(type));
            }
            if (!record.exhausted())
                throw ServiceError("journal record has trailing bytes");
        }
    } catch (const snapshot::SnapshotError &) {
        // Torn tail from a mid-append kill, or outright corruption:
        // fail closed and let the coordinator restart from scratch.
        throw ServiceError("journal record truncated");
    }

    const int fd =
        ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0)
        ioError("cannot reopen journal " + path);
    return Journal(fd);
}

Journal::Journal(Journal &&other) noexcept
    : fd_(std::exchange(other.fd_, -1))
{
}

Journal &
Journal::operator=(Journal &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

Journal::~Journal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Journal::append(std::uint8_t type, const std::vector<std::uint8_t> &body)
{
    snapshot::Sink frame;
    frame.u8(type);
    frame.u32(std::uint32_t(body.size()));
    if (!body.empty())
        frame.raw(body.data(), body.size());
    frame.u32(snapshot::crc32(body.data(), body.size()));
    // One write so concurrent readers (and a mid-append kill) see
    // either no record or a whole frame; fsync so a completed job
    // survives the coordinator dying right after.
    writeAllFd(fd_, frame.buffer().data(), frame.buffer().size());
    if (::fsync(fd_) != 0)
        ioError("cannot fsync journal");
}

void
Journal::appendCampaign(const JournalCampaign &campaign)
{
    snapshot::Sink body;
    body.u32(campaign.ordinal);
    body.u32(campaign.jobCount);
    body.str(campaign.tag);
    append(kCampaignRecord, body.buffer());
}

void
Journal::appendRecord(const JournalRecord &record)
{
    snapshot::Sink body;
    body.u32(record.campaign);
    body.u32(record.index);
    body.b(record.ok);
    body.u32(record.attempts);
    body.str(record.error);
    body.str(record.line);
    body.u32(std::uint32_t(record.payload.size()));
    if (!record.payload.empty())
        body.raw(record.payload.data(), record.payload.size());
    append(kJobRecord, body.buffer());
}

} // namespace pfsim::sim::service
