/**
 * @file
 * Write-ahead campaign journal: the coordinator's durable record of
 * completed jobs, enabling --resume after a coordinator kill.
 *
 * File layout (all little-endian via snapshot/serial.hh):
 *
 *   header   "PFCJ" magic (u32), format version (u32), command
 *            identity digest (u64)
 *   records  repeated frames of u8 record type, u32 body length,
 *            body bytes, u32 CRC-32 over the body
 *
 * Record type 1 opens a campaign (ordinal, job count, tag); type 2
 * finalizes one job of the newest campaign (index, outcome, progress
 * line, serialized result slot).  Each record is appended with a
 * single O_APPEND write followed by fsync, so a crash leaves at most
 * one torn tail record.
 *
 * Loading is fail-closed: a bad magic, version or identity digest, a
 * truncated frame or a CRC mismatch rejects the *entire* journal with
 * ServiceError — the coordinator then warns and restarts the campaign
 * from scratch rather than resuming from a file it cannot trust.
 *
 * Journal records must replay identically on any host, so this
 * subsystem never records wall-clock readings or pointer identity;
 * tools/analyze/check_determinism.py enforces that without an
 * allowlist escape for these files.
 */

#ifndef PFSIM_SIM_SERVICE_JOURNAL_HH
#define PFSIM_SIM_SERVICE_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pfsim::sim::service
{

/** One campaign opened inside a journal. */
struct JournalCampaign
{
    /** 1-based engine-call ordinal within the bench process. */
    std::uint32_t ordinal = 0;

    /** Submitted job count, used to validate a resume. */
    std::uint32_t jobCount = 0;

    /** Progress tag ("run", "mix", "campaign", ...). */
    std::string tag;
};

/** One finalized job. */
struct JournalRecord
{
    /** Ordinal of the campaign this job belongs to. */
    std::uint32_t campaign = 0;

    /** Submission index within the campaign. */
    std::uint32_t index = 0;

    /** False for a degraded row (slot payload empty). */
    bool ok = true;

    /** Attempts consumed (JobOutcome::attempts). */
    std::uint32_t attempts = 1;

    /** First line of the final failure, empty when ok. */
    std::string error;

    /** Progress line, so a resumed row replays the exact stderr. */
    std::string line;

    /** Serialized result slot (wire.hh format), empty when !ok. */
    std::vector<std::uint8_t> payload;
};

/** Everything recovered from a journal on resume. */
struct JournalContents
{
    std::vector<JournalCampaign> campaigns;
    std::vector<JournalRecord> records;
};

/** An open journal being appended by the coordinator. */
class Journal
{
  public:
    /**
     * Create (or truncate) the journal at @p path and write the file
     * header.  @p identity digests the bench command line so a resume
     * with different arguments is rejected instead of splicing
     * incompatible results.  I/O errors throw ServiceError.
     */
    static Journal create(const std::string &path,
                          std::uint64_t identity);

    /**
     * Validate and load an existing journal fail-closed, returning a
     * handle positioned for further appends.  Any corruption —
     * truncated frame, CRC mismatch, version or identity skew —
     * throws ServiceError and leaves the file untouched.
     */
    static Journal resume(const std::string &path,
                          std::uint64_t identity,
                          JournalContents &contents);

    Journal(Journal &&other) noexcept;
    Journal &operator=(Journal &&other) noexcept;
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;
    ~Journal();

    /** Append a campaign-open record (single write + fsync). */
    void appendCampaign(const JournalCampaign &campaign);

    /** Append a finalized-job record (single write + fsync). */
    void appendRecord(const JournalRecord &record);

  private:
    explicit Journal(int fd) : fd_(fd) {}

    void append(std::uint8_t type,
                const std::vector<std::uint8_t> &body);

    int fd_ = -1;
};

} // namespace pfsim::sim::service

#endif // PFSIM_SIM_SERVICE_JOURNAL_HH
