#include "sim/service/protocol.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "snapshot/serial.hh"

namespace pfsim::sim::service
{

namespace
{

/** "PFSM" little-endian; catches stream desync and foreign writers. */
constexpr std::uint32_t kMagic = 0x4d534650u;

/**
 * Largest accepted payload.  Real payloads are a few KiB (one
 * RunResult); the cap turns a corrupted length field into a framing
 * error instead of a multi-gigabyte allocation.
 */
constexpr std::uint32_t kMaxPayload = 1u << 28;

void
writeAll(int fd, const std::uint8_t *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ServiceError(std::string("pipe write failed: ") +
                               std::strerror(errno));
        }
        data += n;
        size -= std::size_t(n);
    }
}

/**
 * Fill @p size bytes from @p fd.  Returns false only on EOF before
 * the first byte with @p eof_ok; EOF later is always a torn frame.
 */
bool
readAll(int fd, std::uint8_t *data, std::size_t size, bool eof_ok)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::read(fd, data + got, size - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ServiceError(std::string("pipe read failed: ") +
                               std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0 && eof_ok)
                return false;
            throw ServiceError("pipe closed mid-frame (peer died)");
        }
        got += std::size_t(n);
    }
    return true;
}

} // namespace

void
writeFrame(int fd, MsgType type,
           const std::vector<std::uint8_t> &payload)
{
    snapshot::Sink head;
    head.u32(kMagic);
    head.u8(std::uint8_t(type));
    head.u32(std::uint32_t(payload.size()));
    head.u32(snapshot::crc32(payload.data(), payload.size()));
    writeAll(fd, head.buffer().data(), head.buffer().size());
    if (!payload.empty())
        writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, Frame &out)
{
    std::uint8_t head[13];
    if (!readAll(fd, head, sizeof(head), true))
        return false;
    snapshot::Source src(head, sizeof(head));
    if (src.u32() != kMagic)
        throw ServiceError("bad frame magic (stream desynchronized)");
    const std::uint8_t type = src.u8();
    if (type < std::uint8_t(MsgType::CampaignBegin) ||
        type > std::uint8_t(MsgType::Shutdown)) {
        throw ServiceError("unknown frame type " +
                           std::to_string(type));
    }
    const std::uint32_t length = src.u32();
    const std::uint32_t crc = src.u32();
    if (length > kMaxPayload) {
        throw ServiceError("frame payload length " +
                           std::to_string(length) +
                           " exceeds the protocol cap");
    }
    out.payload.assign(length, 0);
    if (length > 0)
        readAll(fd, out.payload.data(), length, false);
    if (snapshot::crc32(out.payload.data(), out.payload.size()) != crc)
        throw ServiceError("frame payload CRC mismatch");
    out.type = MsgType(type);
    return true;
}

} // namespace pfsim::sim::service
