/**
 * @file
 * Pipe message protocol between the sweep coordinator and its shard
 * worker processes.
 *
 * Every message is one length-prefixed frame built from the snapshot
 * serialization primitives (snapshot/serial.hh): a fixed 13-byte
 * little-endian header (magic, message type, payload length, payload
 * CRC-32) followed by the payload bytes.  The CRC makes a torn or
 * corrupted pipe read detectable instead of silently desynchronizing
 * the stream: any framing violation throws ServiceError, which the
 * coordinator treats exactly like the worker dying.
 *
 * Frames are written with a blocking write loop and read with a
 * blocking read loop; a clean EOF *between* frames is reported as
 * end-of-stream (the peer exited), while EOF *inside* a frame is a
 * protocol error (the peer died mid-message).
 */

#ifndef PFSIM_SIM_SERVICE_PROTOCOL_HH
#define PFSIM_SIM_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pfsim::sim::service
{

/** Thrown on any pipe, framing or protocol-state violation. */
class ServiceError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Message types of the coordinator/worker protocol. */
enum class MsgType : std::uint8_t
{
    /**
     * worker -> coordinator: the worker's bench main reached an engine
     * campaign.  Payload: campaign ordinal (u32), job count (u32),
     * tag (str).  The coordinator answers CampaignReplay for already
     * completed campaigns or CampaignLive for the one being served.
     */
    CampaignBegin = 1,

    /** coordinator -> worker: serve jobs of this campaign.  Empty. */
    CampaignLive = 2,

    /**
     * coordinator -> worker: this campaign already ran; replay its
     * archived results so the worker's bench main reaches the live
     * campaign with identical state.  Payload: record count (u32),
     * then per record job index (u32), attempts (u32), ok (b), and
     * when ok the slot payload (u32 length + raw bytes).
     */
    CampaignReplay = 3,

    /** coordinator -> worker: run one job.  Payload: job index (u32). */
    RunJob = 4,

    /**
     * worker -> coordinator: a job finished.  Payload: job index
     * (u32), progress line (str), RunThroughput, slot payload (u32
     * length + raw bytes produced by the job's save hook).
     */
    JobDone = 5,

    /**
     * worker -> coordinator: a job threw.  Payload: job index (u32),
     * first line of the failure (str).
     */
    JobFailed = 6,

    /** worker -> coordinator: liveness beacon.  Empty. */
    Heartbeat = 7,

    /** coordinator -> worker: no more jobs; exit cleanly.  Empty. */
    Shutdown = 8,
};

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::Heartbeat;
    std::vector<std::uint8_t> payload;
};

/**
 * Write one frame to @p fd, looping over partial writes.  A broken
 * pipe (the peer died) or any other write error throws ServiceError.
 */
void writeFrame(int fd, MsgType type,
                const std::vector<std::uint8_t> &payload);

/**
 * Read one frame from @p fd into @p out.  Returns false on a clean
 * EOF at a frame boundary; throws ServiceError on EOF mid-frame, bad
 * magic, an unknown message type, an oversized length or a payload
 * CRC mismatch.
 */
bool readFrame(int fd, Frame &out);

} // namespace pfsim::sim::service

#endif // PFSIM_SIM_SERVICE_PROTOCOL_HH
