#include "sim/service/service.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/service/journal.hh"
#include "sim/service/protocol.hh"
#include "sim/service/supervisor.hh"
#include "sim/service/wire.hh"
#include "snapshot/serial.hh"
#include "util/args.hh"
#include "util/logging.hh"

namespace pfsim::sim::service
{

namespace
{

constexpr std::size_t kNone = std::size_t(-1);

/** First line of a (possibly multi-line) failure message. */
std::string
firstLine(const std::string &text)
{
    const std::size_t newline = text.find('\n');
    return newline == std::string::npos ? text : text.substr(0, newline);
}

/**
 * Per-process service state.  A bench process is either the
 * coordinator (campaign counter, replay archive, journal) or one
 * worker (pipe fds, write lock shared with the heartbeat thread).
 */
struct Session
{
    std::vector<std::string> command;
    bool worker = false;
    WorkerSpec spec;

    /** Engine campaigns seen so far (1-based ordinals). */
    unsigned campaignOrdinal = 0;

    /** Finalized records per completed campaign (worker replay). */
    std::map<unsigned, std::vector<JournalRecord>> archive;

    /** Campaign headers / records recovered from a resumed journal. */
    std::map<unsigned, JournalCampaign> resumedCampaigns;
    std::map<unsigned, std::map<unsigned, JournalRecord>> resumedRecords;

    std::unique_ptr<Journal> journal;
    bool journalReady = false;

    /** Serializes worker-pipe writes against the heartbeat thread. */
    std::mutex workerWrite;

    std::atomic<bool> muteHeartbeats{false};
};

Session &
session()
{
    static Session instance;
    return instance;
}

/** Flags that select scheduling, not results: excluded from the
 *  journal's command-identity digest so --resume may change them. */
bool
isSchedulingFlag(const std::string &arg)
{
    static const char *const prefixes[] = {
        "--jobs", "--shards", "--resume", "--worker", "--kill-workers"};
    for (const char *prefix : prefixes) {
        if (arg == prefix)
            return true;
        if (arg.rfind(std::string(prefix) + "=", 0) == 0)
            return true;
    }
    return false;
}

/** FNV-1a over the result-affecting args of the bench command. */
std::uint64_t
commandIdentity(const std::vector<std::string> &command)
{
    std::uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](unsigned char c) {
        hash ^= c;
        hash *= 1099511628211ull;
    };
    for (const std::string &arg : command) {
        if (isSchedulingFlag(arg))
            continue;
        for (const char c : arg)
            mix(static_cast<unsigned char>(c));
        mix(0);
    }
    return hash;
}

void
ensureParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos || slash == 0)
        return;
    // Single level is all the default results/ layout needs; a deeper
    // custom path must already exist (create() reports the failure).
    ::mkdir(path.substr(0, slash).c_str(), 0755);
}

/**
 * Open (or resume) the campaign journal once per coordinator
 * process.  A resumed journal that fails fail-closed validation is
 * discarded with a warning and the campaign restarts from scratch.
 */
void
openJournal(Session &s, const RunConfig &run)
{
    if (s.journalReady)
        return;
    s.journalReady = true;
    if (run.journalPath.empty())
        return;
    const std::uint64_t identity = commandIdentity(s.command);
    ensureParentDir(run.journalPath);
    if (run.resumeCampaign) {
        JournalContents contents;
        try {
            s.journal = std::make_unique<Journal>(Journal::resume(
                run.journalPath, identity, contents));
            for (const JournalCampaign &campaign : contents.campaigns)
                s.resumedCampaigns[campaign.ordinal] = campaign;
            for (JournalRecord &record : contents.records) {
                s.resumedRecords[record.campaign][record.index] =
                    std::move(record);
            }
            return;
        } catch (const ServiceError &err) {
            warn("campaign journal " + run.journalPath + " unusable (" +
                 std::string(err.what()) +
                 "); restarting the campaign from scratch");
            s.resumedCampaigns.clear();
            s.resumedRecords.clear();
        }
    }
    try {
        s.journal = std::make_unique<Journal>(
            Journal::create(run.journalPath, identity));
    } catch (const ServiceError &err) {
        warn("cannot write campaign journal " + run.journalPath + " (" +
             std::string(err.what()) +
             "); campaign will not be resumable");
    }
}

/**
 * Serve this process's share of a live campaign: announce the
 * campaign, then run jobs the coordinator assigns until Shutdown.
 * For campaigns the coordinator already completed, decode the replay
 * it sends so the bench main converges to the same state.  Exits the
 * process after its live campaign (each campaign spawns fresh
 * workers).
 */
FleetReport
workerServe(const std::vector<ShardJob> &jobs, const RunConfig &run,
            const std::string &tag)
{
    Session &s = session();
    const unsigned ordinal = ++s.campaignOrdinal;
    const int read_fd = s.spec.readFd;
    const int write_fd = s.spec.writeFd;

    auto send = [&](MsgType type,
                    const std::vector<std::uint8_t> &payload) {
        std::lock_guard<std::mutex> lock(s.workerWrite);
        writeFrame(write_fd, type, payload);
    };

    {
        snapshot::Sink hello;
        hello.u32(ordinal);
        hello.u32(std::uint32_t(jobs.size()));
        hello.str(tag);
        send(MsgType::CampaignBegin, hello.buffer());
    }

    Frame frame;
    try {
        if (!readFrame(read_fd, frame))
            std::exit(3); // coordinator gone
    } catch (const ServiceError &) {
        std::exit(3);
    }

    if (frame.type == MsgType::CampaignReplay) {
        snapshot::Source src(frame.payload.data(),
                             frame.payload.size());
        FleetReport report;
        report.outcomes.assign(jobs.size(), JobOutcome{});
        const std::uint32_t count = src.u32();
        for (std::uint32_t k = 0; k < count; ++k) {
            const std::uint32_t index = src.u32();
            const bool ok = src.b();
            const std::uint32_t attempts = src.u32();
            const std::string error = src.str();
            std::vector<std::uint8_t> payload(src.u32(), 0);
            if (!payload.empty())
                src.raw(payload.data(), payload.size());
            if (index >= jobs.size())
                std::exit(3);
            JobOutcome &outcome = report.outcomes[index];
            outcome.ok = ok;
            outcome.attempts = attempts;
            outcome.error = error;
            if (ok) {
                snapshot::Source slot(payload.data(), payload.size());
                jobs[index].load(slot);
            }
        }
        return report; // bench main continues to the live campaign
    }
    if (frame.type != MsgType::CampaignLive)
        std::exit(3);

    // Liveness beacons from a side thread, so a worker wedged inside
    // a job still registers as alive (a *silent* worker is the
    // watchdog's kill signal, a slow one is the timeout watchdog's).
    std::atomic<bool> stop{false};
    std::thread beat;
    if (run.shardHeartbeatMs > 0) {
        beat = std::thread([&] {
            while (!stop.load()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(run.shardHeartbeatMs));
                if (stop.load())
                    break;
                if (s.muteHeartbeats.load())
                    continue;
                try {
                    send(MsgType::Heartbeat, {});
                } catch (const ServiceError &) {
                    break; // coordinator died; main loop exits too
                }
            }
        });
    }

    for (;;) {
        bool got = false;
        try {
            got = readFrame(read_fd, frame);
        } catch (const ServiceError &) {
            got = false;
        }
        if (!got || frame.type == MsgType::Shutdown)
            break;
        if (frame.type != MsgType::RunJob)
            continue;
        snapshot::Source src(frame.payload.data(),
                             frame.payload.size());
        const std::uint32_t index = src.u32();
        if (index >= jobs.size())
            break;
        try {
            const JobReport job_report = jobs[index].run();
            snapshot::Sink slot;
            jobs[index].save(slot);
            snapshot::Sink body;
            body.u32(index);
            writeJobReport(body, job_report);
            body.u32(std::uint32_t(slot.buffer().size()));
            body.raw(slot.buffer().data(), slot.buffer().size());
            send(MsgType::JobDone, body.buffer());
        } catch (const std::exception &e) {
            snapshot::Sink body;
            body.u32(index);
            body.str(firstLine(e.what()));
            send(MsgType::JobFailed, body.buffer());
        } catch (...) {
            snapshot::Sink body;
            body.u32(index);
            body.str("unknown error");
            send(MsgType::JobFailed, body.buffer());
        }
    }

    stop.store(true);
    if (beat.joinable())
        beat.join();
    std::exit(0);
}

/**
 * Coordinate one campaign across the shard worker fleet.  The
 * scheduling loop is single-threaded: poll worker pipes, absorb
 * frames, reap the dead, run the watchdogs, hand out work.
 */
FleetReport
coordinate(const std::vector<ShardJob> &jobs, const RunConfig &run,
           const std::string &tag, const FleetPolicy &policy)
{
    Session &s = session();
    if (s.command.empty()) {
        fatal("sharded sweep requested before the service learned the "
              "worker command (bench_common::parseArgs not called)");
    }
    const unsigned ordinal = ++s.campaignOrdinal;
    const std::size_t total = jobs.size();
    const bool resilient =
        policy.maxRetries > 0 || policy.degradeOnFailure;
    const auto wall_start = std::chrono::steady_clock::now();

    openJournal(s, run);

    FleetReport report;
    report.throughput.jobs = run.shards;
    report.outcomes.assign(total, JobOutcome{});

    std::size_t done = 0;
    auto emit = [&](const std::string &text) {
        ++done;
        char head[48];
        std::snprintf(head, sizeof(head), "  [%s %zu/%zu] ",
                      tag.c_str(), done, total);
        std::fputs((head + text + "\n").c_str(), stderr);
    };

    std::vector<JournalRecord> &archive = s.archive[ordinal];

    // Campaign header: a resumed campaign must describe the same job
    // list; a fresh one is journaled before any job runs.
    if (const auto it = s.resumedCampaigns.find(ordinal);
        it != s.resumedCampaigns.end()) {
        if (it->second.jobCount != total || it->second.tag != tag) {
            fatal("--resume: journal campaign " +
                  std::to_string(ordinal) + " was recorded as " +
                  std::to_string(it->second.jobCount) + " \"" +
                  it->second.tag + "\" job(s) but this run builds " +
                  std::to_string(total) + " \"" + tag +
                  "\" job(s); resume requires the identical command");
        }
    } else if (s.journal != nullptr) {
        JournalCampaign header;
        header.ordinal = ordinal;
        header.jobCount = std::uint32_t(total);
        header.tag = tag;
        s.journal->appendCampaign(header);
    }

    std::vector<char> decided(total, 0);
    std::vector<unsigned> attempts(total, 0); // failed job attempts
    std::vector<unsigned> crashes(total, 0);  // worker deaths charged
    std::vector<std::uint64_t> not_before(total, 0);
    std::vector<std::size_t> queue;
    std::size_t queue_head = 0;
    std::size_t open = total;
    std::size_t resumed_rows = 0;
    unsigned worker_deaths = 0;

    auto journalRecord = [&](std::size_t i, const std::string &line,
                             std::vector<std::uint8_t> payload) {
        JournalRecord record;
        record.campaign = ordinal;
        record.index = std::uint32_t(i);
        record.ok = report.outcomes[i].ok;
        record.attempts = report.outcomes[i].attempts;
        record.error = report.outcomes[i].error;
        record.line = line;
        record.payload = std::move(payload);
        if (s.journal != nullptr)
            s.journal->appendRecord(record);
        archive.push_back(std::move(record));
    };

    // Absorb resumed rows: load their slots, replay their progress
    // lines, and take them out of the schedule.
    if (const auto it = s.resumedRecords.find(ordinal);
        it != s.resumedRecords.end()) {
        for (const auto &[index, record] : it->second) {
            if (index >= total || decided[index] != 0)
                continue;
            JobOutcome &outcome = report.outcomes[index];
            outcome.ok = record.ok;
            outcome.attempts = record.attempts;
            outcome.error = record.error;
            if (record.ok) {
                try {
                    snapshot::Source slot(record.payload.data(),
                                          record.payload.size());
                    jobs[index].load(slot);
                } catch (const snapshot::SnapshotError &) {
                    // The slot does not decode against this build:
                    // schedule the job instead of trusting it.
                    outcome = JobOutcome{};
                    continue;
                }
            }
            decided[index] = 1;
            --open;
            ++resumed_rows;
            archive.push_back(record);
            emit(record.line + " (resumed)");
        }
    }
    for (std::size_t i = 0; i < total; ++i) {
        if (decided[i] == 0)
            queue.push_back(i);
    }

    // Worker-kill fault injection: SIGKILL the delivering worker at
    // evenly spaced completion counts (crash-campaign mode).
    std::vector<std::size_t> kill_at;
    if (run.shardKillWorkers > 0 && open > 1) {
        for (unsigned k = 1; k <= run.shardKillWorkers; ++k) {
            std::size_t point = open * k / (run.shardKillWorkers + 1);
            point = std::min(std::max<std::size_t>(point, 1), open - 1);
            kill_at.push_back(point);
        }
    }
    std::size_t next_kill = 0;
    std::size_t completed_live = 0;
    std::size_t pending_kill = kNone;

    Supervisor sup(s.command);
    std::vector<std::string> timeout_msg; // per worker, non-empty =
                                          // watchdog job-timeout kill
    std::vector<std::string> kill_reason; // per worker crash label
    unsigned startup_deaths = 0;
    bool any_begin = false;

    const std::uint64_t stale_ms = std::max<std::uint64_t>(
        5ull * run.shardHeartbeatMs, 1000);

    auto spawnIfNeeded = [&] {
        std::size_t live = 0;
        for (const WorkerProc &w : sup.workers())
            live += w.live ? 1 : 0;
        const std::size_t want =
            std::min<std::size_t>(std::max(1u, run.shards), open);
        while (live < want) {
            sup.spawn();
            timeout_msg.resize(sup.workers().size());
            kill_reason.resize(sup.workers().size());
            ++live;
        }
    };

    auto onJobDone = [&](std::size_t i, const JobReport &job_report,
                         std::vector<std::uint8_t> payload) {
        JobOutcome &outcome = report.outcomes[i];
        outcome.ok = true;
        outcome.attempts = attempts[i] + 1;
        snapshot::Source slot(payload.data(), payload.size());
        jobs[i].load(slot);
        std::string line = job_report.line;
        if (outcome.attempts > 1) {
            line += " (recovered after " +
                    std::to_string(outcome.attempts - 1) + " retr" +
                    (outcome.attempts == 2 ? "y)" : "ies)");
        }
        decided[i] = 1;
        --open;
        journalRecord(i, line, std::move(payload));
        emit(line);
        report.throughput.add(job_report.throughput);
    };

    auto onJobFailure = [&](std::size_t i, const std::string &message) {
        ++attempts[i];
        JobOutcome &outcome = report.outcomes[i];
        outcome.error = message;
        outcome.attempts = attempts[i];
        if (attempts[i] <= policy.maxRetries) {
            if (policy.backoffMs > 0) {
                const unsigned shift = std::min(attempts[i] - 1, 10u);
                not_before[i] =
                    monotonicMillis() +
                    (std::uint64_t(policy.backoffMs) << shift);
            }
            queue.push_back(i);
            return;
        }
        outcome.ok = false;
        if (!policy.degradeOnFailure) {
            fatal("job " + std::to_string(i) + " failed after " +
                  std::to_string(attempts[i]) + " attempt(s): " +
                  message);
        }
        const std::string text =
            "job " + std::to_string(i) + " DEGRADED after " +
            std::to_string(attempts[i]) + " attempt(s): " + message;
        decided[i] = 1;
        --open;
        journalRecord(i, text, {});
        emit(text);
    };

    auto quarantine = [&](std::size_t i, const std::string &reason) {
        JobOutcome &outcome = report.outcomes[i];
        outcome.ok = false;
        outcome.attempts = attempts[i] + crashes[i];
        outcome.error = reason;
        if (!policy.degradeOnFailure) {
            fatal("job " + std::to_string(i) + " crashed its worker " +
                  std::to_string(crashes[i]) +
                  " time(s); quarantined as a poison job (" + reason +
                  ")");
        }
        const std::string text =
            "job " + std::to_string(i) + " DEGRADED after " +
            std::to_string(crashes[i]) + " worker crash(es): " + reason;
        decided[i] = 1;
        --open;
        journalRecord(i, text, {});
        emit(text);
    };

    auto handleDeath = [&](std::size_t wi) {
        WorkerProc &w = sup.workers()[wi];
        if (w.shuttingDown)
            return;
        ++worker_deaths;
        if (!w.sawBegin && !any_begin) {
            if (++startup_deaths >= 3) {
                fatal("shard workers keep dying before their first "
                      "campaign; exec of \"" + s.command[0] +
                      "\" failing?");
            }
        }
        if (w.inFlight >= 0) {
            const std::size_t i = std::size_t(w.inFlight);
            w.inFlight = -1;
            if (!timeout_msg[wi].empty()) {
                // Watchdog job-timeout kill: consumes a FleetPolicy
                // attempt, exactly like a cooperative RunAborted.
                const std::string message = timeout_msg[wi];
                timeout_msg[wi].clear();
                onJobFailure(i, message);
            } else {
                ++crashes[i];
                const std::string reason = kill_reason[wi].empty()
                    ? std::string("worker crashed")
                    : kill_reason[wi];
                kill_reason[wi].clear();
                if (crashes[i] > run.shardRespawn) {
                    quarantine(i, reason);
                } else {
                    // Silent crash recovery: the re-run keeps stdout
                    // byte-identical, so only stderr notes it.
                    std::fprintf(stderr,
                                 "  [%s] %s: job %zu re-queued "
                                 "(worker crash %u of %u tolerated)\n",
                                 tag.c_str(), reason.c_str(), i,
                                 crashes[i], run.shardRespawn + 1);
                    queue.push_back(i);
                }
            }
        }
        if (open > 0)
            spawnIfNeeded();
    };

    auto assignTo = [&](std::size_t wi) {
        WorkerProc &w = sup.workers()[wi];
        if (!w.live || !w.sawBegin || w.shuttingDown || w.inFlight >= 0)
            return;
        const std::uint64_t t = monotonicMillis();
        for (std::size_t k = queue_head; k < queue.size(); ++k) {
            const std::size_t i = queue[k];
            if (decided[i] != 0) {
                if (k == queue_head)
                    ++queue_head;
                continue;
            }
            if (not_before[i] > t)
                continue;
            queue.erase(queue.begin() + std::ptrdiff_t(k));
            snapshot::Sink body;
            body.u32(std::uint32_t(i));
            try {
                writeFrame(w.toWorker, MsgType::RunJob, body.buffer());
            } catch (const ServiceError &) {
                queue.insert(queue.begin() + std::ptrdiff_t(k), i);
                sup.kill(w);
                return;
            }
            w.inFlight = std::int64_t(i);
            w.jobStartMs = t;
            return;
        }
    };

    auto handleFrame = [&](std::size_t wi, const Frame &frame) {
        WorkerProc &w = sup.workers()[wi];
        w.lastBeatMs = monotonicMillis();
        switch (frame.type) {
        case MsgType::CampaignBegin: {
            snapshot::Source src(frame.payload.data(),
                                 frame.payload.size());
            const std::uint32_t worker_ordinal = src.u32();
            const std::uint32_t count = src.u32();
            const std::string worker_tag = src.str();
            if (worker_ordinal < ordinal) {
                // The worker is catching up through a campaign this
                // process already finished: replay the archive.
                const auto it = s.archive.find(worker_ordinal);
                if (it == s.archive.end()) {
                    fatal("worker announced campaign " +
                          std::to_string(worker_ordinal) +
                          " which the coordinator never ran; bench "
                          "main is not deterministic across processes");
                }
                snapshot::Sink body;
                body.u32(std::uint32_t(it->second.size()));
                for (const JournalRecord &record : it->second) {
                    body.u32(record.index);
                    body.b(record.ok);
                    body.u32(record.attempts);
                    body.str(record.error);
                    body.u32(std::uint32_t(record.payload.size()));
                    if (!record.payload.empty()) {
                        body.raw(record.payload.data(),
                                 record.payload.size());
                    }
                }
                writeFrame(w.toWorker, MsgType::CampaignReplay,
                           body.buffer());
                return;
            }
            if (worker_ordinal != ordinal || count != total ||
                worker_tag != tag) {
                fatal("worker/coordinator campaign divergence: worker "
                      "announced campaign " +
                      std::to_string(worker_ordinal) + " \"" +
                      worker_tag + "\" with " + std::to_string(count) +
                      " job(s), coordinator is at campaign " +
                      std::to_string(ordinal) + " \"" + tag + "\" with " +
                      std::to_string(total) + " job(s)");
            }
            w.sawBegin = true;
            any_begin = true;
            writeFrame(w.toWorker, MsgType::CampaignLive, {});
            return;
        }
        case MsgType::Heartbeat:
            return;
        case MsgType::JobDone: {
            snapshot::Source src(frame.payload.data(),
                                 frame.payload.size());
            const std::uint32_t index = src.u32();
            JobReport job_report;
            readJobReport(src, job_report);
            std::vector<std::uint8_t> payload(src.u32(), 0);
            if (!payload.empty())
                src.raw(payload.data(), payload.size());
            if (w.inFlight != std::int64_t(index) || index >= total ||
                decided[index] != 0) {
                throw ServiceError("unexpected JobDone for job " +
                                   std::to_string(index));
            }
            w.inFlight = -1;
            onJobDone(index, job_report, std::move(payload));
            ++completed_live;
            if (next_kill < kill_at.size() &&
                completed_live >= kill_at[next_kill]) {
                ++next_kill;
                pending_kill = wi;
            }
            return;
        }
        case MsgType::JobFailed: {
            snapshot::Source src(frame.payload.data(),
                                 frame.payload.size());
            const std::uint32_t index = src.u32();
            const std::string message = src.str();
            if (w.inFlight != std::int64_t(index) || index >= total) {
                throw ServiceError("unexpected JobFailed for job " +
                                   std::to_string(index));
            }
            w.inFlight = -1;
            onJobFailure(index, message);
            return;
        }
        default:
            throw ServiceError("unexpected frame from worker");
        }
    };

    auto watchdogs = [&] {
        const std::uint64_t t = monotonicMillis();
        for (std::size_t wi = 0; wi < sup.workers().size(); ++wi) {
            WorkerProc &w = sup.workers()[wi];
            if (!w.live || w.shuttingDown)
                continue;
            if (!w.sawBegin) {
                // Startup grace: exec + bench re-init + replay of
                // earlier campaigns, generously bounded.
                if (t - w.lastBeatMs > 30000) {
                    kill_reason[wi] = "worker stalled before its "
                                      "first campaign";
                    sup.kill(w);
                }
                continue;
            }
            if (run.shardHeartbeatMs > 0 &&
                t - w.lastBeatMs > stale_ms) {
                kill_reason[wi] =
                    "worker heartbeat stale for " +
                    std::to_string(t - w.lastBeatMs) +
                    " ms (killed by fleet watchdog)";
                sup.kill(w);
                continue;
            }
            if (w.inFlight >= 0 && run.hostTimeoutSeconds > 0.0) {
                // Grace past the cooperative deadline: the in-job
                // abort poll gets first chance to fire.
                const std::uint64_t budget_ms =
                    std::uint64_t(run.hostTimeoutSeconds * 1000.0) +
                    stale_ms;
                const std::uint64_t elapsed = t - w.jobStartMs;
                if (elapsed > budget_ms) {
                    char text[160];
                    std::snprintf(
                        text, sizeof(text),
                        "job %lld exceeded hostTimeoutSeconds=%g "
                        "(worker killed by fleet watchdog after "
                        "%.1fs)",
                        static_cast<long long>(w.inFlight),
                        run.hostTimeoutSeconds,
                        double(elapsed) / 1000.0);
                    timeout_msg[wi] = text;
                    sup.kill(w);
                }
            }
        }
    };

    if (open > 0)
        spawnIfNeeded();

    while (open > 0) {
        for (std::size_t wi = 0; wi < sup.workers().size(); ++wi)
            assignTo(wi);
        if (pending_kill != kNone) {
            // Injected mid-flight kill, after assignment so the
            // victim usually has a fresh job in flight.
            sup.kill(sup.workers()[pending_kill]);
            kill_reason[pending_kill] = "injected worker kill";
            pending_kill = kNone;
        }
        for (std::size_t wi : sup.poll(50)) {
            WorkerProc &w = sup.workers()[wi];
            if (!w.live)
                continue;
            try {
                Frame frame;
                if (readFrame(w.fromWorker, frame))
                    handleFrame(wi, frame);
                // false: clean EOF — the exit is reaped below.
            } catch (const ServiceError &) {
                sup.kill(w);
            } catch (const snapshot::SnapshotError &) {
                sup.kill(w);
            }
        }
        for (std::size_t wi : sup.reapDead())
            handleDeath(wi);
        watchdogs();
    }

    // Campaign done: ask live workers to exit, reap briefly, and let
    // ~Supervisor SIGKILL any straggler.
    for (WorkerProc &w : sup.workers()) {
        if (!w.live)
            continue;
        w.shuttingDown = true;
        try {
            writeFrame(w.toWorker, MsgType::Shutdown, {});
        } catch (const ServiceError &) {
        }
    }
    const std::uint64_t drain_deadline = monotonicMillis() + 2000;
    for (;;) {
        sup.reapDead();
        const bool all_dead = std::none_of(
            sup.workers().begin(), sup.workers().end(),
            [](const WorkerProc &w) { return w.live; });
        if (all_dead || monotonicMillis() > drain_deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    report.throughput.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    std::fprintf(stderr,
                 "  [%s] service: %u shard(s), %zu resumed row(s), %u "
                 "worker death(s)\n",
                 tag.c_str(), std::max(1u, run.shards), resumed_rows,
                 worker_deaths);
    if (resilient) {
        std::fprintf(stderr, "  [%s] %s | degraded=%zu recovered=%zu\n",
                     tag.c_str(), report.throughput.summary().c_str(),
                     report.degraded(), report.recovered());
        std::fflush(stderr);
    } else {
        std::fprintf(stderr, "  [%s] %s\n", tag.c_str(),
                     report.throughput.summary().c_str());
    }
    return report;
}

} // namespace

ShardSpec
parseShardSpec(const std::string &spec)
{
    if (spec.empty()) {
        fatal("--shards expects N[,respawn=K,heartbeat=MS], e.g. "
              "--shards=4");
    }
    ShardSpec out;
    std::size_t start = 0;
    bool first = true;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string piece = spec.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (piece.empty())
            fatal("--shards: empty element in \"" + spec + "\"");
        if (first) {
            out.shards = unsigned(
                parseUnsignedValue("--shards", piece));
            if (out.shards == 0)
                fatal("--shards: shard count must be >= 1");
            first = false;
        } else {
            const std::size_t eq = piece.find('=');
            if (eq == std::string::npos) {
                fatal("--shards: expected key=value, got \"" + piece +
                      "\"; accepted: respawn, heartbeat");
            }
            const std::string key = piece.substr(0, eq);
            const std::string value = piece.substr(eq + 1);
            if (key == "respawn") {
                out.respawn = unsigned(
                    parseUnsignedValue("--shards respawn", value));
            } else if (key == "heartbeat") {
                out.heartbeatMs = unsigned(
                    parseUnsignedValue("--shards heartbeat", value));
            } else {
                fatal("--shards: unknown key \"" + key +
                      "\"; accepted: respawn, heartbeat");
            }
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

WorkerSpec
parseWorkerSpec(const std::string &spec)
{
    const std::size_t comma = spec.find(',');
    if (spec.empty() || comma == std::string::npos ||
        spec.find(',', comma + 1) != std::string::npos) {
        fatal("--worker expects R,W pipe fds (internal flag appended "
              "by the shard coordinator)");
    }
    WorkerSpec out;
    out.readFd = int(parseUnsignedValue("--worker read fd",
                                        spec.substr(0, comma)));
    out.writeFd = int(parseUnsignedValue("--worker write fd",
                                         spec.substr(comma + 1)));
    return out;
}

void
initWorkerCommand(int argc, char **argv)
{
    Session &s = session();
    s.command.clear();
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--worker" || arg.rfind("--worker=", 0) == 0)
            continue;
        s.command.push_back(arg);
    }
}

void
enterWorkerMode(const WorkerSpec &spec)
{
    Session &s = session();
    s.worker = true;
    s.spec = spec;
    // The heartbeat thread may write after the coordinator dies;
    // EPIPE (handled) must not become SIGPIPE (fatal).
    std::signal(SIGPIPE, SIG_IGN);
    // The worker re-runs the whole bench main; its copy of the stdout
    // report must never mix into the coordinator's byte-exact output.
    const int null_fd = ::open("/dev/null", O_WRONLY | O_CLOEXEC);
    if (null_fd >= 0) {
        ::dup2(null_fd, 1);
        ::close(null_fd);
    }
}

bool
workerMode()
{
    return session().worker;
}

FleetReport
runShardedJobs(const std::vector<ShardJob> &job_list,
               const RunConfig &run, const std::string &tag,
               const FleetPolicy &policy)
{
    if (session().worker)
        return workerServe(job_list, run, tag);
    return coordinate(job_list, run, tag, policy);
}

void
crashWorkerForTest()
{
    std::fflush(nullptr);
    ::kill(::getpid(), SIGKILL);
    ::_exit(3); // unreachable; keeps [[noreturn]] honest
}

void
setWorkerCommandForTest(const std::vector<std::string> &command)
{
    session().command = command;
}

void
muteHeartbeatsForTest(bool mute)
{
    session().muteHeartbeats.store(mute);
}

void
resetSessionForTest()
{
    Session &s = session();
    s.command.clear();
    s.worker = false;
    s.spec = WorkerSpec{};
    s.campaignOrdinal = 0;
    s.archive.clear();
    s.resumedCampaigns.clear();
    s.resumedRecords.clear();
    s.journal.reset();
    s.journalReady = false;
    s.muteHeartbeats.store(false);
}

} // namespace pfsim::sim::service
