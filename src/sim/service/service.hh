/**
 * @file
 * Crash-isolated multi-process sweep service.
 *
 * With --shards=N a bench process becomes the *coordinator*: it
 * fork/execs N copies of its own binary in --worker mode, schedules
 * the campaign's jobs across them over CRC-framed pipes, and streams
 * results back keyed by submission index, so stdout stays
 * byte-identical to the in-process thread pool (--jobs=N).  Worker
 * processes re-run the bench main; for engine campaigns the
 * coordinator has already completed, they request a replay of the
 * archived results so their bench state converges before they start
 * serving live jobs.
 *
 * Robustness model:
 *  - A worker death (SIGSEGV, OOM kill, injected SIGKILL) re-queues
 *    its in-flight job on a respawned worker without consuming a
 *    FleetPolicy attempt; after the per-job crash budget
 *    (--shards=N,respawn=K) the job is quarantined as poison.
 *  - Workers heartbeat; the coordinator watchdog SIGKILLs a worker
 *    whose heartbeats stall, and one whose in-flight job exceeds
 *    RunConfig::hostTimeoutSeconds past the cooperative deadline —
 *    making the timeout enforceable even for jobs that never reach
 *    their abort poll.
 *  - Every finalized job is appended to a write-ahead journal
 *    (journal.hh); --resume=<journal> replays finished rows and
 *    re-runs only the rest.
 */

#ifndef PFSIM_SIM_SERVICE_SERVICE_HH
#define PFSIM_SIM_SERVICE_SERVICE_HH

#include <string>
#include <vector>

#include "sim/parallel.hh"
#include "sim/runner.hh"

namespace pfsim::sim::service
{

/** Parsed --shards=N[,respawn=K,heartbeat=MS] specification. */
struct ShardSpec
{
    /** Worker processes (>= 1). */
    unsigned shards = 1;

    /** Worker deaths charged to one job before quarantine. */
    unsigned respawn = 3;

    /** Worker heartbeat period in ms; 0 disables the liveness
     *  watchdog (the job timeout watchdog still runs). */
    unsigned heartbeatMs = 250;
};

/**
 * Parse a --shards value.  Malformed specs (zero shards, unknown
 * keys, non-numeric values) abort with a one-line usage message, in
 * the style of the --faults grammar.
 */
ShardSpec parseShardSpec(const std::string &spec);

/** Parsed --worker=R,W pipe fds (internal flag added by spawn). */
struct WorkerSpec
{
    int readFd = -1;
    int writeFd = -1;
};

/** Parse a --worker value; malformed specs abort. */
WorkerSpec parseWorkerSpec(const std::string &spec);

/**
 * Record this process's argv as the command used to exec shard
 * workers.  Called once from bench_common::parseArgs; any existing
 * --worker flag is stripped (each spawn appends its own).
 */
void initWorkerCommand(int argc, char **argv);

/**
 * Enter worker mode: remember the command pipe fds and redirect
 * stdout to /dev/null so the worker's copy of the bench report never
 * pollutes the coordinator's byte-identical output.
 */
void enterWorkerMode(const WorkerSpec &spec);

/** True when this process runs as a shard worker. */
bool workerMode();

/**
 * The sharded engine behind sim::runJobsFleet: serves jobs over the
 * worker pipe in a worker process, or coordinates the worker fleet
 * otherwise.  Call through runJobsFleet, which also handles the
 * in-process (shards == 0) path.
 */
FleetReport runShardedJobs(const std::vector<ShardJob> &job_list,
                           const RunConfig &run, const std::string &tag,
                           const FleetPolicy &policy);

/**
 * Die exactly like a crashing shard: SIGKILL to self.  Used by the
 * fault injector's job:abort=J plan and the service tests; never
 * returns.
 */
[[noreturn]] void crashWorkerForTest();

/** Test hook: set the worker exec command without a real argv. */
void setWorkerCommandForTest(const std::vector<std::string> &command);

/**
 * Test hook: silence (or restore) the worker heartbeat thread, so
 * tests can wedge a live worker and watch the staleness watchdog
 * kill it.
 */
void muteHeartbeatsForTest(bool mute);

/**
 * Test hook: forget all session service state — campaign counter,
 * replay archive, journal handle, worker command — so one test
 * process can run several independent coordinator campaigns.
 */
void resetSessionForTest();

} // namespace pfsim::sim::service

#endif // PFSIM_SIM_SERVICE_SERVICE_HH
