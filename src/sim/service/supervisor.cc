#include "sim/service/supervisor.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/service/protocol.hh"

namespace pfsim::sim::service
{

std::uint64_t
monotonicMillis()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace
{

void
closeQuietly(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

Supervisor::Supervisor(std::vector<std::string> command)
    : command_(std::move(command))
{
    // A worker dying between poll() and our write would otherwise
    // deliver SIGPIPE and kill the whole campaign; with it ignored
    // the write fails with EPIPE, which the scheduler handles as a
    // normal worker death.
    std::signal(SIGPIPE, SIG_IGN);
}

Supervisor::~Supervisor()
{
    for (WorkerProc &worker : workers_) {
        if (worker.live)
            kill(worker);
    }
    for (WorkerProc &worker : workers_) {
        if (!worker.live)
            continue;
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
        worker.live = false;
        closeQuietly(worker.toWorker);
        closeQuietly(worker.fromWorker);
    }
}

std::size_t
Supervisor::spawn()
{
    // Both pipes are created close-on-exec so sibling workers never
    // inherit this pair; the child re-enables its own two ends below.
    int command_pipe[2];
    int result_pipe[2];
    if (::pipe2(command_pipe, O_CLOEXEC) != 0) {
        throw ServiceError(std::string("cannot create worker pipe: ") +
                           std::strerror(errno));
    }
    if (::pipe2(result_pipe, O_CLOEXEC) != 0) {
        const int saved = errno;
        ::close(command_pipe[0]);
        ::close(command_pipe[1]);
        throw ServiceError(std::string("cannot create worker pipe: ") +
                           std::strerror(saved));
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        const int saved = errno;
        ::close(command_pipe[0]);
        ::close(command_pipe[1]);
        ::close(result_pipe[0]);
        ::close(result_pipe[1]);
        throw ServiceError(std::string("cannot fork worker: ") +
                           std::strerror(saved));
    }

    if (pid == 0) {
        // Child: keep the read end of the command pipe and the write
        // end of the result pipe across exec, drop the rest.
        ::close(command_pipe[1]);
        ::close(result_pipe[0]);
        ::fcntl(command_pipe[0], F_SETFD, 0);
        ::fcntl(result_pipe[1], F_SETFD, 0);
        const std::string worker_flag =
            "--worker=" + std::to_string(command_pipe[0]) + "," +
            std::to_string(result_pipe[1]);
        std::vector<char *> argv;
        argv.reserve(command_.size() + 2);
        for (const std::string &arg : command_)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(const_cast<char *>(worker_flag.c_str()));
        argv.push_back(nullptr);
        ::execvp(argv[0], argv.data());
        // exec failed: exit raw (no atexit handlers of the half-forked
        // coordinator image); the coordinator sees a startup death.
        ::_exit(127);
    }

    ::close(command_pipe[0]);
    ::close(result_pipe[1]);

    WorkerProc worker;
    worker.pid = pid;
    worker.toWorker = command_pipe[1];
    worker.fromWorker = result_pipe[0];
    worker.live = true;
    worker.lastBeatMs = monotonicMillis();
    workers_.push_back(worker);
    return workers_.size() - 1;
}

void
Supervisor::kill(WorkerProc &worker)
{
    if (worker.live && worker.pid > 0)
        ::kill(worker.pid, SIGKILL);
}

std::vector<std::size_t>
Supervisor::reapDead()
{
    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        WorkerProc &worker = workers_[i];
        if (!worker.live)
            continue;
        int status = 0;
        const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
        if (reaped != worker.pid)
            continue;
        worker.live = false;
        closeQuietly(worker.toWorker);
        closeQuietly(worker.fromWorker);
        dead.push_back(i);
    }
    return dead;
}

std::vector<std::size_t>
Supervisor::poll(unsigned timeout_ms)
{
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> index_of;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].live || workers_[i].fromWorker < 0)
            continue;
        fds.push_back({workers_[i].fromWorker, POLLIN, 0});
        index_of.push_back(i);
    }
    std::vector<std::size_t> ready;
    if (fds.empty())
        return ready;
    const int n = ::poll(fds.data(), nfds_t(fds.size()),
                         int(timeout_ms));
    if (n <= 0)
        return ready;
    for (std::size_t k = 0; k < fds.size(); ++k) {
        if (fds[k].revents != 0)
            ready.push_back(index_of[k]);
    }
    return ready;
}

} // namespace pfsim::sim::service
