/**
 * @file
 * Worker-process supervision for the sweep service: spawning shard
 * workers (fork/exec of the bench's own binary in --worker mode),
 * polling their pipes, hard-killing wedged ones and reaping corpses.
 *
 * All raw process plumbing in the simulator lives in this subsystem;
 * tools/lint rule 10 rejects fork/exec/kill/pipe calls anywhere else
 * under src/.
 */

#ifndef PFSIM_SIM_SERVICE_SUPERVISOR_HH
#define PFSIM_SIM_SERVICE_SUPERVISOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace pfsim::sim::service
{

/** Monotonic host milliseconds (heartbeat and watchdog arithmetic). */
std::uint64_t monotonicMillis();

/** Coordinator-side state of one shard worker process. */
struct WorkerProc
{
    pid_t pid = -1;

    /** Write end of the coordinator -> worker command pipe. */
    int toWorker = -1;

    /** Read end of the worker -> coordinator result pipe. */
    int fromWorker = -1;

    /** Process believed alive (not yet reaped). */
    bool live = false;

    /** Shutdown sent; a subsequent exit is expected, not a crash. */
    bool shuttingDown = false;

    /** Reached its first CampaignBegin (startup sanity signal). */
    bool sawBegin = false;

    /** Job index in flight on this worker, -1 when idle. */
    std::int64_t inFlight = -1;

    /** monotonicMillis() of the last frame received. */
    std::uint64_t lastBeatMs = 0;

    /** monotonicMillis() when the in-flight job was assigned. */
    std::uint64_t jobStartMs = 0;
};

/**
 * Owns the worker table.  The destructor SIGKILLs and reaps anything
 * still alive, so a coordinator unwinding on an exception never
 * leaks orphan simulator processes.
 */
class Supervisor
{
  public:
    /**
     * @param command the argv to exec per worker; "--worker=R,W" with
     * that worker's inherited pipe fds is appended automatically.
     */
    explicit Supervisor(std::vector<std::string> command);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /**
     * Fork/exec one worker and return its table index.  The pipe ends
     * kept by the coordinator are O_CLOEXEC so workers never inherit
     * each other's pipes; the child clears the flag on its own two
     * fds between fork and exec.  Throws ServiceError when the host
     * refuses pipes or processes.
     */
    std::size_t spawn();

    /** SIGKILL @p worker (idempotent; reap still happens later). */
    void kill(WorkerProc &worker);

    /**
     * Reap exited workers without blocking; each newly dead worker is
     * marked !live, its pipe ends closed, and its index returned.
     */
    std::vector<std::size_t> reapDead();

    /**
     * Wait up to @p timeout_ms for result-pipe activity and return
     * the indices of workers with a readable frame or a hangup.
     */
    std::vector<std::size_t> poll(unsigned timeout_ms);

    std::vector<WorkerProc> &workers() { return workers_; }

  private:
    std::vector<std::string> command_;
    std::vector<WorkerProc> workers_;
};

} // namespace pfsim::sim::service

#endif // PFSIM_SIM_SERVICE_SUPERVISOR_HH
