#include "sim/service/wire.hh"

namespace pfsim::sim::service
{

void
writeCoreStats(snapshot::Sink &sink, const cpu::CoreStats &s)
{
    sink.u64(s.instructions);
    sink.u64(s.cycles);
    sink.u64(s.branches);
    sink.u64(s.mispredicts);
    sink.u64(s.loads);
    sink.u64(s.stores);
    sink.u64(s.robFullStalls);
    sink.u64(s.lqFullStalls);
    sink.u64(s.sqFullStalls);
}

void
readCoreStats(snapshot::Source &src, cpu::CoreStats &s)
{
    s.instructions = src.u64();
    s.cycles = src.u64();
    s.branches = src.u64();
    s.mispredicts = src.u64();
    s.loads = src.u64();
    s.stores = src.u64();
    s.robFullStalls = src.u64();
    s.lqFullStalls = src.u64();
    s.sqFullStalls = src.u64();
}

void
writeCacheStats(snapshot::Sink &sink, const cache::CacheStats &s)
{
    sink.u64(s.loadAccess);
    sink.u64(s.loadHit);
    sink.u64(s.rfoAccess);
    sink.u64(s.rfoHit);
    sink.u64(s.writebackAccess);
    sink.u64(s.writebackHit);
    sink.u64(s.pfIssued);
    sink.u64(s.pfDroppedHit);
    sink.u64(s.pfDroppedMshr);
    sink.u64(s.pfDroppedFull);
    sink.u64(s.pfToLower);
    sink.u64(s.pfFill);
    sink.u64(s.pfUseful);
    sink.u64(s.pfLate);
    sink.u64(s.pfUselessEvict);
    sink.u64(s.writebacks);
    sink.u64(s.missLatencySum);
    sink.u64(s.missLatencyCount);
}

void
readCacheStats(snapshot::Source &src, cache::CacheStats &s)
{
    s.loadAccess = src.u64();
    s.loadHit = src.u64();
    s.rfoAccess = src.u64();
    s.rfoHit = src.u64();
    s.writebackAccess = src.u64();
    s.writebackHit = src.u64();
    s.pfIssued = src.u64();
    s.pfDroppedHit = src.u64();
    s.pfDroppedMshr = src.u64();
    s.pfDroppedFull = src.u64();
    s.pfToLower = src.u64();
    s.pfFill = src.u64();
    s.pfUseful = src.u64();
    s.pfLate = src.u64();
    s.pfUselessEvict = src.u64();
    s.writebacks = src.u64();
    s.missLatencySum = src.u64();
    s.missLatencyCount = src.u64();
}

void
writeDramStats(snapshot::Sink &sink, const dram::DramStats &s)
{
    sink.u64(s.reads);
    sink.u64(s.writes);
    sink.u64(s.rowHits);
    sink.u64(s.rowMisses);
    sink.u64(s.rowConflicts);
    sink.u64(s.busBusyCycles);
    sink.u64(s.readLatencySum);
}

void
readDramStats(snapshot::Source &src, dram::DramStats &s)
{
    s.reads = src.u64();
    s.writes = src.u64();
    s.rowHits = src.u64();
    s.rowMisses = src.u64();
    s.rowConflicts = src.u64();
    s.busBusyCycles = src.u64();
    s.readLatencySum = src.u64();
}

void
writeSppStats(snapshot::Sink &sink, const prefetch::SppStats &s)
{
    sink.u64(s.triggers);
    sink.u64(s.issued);
    sink.u64(s.depthSum);
    sink.u64(s.candidates);
    sink.u64(s.filterDropped);
    sink.u64(s.ghrBootstraps);
}

void
readSppStats(snapshot::Source &src, prefetch::SppStats &s)
{
    s.triggers = src.u64();
    s.issued = src.u64();
    s.depthSum = src.u64();
    s.candidates = src.u64();
    s.filterDropped = src.u64();
    s.ghrBootstraps = src.u64();
}

void
writePpfStats(snapshot::Sink &sink, const ppf::PpfStats &s)
{
    sink.u64(s.candidates);
    sink.u64(s.acceptedL2);
    sink.u64(s.acceptedLlc);
    sink.u64(s.rejected);
    sink.u64(s.trainUseful);
    sink.u64(s.trainFalseNegative);
    sink.u64(s.trainUselessEvict);
}

void
readPpfStats(snapshot::Source &src, ppf::PpfStats &s)
{
    s.candidates = src.u64();
    s.acceptedL2 = src.u64();
    s.acceptedLlc = src.u64();
    s.rejected = src.u64();
    s.trainUseful = src.u64();
    s.trainFalseNegative = src.u64();
    s.trainUselessEvict = src.u64();
}

void
writeFaultStats(snapshot::Sink &sink, const fault::FaultStats &s)
{
    sink.u64(s.traceCorrupted);
    sink.u64(s.traceRepaired);
    sink.u64(s.traceDropped);
    sink.u64(s.weightFlips);
    sink.u64(s.weightFlipsRecovered);
    sink.u64(s.weightRecoveryCyclesSum);
    sink.u64(s.weightRecoveryCyclesMax);
    sink.u64(s.sppFlips);
    sink.u64(s.dramDropped);
    sink.u64(s.dramDelayed);
    sink.u64(s.mshrSqueezeWindows);
}

void
readFaultStats(snapshot::Source &src, fault::FaultStats &s)
{
    s.traceCorrupted = src.u64();
    s.traceRepaired = src.u64();
    s.traceDropped = src.u64();
    s.weightFlips = src.u64();
    s.weightFlipsRecovered = src.u64();
    s.weightRecoveryCyclesSum = src.u64();
    s.weightRecoveryCyclesMax = src.u64();
    s.sppFlips = src.u64();
    s.dramDropped = src.u64();
    s.dramDelayed = src.u64();
    s.mshrSqueezeWindows = src.u64();
}

void
writeRunThroughput(snapshot::Sink &sink, const stats::RunThroughput &t)
{
    sink.u64(t.instructions);
    sink.f64(t.hostSeconds);
    sink.u64(t.checkpointHits);
    sink.u64(t.checkpointMisses);
    sink.u64(t.warmupCyclesSaved);
    sink.u64(t.cycles);
    sink.u64(t.coreTicks);
    sink.u64(t.cacheTicks);
    sink.u64(t.dramTicks);
    sink.u64(t.faultTicks);
}

void
readRunThroughput(snapshot::Source &src, stats::RunThroughput &t)
{
    t.instructions = src.u64();
    t.hostSeconds = src.f64();
    t.checkpointHits = src.u64();
    t.checkpointMisses = src.u64();
    t.warmupCyclesSaved = src.u64();
    t.cycles = src.u64();
    t.coreTicks = src.u64();
    t.cacheTicks = src.u64();
    t.dramTicks = src.u64();
    t.faultTicks = src.u64();
}

void
writeJobReport(snapshot::Sink &sink, const JobReport &report)
{
    sink.str(report.line);
    writeRunThroughput(sink, report.throughput);
}

void
readJobReport(snapshot::Source &src, JobReport &report)
{
    report.line = src.str();
    readRunThroughput(src, report.throughput);
}

void
writeRunResult(snapshot::Sink &sink, const RunResult &r)
{
    sink.str(r.workload);
    sink.str(r.prefetcher);
    sink.f64(r.ipc);
    writeCoreStats(sink, r.core);
    writeCacheStats(sink, r.l1d);
    writeCacheStats(sink, r.l2);
    writeCacheStats(sink, r.llc);
    writeDramStats(sink, r.dram);
    writeSppStats(sink, r.spp);
    writePpfStats(sink, r.ppf);
    writeFaultStats(sink, r.faults);
    writeRunThroughput(sink, r.throughput);
}

void
readRunResult(snapshot::Source &src, RunResult &r)
{
    r.workload = src.str();
    r.prefetcher = src.str();
    r.ipc = src.f64();
    readCoreStats(src, r.core);
    readCacheStats(src, r.l1d);
    readCacheStats(src, r.l2);
    readCacheStats(src, r.llc);
    readDramStats(src, r.dram);
    readSppStats(src, r.spp);
    readPpfStats(src, r.ppf);
    readFaultStats(src, r.faults);
    readRunThroughput(src, r.throughput);
}

void
writeMixResult(snapshot::Sink &sink, const MixResult &r)
{
    sink.str(r.prefetcher);
    sink.u32(std::uint32_t(r.workloads.size()));
    for (const std::string &name : r.workloads)
        sink.str(name);
    sink.u32(std::uint32_t(r.ipc.size()));
    for (const double value : r.ipc)
        sink.f64(value);
    writeCacheStats(sink, r.llc);
    writeDramStats(sink, r.dram);
    writeRunThroughput(sink, r.throughput);
}

void
readMixResult(snapshot::Source &src, MixResult &r)
{
    r.prefetcher = src.str();
    r.workloads.resize(src.u32());
    for (std::string &name : r.workloads)
        name = src.str();
    r.ipc.resize(src.u32());
    for (double &value : r.ipc)
        value = src.f64();
    readCacheStats(src, r.llc);
    readDramStats(src, r.dram);
    readRunThroughput(src, r.throughput);
}

} // namespace pfsim::sim::service
