/**
 * @file
 * Result serialization for the sweep service: writeX/readX pairs that
 * move a finished job's result slot (RunResult, MixResult or a plain
 * double) across the worker pipe and into the campaign journal.
 *
 * The same wire rules as simulator snapshots apply — explicit
 * little-endian, doubles as IEEE-754 bit patterns — so a slot decoded
 * by the coordinator is bit-identical to the one the worker computed,
 * and sharded stdout matches the in-process thread pool byte for
 * byte.  tools/analyze/check_snapshot.py scans this file exactly like
 * snapshot/state_io.cc: every writeX member store must have the
 * matching readX load, so a stats struct gaining a field without wire
 * coverage fails CI.
 */

#ifndef PFSIM_SIM_SERVICE_WIRE_HH
#define PFSIM_SIM_SERVICE_WIRE_HH

#include "sim/multicore.hh"
#include "sim/parallel.hh"
#include "sim/runner.hh"
#include "snapshot/serial.hh"

namespace pfsim::sim::service
{

void writeCoreStats(snapshot::Sink &sink, const cpu::CoreStats &s);
void readCoreStats(snapshot::Source &src, cpu::CoreStats &s);

void writeCacheStats(snapshot::Sink &sink, const cache::CacheStats &s);
void readCacheStats(snapshot::Source &src, cache::CacheStats &s);

void writeDramStats(snapshot::Sink &sink, const dram::DramStats &s);
void readDramStats(snapshot::Source &src, dram::DramStats &s);

void writeSppStats(snapshot::Sink &sink, const prefetch::SppStats &s);
void readSppStats(snapshot::Source &src, prefetch::SppStats &s);

void writePpfStats(snapshot::Sink &sink, const ppf::PpfStats &s);
void readPpfStats(snapshot::Source &src, ppf::PpfStats &s);

void writeFaultStats(snapshot::Sink &sink, const fault::FaultStats &s);
void readFaultStats(snapshot::Source &src, fault::FaultStats &s);

void writeRunThroughput(snapshot::Sink &sink,
                        const stats::RunThroughput &t);
void readRunThroughput(snapshot::Source &src, stats::RunThroughput &t);

void writeJobReport(snapshot::Sink &sink, const JobReport &report);
void readJobReport(snapshot::Source &src, JobReport &report);

void writeRunResult(snapshot::Sink &sink, const RunResult &r);
void readRunResult(snapshot::Source &src, RunResult &r);

void writeMixResult(snapshot::Sink &sink, const MixResult &r);
void readMixResult(snapshot::Source &src, MixResult &r);

} // namespace pfsim::sim::service

#endif // PFSIM_SIM_SERVICE_WIRE_HH
