#include "sim/system.hh"

#include "fault/engine.hh"
#include "prefetch/registry/registry.hh"
#include "util/logging.hh"

namespace pfsim::sim
{

std::unique_ptr<prefetch::Prefetcher>
makePrefetcher(const SystemConfig &config)
{
    // Construction lives in the backend registry; this shim only packs
    // the SystemConfig knobs into the registry's config bundle.
    prefetch::BackendConfigs configs;
    configs.spp = config.sppConfig;
    configs.sppPpf = config.sppPpfConfig;
    configs.pmp = config.pmpConfig;
    configs.pythia = config.pythiaConfig;
    return prefetch::makePrefetcherFromSpec(config.prefetcher, configs);
}

System::System(const SystemConfig &config,
               std::vector<trace::TraceSource *> sources)
    : config_(config)
{
    if (sources.size() != config.cores)
        fatal("system needs exactly one trace source per core");

    dram_ = std::make_unique<dram::Dram>(config.dram);
    llc_ = std::make_unique<cache::Cache>(config.llc, dram_.get());

    for (unsigned i = 0; i < config.cores; ++i) {
        auto l2 = std::make_unique<cache::Cache>(config.l2, llc_.get());
        auto prefetcher = makePrefetcher(config);
        l2->setPrefetcher(prefetcher.get());

        auto l1i = std::make_unique<cache::Cache>(config.l1i, l2.get());
        auto l1d = std::make_unique<cache::Cache>(config.l1d, l2.get());

        auto core = std::make_unique<cpu::Core>(
            config.core, int(i), sources[i], l1i.get(), l1d.get());

        l2s_.push_back(std::move(l2));
        prefetchers_.push_back(std::move(prefetcher));
        l1is_.push_back(std::move(l1i));
        l1ds_.push_back(std::move(l1d));
        cores_.push_back(std::move(core));
    }

    // Wheel-id order: L1D [n,2n), L1I [2n,3n), L2 [3n,4n), LLC 4n.
    for (auto &l1d : l1ds_)
        flatCaches_.push_back(l1d.get());
    for (auto &l1i : l1is_)
        flatCaches_.push_back(l1i.get());
    for (auto &l2 : l2s_)
        flatCaches_.push_back(l2.get());
    flatCaches_.push_back(llc_.get());
}

void
System::cycle()
{
    ++now_;
    for (auto &core : cores_)
        core->tick(now_);
    for (auto &l1d : l1ds_)
        l1d->tick(now_);
    for (auto &l1i : l1is_)
        l1i->tick(now_);
    for (auto &l2 : l2s_)
        l2->tick(now_);
    llc_->tick(now_);
    dram_->tick(now_);

    if (faults_ != nullptr)
        faults_->tick(now_);
    if (audit_.due(now_))
        audit_.enforce(now_);

    ticks_.core += cores_.size();
    ticks_.cache += 3 * cores_.size() + 1;
    ticks_.dram += 1;
    if (faults_ != nullptr)
        ticks_.fault += 1;
    // Ticking outside the wheel invalidates its schedule: components
    // may drain or arm events it never saw.
    wheelValid_ = false;
}

Cycle
System::nextEventCycle() const
{
    const Cycle busy = now_ + 1;
    Cycle event = noEventCycle;

    // Cheapest and most-likely-busy components first: as soon as
    // anything reports work on the next tick, the answer is final and
    // the remaining checks are skipped.
    for (const auto &core : cores_) {
        const Cycle e = core->nextEventCycle(now_);
        if (e == busy)
            return busy;
        if (e < event)
            event = e;
    }
    for (const auto &l1d : l1ds_) {
        const Cycle e = l1d->nextEventCycle(now_);
        if (e == busy)
            return busy;
        if (e < event)
            event = e;
    }
    for (const auto &l1i : l1is_) {
        const Cycle e = l1i->nextEventCycle(now_);
        if (e == busy)
            return busy;
        if (e < event)
            event = e;
    }
    for (const auto &l2 : l2s_) {
        const Cycle e = l2->nextEventCycle(now_);
        if (e == busy)
            return busy;
        if (e < event)
            event = e;
    }
    {
        const Cycle e = llc_->nextEventCycle(now_);
        if (e == busy)
            return busy;
        if (e < event)
            event = e;
    }
    {
        const Cycle e = dram_->nextEventCycle(now_);
        if (e == busy)
            return busy;
        if (e < event)
            event = e;
    }
    if (faults_ != nullptr) {
        const Cycle e = faults_->nextEventCycle(now_);
        if (e == busy)
            return busy;
        if (e < event)
            event = e;
    }
    // The audit must fire on exactly the cycles the naive loop would
    // audit, so an audit boundary is an event like any other.
    if (audit_.enabled()) {
        const Cycle due =
            (now_ / audit_.interval() + 1) * audit_.interval();
        if (due < event)
            event = due;
    }
    return event;
}

void
System::step(Cycle limit)
{
    if (mode_ == FastPathMode::Wheel) {
        wheelStep(limit);
        return;
    }
    if (mode_ == FastPathMode::Skip && now_ + 1 >= probeAt_) {
        Cycle next = nextEventCycle();
        if (next > limit)
            next = limit;
        if (next <= now_ + 1) {
            // Busy: back off exponentially so saturated phases pay
            // for the scan on ever fewer cycles.
            probeAt_ = now_ + 1 + probeBackoff_;
            probeBackoff_ = probeBackoff_ >= 16 ? 16 : probeBackoff_ * 2;
        } else {
            probeBackoff_ = 1;
            // Cycles (now_, next) are provably statistics-only no-ops:
            // batch the cores' cycle/stall accounting, stamp the cache
            // clocks as if they had ticked through, and jump.
            const Cycle synced = next - 1;
            const Cycle delta = synced - now_;
            skippedCycles_ += delta;
            for (auto &core : cores_)
                core->skipIdle(now_, delta);
            for (auto &l1d : l1ds_)
                l1d->syncClock(synced);
            for (auto &l1i : l1is_)
                l1i->syncClock(synced);
            for (auto &l2 : l2s_)
                l2->syncClock(synced);
            llc_->syncClock(synced);
            now_ = synced;
        }
    }
    cycle();
}

void
System::setFastPath(FastPathMode mode)
{
    if (mode == mode_)
        return;
    // Leaving wheel mode: flush the lazy deltas the other paths assume
    // are always current, and detach the wakeup sinks.
    if (mode_ == FastPathMode::Wheel) {
        settle();
        for (unsigned i = 0; i < unsigned(cores_.size()); ++i) {
            cores_[i]->setWaker(nullptr, 0);
            l1ds_[i]->setWaker(nullptr, 0);
            l1is_[i]->setWaker(nullptr, 0);
            l2s_[i]->setWaker(nullptr, 0);
        }
        llc_->setWaker(nullptr, 0);
        dram_->setWaker(nullptr, 0);
    }
    mode_ = mode;
    wheelValid_ = false;
}

void
System::settle()
{
    for (auto &core : cores_)
        core->syncIdle(now_);
    for (auto &l1d : l1ds_)
        l1d->syncClock(now_);
    for (auto &l1i : l1is_)
        l1i->syncClock(now_);
    for (auto &l2 : l2s_)
        l2->syncClock(now_);
    llc_->syncClock(now_);
    dram_->syncClock(now_);
}

void
System::rebuildWheel()
{
    const unsigned n = unsigned(cores_.size());
    if (!wheel_)
        wheel_ = std::make_unique<EventWheel>(4 * n + 4);
    // Components wake the wheel directly when they enqueue work into a
    // neighbor; ids mirror the naive tick order so ascending-id
    // iteration within a cycle reproduces it exactly.
    for (unsigned i = 0; i < n; ++i) {
        cores_[i]->setWaker(wheel_.get(), i);
        l1ds_[i]->setWaker(wheel_.get(), n + i);
        l1is_[i]->setWaker(wheel_.get(), 2 * n + i);
        l2s_[i]->setWaker(wheel_.get(), 3 * n + i);
    }
    llc_->setWaker(wheel_.get(), 4 * n);
    dram_->setWaker(wheel_.get(), 4 * n + 1);

    wheel_->reset(now_);
    for (unsigned i = 0; i < n; ++i) {
        wheel_->schedule(i, cores_[i]->nextEventCycle(now_));
        wheel_->schedule(n + i, l1ds_[i]->nextEventCycle(now_));
        wheel_->schedule(2 * n + i, l1is_[i]->nextEventCycle(now_));
        wheel_->schedule(3 * n + i, l2s_[i]->nextEventCycle(now_));
    }
    wheel_->schedule(4 * n, llc_->nextEventCycle(now_));
    wheel_->schedule(4 * n + 1, dram_->nextEventCycle(now_));
    if (faults_ != nullptr)
        wheel_->schedule(4 * n + 2, faults_->nextEventCycle(now_));
    if (audit_.enabled()) {
        wheel_->schedule(
            4 * n + 3, (now_ / audit_.interval() + 1) * audit_.interval());
    }
    wheelValid_ = true;
}

void
System::tickComponent(unsigned id, Cycle at)
{
    const unsigned n = unsigned(cores_.size());
    if (id < n) {
        ++ticks_.core;
        cores_[id]->tick(at);
        wheel_->schedule(id, cores_[id]->nextEventCycle(at));
        return;
    }
    if (id < 4 * n + 1) {
        ++ticks_.cache;
        cache::Cache *c = flatCaches_[id - n];
        c->tick(at);
        wheel_->schedule(id, c->nextEventCycle(at));
        return;
    }
    if (id == 4 * n + 1) {
        ++ticks_.dram;
        dram_->tick(at);
        wheel_->schedule(id, dram_->nextEventCycle(at));
        return;
    }
    if (id == 4 * n + 2) {
        if (faults_ != nullptr) {
            ++ticks_.fault;
            faults_->tick(at);
            wheel_->schedule(id, faults_->nextEventCycle(at));
        }
        return;
    }
    // Audit boundary: auditors must observe exactly the state the
    // naive loop would show them, so flush lazy deltas first.
    settle();
    audit_.enforce(at);
    wheel_->schedule(id, (at / audit_.interval() + 1) * audit_.interval());
}

void
System::wheelStep(Cycle limit)
{
    if (limit <= now_)
        limit = now_ + 1;
    if (!wheelValid_)
        rebuildWheel();
    const Cycle due = wheel_->openNext(limit);
    if (due == noEventCycle) {
        // Nothing observable up to the limit: jump.  Core statistics
        // for the jumped span are replayed lazily (settle(), or the
        // syncIdle catch-up at the next tick/response).
        skippedCycles_ += limit - now_;
        now_ = limit;
        return;
    }
    skippedCycles_ += due - 1 - now_;
    now_ = due;
    // Stamp every clock as if its component had ticked through cycle
    // due-1: requests enqueued during this cycle's processing must
    // carry the same enqueueCycle the naive loop would stamp, even
    // when the receiving component does not tick this cycle.
    const Cycle synced = due - 1;
    for (cache::Cache *c : flatCaches_)
        c->syncClock(synced);
    dram_->syncClock(synced);
    for (int id = wheel_->takeCurrent(); id >= 0;
         id = wheel_->takeCurrent()) {
        tickComponent(unsigned(id), due);
    }
}

void
System::runUntilRetired(InstrCount target)
{
    runUntilRetired(target, {});
}

void
System::runUntilRetired(InstrCount target,
                        const std::function<bool()> &abort_check)
{
    // Watchdog: a correctly wired system always makes forward progress;
    // a deadlock here is a simulator bug, not a workload property.
    InstrCount last_retired = 0;
    Cycle last_progress = now_;

    // Hoisted off the per-cycle path: the std::function emptiness test
    // runs once, and the full min-over-cores rescan runs only when the
    // cached laggard core reaches the target.
    const bool check_abort = bool(abort_check);
    std::size_t laggard = 0;

    for (;;) {
        InstrCount min_retired = cores_[laggard]->retired();
        if (min_retired >= target) {
            for (std::size_t i = 0; i < cores_.size(); ++i) {
                if (cores_[i]->retired() < min_retired) {
                    min_retired = cores_[i]->retired();
                    laggard = i;
                }
            }
            if (min_retired >= target) {
                // Leave the system in naive-identical shape: callers
                // read statistics and take snapshots after this.
                settle();
                return;
            }
        }

        if (min_retired != last_retired) {
            last_retired = min_retired;
            last_progress = now_;
        } else if (now_ - last_progress > 1000000) {
            panic("system made no retirement progress for 1M cycles");
        }
        if (check_abort && (now_ & 0x1fff) == 0 && abort_check()) {
            throw RunAborted("run aborted by watchdog at cycle " +
                             std::to_string(now_));
        }

        // Never fast-forward past the cycle the watchdog would fire,
        // nor past an abort-poll boundary: both cadences stay exactly
        // as the naive loop observes them.
        Cycle limit = last_progress + 1000001;
        if (check_abort) {
            const Cycle poll = ((now_ >> 13) + 1) << 13;
            if (poll < limit)
                limit = poll;
        }
        step(limit);
    }
}

void
System::resetStats()
{
    // Wheel mode defers idle-cycle accounting; flush it so the reset
    // discards exactly what the naive loop would have accumulated.
    settle();
    for (auto &core : cores_)
        core->resetStats();
    for (auto &l1i : l1is_)
        l1i->resetStats();
    for (auto &l1d : l1ds_)
        l1d->resetStats();
    for (auto &l2 : l2s_)
        l2->resetStats();
    llc_->resetStats();
    dram_->resetStats();
}

} // namespace pfsim::sim
