/**
 * @file
 * System assembly: N cores with private L1I/L1D/L2 hierarchies, one
 * shared LLC and one shared DRAM, ticked in lockstep.
 */

#ifndef PFSIM_SIM_SYSTEM_HH
#define PFSIM_SIM_SYSTEM_HH

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cache/cache.hh"
#include "check/invariant.hh"
#include "cpu/core.hh"
#include "dram/dram.hh"
#include "prefetch/prefetcher.hh"
#include "sim/config.hh"
#include "sim/event_wheel.hh"
#include "trace/source.hh"

namespace pfsim::fault
{
class FaultEngine;
} // namespace pfsim::fault

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::sim
{

/**
 * Thrown when a cooperative abort check cancels a run — the per-job
 * timeout watchdog of a resilient sweep.  The fleet treats it like any
 * other job failure: retry, then degrade.
 */
class RunAborted : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Build the configured L2 prefetcher by name. */
std::unique_ptr<prefetch::Prefetcher>
makePrefetcher(const SystemConfig &config);

/** A complete simulated machine. */
class System
{
  public:
    /**
     * @param config system parameters (config.cores sources expected)
     * @param sources one trace source per core (owned by the caller)
     */
    System(const SystemConfig &config,
           std::vector<trace::TraceSource *> sources);

    /** Advance the whole machine one cycle. */
    void cycle();

    /**
     * Advance the whole machine by one *productive* cycle.  Skip mode
     * first fast-forwards over any provably idle cycles (batching
     * their statistics via Core::skipIdle and re-stamping the cache
     * clocks), then runs one real cycle().  Wheel mode asks the event
     * wheel for the next cycle with observable work and ticks only the
     * components due on it (idle cores catch up lazily; see settle()).
     * The resulting state and statistics are bit-identical to calling
     * cycle() in a loop.  now() never exceeds @p limit, so callers can
     * keep watchdog and abort cadences exact.  With the fast path off
     * this is exactly one cycle().
     */
    void step(Cycle limit);

    /**
     * Earliest cycle after now() at which any component could do
     * observable work (see the per-component nextEventCycle
     * contracts), including the next audit boundary.  Returns
     * noEventCycle when the machine is fully drained.
     */
    Cycle nextEventCycle() const;

    /** Select the step() fast path (default: the event wheel). */
    void setFastPath(FastPathMode mode);
    FastPathMode fastPath() const { return mode_; }

    /**
     * Cycles the fast path jumped over instead of ticking (host-side
     * telemetry; not a simulated statistic).
     */
    std::uint64_t skippedCycles() const { return skippedCycles_; }

    /** Host-side per-component-class tick telemetry: how many ticks
     *  each class actually ran (vs. cycles elapsed), across every
     *  step mode.  Not a simulated statistic. */
    struct TickCounts
    {
        std::uint64_t core = 0;
        std::uint64_t cache = 0;
        std::uint64_t dram = 0;
        std::uint64_t fault = 0;
    };

    const TickCounts &tickCounts() const { return ticks_; }

    /**
     * Flush every lazy bookkeeping delta the wheel mode defers: core
     * idle-cycle statistics (Core::syncIdle) and the cache/DRAM clock
     * stamps.  Must run before statistics are read, reset, or a
     * snapshot is taken so all three fast-path modes observe identical
     * state.  A no-op under Off/Skip, where ticking keeps everything
     * current.
     */
    void settle();

    /** Current cycle. */
    Cycle now() const { return now_; }

    /** Run until every core has retired @p target instructions. */
    void runUntilRetired(InstrCount target);

    /**
     * As above, but poll @p abort_check every few thousand cycles and
     * throw RunAborted when it returns true (cooperative watchdog; an
     * empty function disables the check).
     */
    void runUntilRetired(InstrCount target,
                         const std::function<bool()> &abort_check);

    /** Reset every statistics block (end of warmup). */
    void resetStats();

    unsigned coreCount() const { return unsigned(cores_.size()); }
    cpu::Core &core(unsigned i) { return *cores_[i]; }
    cache::Cache &l1i(unsigned i) { return *l1is_[i]; }
    cache::Cache &l1d(unsigned i) { return *l1ds_[i]; }
    cache::Cache &l2(unsigned i) { return *l2s_[i]; }
    cache::Cache &llc() { return *llc_; }
    dram::Dram &dram() { return *dram_; }
    prefetch::Prefetcher &prefetcher(unsigned i)
    {
        return *prefetchers_[i];
    }

    const SystemConfig &config() const { return config_; }

    /**
     * The invariant audit registry: populate it (usually via
     * check::attachSystemAuditors) and set an interval to have the
     * sim loop re-validate structural invariants every N cycles.
     */
    check::AuditorRegistry &audit() { return audit_; }
    const check::AuditorRegistry &audit() const { return audit_; }

    /**
     * Attach (or detach, with nullptr) a fault engine, ticked once per
     * cycle after the components and before the audit.  Non-owning;
     * null for every fault-free run.  Invalidates the wheel schedule:
     * the engine is a scheduled component.
     */
    void setFaultEngine(fault::FaultEngine *engine)
    {
        faults_ = engine;
        wheelValid_ = false;
    }

    /**
     * Snapshot support (definitions in snapshot/state_io.cc): the
     * clock and every component, with a shared pointer registry for
     * in-flight Request::ret links.  The audit registry and
     * fault-engine attachment are wiring, not state, and are not
     * serialized; the fast-path mode, probe schedule and wheel are
     * host-side scheduling state that must not leak from the saving
     * run into the restoring one — the wheel is rebuilt from
     * nextEventCycle() ground truth after a restore.
     */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    SystemConfig config_;
    std::unique_ptr<dram::Dram> dram_;
    std::unique_ptr<cache::Cache> llc_;
    std::vector<std::unique_ptr<cache::Cache>> l2s_;
    std::vector<std::unique_ptr<cache::Cache>> l1is_;
    std::vector<std::unique_ptr<cache::Cache>> l1ds_;
    std::vector<std::unique_ptr<prefetch::Prefetcher>> prefetchers_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;

    /** Flat, wheel-id-ordered cache pointers (L1D, L1I, L2, LLC) so the
     *  per-due-cycle clock stamp and tickComponent() dispatch are a
     *  single indexed load instead of per-level unique_ptr walks.
     *  Wiring, filled by the constructor; never serialized. */
    std::vector<cache::Cache *> flatCaches_;

    /** One step() iteration of wheel mode; factored out of step(). */
    void wheelStep(Cycle limit);

    /** Tick wheel component @p id at cycle @p at and requeue it from
     *  its own nextEventCycle() report. */
    void tickComponent(unsigned id, Cycle at);

    /** (Re)build the wheel schedule from scratch: every component
     *  enqueued at its nextEventCycle(now_), plus the next audit
     *  boundary.  Pure function of simulated state. */
    void rebuildWheel();

    check::AuditorRegistry audit_;
    fault::FaultEngine *faults_ = nullptr;
    Cycle now_ = 0;
    FastPathMode mode_ = FastPathMode::Wheel;

    /**
     * Adaptive probe back-off for skip-mode step(): consecutive busy
     * probes double the gap to the next nextEventCycle() scan
     * (capped), so a saturated machine pays the scan on a vanishing
     * fraction of cycles.  Skipping fewer cycles than possible is
     * always safe — an unprobed cycle simply runs naively — so this
     * only trades a little skip coverage for bounded overhead.  The
     * schedule is a pure function of simulated state, keeping runs
     * deterministic.
     */
    Cycle probeAt_ = 0;
    Cycle probeBackoff_ = 1;
    std::uint64_t skippedCycles_ = 0;

    /**
     * Wheel-mode scheduler (host-side; never serialized).  Component
     * id layout mirrors the naive tick order so ascending-id iteration
     * within a cycle reproduces it exactly: cores [0,n), L1D [n,2n),
     * L1I [2n,3n), L2 [3n,4n), LLC 4n, DRAM 4n+1, fault engine 4n+2,
     * audit boundary 4n+3.
     */
    std::unique_ptr<EventWheel> wheel_;
    bool wheelValid_ = false;
    TickCounts ticks_;
};

} // namespace pfsim::sim

#endif // PFSIM_SIM_SYSTEM_HH
