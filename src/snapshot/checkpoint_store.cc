#include "snapshot/checkpoint_store.hh"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include <unistd.h>

#include "util/logging.hh"

namespace pfsim::snapshot
{

namespace
{

/** Reduce a workload name to filesystem-safe characters. */
std::string
sanitizeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (const char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
            c == '-' || c == '_' || c == '.';
        out.push_back(safe ? c : '_');
    }
    return out.empty() ? std::string("unnamed") : out;
}

std::string
hexDigest(std::uint64_t digest)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buffer;
}

/** RAII stdio handle so every exit path closes the file. */
struct File
{
    std::FILE *handle;

    File(const std::string &path, const char *mode)
        : handle(std::fopen(path.c_str(), mode))
    {
    }

    ~File()
    {
        if (handle != nullptr)
            std::fclose(handle);
    }

    File(const File &) = delete;
    File &operator=(const File &) = delete;
};

} // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir))
{
}

std::string
CheckpointStore::pathFor(const std::string &workload_key,
                         std::uint64_t digest) const
{
    return dir_ + "/" + sanitizeKey(workload_key) + "-" +
        hexDigest(digest) + ".ckpt";
}

bool
CheckpointStore::tryLoad(const std::string &workload_key,
                         std::uint64_t digest,
                         std::vector<std::uint8_t> &bytes) const
{
    const std::string path = pathFor(workload_key, digest);
    File file(path, "rb");
    if (file.handle == nullptr)
        return false;

    bytes.clear();
    std::uint8_t chunk[65536];
    std::size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file.handle)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + got);
    if (std::ferror(file.handle) != 0) {
        warn("checkpoint " + path + " could not be read");
        return false;
    }
    return true;
}

void
CheckpointStore::publish(const std::string &workload_key,
                         std::uint64_t digest,
                         const std::vector<std::uint8_t> &bytes) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("checkpoint directory " + dir_ +
             " could not be created: " + ec.message());
        return;
    }

    const std::string path = pathFor(workload_key, digest);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        File file(tmp, "wb");
        if (file.handle == nullptr) {
            warn("checkpoint " + tmp + " could not be opened");
            return;
        }
        const std::size_t wrote =
            std::fwrite(bytes.data(), 1, bytes.size(), file.handle);
        if (wrote != bytes.size()) {
            warn("checkpoint " + tmp + " could not be written");
            std::filesystem::remove(tmp, ec);
            return;
        }
    }

    // Atomic last-writer-wins publication; racing writers of the same
    // key are writing identical content, so any winner is correct.
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("checkpoint " + path +
             " could not be published: " + ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace pfsim::snapshot
