/**
 * @file
 * Content-addressed checkpoint store for warmup reuse.
 *
 * Checkpoints live as flat files under one directory, keyed by the
 * workload name plus the warmup-relevant config digest:
 *
 *     <dir>/<workload>-<digest hex>.ckpt
 *
 * The digest in the key makes the store content-addressed: any config
 * change that could alter warmup state lands on a different file, so
 * stale checkpoints are never *matched*, only orphaned.  Publication
 * is single-writer-atomic — the image is written to a process-unique
 * temporary name and renamed into place — so concurrent sweep jobs
 * racing to publish the same key simply last-write an identical file,
 * and no reader ever observes a half-written checkpoint.
 *
 * Reads are deliberately permissive: tryLoad only answers "are there
 * bytes under this key"; validation (magic/version/digest/CRC) happens
 * in restoreSimulation, whose SnapshotError the caller turns into a
 * warn-and-resimulate fallback.
 */

#ifndef PFSIM_SNAPSHOT_CHECKPOINT_STORE_HH
#define PFSIM_SNAPSHOT_CHECKPOINT_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pfsim::snapshot
{

/** A directory of keyed checkpoint images. */
class CheckpointStore
{
  public:
    explicit CheckpointStore(std::string dir);

    /** The file path a (workload, digest) key maps to. */
    std::string pathFor(const std::string &workload_key,
                        std::uint64_t digest) const;

    /**
     * Load the raw image stored under the key into @p bytes.
     * @return false when no readable file exists (a checkpoint miss);
     * corrupt content is returned as-is for restoreSimulation to
     * reject.
     */
    bool tryLoad(const std::string &workload_key, std::uint64_t digest,
                 std::vector<std::uint8_t> &bytes) const;

    /**
     * Atomically publish @p bytes under the key (write to a temporary
     * file, then rename).  Failures are reported with warn() and
     * swallowed: a run that cannot publish still completes.
     */
    void publish(const std::string &workload_key, std::uint64_t digest,
                 const std::vector<std::uint8_t> &bytes) const;

    const std::string &directory() const { return dir_; }

  private:
    std::string dir_;
};

} // namespace pfsim::snapshot

#endif // PFSIM_SNAPSHOT_CHECKPOINT_STORE_HH
