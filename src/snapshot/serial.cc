#include "snapshot/serial.hh"

namespace pfsim::snapshot
{

namespace
{

/** Build the reflected CRC-32 table once (IEEE 802.3 polynomial). */
struct Crc32Table
{
    std::uint32_t entries[256];

    Crc32Table()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const Crc32Table table;
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table.entries[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::uint32_t
Sink::pointerId(const void *p) const
{
    if (p == nullptr)
        return 0;
    for (std::size_t i = 0; i < pointers_.size(); ++i) {
        if (pointers_[i] == p)
            return std::uint32_t(i + 1);
    }
    throw SnapshotError("unregistered component pointer in snapshot");
}

void *
Source::pointerAt(std::uint32_t id) const
{
    if (id == 0)
        return nullptr;
    if (id > pointers_.size())
        throw SnapshotError("snapshot pointer id out of range");
    return pointers_[id - 1];
}

} // namespace pfsim::snapshot
