/**
 * @file
 * Binary serialization primitives for simulator snapshots.
 *
 * Sink and Source implement an explicit little-endian wire format so a
 * checkpoint written on any host restores bit-identically on any other.
 * Every multi-byte value is written byte-by-byte; floating-point values
 * travel as their IEEE-754 bit patterns.  A shared pointer registry
 * translates the component cross-pointers inside in-flight requests
 * (Request::ret) into stable small integers: both sides register the
 * same objects in the same order, so id N names the same component on
 * save and on restore.
 *
 * All framing/validation failures throw SnapshotError; the checkpoint
 * store turns that into a warn-and-resimulate fallback, while a direct
 * restore (mismatched build or config) turns it into a one-line fatal.
 */

#ifndef PFSIM_SNAPSHOT_SERIAL_HH
#define PFSIM_SNAPSHOT_SERIAL_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/ring_buffer.hh"

namespace pfsim::snapshot
{

/** Thrown on any malformed, truncated or mismatched snapshot. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** CRC-32 (IEEE 802.3 polynomial, reflected) over @p size bytes. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** A growable little-endian byte buffer being written. */
class Sink
{
  public:
    void
    u8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(std::uint8_t(v & 0xff));
        u8(std::uint8_t(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(std::uint16_t(v & 0xffff));
        u16(std::uint16_t(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(std::uint32_t(v & 0xffffffffu));
        u32(std::uint32_t(v >> 32));
    }

    void i8(std::int8_t v) { u8(std::uint8_t(v)); }
    void i16(std::int16_t v) { u16(std::uint16_t(v)); }
    void i32(std::int32_t v) { u32(std::uint32_t(v)); }
    void i64(std::int64_t v) { u64(std::uint64_t(v)); }

    void b(bool v) { u8(v ? 1 : 0); }

    /** IEEE-754 bit pattern, so restores are bit-exact. */
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u32(std::uint32_t(s.size()));
        for (const char c : s)
            u8(std::uint8_t(c));
    }

    /** Append @p size raw bytes verbatim. */
    void
    raw(const std::uint8_t *data, std::size_t size)
    {
        bytes_.insert(bytes_.end(), data, data + size);
    }

    /**
     * Register a component pointer; the registration order defines the
     * pointer ids, so save and restore must register identically.
     */
    void registerPointer(const void *p) { pointers_.push_back(p); }

    /**
     * The id of a registered pointer: 0 for nullptr, 1 + registration
     * index otherwise.  An unregistered pointer is a wiring bug and
     * throws.
     */
    std::uint32_t pointerId(const void *p) const;

    const std::vector<std::uint8_t> &buffer() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::vector<const void *> pointers_;
};

/** A bounds-checked little-endian byte buffer being read. */
class Source
{
  public:
    Source(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t
    u8()
    {
        require(1);
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        const std::uint16_t hi = u8();
        return std::uint16_t(lo | (hi << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        const std::uint32_t hi = u16();
        return lo | (hi << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        const std::uint64_t hi = u32();
        return lo | (hi << 32);
    }

    std::int8_t i8() { return std::int8_t(u8()); }
    std::int16_t i16() { return std::int16_t(u16()); }
    std::int32_t i32() { return std::int32_t(u32()); }
    std::int64_t i64() { return std::int64_t(u64()); }

    bool b() { return u8() != 0; }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        require(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    /** Read @p size raw bytes into @p out. */
    void
    raw(std::uint8_t *out, std::size_t size)
    {
        require(size);
        for (std::size_t i = 0; i < size; ++i)
            out[i] = data_[pos_ + i];
        pos_ += size;
    }

    /** Register a pointer; must mirror the Sink registration order. */
    void registerPointer(void *p) { pointers_.push_back(p); }

    /** Resolve a pointer id (0 is nullptr); out of range throws. */
    void *pointerAt(std::uint32_t id) const;

    /** Pointer to the next unread byte (section framing). */
    const std::uint8_t *cursor() const { return data_ + pos_; }

    /** Skip @p size bytes (section framing). */
    void
    advance(std::size_t size)
    {
        require(size);
        pos_ += size;
    }

    std::size_t offset() const { return pos_; }
    std::size_t size() const { return size_; }
    bool exhausted() const { return pos_ == size_; }

  private:
    void
    require(std::size_t n) const
    {
        if (size_ - pos_ < n)
            throw SnapshotError("truncated snapshot data");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::vector<void *> pointers_;
};

/** Write a ring buffer: element count, then each element via @p fn. */
template <typename T, typename WriteFn>
void
writeRing(Sink &sink, const util::RingBuffer<T> &ring, WriteFn fn)
{
    sink.u32(std::uint32_t(ring.size()));
    for (std::size_t i = 0; i < ring.size(); ++i)
        fn(sink, ring[i]);
}

/**
 * Read a ring buffer written by writeRing().  The buffer is cleared
 * and refilled front-to-back; with a same-config restore the element
 * count never exceeds the configured capacity, so no growth happens.
 */
template <typename T, typename ReadFn>
void
readRing(Source &src, util::RingBuffer<T> &ring, ReadFn fn)
{
    ring.clear();
    const std::uint32_t n = src.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        T value{};
        fn(src, value);
        ring.push_back(value);
    }
}

/** Write a Signed/UnsignedSatCounter through its value() accessor. */
template <typename Counter>
void
writeCounter(Sink &sink, const Counter &counter)
{
    sink.i64(std::int64_t(counter.value()));
}

/** Restore a saturating counter via its clamping set(). */
template <typename Counter>
void
readCounter(Source &src, Counter &counter)
{
    counter.set(static_cast<decltype(counter.value())>(src.i64()));
}

/** Write the full xoshiro256** state of @p rng. */
inline void
writeRng(Sink &sink, const Rng &rng)
{
    for (const std::uint64_t word : rng.state())
        sink.u64(word);
}

/** Restore an Rng to a previously written state. */
inline void
readRng(Source &src, Rng &rng)
{
    std::array<std::uint64_t, 4> state;
    for (std::uint64_t &word : state)
        word = src.u64();
    rng.setState(state);
}

} // namespace pfsim::snapshot

#endif // PFSIM_SNAPSHOT_SERIAL_HH
