#include "snapshot/snapshot.hh"

#include <string>

namespace pfsim::snapshot
{

namespace
{

/** FNV-1a 64-bit over a byte buffer. */
std::uint64_t
fnv1a64(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const std::uint8_t byte : bytes) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Append one named, CRC-protected section to the snapshot image. */
void
appendSection(Sink &out, const std::string &name, const Sink &payload)
{
    const std::vector<std::uint8_t> &bytes = payload.buffer();
    out.str(name);
    out.u64(bytes.size());
    out.u32(crc32(bytes.data(), bytes.size()));
    out.raw(bytes.data(), bytes.size());
}

/** True when the view carries any fault state worth a section. */
bool
hasFaultSection(const SimulationView &view)
{
    return view.corrupting != nullptr || view.sanitizing != nullptr ||
        (view.faults != nullptr && !view.faults->empty());
}

/** The expected section names for @p view, in file order. */
std::vector<std::string>
sectionNames(const SimulationView &view)
{
    std::vector<std::string> names = {"system"};
    for (std::size_t i = 0; i < view.traces.size(); ++i)
        names.push_back("trace" + std::to_string(i));
    if (hasFaultSection(view))
        names.push_back("faults");
    return names;
}

void
serializeFaults(Sink &sink, const SimulationView &view)
{
    sink.b(view.corrupting != nullptr);
    if (view.corrupting != nullptr)
        view.corrupting->serialize(sink);
    sink.b(view.sanitizing != nullptr);
    if (view.sanitizing != nullptr)
        view.sanitizing->serialize(sink);
    sink.b(view.faults != nullptr);
    if (view.faults != nullptr)
        view.faults->serialize(sink);
}

void
deserializeFaults(Source &src, const SimulationView &view)
{
    if (src.b() != (view.corrupting != nullptr))
        throw SnapshotError(
            "trace-corruption state present/absent mismatch");
    if (view.corrupting != nullptr)
        view.corrupting->deserialize(src);
    if (src.b() != (view.sanitizing != nullptr))
        throw SnapshotError(
            "trace-sanitizer state present/absent mismatch");
    if (view.sanitizing != nullptr)
        view.sanitizing->deserialize(src);
    if (src.b() != (view.faults != nullptr))
        throw SnapshotError("fault-engine state present/absent mismatch");
    if (view.faults != nullptr)
        view.faults->deserialize(src);
}

void
serializeSection(Sink &sink, const SimulationView &view,
                 const std::string &name)
{
    if (name == "system") {
        view.system->serialize(sink);
    } else if (name == "faults") {
        serializeFaults(sink, view);
    } else {
        const std::size_t index =
            std::size_t(std::stoul(name.substr(5)));
        view.traces[index]->serialize(sink);
    }
}

void
deserializeSection(Source &src, const SimulationView &view,
                   const std::string &name)
{
    if (name == "system") {
        view.system->deserialize(src);
    } else if (name == "faults") {
        deserializeFaults(src, view);
    } else {
        const std::size_t index =
            std::size_t(std::stoul(name.substr(5)));
        view.traces[index]->deserialize(src);
    }
}

} // namespace

std::vector<std::uint8_t>
saveSimulation(const SimulationView &view, std::uint64_t config_digest)
{
    const std::vector<std::string> names = sectionNames(view);

    Sink out;
    out.u32(snapshotMagic);
    out.u32(snapshotVersion);
    out.u64(config_digest);
    out.u32(std::uint32_t(names.size()));
    for (const std::string &name : names) {
        Sink payload;
        serializeSection(payload, view, name);
        appendSection(out, name, payload);
    }
    return out.buffer();
}

void
restoreSimulation(const std::vector<std::uint8_t> &bytes,
                  const SimulationView &view,
                  std::uint64_t expected_digest)
{
    Source src(bytes.data(), bytes.size());

    if (src.u32() != snapshotMagic)
        throw SnapshotError("bad magic: not a pfsim checkpoint");
    const std::uint32_t version = src.u32();
    if (version != snapshotVersion)
        throw SnapshotError(
            "format version " + std::to_string(version) +
            ", this build reads version " +
            std::to_string(snapshotVersion));
    const std::uint64_t digest = src.u64();
    if (digest != expected_digest)
        throw SnapshotError(
            "config digest mismatch: checkpoint was taken under a "
            "different warmup-relevant configuration");

    const std::vector<std::string> expected = sectionNames(view);
    const std::uint32_t count = src.u32();
    if (count != expected.size())
        throw SnapshotError(
            "section count " + std::to_string(count) + ", expected " +
            std::to_string(expected.size()));

    // Phase 1: verify the entire image — names, framing, CRCs — before
    // touching any live state, so a corrupt checkpoint rejects without
    // leaving the simulator half-restored (the fallback path re-runs
    // the warmup on this same System).
    struct SectionSlice
    {
        const std::string *name;
        const std::uint8_t *payload;
        std::size_t length;
    };
    std::vector<SectionSlice> slices;
    slices.reserve(expected.size());
    for (const std::string &name : expected) {
        const std::string found = src.str();
        if (found != name)
            throw SnapshotError("section '" + found +
                                "' where '" + name + "' was expected");
        const std::uint64_t length = src.u64();
        const std::uint32_t stored_crc = src.u32();
        if (length > src.size() - src.offset())
            throw SnapshotError("section '" + name +
                                "' is truncated");
        const std::uint8_t *payload = src.cursor();
        if (crc32(payload, std::size_t(length)) != stored_crc)
            throw SnapshotError("section '" + name +
                                "' failed its CRC check");
        src.advance(std::size_t(length));
        slices.push_back({&name, payload, std::size_t(length)});
    }
    if (!src.exhausted())
        throw SnapshotError("trailing bytes after the last section");

    // Phase 2: deserialize.  Every slice already passed its CRC, so a
    // failure here means a semantically inconsistent image produced by
    // a buggy writer — still a SnapshotError, but the view's state is
    // undefined afterwards.
    for (const SectionSlice &slice : slices) {
        Source section(slice.payload, slice.length);
        deserializeSection(section, view, *slice.name);
        if (!section.exhausted())
            throw SnapshotError("section '" + *slice.name +
                                "' has trailing bytes");
    }
}

namespace
{

void
digestCacheConfig(Sink &sink, const cache::CacheConfig &config)
{
    sink.str(config.name);
    sink.u32(config.sets);
    sink.u32(config.ways);
    sink.u32(config.latency);
    sink.u32(config.mshrs);
    sink.u32(config.rqSize);
    sink.u32(config.wqSize);
    sink.u32(config.pqSize);
    sink.u32(config.maxTagsPerCycle);
    sink.b(config.writeAllocateDirty);
    sink.str(config.replacement);
}

void
digestCoreConfig(Sink &sink, const cpu::CoreConfig &config)
{
    sink.u32(config.fetchWidth);
    sink.u32(config.retireWidth);
    sink.u32(config.robSize);
    sink.u32(config.lqSize);
    sink.u32(config.sqSize);
    sink.u32(config.loadIssueWidth);
    sink.u32(config.mispredictPenalty);
    sink.u32(config.aluLatency);
    sink.str(config.branchPredictor);
}

void
digestDramConfig(Sink &sink, const dram::DramConfig &config)
{
    sink.str(config.name);
    sink.u32(config.channels);
    sink.u32(config.banks);
    sink.u64(config.rowBytes);
    sink.u64(config.rowHitLatency);
    sink.u64(config.rowMissLatency);
    sink.u64(config.rowConflictLatency);
    sink.u64(config.transferCycles);
    sink.u32(config.rqSize);
    sink.u32(config.wqSize);
    sink.u32(config.writeDrainHigh);
    sink.u32(config.writeDrainLow);
}

void
digestSppConfig(Sink &sink, const prefetch::SppConfig &config)
{
    sink.u32(config.stSets);
    sink.u32(config.stWays);
    sink.u32(config.ptEntries);
    sink.u32(config.ghrEntries);
    sink.u32(config.signatureBits);
    sink.i32(config.prefetchThreshold);
    sink.i32(config.fillThreshold);
    sink.u32(config.maxDepth);
    sink.u32(config.maxPrefetchesPerTrigger);
    sink.u32(config.forcedDepth);
    sink.i32(config.filteredFloor);
}

void
digestPpfConfig(Sink &sink, const ppf::PpfConfig &config)
{
    sink.i32(config.tauHi);
    sink.i32(config.tauLo);
    sink.i32(config.thetaP);
    sink.i32(config.thetaN);
    sink.u32(config.prefetchTableEntries);
    sink.u32(config.rejectTableEntries);
    sink.u32(config.featureMask);
    sink.u32(config.weightClampBits);
}

void
digestPmpConfig(Sink &sink, const prefetch::PmpConfig &config)
{
    sink.u32(config.ftEntries);
    sink.u32(config.atEntries);
    sink.u32(config.ptEntries);
    sink.u32(config.counterBits);
    sink.u32(config.hiConfidence);
    sink.u32(config.degree);
}

void
digestPythiaConfig(Sink &sink, const prefetch::PythiaConfig &config)
{
    sink.u32(config.qTableEntriesLog2);
    sink.u32(std::uint32_t(config.actions.size()));
    for (const int action : config.actions)
        sink.i32(action);
    sink.u32(config.epsilonInverse);
    sink.i32(config.alphaDen);
    sink.i32(config.gammaNum);
    sink.i32(config.gammaDen);
    sink.i32(config.rewardAccurate);
    sink.i32(config.rewardInaccurate);
    sink.i32(config.rewardNone);
    sink.u32(config.eqSize);
    sink.u64(config.seed);
}

void
digestStreamConfig(Sink &sink, const trace::StreamConfig &config)
{
    sink.u32(std::uint32_t(config.kind));
    sink.f64(config.weight);
    sink.u32(std::uint32_t(config.deltas.size()));
    for (const int delta : config.deltas)
        sink.i32(delta);
    sink.f64(config.breakProb);
    sink.b(config.pageSelective);
    sink.i32(config.stride);
    sink.i32(config.jitter);
    sink.u32(config.burstLen);
    sink.u64(config.footprintBlocks);
    sink.f64(config.coldProb);
}

void
digestSyntheticConfig(Sink &sink, const trace::SyntheticConfig &config)
{
    sink.str(config.name);
    sink.u64(config.seed);
    sink.u32(std::uint32_t(config.phases.size()));
    for (const trace::PhaseConfig &phase : config.phases) {
        sink.u32(std::uint32_t(phase.streams.size()));
        for (const trace::StreamConfig &stream : phase.streams)
            digestStreamConfig(sink, stream);
        sink.f64(phase.memRatio);
        sink.f64(phase.storeProb);
        sink.f64(phase.mispredictRate);
        sink.u64(phase.length);
    }
}

} // namespace

std::uint64_t
warmupDigest(const sim::SystemConfig &config,
             InstrCount warmup_instructions,
             const std::vector<trace::SyntheticConfig> &workloads,
             const fault::FaultPlan *plan, std::uint64_t fault_seed)
{
    Sink sink;
    sink.u32(snapshotVersion);
    sink.u32(config.cores);
    digestCoreConfig(sink, config.core);
    digestCacheConfig(sink, config.l1i);
    digestCacheConfig(sink, config.l1d);
    digestCacheConfig(sink, config.l2);
    digestCacheConfig(sink, config.llc);
    digestDramConfig(sink, config.dram);
    sink.str(config.prefetcher);
    digestSppConfig(sink, config.sppConfig);
    digestSppConfig(sink, config.sppPpfConfig.spp);
    digestPpfConfig(sink, config.sppPpfConfig.ppf);
    digestPmpConfig(sink, config.pmpConfig);
    digestPythiaConfig(sink, config.pythiaConfig);
    sink.u64(warmup_instructions);
    sink.u32(std::uint32_t(workloads.size()));
    for (const trace::SyntheticConfig &workload : workloads)
        digestSyntheticConfig(sink, workload);
    if (plan != nullptr && plan->any()) {
        sink.str(plan->summary());
        sink.u64(fault_seed);
    }
    return fnv1a64(sink.buffer());
}

} // namespace pfsim::snapshot
