/**
 * @file
 * Whole-simulator snapshots: versioned, CRC-checked binary images of a
 * System plus its trace sources and armed fault injectors.
 *
 * Snapshot layout (all integers little-endian, see serial.hh):
 *
 *   header   magic u32, format version u32, config digest u64,
 *            section count u32
 *   section  name str, payload length u64, payload crc32 u32, payload
 *
 * Sections appear in a fixed order: "system" (the full machine state,
 * with one shared pointer registry for in-flight Request::ret links),
 * one "trace<i>" per core's synthetic trace cursor, and — only when a
 * fault campaign is armed — "faults" (decorator and injector streams).
 *
 * The config digest is a 64-bit FNV-1a hash over every warmup-relevant
 * parameter (see warmupDigest); restoring a snapshot whose digest does
 * not match the live configuration throws SnapshotError, as does any
 * magic/version/CRC/framing mismatch.  Callers decide the policy:
 * sim::runSingleCore falls back to re-simulating the warmup with a
 * warning, while a direct restore treats it as fatal.
 */

#ifndef PFSIM_SNAPSHOT_SNAPSHOT_HH
#define PFSIM_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <vector>

#include "fault/engine.hh"
#include "fault/injectors.hh"
#include "sim/config.hh"
#include "sim/system.hh"
#include "snapshot/serial.hh"
#include "trace/synthetic.hh"

namespace pfsim::snapshot
{

/** Snapshot file magic: "PFS1" read as a little-endian u32. */
inline constexpr std::uint32_t snapshotMagic = 0x31534650u;

/** Bump on any wire-format change; mismatches fail closed.
 *  v2: System no longer serializes host-side fast-path scheduling
 *  state (probe schedule, skipped-cycle telemetry) — snapshots are
 *  identical across --fast-path modes. */
inline constexpr std::uint32_t snapshotVersion = 2;

/**
 * The live objects one snapshot covers.  The caller owns everything;
 * the same view shape (same trace count, same fault decorators) must
 * be supplied on save and on restore.
 */
struct SimulationView
{
    sim::System *system = nullptr;

    /** One per core, in core order. */
    std::vector<trace::SyntheticTrace *> traces;

    /** Armed trace-fault decorators, or null on fault-free runs. */
    fault::CorruptingTrace *corrupting = nullptr;
    fault::SanitizingTrace *sanitizing = nullptr;

    /** The run's fault engine, or null when no injector is armed. */
    fault::FaultEngine *faults = nullptr;
};

/** Serialize @p view into a self-validating snapshot image. */
std::vector<std::uint8_t> saveSimulation(const SimulationView &view,
                                         std::uint64_t config_digest);

/**
 * Restore @p view from @p bytes.  Throws SnapshotError (one-line
 * message) on bad magic, version skew, a digest different from
 * @p expected_digest, a CRC mismatch, or any framing error.  The whole
 * image is verified before any live state is touched, so those
 * rejections leave @p view unmodified and callers may fall back to
 * simulating the warmup on the same System.  Only a CRC-valid but
 * semantically inconsistent image (a buggy writer) can fail mid-
 * deserialize and leave the view in an undefined state.
 */
void restoreSimulation(const std::vector<std::uint8_t> &bytes,
                       const SimulationView &view,
                       std::uint64_t expected_digest);

/**
 * Digest every parameter that shapes post-warmup simulator state: the
 * full SystemConfig, the warmup length, each workload's synthetic
 * trace description, and — when armed — the fault plan and seed.
 * Deliberately excluded: fastPath, jobs and auditInterval, which are
 * guaranteed stats-invariant, and the measured-region length, which
 * only matters after the checkpoint is taken.
 */
std::uint64_t
warmupDigest(const sim::SystemConfig &config,
             InstrCount warmup_instructions,
             const std::vector<trace::SyntheticConfig> &workloads,
             const fault::FaultPlan *plan, std::uint64_t fault_seed);

} // namespace pfsim::snapshot

#endif // PFSIM_SNAPSHOT_SNAPSHOT_HH
