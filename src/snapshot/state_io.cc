/**
 * @file
 * Every component's serialize()/deserialize() definition, in one TU.
 *
 * Snapshots must write private microarchitectural state (ROB slots,
 * MSHR waiters, replacement stamps, perceptron weights), so the
 * accessors are member functions — but their *definitions* all live
 * here, keeping the wire format reviewable in one place and keeping
 * the component headers free of serialization detail (they only carry
 * declarations against forward-declared Sink/Source).
 *
 * Wire-format rules:
 *  - every variable-length container writes its element count first,
 *    and restore checks that count against the live structure (sized
 *    by configuration), so a config-skewed image fails loudly instead
 *    of corrupting memory;
 *  - cross-component pointers (Request::ret) travel as registry ids
 *    (see serial.hh); sim::System registers every Requestor in a fixed
 *    order on both sides;
 *  - nothing derived purely from configuration (table geometries,
 *    strides, offsets) is serialized.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "cache/replacement.hh"
#include "core/filter_tables.hh"
#include "core/generic_filter.hh"
#include "core/ppf.hh"
#include "core/spp_ppf.hh"
#include "core/weight_tables.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/core.hh"
#include "cpu/perceptron_bp.hh"
#include "dram/dram.hh"
#include "fault/engine.hh"
#include "fault/injectors.hh"
#include "prefetch/ampm.hh"
#include "prefetch/bop.hh"
#include "prefetch/ip_stride.hh"
#include "prefetch/pmp.hh"
#include "prefetch/pythia.hh"
#include "prefetch/spp.hh"
#include "prefetch/vldp.hh"
#include "sim/system.hh"
#include "snapshot/serial.hh"
#include "trace/patterns.hh"
#include "trace/synthetic.hh"

namespace pfsim
{

namespace
{

/** Restore-side guard: a stored count must match the live structure. */
void
checkCount(std::uint64_t stored, std::uint64_t live, const char *what)
{
    if (stored != live)
        throw snapshot::SnapshotError(
            std::string(what) +
            " count mismatch between snapshot and live configuration");
}

void
writeRequest(snapshot::Sink &sink, const cache::Request &req)
{
    sink.u64(req.addr);
    sink.u8(std::uint8_t(req.type));
    sink.u64(req.pc);
    sink.i32(req.coreId);
    sink.u64(req.enqueueCycle);
    sink.u32(sink.pointerId(req.ret));
    sink.u64(req.token);
    sink.b(req.fillThisLevel);
    sink.b(req.prefetcherNotified);
}

void
readRequest(snapshot::Source &src, cache::Request &req)
{
    req.addr = src.u64();
    req.type = cache::AccessType(src.u8());
    req.pc = src.u64();
    req.coreId = src.i32();
    req.enqueueCycle = src.u64();
    req.ret = static_cast<cache::Requestor *>(src.pointerAt(src.u32()));
    req.token = src.u64();
    req.fillThisLevel = src.b();
    req.prefetcherNotified = src.b();
}

void
writeInstruction(snapshot::Sink &sink, const Instruction &inst)
{
    sink.u64(inst.pc);
    sink.u64(inst.loadAddr);
    sink.u64(inst.storeAddr);
    sink.b(inst.isBranch);
    sink.b(inst.branchTaken);
    sink.b(inst.dependsOnPrev);
}

void
readInstruction(snapshot::Source &src, Instruction &inst)
{
    inst.pc = src.u64();
    inst.loadAddr = src.u64();
    inst.storeAddr = src.u64();
    inst.isBranch = src.b();
    inst.branchTaken = src.b();
    inst.dependsOnPrev = src.b();
}

void
writeFillInfo(snapshot::Sink &sink, const prefetch::FillInfo &info)
{
    sink.u64(info.addr);
    sink.b(info.wasPrefetch);
    sink.b(info.lateUseful);
    sink.b(info.evictedValid);
    sink.u64(info.evictedAddr);
    sink.b(info.evictedUnusedPrefetch);
    sink.u64(info.cycle);
}

void
readFillInfo(snapshot::Source &src, prefetch::FillInfo &info)
{
    info.addr = src.u64();
    info.wasPrefetch = src.b();
    info.lateUseful = src.b();
    info.evictedValid = src.b();
    info.evictedAddr = src.u64();
    info.evictedUnusedPrefetch = src.b();
    info.cycle = src.u64();
}

void
writeFeatureInput(snapshot::Sink &sink, const ppf::FeatureInput &input)
{
    sink.u64(input.triggerAddr);
    sink.u64(input.pc);
    sink.u64(input.pc1);
    sink.u64(input.pc2);
    sink.u64(input.pc3);
    sink.i32(input.depth);
    sink.i32(input.delta);
    sink.i32(input.confidence);
    sink.u32(input.signature);
}

void
readFeatureInput(snapshot::Source &src, ppf::FeatureInput &input)
{
    input.triggerAddr = src.u64();
    input.pc = src.u64();
    input.pc1 = src.u64();
    input.pc2 = src.u64();
    input.pc3 = src.u64();
    input.depth = src.i32();
    input.delta = src.i32();
    input.confidence = src.i32();
    input.signature = src.u32();
}

void
writeFaultStats(snapshot::Sink &sink, const fault::FaultStats &stats)
{
    sink.u64(stats.traceCorrupted);
    sink.u64(stats.traceRepaired);
    sink.u64(stats.traceDropped);
    sink.u64(stats.weightFlips);
    sink.u64(stats.weightFlipsRecovered);
    sink.u64(stats.weightRecoveryCyclesSum);
    sink.u64(stats.weightRecoveryCyclesMax);
    sink.u64(stats.sppFlips);
    sink.u64(stats.dramDropped);
    sink.u64(stats.dramDelayed);
    sink.u64(stats.mshrSqueezeWindows);
}

void
readFaultStats(snapshot::Source &src, fault::FaultStats &stats)
{
    stats.traceCorrupted = src.u64();
    stats.traceRepaired = src.u64();
    stats.traceDropped = src.u64();
    stats.weightFlips = src.u64();
    stats.weightFlipsRecovered = src.u64();
    stats.weightRecoveryCyclesSum = src.u64();
    stats.weightRecoveryCyclesMax = src.u64();
    stats.sppFlips = src.u64();
    stats.dramDropped = src.u64();
    stats.dramDelayed = src.u64();
    stats.mshrSqueezeWindows = src.u64();
}

} // namespace

} // namespace pfsim

// ---------------------------------------------------------------------
// cache
// ---------------------------------------------------------------------

namespace pfsim::cache
{

void
MshrFile::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(entries_.size()));
    for (const MshrEntry &entry : entries_) {
        sink.b(entry.valid);
        sink.u64(entry.addr);
        sink.u32(std::uint32_t(entry.waiters.size()));
        for (const Request &waiter : entry.waiters)
            writeRequest(sink, waiter);
        sink.b(entry.prefetchOnly);
        sink.b(entry.dirtyOnFill);
        sink.b(entry.rfoSeen);
        sink.b(entry.demandMergedIntoPrefetch);
        sink.u64(entry.pc);
        sink.i32(entry.coreId);
        sink.u64(entry.allocCycle);
    }
    sink.u64(std::uint64_t(used_));
    sink.u64(std::uint64_t(reserved_));
}

void
MshrFile::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), entries_.size(), "MSHR entry");
    for (MshrEntry &entry : entries_) {
        entry.valid = src.b();
        entry.addr = src.u64();
        const std::uint32_t waiters = src.u32();
        entry.waiters.clear();
        for (std::uint32_t i = 0; i < waiters; ++i) {
            Request req;
            readRequest(src, req);
            entry.waiters.push_back(req);
        }
        entry.prefetchOnly = src.b();
        entry.dirtyOnFill = src.b();
        entry.rfoSeen = src.b();
        entry.demandMergedIntoPrefetch = src.b();
        entry.pc = src.u64();
        entry.coreId = src.i32();
        entry.allocCycle = src.u64();
    }
    used_ = std::size_t(src.u64());
    reserved_ = std::size_t(src.u64());
}

void
LruPolicy::serialize(snapshot::Sink &sink) const
{
    sink.u64(stamp_);
    sink.u32(std::uint32_t(lastTouch_.size()));
    for (const std::uint64_t stamp : lastTouch_)
        sink.u64(stamp);
}

void
LruPolicy::deserialize(snapshot::Source &src)
{
    stamp_ = src.u64();
    checkCount(src.u32(), lastTouch_.size(), "LRU metadata");
    for (std::uint64_t &stamp : lastTouch_)
        stamp = src.u64();
}

void
SrripPolicy::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(rrpv_.size()));
    for (const std::uint8_t rrpv : rrpv_)
        sink.u8(rrpv);
}

void
SrripPolicy::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), rrpv_.size(), "SRRIP metadata");
    for (std::uint8_t &rrpv : rrpv_)
        rrpv = src.u8();
}

void
Cache::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(blocks_.size()));
    for (const Block &block : blocks_) {
        sink.b(block.valid);
        sink.b(block.dirty);
        sink.b(block.prefetched);
        sink.u64(block.tag);
    }
    policy_->serialize(sink);
    mshrs_.serialize(sink);

    const auto write_request = [](snapshot::Sink &out,
                                  const Request &req) {
        writeRequest(out, req);
    };
    snapshot::writeRing(sink, rq_, write_request);
    snapshot::writeRing(sink, wq_, write_request);
    snapshot::writeRing(sink, pq_, write_request);

    const auto write_response = [](snapshot::Sink &out,
                                   const Response &response) {
        out.u64(response.ready);
        writeRequest(out, response.req);
    };
    snapshot::writeRing(sink, responses_, write_response);
    snapshot::writeRing(sink, fills_, write_response);

    writeFillInfo(sink, pendingFillInfo_);
    sink.u64(now_);

    sink.u64(stats_.loadAccess);
    sink.u64(stats_.loadHit);
    sink.u64(stats_.rfoAccess);
    sink.u64(stats_.rfoHit);
    sink.u64(stats_.writebackAccess);
    sink.u64(stats_.writebackHit);
    sink.u64(stats_.pfIssued);
    sink.u64(stats_.pfDroppedHit);
    sink.u64(stats_.pfDroppedMshr);
    sink.u64(stats_.pfDroppedFull);
    sink.u64(stats_.pfToLower);
    sink.u64(stats_.pfFill);
    sink.u64(stats_.pfUseful);
    sink.u64(stats_.pfLate);
    sink.u64(stats_.pfUselessEvict);
    sink.u64(stats_.writebacks);
    sink.u64(stats_.missLatencySum);
    sink.u64(stats_.missLatencyCount);
}

void
Cache::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), blocks_.size(), "cache block");
    for (Block &block : blocks_) {
        block.valid = src.b();
        block.dirty = src.b();
        block.prefetched = src.b();
        block.tag = src.u64();
    }
    policy_->deserialize(src);
    mshrs_.deserialize(src);

    const auto read_request = [](snapshot::Source &in, Request &req) {
        readRequest(in, req);
    };
    snapshot::readRing(src, rq_, read_request);
    snapshot::readRing(src, wq_, read_request);
    snapshot::readRing(src, pq_, read_request);

    const auto read_response = [](snapshot::Source &in,
                                  Response &response) {
        response.ready = in.u64();
        readRequest(in, response.req);
    };
    snapshot::readRing(src, responses_, read_response);
    snapshot::readRing(src, fills_, read_response);

    readFillInfo(src, pendingFillInfo_);
    now_ = src.u64();

    stats_.loadAccess = src.u64();
    stats_.loadHit = src.u64();
    stats_.rfoAccess = src.u64();
    stats_.rfoHit = src.u64();
    stats_.writebackAccess = src.u64();
    stats_.writebackHit = src.u64();
    stats_.pfIssued = src.u64();
    stats_.pfDroppedHit = src.u64();
    stats_.pfDroppedMshr = src.u64();
    stats_.pfDroppedFull = src.u64();
    stats_.pfToLower = src.u64();
    stats_.pfFill = src.u64();
    stats_.pfUseful = src.u64();
    stats_.pfLate = src.u64();
    stats_.pfUselessEvict = src.u64();
    stats_.writebacks = src.u64();
    stats_.missLatencySum = src.u64();
    stats_.missLatencyCount = src.u64();
}

} // namespace pfsim::cache

// ---------------------------------------------------------------------
// cpu
// ---------------------------------------------------------------------

namespace pfsim::cpu
{

void
BimodalPredictor::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(table_.size()));
    for (const auto &counter : table_)
        snapshot::writeCounter(sink, counter);
}

void
BimodalPredictor::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), table_.size(), "bimodal predictor entry");
    for (auto &counter : table_)
        snapshot::readCounter(src, counter);
}

void
PerceptronBp::serialize(snapshot::Sink &sink) const
{
    for (unsigned t = 0; t < numTables; ++t) {
        sink.u32(std::uint32_t(tables_[t].size()));
        for (const auto &weight : tables_[t])
            snapshot::writeCounter(sink, weight);
    }
    sink.u64(history_);
}

void
PerceptronBp::deserialize(snapshot::Source &src)
{
    for (unsigned t = 0; t < numTables; ++t) {
        checkCount(src.u32(), tables_[t].size(),
                   "perceptron predictor table");
        for (auto &weight : tables_[t])
            snapshot::readCounter(src, weight);
    }
    history_ = src.u64();
    memoValid_ = false;
}

void
Core::serialize(snapshot::Sink &sink) const
{
    branchPredictor_->serialize(sink);

    sink.u32(std::uint32_t(rob_.size()));
    for (const RobEntry &entry : rob_) {
        sink.b(entry.completed);
        sink.u64(entry.readyCycle);
        sink.u8(std::uint8_t(entry.kind));
        sink.u16(entry.lqSlot);
    }
    sink.u32(robHead_);
    sink.u32(robCount_);

    sink.u32(std::uint32_t(lq_.size()));
    for (const LqEntry &entry : lq_) {
        sink.b(entry.valid);
        sink.b(entry.issued);
        sink.b(entry.completed);
        sink.u64(entry.addr);
        sink.u64(entry.pc);
        sink.u32(entry.robIndex);
        sink.u64(entry.seq);
        sink.b(entry.dependent);
        sink.u16(entry.depSlot);
        sink.u64(entry.depSeq);
    }
    sink.u32(lqUsed_);

    sink.u32(std::uint32_t(sq_.size()));
    for (const SqEntry &entry : sq_) {
        sink.b(entry.valid);
        sink.b(entry.issued);
        sink.u64(entry.addr);
        sink.u64(entry.pc);
    }
    sink.u32(sqUsed_);

    sink.u64(fetchResumeCycle_);
    sink.b(fetchBlockPending_);
    sink.u64(lastFetchBlock_);
    sink.b(haveLastLoad_);
    sink.u16(lastLoadSlot_);
    sink.u64(lastLoadSeq_);
    sink.u64(nextLoadSeq_);
    sink.b(traceExhausted_);
    sink.b(havePending_);
    writeInstruction(sink, pending_);

    sink.u64(stats_.instructions);
    sink.u64(stats_.cycles);
    sink.u64(stats_.branches);
    sink.u64(stats_.mispredicts);
    sink.u64(stats_.loads);
    sink.u64(stats_.stores);
    sink.u64(stats_.robFullStalls);
    sink.u64(stats_.lqFullStalls);
    sink.u64(stats_.sqFullStalls);
}

void
Core::deserialize(snapshot::Source &src)
{
    branchPredictor_->deserialize(src);

    checkCount(src.u32(), rob_.size(), "ROB entry");
    for (RobEntry &entry : rob_) {
        entry.completed = src.b();
        entry.readyCycle = src.u64();
        entry.kind = Kind(src.u8());
        entry.lqSlot = src.u16();
    }
    robHead_ = src.u32();
    robCount_ = src.u32();

    checkCount(src.u32(), lq_.size(), "load queue entry");
    for (LqEntry &entry : lq_) {
        entry.valid = src.b();
        entry.issued = src.b();
        entry.completed = src.b();
        entry.addr = src.u64();
        entry.pc = src.u64();
        entry.robIndex = src.u32();
        entry.seq = src.u64();
        entry.dependent = src.b();
        entry.depSlot = src.u16();
        entry.depSeq = src.u64();
    }
    lqUsed_ = src.u32();

    checkCount(src.u32(), sq_.size(), "store queue entry");
    for (SqEntry &entry : sq_) {
        entry.valid = src.b();
        entry.issued = src.b();
        entry.addr = src.u64();
        entry.pc = src.u64();
    }
    sqUsed_ = src.u32();

    // Derived issue/allocation bookkeeping: rebuilt from the restored
    // queues rather than carried on the wire.
    unissuedLq_.clear();
    std::fill(lqFree_.begin(), lqFree_.end(), 0);
    for (std::size_t i = 0; i < lq_.size(); ++i) {
        if (!lq_[i].valid)
            lqFree_[i / 64] |= std::uint64_t{1} << (i % 64);
        else if (!lq_[i].issued)
            unissuedLq_.push_back(std::uint16_t(i));
    }
    unissuedStores_ = 0;
    std::fill(sqFree_.begin(), sqFree_.end(), 0);
    for (std::size_t i = 0; i < sq_.size(); ++i) {
        if (!sq_[i].valid)
            sqFree_[i / 64] |= std::uint64_t{1} << (i % 64);
        else if (!sq_[i].issued)
            ++unissuedStores_;
    }

    fetchResumeCycle_ = src.u64();
    fetchBlockPending_ = src.b();
    lastFetchBlock_ = src.u64();
    haveLastLoad_ = src.b();
    lastLoadSlot_ = src.u16();
    lastLoadSeq_ = src.u64();
    nextLoadSeq_ = src.u64();
    traceExhausted_ = src.b();
    havePending_ = src.b();
    readInstruction(src, pending_);

    stats_.instructions = src.u64();
    stats_.cycles = src.u64();
    stats_.branches = src.u64();
    stats_.mispredicts = src.u64();
    stats_.loads = src.u64();
    stats_.stores = src.u64();
    stats_.robFullStalls = src.u64();
    stats_.lqFullStalls = src.u64();
    stats_.sqFullStalls = src.u64();
}

} // namespace pfsim::cpu

// ---------------------------------------------------------------------
// dram
// ---------------------------------------------------------------------

namespace pfsim::dram
{

void
Dram::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(channels_.size()));
    const auto write_pending = [](snapshot::Sink &out,
                                  const Pending &pending) {
        writeRequest(out, pending.req);
        out.u64(pending.arrival);
    };
    for (const Channel &channel : channels_) {
        snapshot::writeRing(sink, channel.readQ, write_pending);
        snapshot::writeRing(sink, channel.writeQ, write_pending);
        sink.u32(std::uint32_t(channel.banks.size()));
        for (const Bank &bank : channel.banks) {
            sink.b(bank.rowOpen);
            sink.u64(bank.openRow);
            sink.u64(bank.readyCycle);
        }
        sink.u64(channel.busFreeCycle);
        sink.b(channel.drainingWrites);
    }

    // Drain a copy of the completion heap in ready order; restore
    // re-pushes, reproducing an equivalent heap.
    auto pending_completions = completions_;
    sink.u32(std::uint32_t(pending_completions.size()));
    while (!pending_completions.empty()) {
        const Completion &completion = pending_completions.top();
        sink.u64(completion.ready);
        writeRequest(sink, completion.req);
        pending_completions.pop();
    }

    sink.u64(stats_.reads);
    sink.u64(stats_.writes);
    sink.u64(stats_.rowHits);
    sink.u64(stats_.rowMisses);
    sink.u64(stats_.rowConflicts);
    sink.u64(stats_.busBusyCycles);
    sink.u64(stats_.readLatencySum);
}

void
Dram::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), channels_.size(), "DRAM channel");
    const auto read_pending = [](snapshot::Source &in,
                                 Pending &pending) {
        readRequest(in, pending.req);
        pending.arrival = in.u64();
    };
    for (Channel &channel : channels_) {
        snapshot::readRing(src, channel.readQ, read_pending);
        snapshot::readRing(src, channel.writeQ, read_pending);
        checkCount(src.u32(), channel.banks.size(), "DRAM bank");
        for (Bank &bank : channel.banks) {
            bank.rowOpen = src.b();
            bank.openRow = src.u64();
            bank.readyCycle = src.u64();
        }
        channel.busFreeCycle = src.u64();
        channel.drainingWrites = src.b();
    }

    completions_ = {};
    const std::uint32_t completions = src.u32();
    for (std::uint32_t i = 0; i < completions; ++i) {
        Completion completion{};
        completion.ready = src.u64();
        readRequest(src, completion.req);
        completions_.push(completion);
    }

    stats_.reads = src.u64();
    stats_.writes = src.u64();
    stats_.rowHits = src.u64();
    stats_.rowMisses = src.u64();
    stats_.rowConflicts = src.u64();
    stats_.busBusyCycles = src.u64();
    stats_.readLatencySum = src.u64();
}

} // namespace pfsim::dram

// ---------------------------------------------------------------------
// prefetch
// ---------------------------------------------------------------------

namespace pfsim::prefetch
{

void
SppPrefetcher::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(st_.size()));
    for (const StEntry &entry : st_) {
        sink.b(entry.valid);
        sink.u16(entry.tag);
        sink.u8(entry.lastOffset);
        sink.u16(entry.signature);
        sink.u64(entry.lru);
    }

    sink.u32(std::uint32_t(pt_.size()));
    for (const PtEntry &entry : pt_) {
        snapshot::writeCounter(sink, entry.cSig);
        for (const PtSlot &slot : entry.slots) {
            sink.i16(slot.delta);
            snapshot::writeCounter(sink, slot.count);
        }
    }

    sink.u32(std::uint32_t(ghr_.size()));
    for (const GhrEntry &entry : ghr_) {
        sink.b(entry.valid);
        sink.u16(entry.signature);
        sink.i32(entry.confidence);
        sink.u8(entry.lastOffset);
        sink.i16(entry.delta);
    }

    sink.u64(std::uint64_t(ghrNext_));
    sink.u64(lruStamp_);
    sink.u64(cTotal_);
    sink.u64(cUseful_);

    sink.u64(stats_.triggers);
    sink.u64(stats_.issued);
    sink.u64(stats_.depthSum);
    sink.u64(stats_.candidates);
    sink.u64(stats_.filterDropped);
    sink.u64(stats_.ghrBootstraps);
}

void
SppPrefetcher::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), st_.size(), "SPP signature table entry");
    for (StEntry &entry : st_) {
        entry.valid = src.b();
        entry.tag = src.u16();
        entry.lastOffset = src.u8();
        entry.signature = src.u16();
        entry.lru = src.u64();
    }

    checkCount(src.u32(), pt_.size(), "SPP pattern table entry");
    for (PtEntry &entry : pt_) {
        snapshot::readCounter(src, entry.cSig);
        for (PtSlot &slot : entry.slots) {
            slot.delta = src.i16();
            snapshot::readCounter(src, slot.count);
        }
    }

    checkCount(src.u32(), ghr_.size(), "SPP GHR entry");
    for (GhrEntry &entry : ghr_) {
        entry.valid = src.b();
        entry.signature = src.u16();
        entry.confidence = src.i32();
        entry.lastOffset = src.u8();
        entry.delta = src.i16();
    }

    ghrNext_ = std::size_t(src.u64());
    lruStamp_ = src.u64();
    cTotal_ = src.u64();
    cUseful_ = src.u64();

    stats_.triggers = src.u64();
    stats_.issued = src.u64();
    stats_.depthSum = src.u64();
    stats_.candidates = src.u64();
    stats_.filterDropped = src.u64();
    stats_.ghrBootstraps = src.u64();
}

void
IpStridePrefetcher::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(table_.size()));
    for (const Entry &entry : table_) {
        sink.b(entry.valid);
        sink.u64(entry.tag);
        sink.u64(entry.lastBlock);
        sink.i64(entry.stride);
        snapshot::writeCounter(sink, entry.confidence);
    }
}

void
IpStridePrefetcher::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), table_.size(), "IP-stride table entry");
    for (Entry &entry : table_) {
        entry.valid = src.b();
        entry.tag = src.u64();
        entry.lastBlock = src.u64();
        entry.stride = src.i64();
        snapshot::readCounter(src, entry.confidence);
    }
}

void
BopPrefetcher::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(scores_.size()));
    for (const int score : scores_)
        sink.i32(score);
    sink.u64(std::uint64_t(testIndex_));
    sink.i32(rounds_);
    sink.i32(prefetchOffset_);
    sink.b(prefetchOn_);
    sink.u32(std::uint32_t(rrTable_.size()));
    for (const Addr addr : rrTable_)
        sink.u64(addr);
}

void
BopPrefetcher::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), scores_.size(), "BOP score");
    for (int &score : scores_)
        score = src.i32();
    testIndex_ = std::size_t(src.u64());
    rounds_ = src.i32();
    prefetchOffset_ = src.i32();
    prefetchOn_ = src.b();
    checkCount(src.u32(), rrTable_.size(), "BOP recent-request entry");
    for (Addr &addr : rrTable_)
        addr = src.u64();
}

void
AmpmPrefetcher::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(zones_.size()));
    for (const Zone &zone : zones_) {
        sink.b(zone.valid);
        sink.u64(zone.page);
        sink.u64(zone.accessed);
        sink.u64(zone.prefetched);
        sink.u64(zone.lastUse);
    }
    sink.u64(useStamp_);
}

void
AmpmPrefetcher::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), zones_.size(), "AMPM zone");
    for (Zone &zone : zones_) {
        zone.valid = src.b();
        zone.page = src.u64();
        zone.accessed = src.u64();
        zone.prefetched = src.u64();
        zone.lastUse = src.u64();
    }
    useStamp_ = src.u64();
}

void
VldpPrefetcher::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(dhb_.size()));
    for (const DhbEntry &entry : dhb_) {
        sink.b(entry.valid);
        sink.u64(entry.page);
        sink.i32(entry.lastOffset);
        for (const int delta : entry.deltas)
            sink.i32(delta);
        sink.u32(entry.deltaCount);
        sink.u64(entry.lastUse);
    }
    for (const auto &table : dpt_) {
        sink.u32(std::uint32_t(table.size()));
        for (const DptEntry &entry : table) {
            sink.b(entry.valid);
            sink.u32(entry.key);
            sink.i32(entry.prediction);
            snapshot::writeCounter(sink, entry.accuracy);
        }
    }
    for (const OptEntry &entry : opt_) {
        sink.b(entry.valid);
        sink.i32(entry.firstDelta);
        snapshot::writeCounter(sink, entry.accuracy);
    }
    sink.u64(useStamp_);
}

void
VldpPrefetcher::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), dhb_.size(), "VLDP history entry");
    for (DhbEntry &entry : dhb_) {
        entry.valid = src.b();
        entry.page = src.u64();
        entry.lastOffset = src.i32();
        for (int &delta : entry.deltas)
            delta = src.i32();
        entry.deltaCount = src.u32();
        entry.lastUse = src.u64();
    }
    for (auto &table : dpt_) {
        checkCount(src.u32(), table.size(), "VLDP prediction entry");
        for (DptEntry &entry : table) {
            entry.valid = src.b();
            entry.key = src.u32();
            entry.prediction = src.i32();
            snapshot::readCounter(src, entry.accuracy);
        }
    }
    for (OptEntry &entry : opt_) {
        entry.valid = src.b();
        entry.firstDelta = src.i32();
        snapshot::readCounter(src, entry.accuracy);
    }
    useStamp_ = src.u64();
}

void
PmpPrefetcher::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(ft_.size()));
    for (const FtEntry &entry : ft_) {
        sink.b(entry.valid);
        sink.u64(entry.page);
        sink.u8(entry.offset);
        sink.u64(entry.pc);
        sink.u64(entry.lru);
    }

    sink.u32(std::uint32_t(at_.size()));
    for (const AtEntry &entry : at_) {
        sink.b(entry.valid);
        sink.u64(entry.page);
        sink.u8(entry.triggerOffset);
        sink.u64(entry.triggerPc);
        sink.u64(entry.bitmap);
        sink.u64(entry.lru);
    }

    sink.u32(std::uint32_t(pt_.size()));
    for (const PtEntry &entry : pt_) {
        sink.b(entry.valid);
        sink.u32(entry.tag);
        for (const std::uint8_t counter : entry.counters)
            sink.u8(counter);
    }

    sink.u64(lruStamp_);

    sink.u64(stats_.triggers);
    sink.u64(stats_.promotions);
    sink.u64(stats_.merges);
    sink.u64(stats_.patternHits);
    sink.u64(stats_.issued);
}

void
PmpPrefetcher::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), ft_.size(), "PMP filter-table entry");
    for (FtEntry &entry : ft_) {
        entry.valid = src.b();
        entry.page = src.u64();
        entry.offset = src.u8();
        entry.pc = src.u64();
        entry.lru = src.u64();
    }

    checkCount(src.u32(), at_.size(), "PMP accumulation-table entry");
    for (AtEntry &entry : at_) {
        entry.valid = src.b();
        entry.page = src.u64();
        entry.triggerOffset = src.u8();
        entry.triggerPc = src.u64();
        entry.bitmap = src.u64();
        entry.lru = src.u64();
    }

    checkCount(src.u32(), pt_.size(), "PMP pattern-table entry");
    for (PtEntry &entry : pt_) {
        entry.valid = src.b();
        entry.tag = src.u32();
        for (std::uint8_t &counter : entry.counters)
            counter = src.u8();
    }

    lruStamp_ = src.u64();

    stats_.triggers = src.u64();
    stats_.promotions = src.u64();
    stats_.merges = src.u64();
    stats_.patternHits = src.u64();
    stats_.issued = src.u64();
}

void
PythiaPrefetcher::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(q1_.size()));
    for (const std::int32_t q : q1_)
        sink.i32(q);
    sink.u32(std::uint32_t(q2_.size()));
    for (const std::int32_t q : q2_)
        sink.i32(q);

    sink.u32(std::uint32_t(eq_.size()));
    for (const EqEntry &entry : eq_) {
        sink.b(entry.valid);
        sink.u64(entry.addr);
        sink.u32(entry.idx1);
        sink.u32(entry.idx2);
        sink.u32(entry.action);
        sink.b(entry.rewarded);
        sink.i32(entry.reward);
    }
    sink.u64(std::uint64_t(eqPos_));

    for (const std::int32_t delta : deltaHistory_)
        sink.i32(delta);
    sink.u64(lastBlock_);
    sink.b(haveLast_);

    snapshot::writeRng(sink, rng_);

    sink.u64(stats_.decisions);
    sink.u64(stats_.explored);
    sink.u64(stats_.issued);
    sink.u64(stats_.accurate);
    sink.u64(stats_.updates);
}

void
PythiaPrefetcher::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), q1_.size(), "Pythia Q-table 1 entry");
    for (std::int32_t &q : q1_)
        q = src.i32();
    checkCount(src.u32(), q2_.size(), "Pythia Q-table 2 entry");
    for (std::int32_t &q : q2_)
        q = src.i32();

    checkCount(src.u32(), eq_.size(), "Pythia EQ entry");
    for (EqEntry &entry : eq_) {
        entry.valid = src.b();
        entry.addr = src.u64();
        entry.idx1 = src.u32();
        entry.idx2 = src.u32();
        entry.action = src.u32();
        entry.rewarded = src.b();
        entry.reward = src.i32();
    }
    eqPos_ = std::size_t(src.u64());

    for (std::int32_t &delta : deltaHistory_)
        delta = src.i32();
    lastBlock_ = src.u64();
    haveLast_ = src.b();

    snapshot::readRng(src, rng_);

    stats_.decisions = src.u64();
    stats_.explored = src.u64();
    stats_.issued = src.u64();
    stats_.accurate = src.u64();
    stats_.updates = src.u64();
}

} // namespace pfsim::prefetch

// ---------------------------------------------------------------------
// ppf
// ---------------------------------------------------------------------

namespace pfsim::ppf
{

void
WeightTables::serialize(snapshot::Sink &sink) const
{
    // Only the logical weights travel; the flat_ tail padding the
    // SIMD gather needs (simd::gatherPadBytes) is storage-only, so
    // images are identical whichever kernel produced them.
    const std::uint32_t logical = offsets_[numFeatures];
    sink.u32(logical);
    for (std::uint32_t i = 0; i < logical; ++i)
        sink.i8(flat_[i]);
}

void
WeightTables::deserialize(snapshot::Source &src)
{
    const std::uint32_t logical = offsets_[numFeatures];
    checkCount(src.u32(), logical, "PPF weight");
    for (std::uint32_t i = 0; i < logical; ++i)
        flat_[i] = src.i8();
}

void
FilterTable::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(table_.size()));
    for (const FilterEntry &entry : table_) {
        sink.b(entry.valid);
        sink.u8(entry.tag);
        sink.b(entry.useful);
        sink.b(entry.prefetched);
        writeFeatureInput(sink, entry.features);
    }
}

void
FilterTable::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), table_.size(), "PPF filter-table entry");
    for (FilterEntry &entry : table_) {
        entry.valid = src.b();
        entry.tag = src.u8();
        entry.useful = src.b();
        entry.prefetched = src.b();
        readFeatureInput(src, entry.features);
    }
}

void
Ppf::serialize(snapshot::Sink &sink) const
{
    weights_.serialize(sink);
    prefetchTable_.serialize(sink);
    rejectTable_.serialize(sink);
    for (const Pc pc : pcHistory_)
        sink.u64(pc);
    sink.i32(lastSum_);
    sink.b(sumValid_);

    sink.u64(stats_.candidates);
    sink.u64(stats_.acceptedL2);
    sink.u64(stats_.acceptedLlc);
    sink.u64(stats_.rejected);
    sink.u64(stats_.trainUseful);
    sink.u64(stats_.trainFalseNegative);
    sink.u64(stats_.trainUselessEvict);
}

void
Ppf::deserialize(snapshot::Source &src)
{
    // The restored weights invalidate any precomputed burst sums.
    invalidateBatch();
    weights_.deserialize(src);
    prefetchTable_.deserialize(src);
    rejectTable_.deserialize(src);
    for (Pc &pc : pcHistory_)
        pc = src.u64();
    lastSum_ = src.i32();
    sumValid_ = src.b();

    stats_.candidates = src.u64();
    stats_.acceptedL2 = src.u64();
    stats_.acceptedLlc = src.u64();
    stats_.rejected = src.u64();
    stats_.trainUseful = src.u64();
    stats_.trainFalseNegative = src.u64();
    stats_.trainUselessEvict = src.u64();
}

void
SppPpfPrefetcher::serialize(snapshot::Sink &sink) const
{
    ppf_.serialize(sink);
    spp_->serialize(sink);
}

void
SppPpfPrefetcher::deserialize(snapshot::Source &src)
{
    ppf_.deserialize(src);
    spp_->deserialize(src);
}

void
FilteredPrefetcher::serialize(snapshot::Sink &sink) const
{
    base_->serialize(sink);
    ppf_.serialize(sink);
    sink.u64(triggerAddr_);
    sink.u64(triggerPc_);
}

void
FilteredPrefetcher::deserialize(snapshot::Source &src)
{
    base_->deserialize(src);
    ppf_.deserialize(src);
    triggerAddr_ = src.u64();
    triggerPc_ = src.u64();
}

} // namespace pfsim::ppf

// ---------------------------------------------------------------------
// trace
// ---------------------------------------------------------------------

namespace pfsim::trace
{

void
StreamPattern::serialize(snapshot::Sink &sink) const
{
    sink.u64(nextAddr_);
}

void
StreamPattern::deserialize(snapshot::Source &src)
{
    nextAddr_ = src.u64();
}

void
StridePattern::serialize(snapshot::Sink &sink) const
{
    sink.u64(nextAddr_);
}

void
StridePattern::deserialize(snapshot::Source &src)
{
    nextAddr_ = src.u64();
}

void
DeltaSeqPattern::serialize(snapshot::Sink &sink) const
{
    sink.u64(page_);
    sink.u32(offset_);
    sink.u64(std::uint64_t(step_));
}

void
DeltaSeqPattern::deserialize(snapshot::Source &src)
{
    page_ = src.u64();
    offset_ = src.u32();
    step_ = std::size_t(src.u64());
}

void
PageShufflePattern::serialize(snapshot::Sink &sink) const
{
    sink.u64(page_);
    sink.u64(std::uint64_t(step_));
}

void
PageShufflePattern::deserialize(snapshot::Source &src)
{
    // order_ is a pure function of page_, so rebuild instead of
    // storing the permutation; buildOrder() resets step_, so restore
    // the cursor afterwards.
    page_ = src.u64();
    buildOrder();
    step_ = std::size_t(src.u64());
}

void
RegionSweepPattern::serialize(snapshot::Sink &sink) const
{
    sink.u64(nextAddr_);
}

void
RegionSweepPattern::deserialize(snapshot::Source &src)
{
    nextAddr_ = src.u64();
}

void
BurstStridePattern::serialize(snapshot::Sink &sink) const
{
    sink.u64(page_);
    sink.i32(offset_);
    sink.u32(pos_);
}

void
BurstStridePattern::deserialize(snapshot::Source &src)
{
    page_ = src.u64();
    offset_ = src.i32();
    pos_ = src.u32();
}

void
PointerChasePattern::serialize(snapshot::Sink &sink) const
{
    sink.u64(state_);
}

void
PointerChasePattern::deserialize(snapshot::Source &src)
{
    state_ = src.u64();
}

void
HotReusePattern::serialize(snapshot::Sink &sink) const
{
    sink.u64(coldPage_);
}

void
HotReusePattern::deserialize(snapshot::Source &src)
{
    coldPage_ = src.u64();
}

void
SyntheticTrace::serialize(snapshot::Sink &sink) const
{
    sink.u64(std::uint64_t(phaseIndex_));
    sink.u64(entryCount_);
    sink.u64(phaseRemaining_);
    snapshot::writeRng(sink, rng_);
    sink.u32(std::uint32_t(streams_.size()));
    for (const StreamState &stream : streams_)
        stream.pattern->serialize(sink);
    // Only the unserved tail is trace state; the cursor resets to the
    // start of the restored list.
    sink.u32(std::uint32_t(pending_.size() - pendingHead_));
    for (std::size_t i = pendingHead_; i < pending_.size(); ++i)
        writeInstruction(sink, pending_[i]);
}

void
SyntheticTrace::deserialize(snapshot::Source &src)
{
    // Rebuild the phase's stream/PC scaffolding through enterPhase()
    // (which derives it from config alone and does not consume rng_),
    // then overwrite the counters and per-pattern cursors it reset.
    const std::size_t phase = std::size_t(src.u64());
    const std::uint64_t entries = src.u64();
    entryCount_ = entries - 1;
    enterPhase(phase);
    phaseRemaining_ = src.u64();
    snapshot::readRng(src, rng_);
    checkCount(src.u32(), streams_.size(), "trace stream");
    for (StreamState &stream : streams_)
        stream.pattern->deserialize(src);
    pending_.clear();
    pendingHead_ = 0;
    const std::uint32_t pending = src.u32();
    for (std::uint32_t i = 0; i < pending; ++i) {
        Instruction inst;
        readInstruction(src, inst);
        pending_.push_back(inst);
    }
}

} // namespace pfsim::trace

// ---------------------------------------------------------------------
// fault
// ---------------------------------------------------------------------

namespace pfsim::fault
{

void
CorruptingTrace::serialize(snapshot::Sink &sink) const
{
    snapshot::writeRng(sink, rng_);
    writeFaultStats(sink, stats_);
}

void
CorruptingTrace::deserialize(snapshot::Source &src)
{
    snapshot::readRng(src, rng_);
    readFaultStats(src, stats_);
}

void
SanitizingTrace::serialize(snapshot::Sink &sink) const
{
    sink.u64(seen_);
    writeFaultStats(sink, stats_);
}

void
SanitizingTrace::deserialize(snapshot::Source &src)
{
    seen_ = src.u64();
    readFaultStats(src, stats_);
}

void
WeightFlipInjector::serialize(snapshot::Sink &sink) const
{
    snapshot::writeRng(sink, rng_);
    sink.u64(nextEvent_);
    sink.u32(std::uint32_t(outstanding_.size()));
    for (const OutstandingFlip &flip : outstanding_) {
        sink.u32(std::uint32_t(flip.feature));
        sink.u32(flip.index);
        sink.i32(flip.preValue);
        sink.u64(flip.cycle);
    }
    writeFaultStats(sink, stats_);
}

void
WeightFlipInjector::deserialize(snapshot::Source &src)
{
    snapshot::readRng(src, rng_);
    nextEvent_ = src.u64();
    outstanding_.clear();
    const std::uint32_t count = src.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        OutstandingFlip flip{};
        flip.feature = ppf::FeatureId(src.u32());
        flip.index = src.u32();
        flip.preValue = src.i32();
        flip.cycle = src.u64();
        outstanding_.push_back(flip);
    }
    readFaultStats(src, stats_);
}

void
SppFlipInjector::serialize(snapshot::Sink &sink) const
{
    snapshot::writeRng(sink, rng_);
    sink.u64(nextEvent_);
    writeFaultStats(sink, stats_);
}

void
SppFlipInjector::deserialize(snapshot::Source &src)
{
    snapshot::readRng(src, rng_);
    nextEvent_ = src.u64();
    readFaultStats(src, stats_);
}

void
DramFaultInjector::serialize(snapshot::Sink &sink) const
{
    snapshot::writeRng(sink, rng_);
    writeFaultStats(sink, stats_);
}

void
DramFaultInjector::deserialize(snapshot::Source &src)
{
    snapshot::readRng(src, rng_);
    readFaultStats(src, stats_);
}

void
MshrSqueezeInjector::serialize(snapshot::Sink &sink) const
{
    sink.u64(windowStart_);
    sink.b(active_);
    writeFaultStats(sink, stats_);
}

void
MshrSqueezeInjector::deserialize(snapshot::Source &src)
{
    windowStart_ = src.u64();
    active_ = src.b();
    readFaultStats(src, stats_);
}

void
FaultEngine::serialize(snapshot::Sink &sink) const
{
    sink.u32(std::uint32_t(injectors_.size()));
    for (const auto &injector : injectors_)
        injector->serialize(sink);
}

void
FaultEngine::deserialize(snapshot::Source &src)
{
    checkCount(src.u32(), injectors_.size(), "fault injector");
    for (const auto &injector : injectors_)
        injector->deserialize(src);
}

} // namespace pfsim::fault

// ---------------------------------------------------------------------
// sim
// ---------------------------------------------------------------------

namespace pfsim::sim
{

void
System::serialize(snapshot::Sink &sink) const
{
    // Register every Requestor a Request::ret can point at, in a fixed
    // order mirrored by deserialize(): per core {core, l1i, l1d, l2},
    // then the LLC.  Registration must precede any writeRequest call.
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        sink.registerPointer(
            static_cast<const cache::Requestor *>(cores_[i].get()));
        sink.registerPointer(
            static_cast<const cache::Requestor *>(l1is_[i].get()));
        sink.registerPointer(
            static_cast<const cache::Requestor *>(l1ds_[i].get()));
        sink.registerPointer(
            static_cast<const cache::Requestor *>(l2s_[i].get()));
    }
    sink.registerPointer(
        static_cast<const cache::Requestor *>(llc_.get()));

    sink.u64(now_);

    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->serialize(sink);
        l1is_[i]->serialize(sink);
        l1ds_[i]->serialize(sink);
        l2s_[i]->serialize(sink);
        prefetchers_[i]->serialize(sink);
    }
    llc_->serialize(sink);
    dram_->serialize(sink);
}

void
System::deserialize(snapshot::Source &src)
{
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        src.registerPointer(
            static_cast<cache::Requestor *>(cores_[i].get()));
        src.registerPointer(
            static_cast<cache::Requestor *>(l1is_[i].get()));
        src.registerPointer(
            static_cast<cache::Requestor *>(l1ds_[i].get()));
        src.registerPointer(
            static_cast<cache::Requestor *>(l2s_[i].get()));
    }
    src.registerPointer(static_cast<cache::Requestor *>(llc_.get()));

    now_ = src.u64();
    // Host-side scheduling state is not wire format: the skip probe
    // restarts from scratch, the wheel is rebuilt from component
    // nextEventCycle() ground truth, and the lazy clocks restart at
    // the restored cycle (a settled save guarantees every serialized
    // counter already includes all cycles up to now_).
    probeAt_ = 0;
    probeBackoff_ = 1;
    skippedCycles_ = 0;
    wheelValid_ = false;
    for (auto &core : cores_)
        core->syncClock(now_);
    dram_->syncClock(now_);

    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->deserialize(src);
        l1is_[i]->deserialize(src);
        l1ds_[i]->deserialize(src);
        l2s_[i]->deserialize(src);
        prefetchers_[i]->deserialize(src);
    }
    llc_->deserialize(src);
    dram_->deserialize(src);
}

} // namespace pfsim::sim
