#include "stats/histogram.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace pfsim::stats
{

Histogram::Histogram(int lo, int hi)
    : lo_(lo), hi_(hi), bins_(std::size_t(hi - lo + 1), 0)
{
    assert(lo <= hi);
}

void
Histogram::add(int value, std::uint64_t count)
{
    int v = std::clamp(value, lo_, hi_);
    bins_[std::size_t(v - lo_)] += count;
    total_ += count;
    weightedSum_ += double(v) * double(count);
}

std::uint64_t
Histogram::count(int value) const
{
    if (value < lo_ || value > hi_)
        return 0;
    return bins_[std::size_t(value - lo_)];
}

double
Histogram::mean() const
{
    return total_ == 0 ? 0.0 : weightedSum_ / double(total_);
}

double
Histogram::fractionWithin(int bound) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t inside = 0;
    for (int v = lo_; v <= hi_; ++v) {
        if (v >= -bound && v <= bound)
            inside += count(v);
    }
    return double(inside) / double(total_);
}

std::string
Histogram::render(unsigned width) const
{
    std::uint64_t peak = 0;
    for (auto b : bins_)
        peak = std::max(peak, b);
    std::string out;
    char line[160];
    for (int v = lo_; v <= hi_; ++v) {
        std::uint64_t c = count(v);
        unsigned bar = peak == 0
            ? 0
            : unsigned((c * width + peak - 1) / peak);
        std::snprintf(line, sizeof(line), "%4d | %-*s %llu\n", v,
                      int(width), std::string(bar, '#').c_str(),
                      static_cast<unsigned long long>(c));
        out += line;
    }
    return out;
}

} // namespace pfsim::stats
