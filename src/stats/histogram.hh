/**
 * @file
 * Integer-bucket histogram, used for the trained-weight distributions of
 * Figure 6 and for internal diagnostics.
 */

#ifndef PFSIM_STATS_HISTOGRAM_HH
#define PFSIM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pfsim::stats
{

/** A histogram over a closed integer range [lo, hi]. */
class Histogram
{
  public:
    Histogram(int lo, int hi);

    /** Record one sample; out-of-range samples clamp to the end bins. */
    void add(int value, std::uint64_t count = 1);

    int lo() const { return lo_; }
    int hi() const { return hi_; }

    /** Count in the bin for @p value. */
    std::uint64_t count(int value) const;

    /** Total number of samples. */
    std::uint64_t total() const { return total_; }

    /** Mean of the samples (0 when empty). */
    double mean() const;

    /** Fraction of samples whose |value| <= @p bound (0 when empty). */
    double fractionWithin(int bound) const;

    /**
     * Render as an ASCII bar chart, one row per bin, scaled so the
     * largest bin spans @p width characters.
     */
    std::string render(unsigned width = 50) const;

  private:
    int lo_;
    int hi_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
    double weightedSum_ = 0.0;
};

} // namespace pfsim::stats

#endif // PFSIM_STATS_HISTOGRAM_HH
