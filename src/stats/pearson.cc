#include "stats/pearson.hh"

#include <cmath>

namespace pfsim::stats
{

double
PearsonAccumulator::correlation() const
{
    if (n_ < 2)
        return 0.0;
    const double n = double(n_);
    const double cov = sumXY_ - sumX_ * sumY_ / n;
    const double varX = sumXX_ - sumX_ * sumX_ / n;
    const double varY = sumYY_ - sumY_ * sumY_ / n;
    if (varX <= 0.0 || varY <= 0.0)
        return 0.0;
    double r = cov / std::sqrt(varX * varY);
    if (r > 1.0)
        r = 1.0;
    if (r < -1.0)
        r = -1.0;
    return r;
}

void
PearsonAccumulator::merge(const PearsonAccumulator &other)
{
    n_ += other.n_;
    sumX_ += other.sumX_;
    sumY_ += other.sumY_;
    sumXX_ += other.sumXX_;
    sumYY_ += other.sumYY_;
    sumXY_ += other.sumXY_;
}

} // namespace pfsim::stats
