/**
 * @file
 * Streaming Pearson product-moment correlation.
 *
 * Section 5.5 of the paper selects perceptron features by computing
 * Pearson's correlation factor between each feature's contribution and
 * the prefetch outcome.  This accumulator computes r in one pass
 * without storing the samples.
 */

#ifndef PFSIM_STATS_PEARSON_HH
#define PFSIM_STATS_PEARSON_HH

#include <cstdint>

namespace pfsim::stats
{

/** One-pass accumulator for Pearson's r between two variables. */
class PearsonAccumulator
{
  public:
    /** Record one (x, y) observation. */
    void
    add(double x, double y)
    {
        ++n_;
        sumX_ += x;
        sumY_ += y;
        sumXX_ += x * x;
        sumYY_ += y * y;
        sumXY_ += x * y;
    }

    /** Number of observations so far. */
    std::uint64_t count() const { return n_; }

    /**
     * Pearson's r in [-1, 1].  Returns 0 when either variable has zero
     * variance (a constant stream carries no correlation information).
     */
    double correlation() const;

    /** Merge another accumulator's observations into this one. */
    void merge(const PearsonAccumulator &other);

  private:
    std::uint64_t n_ = 0;
    double sumX_ = 0.0;
    double sumY_ = 0.0;
    double sumXX_ = 0.0;
    double sumYY_ = 0.0;
    double sumXY_ = 0.0;
};

} // namespace pfsim::stats

#endif // PFSIM_STATS_PEARSON_HH
