#include "stats/perf_report.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/resource.h>
#include <sys/stat.h>

namespace pfsim::stats
{

double
PerfScenario::mips() const
{
    if (hostSeconds <= 0.0)
        return 0.0;
    return double(instructions) / hostSeconds / 1e6;
}

std::uint64_t
currentPeakRssKb()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return std::uint64_t(usage.ru_maxrss);
}

void
PerfScenario::sampleRss()
{
    maxRssKb = currentPeakRssKb();
}

void
PerfReport::sampleRss()
{
    maxRssKb = currentPeakRssKb();
}

namespace
{

void
appendNumber(std::string &out, double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += buf;
}

} // namespace

std::string
PerfReport::json() const
{
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"pfsim-bench-throughput-v1\",\n";
    out += "  \"max_rss_kb\": " + std::to_string(maxRssKb) + ",\n";
    out += "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const PerfScenario &s = scenarios[i];
        out += "    {\n";
        out += "      \"name\": \"" + s.name + "\",\n";
        out += "      \"instructions\": " +
            std::to_string(s.instructions) + ",\n";
        out += "      \"sim_cycles\": " + std::to_string(s.simCycles) +
            ",\n";
        out += "      \"host_seconds\": ";
        appendNumber(out, s.hostSeconds);
        out += ",\n      \"mips\": ";
        appendNumber(out, s.mips());
        out += ",\n      \"speedup_vs_naive\": ";
        appendNumber(out, s.speedupVsNaive);
        out += ",\n      \"max_rss_kb\": " +
            std::to_string(s.maxRssKb);
        out += "\n    }";
        out += i + 1 < scenarios.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

bool
PerfReport::writeJson(const std::string &path) const
{
    // Best-effort single-level mkdir covers the results/ convention.
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0)
        ::mkdir(path.substr(0, slash).c_str(), 0777);

    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        std::fprintf(stderr, "perf_report: cannot write %s: %s\n",
                     path.c_str(), std::strerror(errno));
        return false;
    }
    const std::string text = json();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), file) == text.size();
    std::fclose(file);
    if (!ok) {
        std::fprintf(stderr, "perf_report: short write to %s\n",
                     path.c_str());
    }
    return ok;
}

} // namespace pfsim::stats
