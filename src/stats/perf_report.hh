/**
 * @file
 * Machine-readable host-performance reports: the perf-regression
 * harness (bench/perf_smoke) measures a fixed set of scenarios and
 * archives them as JSON, and tools/perf/compare.py diffs two archives
 * to catch simulator-speed regressions that IPC numbers cannot see.
 */

#ifndef PFSIM_STATS_PERF_REPORT_HH
#define PFSIM_STATS_PERF_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pfsim::stats
{

/** Current process peak RSS in KiB (getrusage; 0 on failure). */
std::uint64_t currentPeakRssKb();

/** One measured scenario of a perf report. */
struct PerfScenario
{
    /** Stable scenario identifier (compare.py joins on it). */
    std::string name;

    /** Simulated instructions, warmup included. */
    std::uint64_t instructions = 0;

    /** Simulated cycles at the end of the run. */
    std::uint64_t simCycles = 0;

    /** Wall-clock seconds the scenario took on the host. */
    double hostSeconds = 0.0;

    /**
     * Host speedup of this scenario with the kernel fast path on over
     * the naive cycle loop; 0 when not measured.
     */
    double speedupVsNaive = 0.0;

    /**
     * Process peak RSS in KiB sampled right after this scenario ran.
     * Peak RSS is monotone over the process lifetime, so a jump from
     * one scenario to the next attributes the growth to that scenario
     * — this is how compare.py catches pool or arena leaks.
     */
    std::uint64_t maxRssKb = 0;

    /** Record the current process peak RSS into maxRssKb. */
    void sampleRss();

    /** Simulated million instructions per host-second. */
    double mips() const;
};

/** A full perf report: scenarios plus host-side context. */
struct PerfReport
{
    std::vector<PerfScenario> scenarios;

    /** Peak resident set size of the process, in KiB (getrusage). */
    std::uint64_t maxRssKb = 0;

    /** Record the current process peak RSS into maxRssKb. */
    void sampleRss();

    /** Serialize to the bench_throughput.json schema. */
    std::string json() const;

    /**
     * Write json() to @p path, creating parent directories as needed.
     * @return false (with a stderr diagnostic) on I/O failure.
     */
    bool writeJson(const std::string &path) const;
};

} // namespace pfsim::stats

#endif // PFSIM_STATS_PERF_REPORT_HH
