#include "stats/summary.hh"

#include <cassert>
#include <cmath>

namespace pfsim::stats
{

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        assert(v > 0.0);
        logSum += std::log(v);
    }
    return std::exp(logSum / double(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

double
toPercent(double ratio)
{
    return (ratio - 1.0) * 100.0;
}

} // namespace pfsim::stats
