/**
 * @file
 * Aggregation helpers for the paper's reporting methodology: geometric
 * means of speedups (Section 5.3) and simple arithmetic summaries.
 */

#ifndef PFSIM_STATS_SUMMARY_HH
#define PFSIM_STATS_SUMMARY_HH

#include <vector>

namespace pfsim::stats
{

/** Geometric mean of strictly positive values; 0 when empty. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 when empty. */
double mean(const std::vector<double> &values);

/** Convert a ratio (e.g. 1.0378) into percent improvement (3.78). */
double toPercent(double ratio);

} // namespace pfsim::stats

#endif // PFSIM_STATS_SUMMARY_HH
