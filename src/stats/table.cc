#include "stats/table.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace pfsim::stats
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    assert(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::pct(double ratio, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals,
                  (ratio - 1.0) * 100.0);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i != 0)
                line += "  ";
            // Left-align the first column (names), right-align numbers.
            if (i == 0)
                line += row[i] + std::string(widths[i] - row[i].size(),
                                             ' ');
            else
                line += std::string(widths[i] - row[i].size(), ' ') +
                        row[i];
        }
        return line + "\n";
    };

    std::string out = renderRow(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
        total += widths[i] + (i == 0 ? 0 : 2);
    out += std::string(total, '-') + "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

} // namespace pfsim::stats
