/**
 * @file
 * Aligned plain-text table renderer used by every bench binary to print
 * the rows/series the paper's tables and figures report.
 */

#ifndef PFSIM_STATS_TABLE_HH
#define PFSIM_STATS_TABLE_HH

#include <string>
#include <vector>

namespace pfsim::stats
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** Set the header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p decimals digits. */
    static std::string num(double v, int decimals = 2);

    /** Convenience: format a ratio as "+x.yz%" relative to 1.0. */
    static std::string pct(double ratio, int decimals = 2);

    /** Render with column alignment and a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pfsim::stats

#endif // PFSIM_STATS_TABLE_HH
