#include "stats/throughput.hh"

#include <cstdio>

namespace pfsim::stats
{

double
RunThroughput::mips() const
{
    if (hostSeconds <= 0.0)
        return 0.0;
    return double(instructions) / hostSeconds / 1e6;
}

void
FleetThroughput::add(const RunThroughput &run)
{
    ++runs;
    instructions += run.instructions;
    busySeconds += run.hostSeconds;
    checkpointHits += run.checkpointHits;
    checkpointMisses += run.checkpointMisses;
    warmupCyclesSaved += run.warmupCyclesSaved;
    cycles += run.cycles;
    coreTicks += run.coreTicks;
    cacheTicks += run.cacheTicks;
    dramTicks += run.dramTicks;
    faultTicks += run.faultTicks;
}

double
FleetThroughput::aggregateMips() const
{
    if (wallSeconds <= 0.0)
        return 0.0;
    return double(instructions) / wallSeconds / 1e6;
}

double
FleetThroughput::poolSpeedup() const
{
    if (wallSeconds <= 0.0 || busySeconds <= 0.0)
        return 1.0;
    return busySeconds / wallSeconds;
}

std::string
FleetThroughput::summary() const
{
    char buffer[360];
    int used = std::snprintf(
        buffer, sizeof(buffer),
        "%zu runs, %.1fM instructions in %.2fs wall "
        "(%u jobs, busy %.2fs): %.2f Mips aggregate, "
        "%.2fx pool speedup",
        runs, double(instructions) / 1e6, wallSeconds, jobs,
        busySeconds, aggregateMips(), poolSpeedup());
    if (checkpointHits + checkpointMisses > 0 && used > 0 &&
        std::size_t(used) < sizeof(buffer)) {
        used += std::snprintf(
            buffer + used, sizeof(buffer) - std::size_t(used),
            "; checkpoints %llu hit / %llu miss, %.1fM warmup "
            "cycles saved",
            static_cast<unsigned long long>(checkpointHits),
            static_cast<unsigned long long>(checkpointMisses),
            double(warmupCyclesSaved) / 1e6);
    }
    // Fast-path coverage: component ticks actually run per simulated
    // cycle, by class.  A naive run shows cores-per-system for the
    // core class; the wheel drives all classes toward their duty cycle.
    if (cycles > 0 && used > 0 && std::size_t(used) < sizeof(buffer)) {
        std::snprintf(
            buffer + used, sizeof(buffer) - std::size_t(used),
            "; ticks/cycle core %.3f cache %.3f dram %.3f fault %.3f "
            "over %.1fM cycles",
            double(coreTicks) / double(cycles),
            double(cacheTicks) / double(cycles),
            double(dramTicks) / double(cycles),
            double(faultTicks) / double(cycles), double(cycles) / 1e6);
    }
    return buffer;
}

} // namespace pfsim::stats
