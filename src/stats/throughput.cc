#include "stats/throughput.hh"

#include <cstdio>

namespace pfsim::stats
{

double
RunThroughput::mips() const
{
    if (hostSeconds <= 0.0)
        return 0.0;
    return double(instructions) / hostSeconds / 1e6;
}

void
FleetThroughput::add(const RunThroughput &run)
{
    ++runs;
    instructions += run.instructions;
    busySeconds += run.hostSeconds;
    checkpointHits += run.checkpointHits;
    checkpointMisses += run.checkpointMisses;
    warmupCyclesSaved += run.warmupCyclesSaved;
}

double
FleetThroughput::aggregateMips() const
{
    if (wallSeconds <= 0.0)
        return 0.0;
    return double(instructions) / wallSeconds / 1e6;
}

double
FleetThroughput::poolSpeedup() const
{
    if (wallSeconds <= 0.0 || busySeconds <= 0.0)
        return 1.0;
    return busySeconds / wallSeconds;
}

std::string
FleetThroughput::summary() const
{
    char buffer[240];
    int used = std::snprintf(
        buffer, sizeof(buffer),
        "%zu runs, %.1fM instructions in %.2fs wall "
        "(%u jobs, busy %.2fs): %.2f Mips aggregate, "
        "%.2fx pool speedup",
        runs, double(instructions) / 1e6, wallSeconds, jobs,
        busySeconds, aggregateMips(), poolSpeedup());
    if (checkpointHits + checkpointMisses > 0 && used > 0 &&
        std::size_t(used) < sizeof(buffer)) {
        std::snprintf(
            buffer + used, sizeof(buffer) - std::size_t(used),
            "; checkpoints %llu hit / %llu miss, %.1fM warmup "
            "cycles saved",
            static_cast<unsigned long long>(checkpointHits),
            static_cast<unsigned long long>(checkpointMisses),
            double(warmupCyclesSaved) / 1e6);
    }
    return buffer;
}

} // namespace pfsim::stats
