/**
 * @file
 * Simulation-throughput telemetry: how fast the *host* simulates, as
 * opposed to how fast the simulated machine runs.
 *
 * Every run records its wall-clock cost and simulated instruction
 * count; sweeps aggregate them fleet-wide.  Tracking MIPS (simulated
 * million instructions per host-second) per run and per sweep lets
 * BENCH_*.json archives catch host-speed regressions the IPC numbers
 * cannot see.
 */

#ifndef PFSIM_STATS_THROUGHPUT_HH
#define PFSIM_STATS_THROUGHPUT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace pfsim::stats
{

/** Host-speed telemetry of one simulation run. */
struct RunThroughput
{
    /** Simulated instructions, warmup included. */
    std::uint64_t instructions = 0;

    /** Simulated cycles the machine advanced, warmup included. */
    std::uint64_t cycles = 0;

    /**
     * Component ticks actually executed, by class (cores; caches
     * including the LLC; DRAM; the fault engine).  Compared against
     * cycles x component count this shows how much work the fast path
     * skipped — the skip mode jumps whole cycles, the wheel also
     * skips per-component inside busy cycles.
     */
    std::uint64_t coreTicks = 0;
    std::uint64_t cacheTicks = 0;
    std::uint64_t dramTicks = 0;
    std::uint64_t faultTicks = 0;

    /** Wall-clock seconds the run took on its worker thread. */
    double hostSeconds = 0.0;

    /** 1 when this run restored its warmup from a checkpoint. */
    std::uint64_t checkpointHits = 0;

    /** 1 when this run simulated warmup and published a checkpoint. */
    std::uint64_t checkpointMisses = 0;

    /** Warmup cycles skipped thanks to a checkpoint restore. */
    std::uint64_t warmupCyclesSaved = 0;

    /** Simulated million instructions per host-second; 0 if unknown. */
    double mips() const;
};

/**
 * Aggregate host-speed telemetry of a whole sweep.
 *
 * busySeconds sums every run's own wall-clock (what a serial sweep
 * would roughly cost); wallSeconds is the sweep's elapsed time, so
 * busySeconds / wallSeconds estimates the job pool's realised speedup.
 */
struct FleetThroughput
{
    std::size_t runs = 0;

    /** Worker threads the sweep ran with. */
    unsigned jobs = 1;

    /** Total simulated instructions across all runs. */
    std::uint64_t instructions = 0;

    /** Sum of per-run host seconds (serial-equivalent cost). */
    double busySeconds = 0.0;

    /** Elapsed wall-clock of the whole sweep. */
    double wallSeconds = 0.0;

    /** Runs that restored warmup from the checkpoint store. */
    std::uint64_t checkpointHits = 0;

    /** Runs that simulated warmup and published a checkpoint. */
    std::uint64_t checkpointMisses = 0;

    /** Total warmup cycles skipped via checkpoint restores. */
    std::uint64_t warmupCyclesSaved = 0;

    /** Total simulated cycles across all runs. */
    std::uint64_t cycles = 0;

    /** Component ticks executed across all runs, by class. */
    std::uint64_t coreTicks = 0;
    std::uint64_t cacheTicks = 0;
    std::uint64_t dramTicks = 0;
    std::uint64_t faultTicks = 0;

    /** Fold one finished run into the aggregate. */
    void add(const RunThroughput &run);

    /** Fleet MIPS: total instructions per elapsed host-second. */
    double aggregateMips() const;

    /** Realised pool speedup, busySeconds / wallSeconds; 1 if unknown. */
    double poolSpeedup() const;

    /** One-line human-readable summary for sweep footers. */
    std::string summary() const;
};

} // namespace pfsim::stats

#endif // PFSIM_STATS_THROUGHPUT_HH
