#include "trace/file_trace.hh"

#include <cstdio>
#include <cstring>

#include "util/logging.hh"

namespace pfsim::trace
{

namespace
{

constexpr char magic[8] = {'P', 'F', 'S', 'I', 'M', 'T', 'R', '1'};
constexpr std::size_t recordBytes = 8 + 8 + 8 + 1;

void
packU64(unsigned char *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = (unsigned char)(v >> (8 * i));
}

std::uint64_t
unpackU64(const unsigned char *in)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(in[i]) << (8 * i);
    return v;
}

} // namespace

TraceError::TraceError(Kind kind, const std::string &what)
    : std::runtime_error(what), kind_(kind)
{
}

void
recordTrace(TraceSource &source, const std::string &path,
            InstrCount count)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        fatal("cannot open trace file for writing: " + path);

    unsigned char header[16];
    std::memcpy(header, magic, 8);
    packU64(header + 8, count);
    std::fwrite(header, 1, sizeof(header), file);

    unsigned char record[recordBytes];
    Instruction instr;
    for (InstrCount i = 0; i < count; ++i) {
        if (!source.next(instr)) {
            std::fclose(file);
            fatal("trace source ran dry while recording " + path);
        }
        packU64(record, instr.pc);
        packU64(record + 8, instr.loadAddr);
        packU64(record + 16, instr.storeAddr);
        record[24] = (unsigned char)((instr.isBranch ? 1 : 0) |
                                     (instr.branchTaken ? 2 : 0) |
                                     (instr.dependsOnPrev ? 4 : 0));
        std::fwrite(record, 1, recordBytes, file);
    }
    if (std::fclose(file) != 0)
        fatal("error finishing trace file: " + path);
}

FileTrace::FileTrace(const std::string &path, bool loop)
    : loop_(loop), name_(path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        throw TraceError(TraceError::Kind::OpenFailed,
                         "cannot open trace file: " + path);
    }

    unsigned char header[16];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header) ||
        std::memcmp(header, magic, 8) != 0) {
        std::fclose(file);
        throw TraceError(TraceError::Kind::BadMagic,
                         "not a pfsim trace file: " + path);
    }
    const std::uint64_t count = unpackU64(header + 8);
    if (count == 0) {
        std::fclose(file);
        throw TraceError(TraceError::Kind::Empty,
                         "empty trace file: " + path);
    }

    // Validate the promised length against the actual file size up
    // front: a corrupt count field must not become a giant reserve()
    // or a long partial read before the error surfaces.
    const long data_start = std::ftell(file);
    std::fseek(file, 0, SEEK_END);
    const long file_end = std::ftell(file);
    std::fseek(file, data_start, SEEK_SET);
    const std::uint64_t available =
        data_start >= 0 && file_end >= data_start
            ? std::uint64_t(file_end - data_start) / recordBytes
            : 0;
    if (available < count) {
        std::fclose(file);
        throw TraceError(
            TraceError::Kind::TruncatedRecord,
            "truncated trace file: " + path + " promises " +
                std::to_string(count) + " records but holds " +
                std::to_string(available));
    }

    records_.reserve(count);
    unsigned char record[recordBytes];
    for (std::uint64_t i = 0; i < count; ++i) {
        if (std::fread(record, 1, recordBytes, file) != recordBytes) {
            std::fclose(file);
            throw TraceError(
                TraceError::Kind::TruncatedRecord,
                "truncated trace file: " + path + " promises " +
                    std::to_string(count) + " records, record " +
                    std::to_string(i) + " is incomplete");
        }
        if ((record[24] & ~7) != 0) {
            std::fclose(file);
            throw TraceError(
                TraceError::Kind::GarbageRecord,
                "malformed trace record " + std::to_string(i) +
                    " in " + path + ": reserved flag bits set "
                    "(flag byte " +
                    std::to_string(unsigned(record[24])) + ")");
        }
        Instruction instr;
        instr.pc = unpackU64(record);
        instr.loadAddr = unpackU64(record + 8);
        instr.storeAddr = unpackU64(record + 16);
        instr.isBranch = (record[24] & 1) != 0;
        instr.branchTaken = (record[24] & 2) != 0;
        instr.dependsOnPrev = (record[24] & 4) != 0;
        records_.push_back(instr);
    }
    std::fclose(file);
}

bool
FileTrace::next(Instruction &out)
{
    if (position_ >= records_.size()) {
        if (!loop_)
            return false;
        position_ = 0;
    }
    out = records_[position_++];
    return true;
}

} // namespace pfsim::trace
