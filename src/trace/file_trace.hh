/**
 * @file
 * Trace record/replay: serialise any TraceSource to a compact binary
 * file and play it back.
 *
 * This gives downstream users a ChampSim-like workflow — capture a
 * workload once, re-run it across prefetcher configurations — and
 * makes cross-machine reproduction independent of the synthetic
 * generators' code path.
 *
 * Format (little-endian):
 *   8 bytes  magic "PFSIMTR1"
 *   8 bytes  record count
 *   per record: pc (8), loadAddr (8), storeAddr (8), flags (1)
 *     flag bit 0: isBranch, bit 1: branchTaken, bit 2: dependsOnPrev
 */

#ifndef PFSIM_TRACE_FILE_TRACE_HH
#define PFSIM_TRACE_FILE_TRACE_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "trace/source.hh"
#include "util/types.hh"

namespace pfsim::trace
{

/**
 * Structured trace-input failure.  Malformed input files are an
 * environment problem, not a simulator bug, so FileTrace reports them
 * as a typed, catchable error (a resilient sweep turns it into a
 * degraded row) instead of aborting the process.
 */
class TraceError : public std::runtime_error
{
  public:
    /** What exactly is wrong with the file. */
    enum class Kind
    {
        OpenFailed,      ///< file missing or unreadable
        BadMagic,        ///< not a pfsim trace (or short header)
        Empty,           ///< zero-record trace
        TruncatedRecord, ///< count promises more records than exist
        GarbageRecord,   ///< record uses reserved flag bits
    };

    TraceError(Kind kind, const std::string &what);

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/** Capture @p count instructions from @p source into @p path. */
void recordTrace(TraceSource &source, const std::string &path,
                 InstrCount count);

/** Replays a recorded trace file. */
class FileTrace : public TraceSource
{
  public:
    /**
     * @param path file written by recordTrace
     * @param loop when true, wrap around at end-of-trace (so warmup +
     *        measurement can exceed the recorded length)
     * @throws TraceError when the file is missing, not a pfsim trace,
     *         empty, truncated, or contains malformed records
     */
    explicit FileTrace(const std::string &path, bool loop = true);

    bool next(Instruction &out) override;
    const std::string &name() const override { return name_; }

    /** Number of recorded instructions. */
    std::size_t size() const { return records_.size(); }

  private:
    std::vector<Instruction> records_;
    std::size_t position_ = 0;
    bool loop_;
    std::string name_;
};

} // namespace pfsim::trace

#endif // PFSIM_TRACE_FILE_TRACE_HH
