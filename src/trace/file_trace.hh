/**
 * @file
 * Trace record/replay: serialise any TraceSource to a compact binary
 * file and play it back.
 *
 * This gives downstream users a ChampSim-like workflow — capture a
 * workload once, re-run it across prefetcher configurations — and
 * makes cross-machine reproduction independent of the synthetic
 * generators' code path.
 *
 * Format (little-endian):
 *   8 bytes  magic "PFSIMTR1"
 *   8 bytes  record count
 *   per record: pc (8), loadAddr (8), storeAddr (8), flags (1)
 *     flag bit 0: isBranch, bit 1: branchTaken, bit 2: dependsOnPrev
 */

#ifndef PFSIM_TRACE_FILE_TRACE_HH
#define PFSIM_TRACE_FILE_TRACE_HH

#include <string>
#include <vector>

#include "trace/source.hh"
#include "util/types.hh"

namespace pfsim::trace
{

/** Capture @p count instructions from @p source into @p path. */
void recordTrace(TraceSource &source, const std::string &path,
                 InstrCount count);

/** Replays a recorded trace file. */
class FileTrace : public TraceSource
{
  public:
    /**
     * @param path file written by recordTrace
     * @param loop when true, wrap around at end-of-trace (so warmup +
     *        measurement can exceed the recorded length)
     */
    explicit FileTrace(const std::string &path, bool loop = true);

    bool next(Instruction &out) override;
    const std::string &name() const override { return name_; }

    /** Number of recorded instructions. */
    std::size_t size() const { return records_.size(); }

  private:
    std::vector<Instruction> records_;
    std::size_t position_ = 0;
    bool loop_;
    std::string name_;
};

} // namespace pfsim::trace

#endif // PFSIM_TRACE_FILE_TRACE_HH
