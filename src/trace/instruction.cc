#include "trace/instruction.hh"

// Instruction is a plain record; this translation unit exists so the
// header participates in the build and stays self-contained.

namespace pfsim
{

static_assert(sizeof(Instruction) <= 32,
              "Instruction should stay a small POD record");

} // namespace pfsim
