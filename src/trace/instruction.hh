/**
 * @file
 * The instruction record that flows from a trace source into the core
 * model.  This mirrors the information content of a ChampSim trace
 * record: PC, branch behaviour, and memory operands.
 */

#ifndef PFSIM_TRACE_INSTRUCTION_HH
#define PFSIM_TRACE_INSTRUCTION_HH

#include "util/types.hh"

namespace pfsim
{

/** One traced instruction. */
struct Instruction
{
    /** Program counter of the instruction. */
    Pc pc = 0;

    /** Load address, or 0 when the instruction does not load. */
    Addr loadAddr = 0;

    /** Store address, or 0 when the instruction does not store. */
    Addr storeAddr = 0;

    /** True for conditional branch instructions. */
    bool isBranch = false;

    /** Branch outcome (meaningful only when isBranch). */
    bool branchTaken = false;

    /**
     * True when this load depends on the value produced by the previous
     * load (pointer chasing).  The core serialises such loads, which is
     * what makes pointer-chasing workloads exhibit low memory-level
     * parallelism and makes them prefetch averse, as the paper observes
     * for 605.mcf_s.
     */
    bool dependsOnPrev = false;

    bool isLoad() const { return loadAddr != 0; }
    bool isStore() const { return storeAddr != 0; }
    bool isMemory() const { return isLoad() || isStore(); }
};

} // namespace pfsim

#endif // PFSIM_TRACE_INSTRUCTION_HH
