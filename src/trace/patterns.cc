#include "trace/patterns.hh"

#include <algorithm>
#include <cassert>

#include "util/bits.hh"

namespace pfsim::trace
{

// ---------------------------------------------------------------- Stream

StreamPattern::StreamPattern(Addr base)
    : nextAddr_(blockAlign(base))
{
}

Reference
StreamPattern::next(Rng &)
{
    Reference ref{nextAddr_, false};
    nextAddr_ += blockSize;
    return ref;
}

// ---------------------------------------------------------------- Stride

StridePattern::StridePattern(Addr base, int stride_blocks)
    : nextAddr_(blockAlign(base)),
      strideBytes_(stride_blocks * int(blockSize))
{
    assert(stride_blocks != 0);
}

Reference
StridePattern::next(Rng &)
{
    Reference ref{nextAddr_, false};
    nextAddr_ = Addr(std::int64_t(nextAddr_) + strideBytes_);
    return ref;
}

// -------------------------------------------------------------- DeltaSeq

DeltaSeqPattern::DeltaSeqPattern(Addr base, std::vector<int> deltas,
                                 double break_prob,
                                 bool page_selective)
    : page_(pageNumber(base)), offset_(0), deltas_(std::move(deltas)),
      breakProb_(break_prob), pageSelective_(page_selective)
{
    assert(!deltas_.empty());
}

void
DeltaSeqPattern::advancePage()
{
    ++page_;
    offset_ = 0;
    step_ = 0;
}

Reference
DeltaSeqPattern::next(Rng &rng)
{
    Reference ref;
    ref.addr = (page_ << pageShift) | (Addr(offset_) << blockShift);

    double break_prob = breakProb_;
    if (pageSelective_ && breakProb_ > 0.0) {
        // A deterministic hash marks 25% of pages "bad"; only those
        // pages break (harder), so page identity determines quality.
        const bool bad_page = (mix64(page_) & 3) == 0;
        break_prob = bad_page ? std::min(1.0, breakProb_ * 3.0) : 0.0;
    }
    if (rng.chance(break_prob)) {
        advancePage();
        return ref;
    }

    int delta = deltas_[step_ % deltas_.size()];
    ++step_;
    int next_offset = int(offset_) + delta;
    if (next_offset < 0 || next_offset >= int(blocksPerPage))
        advancePage();
    else
        offset_ = unsigned(next_offset);
    return ref;
}

// ----------------------------------------------------------- PageShuffle

PageShufflePattern::PageShufflePattern(Addr base)
    : page_(pageNumber(base))
{
    buildOrder();
}

void
PageShufflePattern::buildOrder()
{
    order_.resize(blocksPerPage);
    for (unsigned i = 0; i < blocksPerPage; ++i)
        order_[i] = i;
    // Deterministic per-page Fisher-Yates shuffle seeded by the page
    // number, so replays of the same trace are bit-identical.
    Rng page_rng(mix64(page_));
    for (unsigned i = blocksPerPage - 1; i > 0; --i) {
        auto j = unsigned(page_rng.below(i + 1));
        std::swap(order_[i], order_[j]);
    }
    step_ = 0;
}

Reference
PageShufflePattern::next(Rng &)
{
    Reference ref;
    ref.addr =
        (page_ << pageShift) | (Addr(order_[step_]) << blockShift);
    if (++step_ >= order_.size()) {
        ++page_;
        buildOrder();
    }
    return ref;
}

// ----------------------------------------------------------- RegionSweep

RegionSweepPattern::RegionSweepPattern(Addr base, int max_jitter_blocks)
    : nextAddr_(blockAlign(base)), maxJitter_(max_jitter_blocks)
{
    assert(max_jitter_blocks >= 1);
}

Reference
RegionSweepPattern::next(Rng &rng)
{
    Reference ref{nextAddr_, false};
    auto jump = Addr(rng.range(1, maxJitter_));
    nextAddr_ += jump * blockSize;
    return ref;
}

// ----------------------------------------------------------- BurstStride

BurstStridePattern::BurstStridePattern(Addr base, int stride_blocks,
                                       unsigned burst_len)
    : page_(pageNumber(base)), offset_(0), stride_(stride_blocks),
      burstLen_(burst_len == 0 ? 1 : burst_len)
{
    assert(stride_blocks != 0);
}

Reference
BurstStridePattern::next(Rng &rng)
{
    Reference ref;
    ref.addr = (page_ << pageShift) |
               (Addr(unsigned(offset_)) << blockShift);

    ++pos_;
    int next_offset = offset_ + stride_;
    if (pos_ >= burstLen_ || next_offset < 0 ||
        next_offset >= int(blocksPerPage)) {
        // Burst over: fresh page, pseudo-random start offset.
        ++page_;
        offset_ = int(rng.below(blocksPerPage / 2));
        pos_ = 0;
    } else {
        offset_ = next_offset;
    }
    return ref;
}

// ---------------------------------------------------------- PointerChase

PointerChasePattern::PointerChasePattern(Addr base,
                                         std::uint64_t footprint_blocks)
    : base_(blockAlign(base))
{
    // Round the footprint up to a power of two so that the LCG below
    // (a % 8 == 5, c odd) has full period over [0, modulus).
    modulus_ = 1;
    while (modulus_ < footprint_blocks)
        modulus_ <<= 1;
    if (modulus_ < 8)
        modulus_ = 8;
}

Reference
PointerChasePattern::next(Rng &)
{
    Reference ref;
    ref.addr = base_ + (state_ % modulus_) * blockSize;
    ref.dependent = true;
    state_ = (state_ * 6364136223846793005ULL + 1442695040888963407ULL) &
             (modulus_ - 1);
    return ref;
}

// -------------------------------------------------------------- HotReuse

HotReusePattern::HotReusePattern(Addr base, std::uint64_t hot_blocks,
                                 double cold_prob)
    : base_(blockAlign(base)), hotBlocks_(hot_blocks),
      coldProb_(cold_prob),
      coldPage_(pageNumber(base) + (hot_blocks / blocksPerPage) + 16)
{
    assert(hot_blocks > 0);
}

Reference
HotReusePattern::next(Rng &rng)
{
    Reference ref;
    if (rng.chance(coldProb_)) {
        // Touch one block of a fresh page, then move on: a compulsory
        // miss that no history-based prefetcher can cover.
        ref.addr = (coldPage_ << pageShift) |
                   (rng.below(blocksPerPage) << blockShift);
        ++coldPage_;
    } else {
        ref.addr = base_ + rng.below(hotBlocks_) * blockSize;
    }
    return ref;
}

} // namespace pfsim::trace
