/**
 * @file
 * Memory address pattern generators.
 *
 * These are the building blocks of the synthetic workloads that stand in
 * for SPEC CPU 2017 / 2006 / CloudSuite SimPoint traces (see DESIGN.md,
 * substitution table).  Each pattern models one access-pattern *class*
 * whose interaction with prefetchers is well understood:
 *
 *  - Stream:        unit-stride streaming across fresh pages; every
 *                   prefetcher covers it.
 *  - Stride:        fixed multi-block stride.
 *  - DeltaSeq:      a repeating intra-page delta sequence; rewards SPP's
 *                   signature/pattern correlation, and when the sequence
 *                   is long, rewards deep lookahead.  A per-page "break"
 *                   probability makes path confidence decay, which is
 *                   exactly the situation PPF exploits: outcomes are
 *                   correlated with page/PC features even where SPP's
 *                   global confidence has collapsed.
 *  - PageShuffle:   every block of a page is eventually touched, but in
 *                   a pseudo-random order.  Delta-confidence collapses
 *                   (SPP throttles, as the paper reports for
 *                   623.xalancbmk_s), yet *any* same-page prefetch is
 *                   ultimately useful, so an outcome-trained filter
 *                   learns to keep prefetching.
 *  - RegionSweep:   dense forward sweeps with jittered small deltas;
 *                   offset-based spatial prefetchers (BOP, AMPM) shine,
 *                   signature-based SPP is middling (the 607.cactuBSSN_s
 *                   story).
 *  - PointerChase:  dependent loads over a pseudo-random permutation;
 *                   prefetch averse and low-MLP (the 605.mcf_s story).
 *  - HotReuse:      cache-resident working set with rare cold misses;
 *                   models the non-memory-intensive suite members.
 */

#ifndef PFSIM_TRACE_PATTERNS_HH
#define PFSIM_TRACE_PATTERNS_HH

#include <memory>
#include <vector>

#include "util/random.hh"
#include "util/types.hh"

namespace pfsim::snapshot
{
class Sink;
class Source;
} // namespace pfsim::snapshot

namespace pfsim::trace
{

/** A generated memory reference. */
struct Reference
{
    Addr addr = 0;
    /** True when the load consumes the previous load's value. */
    bool dependent = false;
};

/** Interface of a single access-stream address generator. */
class AddressPattern
{
  public:
    virtual ~AddressPattern() = default;

    /** Produce the next reference of this stream. */
    virtual Reference next(Rng &rng) = 0;

    /**
     * Snapshot support: patterns with a mutable cursor override both
     * (definitions in snapshot/state_io.cc).  Configuration-derived
     * state (strides, delta lists, footprints) is not serialized; it
     * is rebuilt from the trace config on restore.
     */
    virtual void serialize(snapshot::Sink &) const {}
    virtual void deserialize(snapshot::Source &) {}
};

/** Unit-stride streaming over consecutive pages from @p base. */
class StreamPattern : public AddressPattern
{
  public:
    explicit StreamPattern(Addr base);
    Reference next(Rng &rng) override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    Addr nextAddr_;
};

/** Fixed stride of @p stride_blocks cache blocks. */
class StridePattern : public AddressPattern
{
  public:
    StridePattern(Addr base, int stride_blocks);
    Reference next(Rng &rng) override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    Addr nextAddr_;
    int strideBytes_;
};

/**
 * A repeating intra-page delta sequence with an optional per-access
 * break probability.  On a break (or when the sequence walks off the
 * page) the stream jumps to the next page and restarts the sequence.
 *
 * When @p break_prob is zero on some pages and high on others (the
 * caller models that by instantiating two DeltaSeqPattern streams with
 * different probabilities behind different PCs), SPP's single global
 * path confidence cannot separate them, while PPF's PC- and
 * page-indexed features can.
 */
class DeltaSeqPattern : public AddressPattern
{
  public:
    /**
     * @param page_selective when true, the break probability applies
     * (tripled) only to "bad pages" — the 25% of pages selected by a
     * hash of the page number — and good pages never break.  Page
     * identity then *determines* prefetch quality, which is the
     * situation PPF's page-indexed features exploit and SPP's single
     * global confidence cannot (see DESIGN.md).
     */
    DeltaSeqPattern(Addr base, std::vector<int> deltas,
                    double break_prob, bool page_selective = false);
    Reference next(Rng &rng) override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    void advancePage();

    Addr page_;
    unsigned offset_;
    std::vector<int> deltas_;
    std::size_t step_ = 0;
    double breakProb_;
    bool pageSelective_;
};

/**
 * Dense coverage of each page in a deterministic pseudo-random order
 * (a per-page permutation of all 64 block offsets), then the next page.
 */
class PageShufflePattern : public AddressPattern
{
  public:
    explicit PageShufflePattern(Addr base);
    Reference next(Rng &rng) override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    void buildOrder();

    Addr page_;
    std::vector<unsigned> order_;
    std::size_t step_ = 0;
};

/**
 * Forward sweep with jittered deltas drawn uniformly from
 * [1, max_jitter_blocks], covering regions densely but with an
 * inconsistent signature path.
 */
class RegionSweepPattern : public AddressPattern
{
  public:
    RegionSweepPattern(Addr base, int max_jitter_blocks);
    Reference next(Rng &rng) override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    Addr nextAddr_;
    int maxJitter_;
};

/**
 * Short stride bursts over ever-fresh pages: a global stride of
 * @p stride_blocks is followed for @p burst_len accesses within a
 * page, then the stream jumps to a fresh page at a pseudo-random
 * offset.  A global-offset prefetcher (BOP) reacts from the first
 * access of each burst, while a per-page signature prefetcher spends
 * most of the short burst warming up — the 607.cactuBSSN_s dynamic
 * where BOP beats SPP-based schemes.
 */
class BurstStridePattern : public AddressPattern
{
  public:
    BurstStridePattern(Addr base, int stride_blocks,
                       unsigned burst_len);
    Reference next(Rng &rng) override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    Addr page_;
    int offset_;
    int stride_;
    unsigned burstLen_;
    unsigned pos_ = 0;
};

/**
 * A dependent pointer chase over a footprint of
 * @p footprint_blocks cache blocks (rounded up to a power of two).
 * The walk is a full-period LCG over the footprint, so every block is
 * visited once per period but in an unpredictable order.
 */
class PointerChasePattern : public AddressPattern
{
  public:
    PointerChasePattern(Addr base, std::uint64_t footprint_blocks);
    Reference next(Rng &rng) override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    Addr base_;
    std::uint64_t modulus_;
    std::uint64_t state_ = 1;
};

/**
 * Reuse within a hot set of @p hot_blocks cache blocks, with
 * probability @p cold_prob of touching a fresh cold page instead.
 */
class HotReusePattern : public AddressPattern
{
  public:
    HotReusePattern(Addr base, std::uint64_t hot_blocks,
                    double cold_prob);
    Reference next(Rng &rng) override;
    void serialize(snapshot::Sink &sink) const override;
    void deserialize(snapshot::Source &src) override;

  private:
    Addr base_;
    std::uint64_t hotBlocks_;
    double coldProb_;
    Addr coldPage_;
};

} // namespace pfsim::trace

#endif // PFSIM_TRACE_PATTERNS_HH
