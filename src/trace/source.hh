/**
 * @file
 * The trace-source interface consumed by the core model.
 */

#ifndef PFSIM_TRACE_SOURCE_HH
#define PFSIM_TRACE_SOURCE_HH

#include <string>

#include "trace/instruction.hh"

namespace pfsim::trace
{

/**
 * A producer of a (conceptually infinite) instruction stream.
 *
 * Synthetic sources never run dry; next() returning false exists so a
 * file-backed source could be added without touching the core.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next instruction. @return false at end of trace. */
    virtual bool next(Instruction &out) = 0;

    /** Human-readable workload name, used in reports. */
    virtual const std::string &name() const = 0;
};

} // namespace pfsim::trace

#endif // PFSIM_TRACE_SOURCE_HH
