#include "trace/synthetic.hh"

#include <cassert>
#include <cmath>

#include "util/bits.hh"
#include "util/logging.hh"

namespace pfsim::trace
{

namespace
{

/** Code region base for generated PCs. */
constexpr Pc codeBase = 0x400000;

/** Bytes of code region reserved per stream. */
constexpr Pc codeStride = 0x1000;

/** Data region base; streams are separated by 16 GB to avoid overlap. */
constexpr Addr dataBase = Addr{1} << 34;

/** Data region separation per (phase, stream). */
constexpr Addr dataStride = Addr{1} << 34;

std::unique_ptr<AddressPattern>
makePattern(const StreamConfig &cfg, Addr base)
{
    switch (cfg.kind) {
      case PatternKind::Stream:
        return std::make_unique<StreamPattern>(base);
      case PatternKind::Stride:
        return std::make_unique<StridePattern>(base, cfg.stride);
      case PatternKind::DeltaSeq:
        return std::make_unique<DeltaSeqPattern>(base, cfg.deltas,
                                                 cfg.breakProb,
                                                 cfg.pageSelective);
      case PatternKind::PageShuffle:
        return std::make_unique<PageShufflePattern>(base);
      case PatternKind::RegionSweep:
        return std::make_unique<RegionSweepPattern>(base, cfg.jitter);
      case PatternKind::BurstStride:
        return std::make_unique<BurstStridePattern>(base, cfg.stride,
                                                    cfg.burstLen);
      case PatternKind::PointerChase:
        return std::make_unique<PointerChasePattern>(
            base, cfg.footprintBlocks);
      case PatternKind::HotReuse:
        return std::make_unique<HotReusePattern>(base,
                                                 cfg.footprintBlocks,
                                                 cfg.coldProb);
    }
    panic("unhandled PatternKind");
}

} // namespace

SyntheticTrace::SyntheticTrace(SyntheticConfig config)
    : config_(std::move(config)), rng_(config_.seed)
{
    if (config_.phases.empty())
        fatal("synthetic workload '" + config_.name + "' has no phases");
    for (const auto &phase : config_.phases) {
        if (phase.streams.empty())
            fatal("synthetic workload '" + config_.name +
                  "' has a phase with no streams");
    }
    enterPhase(0);
}

void
SyntheticTrace::enterPhase(std::size_t index)
{
    phaseIndex_ = index;
    ++entryCount_;
    const PhaseConfig &phase = config_.phases[index];
    phaseRemaining_ = phase.length == 0 ? ~InstrCount{0} : phase.length;

    streams_.clear();
    totalWeight_ = 0.0;
    for (std::size_t s = 0; s < phase.streams.size(); ++s) {
        const StreamConfig &sc = phase.streams[s];
        StreamState state;
        // Give each (phase, stream) pair a distinct code identity and a
        // distinct data region.  The data region also advances each time
        // a phase is re-entered so the phase starts on cold data again.
        Pc code = codeBase + Pc(index * 64 + s) * codeStride;
        state.aluPcBase = code;
        state.loadPc = code + 0x100;
        state.storePc = code + 0x108;
        state.branchPc = code + 0x110;
        state.weight = sc.weight;
        Addr base = dataBase + Addr(index * 64 + s) * dataStride +
                    Addr(entryCount_) * (dataStride / 64);
        state.pattern = makePattern(sc, base);
        totalWeight_ += sc.weight;
        streams_.push_back(std::move(state));
    }
    assert(totalWeight_ > 0.0);
}

std::size_t
SyntheticTrace::pickStream()
{
    double draw = rng_.uniform() * totalWeight_;
    for (std::size_t s = 0; s < streams_.size(); ++s) {
        draw -= streams_[s].weight;
        if (draw <= 0.0)
            return s;
    }
    return streams_.size() - 1;
}

void
SyntheticTrace::buildIteration()
{
    const PhaseConfig &phase = config_.phases[phaseIndex_];
    StreamState &stream = streams_[pickStream()];

    // One iteration carries exactly one load; pad with ALU instructions
    // so loads make up ~memRatio of the stream.  The iteration length is
    // jittered by one instruction so the mix is not perfectly periodic.
    int body = int(std::lround(1.0 / phase.memRatio)) - 2;
    if (body < 0)
        body = 0;
    if (body > 0 && rng_.chance(0.5))
        body += rng_.chance(0.5) ? 1 : -1;
    if (body < 0)
        body = 0;

    for (int i = 0; i < body; ++i) {
        Instruction alu;
        alu.pc = stream.aluPcBase + Pc(i) * 4;
        pending_.push_back(alu);
    }

    Reference ref = stream.pattern->next(rng_);
    Instruction load;
    load.pc = stream.loadPc;
    load.loadAddr = ref.addr;
    load.dependsOnPrev = ref.dependent;
    pending_.push_back(load);

    if (rng_.chance(phase.storeProb)) {
        // Read-modify-write idiom: the store hits the freshly loaded
        // block, so write traffic does not corrupt the L2 delta stream.
        Instruction store;
        store.pc = stream.storePc;
        store.storeAddr = ref.addr;
        pending_.push_back(store);
    }

    Instruction branch;
    branch.pc = stream.branchPc;
    branch.isBranch = true;
    branch.branchTaken = rng_.chance(phase.mispredictRate)
        ? rng_.chance(0.5)
        : true;
    pending_.push_back(branch);
}

bool
SyntheticTrace::next(Instruction &out)
{
    if (pendingHead_ == pending_.size()) {
        pending_.clear();
        pendingHead_ = 0;
        buildIteration();
    }
    out = pending_[pendingHead_++];

    if (--phaseRemaining_ == 0) {
        std::size_t next_phase = (phaseIndex_ + 1) % config_.phases.size();
        enterPhase(next_phase);
        pending_.clear();
        pendingHead_ = 0;
    }
    return true;
}

} // namespace pfsim::trace
