/**
 * @file
 * The synthetic trace engine: turns a declarative workload description
 * (phases of weighted access streams plus an instruction mix) into a
 * deterministic instruction stream.
 *
 * Each access stream gets a stable PC identity: a loop body of ALU
 * instructions, one load (and sometimes a store), and a closing
 * conditional branch.  Stable per-stream PCs matter because both SPP
 * (via the L2 access stream) and PPF (via its PC-derived features)
 * correlate behaviour with PCs; a trace with random PCs would
 * artificially cripple exactly the mechanisms under study.
 */

#ifndef PFSIM_TRACE_SYNTHETIC_HH
#define PFSIM_TRACE_SYNTHETIC_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/patterns.hh"
#include "trace/source.hh"
#include "util/random.hh"

namespace pfsim::trace
{

/** The pattern classes a stream can use (see patterns.hh). */
enum class PatternKind
{
    Stream,
    Stride,
    DeltaSeq,
    PageShuffle,
    RegionSweep,
    BurstStride,
    PointerChase,
    HotReuse,
};

/** Configuration of one access stream within a phase. */
struct StreamConfig
{
    PatternKind kind = PatternKind::Stream;

    /** Relative probability of an iteration using this stream. */
    double weight = 1.0;

    /** DeltaSeq: the repeating intra-page delta sequence. */
    std::vector<int> deltas = {1};

    /** DeltaSeq: per-access probability of abandoning the page. */
    double breakProb = 0.0;

    /** DeltaSeq: breaks confined to hash-selected "bad" pages. */
    bool pageSelective = false;

    /** Stride: stride in cache blocks. */
    int stride = 2;

    /** RegionSweep: maximum jitter in cache blocks. */
    int jitter = 3;

    /** BurstStride: accesses per page burst. */
    unsigned burstLen = 8;

    /** PointerChase / HotReuse: footprint in cache blocks. */
    std::uint64_t footprintBlocks = std::uint64_t{1} << 16;

    /** HotReuse: probability of a cold-page access. */
    double coldProb = 0.01;
};

/** Configuration of one execution phase. */
struct PhaseConfig
{
    std::vector<StreamConfig> streams;

    /** Fraction of instructions that are loads. */
    double memRatio = 0.30;

    /** Probability that a load iteration also stores. */
    double storeProb = 0.15;

    /** Fraction of closing branches with a random outcome. */
    double mispredictRate = 0.01;

    /** Phase length in instructions; 0 means "rest of the run". */
    InstrCount length = 0;
};

/** A complete synthetic workload description. */
struct SyntheticConfig
{
    std::string name = "unnamed";
    std::uint64_t seed = 1;
    std::vector<PhaseConfig> phases;
};

/** The synthetic trace generator. */
class SyntheticTrace : public TraceSource
{
  public:
    explicit SyntheticTrace(SyntheticConfig config);

    bool next(Instruction &out) override;
    const std::string &name() const override { return config_.name; }

    /**
     * Snapshot support (definitions in snapshot/state_io.cc): the
     * generator cursor — phase position, RNG, per-pattern cursors and
     * buffered instructions — so a restored trace resumes exactly
     * where the saved one stopped.
     */
    void serialize(snapshot::Sink &sink) const;
    void deserialize(snapshot::Source &src);

  private:
    /** Per-stream runtime state. */
    struct StreamState
    {
        std::unique_ptr<AddressPattern> pattern;
        double weight;
        Pc loadPc;
        Pc storePc;
        Pc branchPc;
        Pc aluPcBase;
    };

    void enterPhase(std::size_t index);
    void buildIteration();
    std::size_t pickStream();

    SyntheticConfig config_;
    Rng rng_;
    std::size_t phaseIndex_ = 0;
    std::uint64_t entryCount_ = 0;
    InstrCount phaseRemaining_ = 0;
    std::vector<StreamState> streams_;
    double totalWeight_ = 0.0;

    /** Buffered instructions of the current iteration, served from
     *  pendingHead_ on (a vector with a cursor instead of a deque:
     *  iterations are short and the capacity is reused, so the hot
     *  next() path never allocates).  Serialization writes only the
     *  unserved tail, so the cursor itself is not state. */
    std::vector<Instruction> pending_;
    std::size_t pendingHead_ = 0;
};

} // namespace pfsim::trace

#endif // PFSIM_TRACE_SYNTHETIC_HH
