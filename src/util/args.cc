#include "util/args.hh"

#include <cerrno>
#include <cstdlib>

#include "util/logging.hh"

namespace pfsim
{

std::int64_t
parseIntValue(const std::string &what, const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        fatal(what + " expects an integer, got \"" + value + "\"");
    if (errno == ERANGE)
        fatal(what + "=" + value + " overflows a 64-bit integer");
    return v;
}

std::uint64_t
parseUnsignedValue(const std::string &what, const std::string &value)
{
    const std::int64_t v = parseIntValue(what, value);
    if (v < 0)
        fatal(what + " must be >= 0, got " + value);
    return std::uint64_t(v);
}

Args::Args(int argc, char **argv, const std::set<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument: " + arg);
        arg = arg.substr(2);
        std::string key = arg;
        std::string value = "1";
        if (auto eq = arg.find('='); eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        }
        if (!known.count(key)) {
            std::string usage = "unknown option --" + key + "; accepted:";
            for (const auto &k : known)
                usage += " --" + k;
            fatal(usage);
        }
        values_[key] = value;
    }
}

bool
Args::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Args::get(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Args::getInt(const std::string &name, std::int64_t def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return parseIntValue("--" + name, it->second);
}

std::uint64_t
Args::getUnsigned(const std::string &name, std::uint64_t def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return parseUnsignedValue("--" + name, it->second);
}

double
Args::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
        fatal("--" + name + " expects a number, got \"" +
              it->second + "\"");
    }
    if (errno == ERANGE) {
        fatal("--" + name + "=" + it->second +
              " is out of range for a double");
    }
    return v;
}

} // namespace pfsim
