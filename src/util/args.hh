/**
 * @file
 * A minimal --key=value command-line parser shared by the bench and
 * example binaries.  Each binary declares the flags it accepts; unknown
 * flags are a fatal error so typos do not silently run the default
 * experiment.
 */

#ifndef PFSIM_UTIL_ARGS_HH
#define PFSIM_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace pfsim
{

/**
 * Parse one integer option value.  @p what names the flag (or the
 * sub-key of a structured spec, e.g. "--shards respawn") in the
 * one-line fatal emitted for malformed or overflowing input.
 */
std::int64_t parseIntValue(const std::string &what,
                           const std::string &value);

/** parseIntValue restricted to non-negative values. */
std::uint64_t parseUnsignedValue(const std::string &what,
                                 const std::string &value);

/** Parsed command-line arguments of the form --key=value or --flag. */
class Args
{
  public:
    /**
     * Parse argv.  @p known lists accepted option names (without the
     * leading dashes); any other option aborts with a usage message.
     */
    Args(int argc, char **argv, const std::set<std::string> &known);

    /** True when --name was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name=value, or @p def when absent. */
    std::string get(const std::string &name,
                    const std::string &def) const;

    /**
     * Integer value of --name=value, or @p def when absent.  Malformed
     * or overflowing values abort with a one-line actionable message.
     */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;

    /**
     * Non-negative integer value of --name=value, or @p def when
     * absent.  Negative values abort: use this for counts and sizes
     * (--jobs=-1 is a usage error, not a huge unsigned number).
     */
    std::uint64_t getUnsigned(const std::string &name,
                              std::uint64_t def) const;

    /**
     * Double value of --name=value, or @p def when absent.  Malformed
     * or overflowing values abort with a one-line actionable message.
     */
    double getDouble(const std::string &name, double def) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace pfsim

#endif // PFSIM_UTIL_ARGS_HH
