/**
 * @file
 * Small bit-manipulation helpers used by table indexing logic.
 */

#ifndef PFSIM_UTIL_BITS_HH
#define PFSIM_UTIL_BITS_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace pfsim
{

/** Return a mask with the low @p n bits set. @p n must be <= 64. */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [lo, lo+n) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned n)
{
    return (v >> lo) & mask(n);
}

/** True when @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Smallest power of two >= @p v (v must leave room for one). */
constexpr std::uint64_t
roundUpPow2(std::uint64_t v)
{
    return std::bit_ceil(v);
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    assert(isPowerOf2(v));
    return unsigned(std::countr_zero(v));
}

/**
 * Fold a 64-bit value down to @p n bits by XOR-ing successive n-bit
 * chunks.  This is the classical hashed-perceptron index fold: every
 * input bit influences the result, and equal inputs map to equal
 * indices.
 */
constexpr std::uint64_t
foldXor(std::uint64_t v, unsigned n)
{
    assert(n > 0 && n < 64);
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & mask(n);
        v >>= n;
    }
    return r;
}

/**
 * A cheap 64-bit mixing function (splitmix64 finalizer).  Used where a
 * table index must decorrelate nearby inputs, e.g. hashing PCs.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace pfsim

#endif // PFSIM_UTIL_BITS_HH
