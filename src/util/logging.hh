/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() reports a user-level configuration error and exits; panic()
 * reports an internal invariant violation and aborts.
 */

#ifndef PFSIM_UTIL_LOGGING_HH
#define PFSIM_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pfsim
{

/** Abort on an internal simulator bug. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Exit cleanly on a user configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace pfsim

#endif // PFSIM_UTIL_LOGGING_HH
