#include "util/random.hh"

#include <cassert>
#include <cmath>

namespace pfsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed so that low-entropy seeds (0, 1, 2, ...) still
    // produce well-distributed state.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    assert(bound != 0);
    // Rejection sampling to avoid modulo bias; the loop almost never
    // iterates more than once for the small bounds we use.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    return lo + std::int64_t(below(std::uint64_t(hi - lo) + 1));
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    assert(mean >= 1.0);
    const double p = 1.0 / mean;
    double u = uniform();
    // Avoid log(0).
    if (u >= 1.0)
        u = 0.9999999999;
    double draw = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    if (draw < 1.0)
        draw = 1.0;
    return std::uint64_t(draw);
}

} // namespace pfsim
