#include "util/random.hh"

#include <cmath>

namespace pfsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed so that low-entropy seeds (0, 1, 2, ...) still
    // produce well-distributed state.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::geometric(double mean)
{
    assert(mean >= 1.0);
    const double p = 1.0 / mean;
    double u = uniform();
    // Avoid log(0).
    if (u >= 1.0)
        u = 0.9999999999;
    double draw = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    if (draw < 1.0)
        draw = 1.0;
    return std::uint64_t(draw);
}

} // namespace pfsim
