/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of pfsim (synthetic traces, workload mixes)
 * draws from a seeded xoshiro256** generator so that identical seeds
 * reproduce bit-identical simulations.  std::mt19937 is avoided because
 * its stream is not guaranteed identical across library versions for
 * distributions; we implement the distributions we need directly.
 *
 * The draw path (next/below/uniform/chance) is defined inline: trace
 * generation draws millions of times per simulated second and the
 * out-of-line call overhead on these tiny leaf functions was a
 * measurable fraction of end-to-end runtime.
 */

#ifndef PFSIM_UTIL_RANDOM_HH
#define PFSIM_UTIL_RANDOM_HH

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace pfsim
{

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded with splitmix64. */
    explicit Rng(std::uint64_t seed);

    /** The full generator state, for snapshot/restore. */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    /** Restore a previously captured state. */
    void
    setState(const std::array<std::uint64_t, 4> &state)
    {
        for (std::size_t i = 0; i < 4; ++i)
            s_[i] = state[i];
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0);
        // Rejection sampling to avoid modulo bias; the loop almost
        // never iterates more than once for the small bounds we use.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        return lo + std::int64_t(below(std::uint64_t(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 random mantissa bits -> uniform double in [0, 1).
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Approximately geometric draw with mean @p mean (>= 1). */
    std::uint64_t geometric(double mean);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace pfsim

#endif // PFSIM_UTIL_RANDOM_HH
