/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of pfsim (synthetic traces, workload mixes)
 * draws from a seeded xoshiro256** generator so that identical seeds
 * reproduce bit-identical simulations.  std::mt19937 is avoided because
 * its stream is not guaranteed identical across library versions for
 * distributions; we implement the distributions we need directly.
 */

#ifndef PFSIM_UTIL_RANDOM_HH
#define PFSIM_UTIL_RANDOM_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace pfsim
{

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded with splitmix64. */
    explicit Rng(std::uint64_t seed);

    /** The full generator state, for snapshot/restore. */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    /** Restore a previously captured state. */
    void
    setState(const std::array<std::uint64_t, 4> &state)
    {
        for (std::size_t i = 0; i < 4; ++i)
            s_[i] = state[i];
    }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Approximately geometric draw with mean @p mean (>= 1). */
    std::uint64_t geometric(double mean);

  private:
    std::uint64_t s_[4];
};

} // namespace pfsim

#endif // PFSIM_UTIL_RANDOM_HH
