/**
 * @file
 * A power-of-two ring buffer for the simulator's hot queues.
 *
 * The cycle loop pushes and pops queue entries tens of millions of
 * times per simulated second; std::deque pays for that flexibility
 * with segmented storage, per-segment allocation and an indirection on
 * every access.  This buffer keeps the elements in one contiguous
 * power-of-two array and addresses them with a mask, so front(),
 * push_back() and pop_front() are a handful of instructions with no
 * allocator traffic in the steady state.
 *
 * Popped slots are not destroyed: the element object stays in place
 * and is overwritten by assignment on the next push, so element types
 * with internal capacity (vectors, strings) keep their allocations
 * pooled across requests.
 *
 * Logical index 0 is always the front.  Iterators address elements by
 * their position relative to the buffer head, so they stay valid
 * across push_back() and pop_front() of *other* elements; only
 * capacity growth (push_back on a full buffer) and erase() invalidate
 * them, exactly like the capacity rule for std::vector.
 */

#ifndef PFSIM_UTIL_RING_BUFFER_HH
#define PFSIM_UTIL_RING_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

#include "util/bits.hh"

namespace pfsim::util
{

template <typename T>
class RingBuffer
{
  public:
    /**
     * @param capacity initial capacity; rounded up to a power of two.
     * The buffer grows by doubling if pushed past it, so a capacity
     * sized to the configured queue limit never reallocates.
     */
    explicit RingBuffer(std::size_t capacity = 8)
        : slots_(roundUpPow2(capacity < 2 ? 2 : capacity)),
          mask_(slots_.size() - 1)
    {
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return slots_.size(); }

    /** Element at logical index @p i (0 is the front). */
    T &
    operator[](std::size_t i)
    {
        assert(i < count_);
        return slots_[(head_ + i) & mask_];
    }

    const T &
    operator[](std::size_t i) const
    {
        assert(i < count_);
        return slots_[(head_ + i) & mask_];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[count_ - 1]; }
    const T &back() const { return (*this)[count_ - 1]; }

    /** Append a copy of @p value, growing if full. */
    void
    push_back(const T &value)
    {
        if (count_ == slots_.size())
            grow();
        slots_[(head_ + count_) & mask_] = value;
        ++count_;
    }

    void
    push_back(T &&value)
    {
        if (count_ == slots_.size())
            grow();
        slots_[(head_ + count_) & mask_] = std::move(value);
        ++count_;
    }

    /**
     * Drop the front element.  The slot's object is left in place to
     * be reused by a later push, keeping its internal allocations.
     */
    void
    pop_front()
    {
        assert(count_ > 0);
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    /** Order-preserving erase of logical index @p i (shifts the tail). */
    void
    erase(std::size_t i)
    {
        assert(i < count_);
        for (std::size_t j = i; j + 1 < count_; ++j)
            (*this)[j] = std::move((*this)[j + 1]);
        --count_;
    }

    /** Drop every element (slots keep their pooled storage). */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    /**
     * Forward iterator over logical positions.  Stable across
     * push_back and pop_front of other elements; invalidated by
     * growth and erase.
     */
    template <typename Buffer, typename Value>
    class Iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = Value *;
        using reference = Value &;

        Iterator() = default;
        Iterator(Buffer *buffer, std::size_t index)
            : buffer_(buffer), index_(index)
        {
        }

        reference operator*() const { return (*buffer_)[index_]; }
        pointer operator->() const { return &(*buffer_)[index_]; }

        Iterator &
        operator++()
        {
            ++index_;
            return *this;
        }

        Iterator
        operator++(int)
        {
            Iterator prev = *this;
            ++index_;
            return prev;
        }

        bool
        operator==(const Iterator &other) const
        {
            return buffer_ == other.buffer_ && index_ == other.index_;
        }

        bool operator!=(const Iterator &other) const
        {
            return !(*this == other);
        }

      private:
        Buffer *buffer_ = nullptr;
        std::size_t index_ = 0;
    };

    using iterator = Iterator<RingBuffer, T>;
    using const_iterator = Iterator<const RingBuffer, const T>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count_}; }

  private:
    void
    grow()
    {
        std::vector<T> bigger(slots_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = std::move((*this)[i]);
        slots_ = std::move(bigger);
        mask_ = slots_.size() - 1;
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t mask_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace pfsim::util

#endif // PFSIM_UTIL_RING_BUFFER_HH
