/**
 * @file
 * Saturating counters: the storage primitive behind perceptron weights
 * (signed) and confidence counters (unsigned).
 */

#ifndef PFSIM_UTIL_SAT_COUNTER_HH
#define PFSIM_UTIL_SAT_COUNTER_HH

#include <cassert>
#include <cstdint>

namespace pfsim
{

/**
 * A signed saturating counter with a compile-time bit width.
 *
 * An n-bit signed counter saturates at [-2^(n-1), 2^(n-1) - 1]; for the
 * paper's 5-bit perceptron weights that is [-16, +15] (Section 3.1).
 */
template <unsigned Bits>
class SignedSatCounter
{
    static_assert(Bits >= 2 && Bits <= 16, "unreasonable counter width");

  public:
    static constexpr int min = -(1 << (Bits - 1));
    static constexpr int max = (1 << (Bits - 1)) - 1;

    constexpr SignedSatCounter() = default;

    explicit constexpr
    SignedSatCounter(int initial)
        : value_(std::int16_t(clamp(initial)))
    {
    }

    constexpr int value() const { return value_; }

    /** Increment by one, saturating at max. */
    constexpr void
    increment()
    {
        if (value_ < max)
            ++value_;
    }

    /** Decrement by one, saturating at min. */
    constexpr void
    decrement()
    {
        if (value_ > min)
            --value_;
    }

    /** Train toward the given direction: +1 increments, -1 decrements. */
    constexpr void
    train(bool positive)
    {
        if (positive)
            increment();
        else
            decrement();
    }

    constexpr void set(int v) { value_ = std::int16_t(clamp(v)); }

  private:
    static constexpr int
    clamp(int v)
    {
        return v < min ? min : (v > max ? max : v);
    }

    std::int16_t value_ = 0;
};

/**
 * An unsigned saturating counter with a compile-time bit width, used for
 * SPP's C_sig / C_delta occurrence counters (4 bits each, Table 3).
 */
template <unsigned Bits>
class UnsignedSatCounter
{
    static_assert(Bits >= 1 && Bits <= 32, "unreasonable counter width");

  public:
    static constexpr std::uint32_t max = (1u << Bits) - 1;

    constexpr std::uint32_t value() const { return value_; }

    /** Increment by one, saturating at max. @return true if saturated. */
    constexpr bool
    increment()
    {
        if (value_ < max) {
            ++value_;
            return false;
        }
        return true;
    }

    /** Halve the counter (used when C_sig saturates, per SPP). */
    constexpr void halve() { value_ >>= 1; }

    constexpr void
    set(std::uint32_t v)
    {
        value_ = v > max ? max : v;
    }

  private:
    std::uint32_t value_ = 0;
};

} // namespace pfsim

#endif // PFSIM_UTIL_SAT_COUNTER_HH
