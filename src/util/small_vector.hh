/**
 * @file
 * A small-buffer vector for the simulation kernel's hot paths: the
 * first InlineCapacity elements live inside the object, so the
 * steady-state case (MSHR waiter lists, burst scratch) never touches
 * the heap.  Rare overflows spill into a std::vector whose capacity
 * is retained across clear(), so even a spilled container allocates
 * only on its first overflow — the same pooling contract as
 * util/ring_buffer.hh.
 *
 * Deliberately minimal: push_back/clear/size/iteration/indexing, the
 * operations the kernel needs.  T must be default-constructible and
 * copyable (inline slots are value storage, as in std::array).
 */

#ifndef PFSIM_UTIL_SMALL_VECTOR_HH
#define PFSIM_UTIL_SMALL_VECTOR_HH

#include <array>
#include <cstddef>
#include <vector>

namespace pfsim::util
{

template <typename T, std::size_t InlineCapacity>
class SmallVector
{
    static_assert(InlineCapacity > 0,
                  "inline storage must hold at least one element");

  public:
    SmallVector() = default;

    void
    push_back(const T &value)
    {
        if (!spilled()) {
            if (inlineSize_ < InlineCapacity) {
                inline_[inlineSize_++] = value;
                return;
            }
            // First overflow: move the inline elements to the spill
            // vector.  Its capacity is retained across clear(), so
            // this allocates at most once per container lifetime.
            spill_.reserve(InlineCapacity * 2);
            spill_.assign(inline_.begin(), inline_.end());
        }
        spill_.push_back(value);
    }

    /** Keeps the spill capacity — pooled like RingBuffer slots. */
    void
    clear()
    {
        inlineSize_ = 0;
        spill_.clear();
    }

    std::size_t
    size() const
    {
        return spilled() ? spill_.size() : inlineSize_;
    }

    bool empty() const { return size() == 0; }

    T *begin() { return data(); }
    T *end() { return data() + size(); }
    const T *begin() const { return data(); }
    const T *end() const { return data() + size(); }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }

    T *data() { return spilled() ? spill_.data() : inline_.data(); }

    const T *
    data() const
    {
        return spilled() ? spill_.data() : inline_.data();
    }

    /** True while elements live in the heap spill (tests). */
    bool spilled() const { return !spill_.empty(); }

  private:
    std::array<T, InlineCapacity> inline_{};
    std::size_t inlineSize_ = 0;
    std::vector<T> spill_;
};

} // namespace pfsim::util

#endif // PFSIM_UTIL_SMALL_VECTOR_HH
