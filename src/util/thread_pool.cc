#include "util/thread_pool.hh"

#include <exception>
#include <utility>

#include "util/logging.hh"

namespace pfsim::util
{

unsigned
hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_)
            panic("ThreadPool::submit after shutdown began");
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

void
parallelFor(unsigned jobs, std::size_t count,
            const std::function<void(std::size_t)> &fn)
{
    if (jobs <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // One exception slot per index; each slot is written by exactly one
    // task, and the pool's join provides the happens-before edge back
    // to this thread, so no per-slot synchronisation is needed.
    std::vector<std::exception_ptr> errors(count);
    {
        const std::size_t workers =
            std::size_t(jobs) < count ? jobs : count;
        ThreadPool pool{unsigned(workers)};
        for (std::size_t i = 0; i < count; ++i) {
            pool.submit([&fn, &errors, i] {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    for (const auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

} // namespace pfsim::util
