/**
 * @file
 * Fixed-size worker pool and an index-ordered parallel-for built on it.
 *
 * This is the only place in pfsim allowed to spawn raw std::threads
 * (enforced by tools/lint rule no-raw-thread): every concurrent
 * experiment goes through ThreadPool or parallelFor so determinism and
 * exception handling are solved once.  Simulations themselves stay
 * single-threaded; the pool only runs *independent* jobs side by side.
 */

#ifndef PFSIM_UTIL_THREAD_POOL_HH
#define PFSIM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pfsim::util
{

/** Host parallelism available to job pools; always at least 1. */
unsigned hardwareConcurrency();

/**
 * A fixed set of worker threads draining a FIFO task queue.
 *
 * Tasks must not throw (parallelFor wraps arbitrary callables with the
 * required capture); ordering of *execution* is unspecified, so tasks
 * that care about result order must write to pre-assigned slots.
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (at least 1). */
    explicit ThreadPool(unsigned workers);

    /** Waits for queued work, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void wait();

    /** Number of worker threads. */
    unsigned
    workers() const
    {
        return unsigned(threads_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_done_;
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

/**
 * Run @p fn(0) ... @p fn(count - 1) on up to @p jobs workers.
 *
 * With @p jobs <= 1 (or fewer than two items) the loop runs inline on
 * the calling thread — no threads are spawned, byte-for-byte today's
 * serial behaviour.  Otherwise min(jobs, count) workers drain the
 * index range.
 *
 * The call returns only after every index has run.  If any invocation
 * throws, the exception thrown by the *lowest* index is rethrown after
 * completion, so failure reporting is deterministic regardless of
 * interleaving.
 */
void parallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)> &fn);

} // namespace pfsim::util

#endif // PFSIM_UTIL_THREAD_POOL_HH
