/**
 * @file
 * Wakeup sink for event-driven tick scheduling.
 *
 * Components that enqueue work into a neighbor (or into themselves) during
 * a tick report the earliest cycle at which that work becomes observable by
 * calling wake().  The sink — in practice sim::EventWheel — merges the hint
 * into its schedule with keep-earliest semantics, so a spurious wake is
 * harmless (the component's own nextEventCycle() remains the ground truth
 * and is re-queried after every tick).
 *
 * The interface lives in util (not sim) because cpu/cache/dram components
 * hold a TickWaker pointer without depending on the scheduler itself.
 */

#ifndef PFSIM_UTIL_TICK_WAKER_HH
#define PFSIM_UTIL_TICK_WAKER_HH

#include "util/types.hh"

namespace pfsim::util
{

class TickWaker
{
  public:
    virtual ~TickWaker() = default;

    /**
     * Hint that component @p component may have observable work at cycle
     * @p at.  Must never be called with a cycle earlier than work actually
     * exists ("may under-promise, never over-promise" in reverse: a wake
     * may be early-but-useless only if the component's tick at that cycle
     * is a state no-op, which is never the case for the call sites in this
     * codebase — every wake corresponds to a concrete queue entry).
     */
    virtual void wake(unsigned component, Cycle at) = 0;
};

} // namespace pfsim::util

#endif // PFSIM_UTIL_TICK_WAKER_HH
