/**
 * @file
 * Fundamental scalar types shared by every pfsim subsystem.
 */

#ifndef PFSIM_UTIL_TYPES_HH
#define PFSIM_UTIL_TYPES_HH

#include <cstdint>

namespace pfsim
{

/** A physical byte address. The simulator works purely in physical space,
 *  matching ChampSim's convention noted in Section 5.1 of the paper. */
using Addr = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/** An instruction count. */
using InstrCount = std::uint64_t;

/**
 * The "no scheduled event" sentinel returned by nextEventCycle()
 * implementations: the component is fully drained and will not act
 * until some other component hands it work.
 */
inline constexpr Cycle noEventCycle = ~Cycle{0};

/** A program counter value. */
using Pc = std::uint64_t;

/** Log2 of the fixed cache block size (64 bytes). */
inline constexpr unsigned blockShift = 6;

/** The cache block size in bytes. */
inline constexpr Addr blockSize = Addr{1} << blockShift;

/** Log2 of the page size (4 KB, per Table 1). */
inline constexpr unsigned pageShift = 12;

/** The page size in bytes. */
inline constexpr Addr pageSize = Addr{1} << pageShift;

/** Number of cache blocks per page. */
inline constexpr unsigned blocksPerPage =
    unsigned(pageSize / blockSize);

/** Extract the block-aligned address. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~(blockSize - 1);
}

/** Extract the block number (address >> 6). */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> blockShift;
}

/** Extract the page number (address >> 12). */
constexpr Addr
pageNumber(Addr addr)
{
    return addr >> pageShift;
}

/** Extract the block offset within the page, in [0, 64). */
constexpr unsigned
pageOffset(Addr addr)
{
    return unsigned((addr >> blockShift) & (blocksPerPage - 1));
}

} // namespace pfsim

#endif // PFSIM_UTIL_TYPES_HH
