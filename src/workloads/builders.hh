/**
 * @file
 * Internal helpers for declaring workload stream mixes tersely.
 * Used by the spec17/spec06/cloud registry translation units only.
 */

#ifndef PFSIM_WORKLOADS_BUILDERS_HH
#define PFSIM_WORKLOADS_BUILDERS_HH

#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace pfsim::workloads::builders
{

using trace::PatternKind;
using trace::PhaseConfig;
using trace::StreamConfig;
using trace::SyntheticConfig;

inline StreamConfig
deltaSeq(std::vector<int> deltas, double break_prob, double weight,
         bool page_selective = false)
{
    StreamConfig s;
    s.kind = PatternKind::DeltaSeq;
    s.deltas = std::move(deltas);
    s.breakProb = break_prob;
    s.pageSelective = page_selective;
    s.weight = weight;
    return s;
}

inline StreamConfig
stream(double weight)
{
    StreamConfig s;
    s.kind = PatternKind::Stream;
    s.weight = weight;
    return s;
}

inline StreamConfig
stride(int blocks, double weight)
{
    StreamConfig s;
    s.kind = PatternKind::Stride;
    s.stride = blocks;
    s.weight = weight;
    return s;
}

inline StreamConfig
pageShuffle(double weight)
{
    StreamConfig s;
    s.kind = PatternKind::PageShuffle;
    s.weight = weight;
    return s;
}

inline StreamConfig
regionSweep(int jitter, double weight)
{
    StreamConfig s;
    s.kind = PatternKind::RegionSweep;
    s.jitter = jitter;
    s.weight = weight;
    return s;
}

inline StreamConfig
burstStride(int stride_blocks, unsigned burst_len, double weight)
{
    StreamConfig s;
    s.kind = PatternKind::BurstStride;
    s.stride = stride_blocks;
    s.burstLen = burst_len;
    s.weight = weight;
    return s;
}

inline StreamConfig
pointerChase(std::uint64_t footprint_blocks, double weight)
{
    StreamConfig s;
    s.kind = PatternKind::PointerChase;
    s.footprintBlocks = footprint_blocks;
    s.weight = weight;
    return s;
}

inline StreamConfig
hotReuse(std::uint64_t hot_blocks, double cold_prob, double weight)
{
    StreamConfig s;
    s.kind = PatternKind::HotReuse;
    s.footprintBlocks = hot_blocks;
    s.coldProb = cold_prob;
    s.weight = weight;
    return s;
}

/** One infinite phase with the given stream mix and instruction mix. */
inline SyntheticConfig
onePhase(std::string name, std::uint64_t seed,
         std::vector<StreamConfig> streams, double mem_ratio,
         double store_prob, double mispredict)
{
    SyntheticConfig config;
    config.name = std::move(name);
    config.seed = seed;
    PhaseConfig phase;
    phase.streams = std::move(streams);
    phase.memRatio = mem_ratio;
    phase.storeProb = store_prob;
    phase.mispredictRate = mispredict;
    config.phases.push_back(std::move(phase));
    return config;
}

} // namespace pfsim::workloads::builders

#endif // PFSIM_WORKLOADS_BUILDERS_HH
