#include "workloads/registry.hh"

#include "workloads/builders.hh"

/**
 * @file
 * CloudSuite-like cross-validation workloads (paper Figure 13a).
 *
 * Scale-out cloud applications are largely prefetch agnostic: big
 * instruction/data footprints with irregular reuse and only thin
 * veins of streaming.  Each workload alternates phases, mirroring the
 * multi-phase CRC-2 traces the paper uses.
 */

namespace pfsim::workloads
{

namespace
{

using namespace builders;

/** Two alternating phases: dominant irregular reuse, a little streaming. */
SyntheticConfig
cloudConfig(const char *name, std::uint64_t seed,
            std::uint64_t hot_blocks, double cold_prob,
            double stream_weight, double pointer_weight)
{
    SyntheticConfig config;
    config.name = name;
    config.seed = seed;

    PhaseConfig serve;
    serve.streams = {
        hotReuse(hot_blocks, cold_prob, 0.55 - stream_weight),
        hotReuse(320, 0.0, 0.45),
        pageShuffle(stream_weight),
    };
    serve.memRatio = 0.30;
    serve.storeProb = 0.18;
    serve.mispredictRate = 0.03;
    serve.length = 400000;

    PhaseConfig scan;
    scan.streams = {
        hotReuse(hot_blocks / 2, cold_prob * 2.0,
                 0.55 - stream_weight - pointer_weight),
        hotReuse(320, 0.0, 0.45),
        stream(stream_weight),
        pointerChase(std::uint64_t{1} << 16, pointer_weight),
    };
    scan.memRatio = 0.32;
    scan.storeProb = 0.15;
    scan.mispredictRate = 0.04;
    scan.length = 400000;

    config.phases = {serve, scan};
    return config;
}

Workload
workload(const char *name, std::function<SyntheticConfig()> make)
{
    // CloudSuite traces are not part of the memory-intensive subset
    // methodology; they are reported separately (Figure 13a).
    return Workload{name, "cloud", false, std::move(make)};
}

} // namespace

const std::vector<Workload> &
cloudSuite()
{
    static const std::vector<Workload> suite = {
        workload("cassandra-like", [] {
            return cloudConfig("cassandra-like", 3301, 24576, 0.010,
                               0.03, 0.05);
        }),
        workload("classification-like", [] {
            return cloudConfig("classification-like", 3302, 16384,
                               0.006, 0.06, 0.03);
        }),
        workload("cloud9-like", [] {
            return cloudConfig("cloud9-like", 3303, 20480, 0.012,
                               0.04, 0.06);
        }),
        workload("nutch-like", [] {
            return cloudConfig("nutch-like", 3304, 28672, 0.008,
                               0.05, 0.04);
        }),
    };
    return suite;
}

} // namespace pfsim::workloads
