#include "workloads/mixes.hh"

#include "util/logging.hh"
#include "util/random.hh"

namespace pfsim::workloads
{

std::vector<Mix>
makeMixes(const std::vector<Workload> &pool, unsigned cores,
          unsigned count, std::uint64_t seed)
{
    if (pool.empty())
        fatal("cannot draw mixes from an empty workload pool");
    Rng rng(seed);
    std::vector<Mix> mixes;
    mixes.reserve(count);
    for (unsigned m = 0; m < count; ++m) {
        Mix mix;
        mix.reserve(cores);
        for (unsigned c = 0; c < cores; ++c)
            mix.push_back(pool[rng.below(pool.size())]);
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

} // namespace pfsim::workloads
