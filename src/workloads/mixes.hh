/**
 * @file
 * Multi-programmed workload mix generation (paper Section 5.3):
 * deterministic random mixes drawn from a suite or its
 * memory-intensive subset.
 */

#ifndef PFSIM_WORKLOADS_MIXES_HH
#define PFSIM_WORKLOADS_MIXES_HH

#include <cstdint>
#include <vector>

#include "workloads/registry.hh"

namespace pfsim::workloads
{

/** One multi-core mix: a workload per core. */
using Mix = std::vector<Workload>;

/**
 * Generate @p count mixes of @p cores workloads each, drawn uniformly
 * (with replacement) from @p pool.  Deterministic in @p seed.
 */
std::vector<Mix> makeMixes(const std::vector<Workload> &pool,
                           unsigned cores, unsigned count,
                           std::uint64_t seed);

} // namespace pfsim::workloads

#endif // PFSIM_WORKLOADS_MIXES_HH
