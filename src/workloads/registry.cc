#include "workloads/registry.hh"

#include "util/logging.hh"

namespace pfsim::workloads
{

std::vector<Workload>
memIntensiveSubset(const std::vector<Workload> &suite)
{
    std::vector<Workload> subset;
    for (const Workload &w : suite) {
        if (w.memIntensive)
            subset.push_back(w);
    }
    return subset;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const auto *suite :
         {&spec17Suite(), &spec06Suite(), &cloudSuite()}) {
        for (const Workload &w : *suite) {
            if (w.name == name)
                return w;
        }
    }
    fatal("unknown workload: " + name);
}

} // namespace pfsim::workloads
