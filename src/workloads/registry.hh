/**
 * @file
 * The workload registry: named synthetic workloads standing in for the
 * paper's SPEC CPU 2017, SPEC CPU 2006 and CloudSuite SimPoint traces
 * (see DESIGN.md's substitution table).
 *
 * Naming: each workload carries the benchmark it is calibrated against
 * with a "-like" suffix (e.g. "603.bwaves_s-like"), to make clear that
 * it reproduces that benchmark's access-pattern *class*, not its code.
 */

#ifndef PFSIM_WORKLOADS_REGISTRY_HH
#define PFSIM_WORKLOADS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace pfsim::workloads
{

/** A registered workload. */
struct Workload
{
    /** Report name, e.g. "603.bwaves_s-like". */
    std::string name;

    /** Suite tag: "spec17", "spec06", "cloud". */
    std::string suite;

    /** Member of the memory-intensive subset (LLC MPKI > 1). */
    bool memIntensive = false;

    /** Build the workload's trace configuration. */
    std::function<trace::SyntheticConfig()> make;
};

/** All 20 SPEC CPU 2017-like workloads. */
const std::vector<Workload> &spec17Suite();

/** The SPEC CPU 2006-like cross-validation workloads. */
const std::vector<Workload> &spec06Suite();

/** The CloudSuite-like cross-validation workloads. */
const std::vector<Workload> &cloudSuite();

/** Filter a suite to its memory-intensive subset. */
std::vector<Workload> memIntensiveSubset(const std::vector<Workload> &suite);

/** Find a workload by name across all suites; fatal when missing. */
const Workload &findWorkload(const std::string &name);

} // namespace pfsim::workloads

#endif // PFSIM_WORKLOADS_REGISTRY_HH
