#include "workloads/registry.hh"

#include "workloads/builders.hh"

/**
 * @file
 * SPEC CPU 2006-like cross-validation workloads (paper Section 5.3,
 * "Validation", and Figure 13b).
 *
 * These use the same pattern classes as the 2017-like suite but with
 * different parameter draws and seeds, and they are never consulted
 * while tuning PPF — preserving their role as unseen workloads.
 */

namespace pfsim::workloads
{

namespace
{

using namespace builders;

Workload
workload(const char *name, bool mem_intensive,
         std::function<SyntheticConfig()> make)
{
    return Workload{name, "spec06", mem_intensive, std::move(make)};
}

} // namespace

const std::vector<Workload> &
spec06Suite()
{
    static const std::vector<Workload> suite = {
        workload("401.bzip2-like", false, [] {
            return onePhase("401.bzip2-like", 2401,
                            {hotReuse(6144, 0.004, 0.8),
                             pageShuffle(0.2)},
                            0.30, 0.20, 0.02);
        }),
        workload("403.gcc-like", true, [] {
            return onePhase("403.gcc-like", 2403,
                            {pageShuffle(0.045),
                             hotReuse(320, 0.002, 0.955)},
                            0.30, 0.16, 0.025);
        }),
        workload("410.bwaves-like", true, [] {
            return onePhase("410.bwaves-like", 2410,
                            {deltaSeq({1, 3, 1, 2, 1, 5}, 0.0, 0.022),
                             deltaSeq({1, 3, 1, 2, 1, 5}, 0.14,
                                      0.018, true),
                             hotReuse(320, 0.0, 0.96)},
                            0.36, 0.20, 0.004);
        }),
        workload("429.mcf-like", true, [] {
            return onePhase("429.mcf-like", 2429,
                            {pointerChase(std::uint64_t{1} << 21, 0.050),
                             stride(2, 0.012),
                             hotReuse(320, 0.0, 0.938)},
                            0.35, 0.08, 0.035);
        }),
        workload("433.milc-like", true, [] {
            return onePhase("433.milc-like", 2433,
                            {stream(0.016), stream(0.015), stream(0.011),
                             hotReuse(320, 0.0, 0.958)},
                            0.36, 0.30, 0.004);
        }),
        workload("437.leslie3d-like", true, [] {
            return onePhase("437.leslie3d-like", 2437,
                            {deltaSeq({2, 2, 1}, 0.02,
                                      0.028, true),
                             stream(0.012),
                             hotReuse(320, 0.0, 0.96)},
                            0.35, 0.25, 0.005);
        }),
        workload("445.gobmk-like", false, [] {
            return onePhase("445.gobmk-like", 2445,
                            {hotReuse(4096, 0.002, 1.0)},
                            0.27, 0.14, 0.06);
        }),
        workload("450.soplex-like", true, [] {
            return onePhase("450.soplex-like", 2450,
                            {stride(5, 0.020), pageShuffle(0.020),
                             hotReuse(320, 0.002, 0.96)},
                            0.33, 0.18, 0.015);
        }),
        workload("456.hmmer-like", false, [] {
            return onePhase("456.hmmer-like", 2456,
                            {hotReuse(3072, 0.001, 1.0)},
                            0.35, 0.20, 0.01);
        }),
        workload("459.GemsFDTD-like", true, [] {
            return onePhase("459.GemsFDTD-like", 2459,
                            {deltaSeq({1, 1, 1, 4}, 0.0, 0.021),
                             deltaSeq({1, 1, 1, 4}, 0.12,
                                      0.021, true),
                             hotReuse(320, 0.0, 0.958)},
                            0.36, 0.24, 0.004);
        }),
        workload("462.libquantum-like", true, [] {
            return onePhase("462.libquantum-like", 2462,
                            {stream(0.030), stream(0.019),
                             hotReuse(320, 0.0, 0.951)},
                            0.40, 0.15, 0.002);
        }),
        workload("464.h264ref-like", false, [] {
            return onePhase("464.h264ref-like", 2464,
                            {hotReuse(5120, 0.003, 0.85),
                             stride(1, 0.15)},
                            0.33, 0.22, 0.015);
        }),
        workload("470.lbm-like", true, [] {
            return onePhase("470.lbm-like", 2470,
                            {stream(0.019), stream(0.015), stream(0.011),
                             hotReuse(320, 0.0, 0.955)},
                            0.38, 0.45, 0.003);
        }),
        workload("471.omnetpp-like", true, [] {
            return onePhase("471.omnetpp-like", 2471,
                            {pointerChase(std::uint64_t{1} << 19, 0.045),
                             hotReuse(320, 0.003, 0.955)},
                            0.31, 0.12, 0.03);
        }),
        workload("473.astar-like", false, [] {
            return onePhase("473.astar-like", 2473,
                            {pointerChase(std::uint64_t{1} << 13, 0.4),
                             hotReuse(4096, 0.002, 0.6)},
                            0.30, 0.12, 0.035);
        }),
        workload("482.sphinx3-like", true, [] {
            return onePhase("482.sphinx3-like", 2482,
                            {deltaSeq({1, 2}, 0.05,
                                      0.024, true), stream(0.012),
                             hotReuse(320, 0.001, 0.964)},
                            0.33, 0.15, 0.01);
        }),
    };
    return suite;
}

} // namespace pfsim::workloads
