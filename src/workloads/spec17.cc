#include "workloads/registry.hh"

#include "workloads/builders.hh"

/**
 * @file
 * SPEC CPU 2017-like workload definitions.
 *
 * Calibration notes (what each stands for, per the paper's findings):
 *  - 603.bwaves_s / 649.fotonik3d_s: long regular delta chains where
 *    deep lookahead pays off, mixed with an erratic twin stream so
 *    SPP's single global accuracy throttles too early while PPF's
 *    PC/page features can separate clean from dirty pages (the
 *    10-25% PPF-over-SPP class of Figure 9).
 *  - 623.xalancbmk_s: dense page coverage in shuffled order — delta
 *    confidence collapses (SPP halts at depth ~2) although nearly any
 *    same-page prefetch is eventually useful, so the outcome-trained
 *    filter keeps prefetching (PPF beats every prefetcher here).
 *  - 607.cactuBSSN_s: jittered dense sweeps favouring offset-based
 *    BOP over signature-based SPP (the one benchmark where PPF does
 *    not win).
 *  - 605.mcf_s: dependent pointer chasing over a >LLC footprint;
 *    prefetch averse, low MLP.
 *  - Non-memory-intensive members are cache-resident with rare cold
 *    misses and varying branchiness.
 */

namespace pfsim::workloads
{

namespace
{

using namespace builders;

Workload
workload(const char *name, bool mem_intensive,
         std::function<SyntheticConfig()> make)
{
    return Workload{name, "spec17", mem_intensive, std::move(make)};
}

} // namespace

const std::vector<Workload> &
spec17Suite()
{
    static const std::vector<Workload> suite = {
        workload("600.perlbench_s-like", false, [] {
            return onePhase("600.perlbench_s-like", 1701,
                            {hotReuse(2048, 0.002, 1.0)},
                            0.30, 0.20, 0.03);
        }),
        workload("602.gcc_s-like", true, [] {
            return onePhase("602.gcc_s-like", 1702,
                            {pageShuffle(0.040),
                             hotReuse(320, 0.002, 0.80),
                             hotReuse(10240, 0.0, 0.16)},
                            0.30, 0.15, 0.02);
        }),
        workload("603.bwaves_s-like", true, [] {
            return onePhase("603.bwaves_s-like", 1703,
                            {deltaSeq({1, 2, 1, 3, 1, 2, 1, 4}, 0.0,
                                      0.022),
                             deltaSeq({1, 2, 1, 3, 1, 2, 1, 4}, 0.12,
                                      0.015, true),
                             hotReuse(320, 0.0, 0.963)},
                            0.35, 0.20, 0.005);
        }),
        workload("605.mcf_s-like", true, [] {
            return onePhase("605.mcf_s-like", 1705,
                            {pointerChase(std::uint64_t{1} << 20, 0.045),
                             stride(3, 0.012),
                             hotReuse(320, 0.0, 0.943)},
                            0.35, 0.10, 0.03);
        }),
        workload("607.cactuBSSN_s-like", true, [] {
            return onePhase("607.cactuBSSN_s-like", 1707,
                            {burstStride(2, 5, 0.013),
                             burstStride(2, 5, 0.013),
                             burstStride(2, 5, 0.014),
                             hotReuse(320, 0.0, 0.96)},
                            0.35, 0.25, 0.005);
        }),
        workload("619.lbm_s-like", true, [] {
            return onePhase("619.lbm_s-like", 1719,
                            {stream(0.018), stream(0.015), stream(0.012),
                             hotReuse(320, 0.0, 0.955)},
                            0.38, 0.50, 0.003);
        }),
        workload("621.wrf_s-like", false, [] {
            return onePhase("621.wrf_s-like", 1721,
                            {stride(2, 0.05),
                             hotReuse(4096, 0.002, 0.95)},
                            0.32, 0.20, 0.01);
        }),
        workload("623.xalancbmk_s-like", true, [] {
            return onePhase("623.xalancbmk_s-like", 1723,
                            {burstStride(2, 20, 0.014),
                             burstStride(2, 20, 0.014),
                             burstStride(1, 20, 0.012),
                             hotReuse(320, 0.001, 0.96)},
                            0.30, 0.10, 0.02);
        }),
        workload("625.x264_s-like", false, [] {
            return onePhase("625.x264_s-like", 1725,
                            {hotReuse(6144, 0.002, 0.97), stream(0.03)},
                            0.33, 0.20, 0.015);
        }),
        workload("627.cam4_s-like", false, [] {
            return onePhase("627.cam4_s-like", 1727,
                            {stride(4, 0.04),
                             hotReuse(6144, 0.002, 0.96)},
                            0.30, 0.18, 0.01);
        }),
        workload("628.pop2_s-like", true, [] {
            return onePhase("628.pop2_s-like", 1728,
                            {deltaSeq({2, 3, 2, 5}, 0.06,
                                      0.030, true),
                             hotReuse(320, 0.002, 0.97)},
                            0.33, 0.20, 0.01);
        }),
        workload("631.deepsjeng_s-like", false, [] {
            return onePhase("631.deepsjeng_s-like", 1731,
                            {hotReuse(4096, 0.002, 1.0)},
                            0.28, 0.15, 0.06);
        }),
        workload("638.imagick_s-like", false, [] {
            return onePhase("638.imagick_s-like", 1738,
                            {hotReuse(2048, 0.0008, 1.0)},
                            0.45, 0.25, 0.004);
        }),
        workload("641.leela_s-like", false, [] {
            return onePhase("641.leela_s-like", 1741,
                            {hotReuse(3072, 0.002, 1.0)},
                            0.28, 0.12, 0.05);
        }),
        workload("644.nab_s-like", false, [] {
            return onePhase("644.nab_s-like", 1744,
                            {stride(1, 0.01),
                             hotReuse(4096, 0.002, 0.99)},
                            0.35, 0.20, 0.008);
        }),
        workload("648.exchange2_s-like", false, [] {
            return onePhase("648.exchange2_s-like", 1748,
                            {hotReuse(512, 0.0002, 1.0)},
                            0.25, 0.10, 0.04);
        }),
        workload("649.fotonik3d_s-like", true, [] {
            return onePhase("649.fotonik3d_s-like", 1749,
                            {deltaSeq({1, 1, 2, 1, 1, 3}, 0.0, 0.020),
                             deltaSeq({1, 1, 2, 1, 1, 3}, 0.10,
                                      0.020, true),
                             hotReuse(320, 0.0, 0.96)},
                            0.36, 0.22, 0.004);
        }),
        workload("654.roms_s-like", true, [] {
            return onePhase("654.roms_s-like", 1754,
                            {stream(0.015), stream(0.008),
                             deltaSeq({1, 2}, 0.03,
                                      0.015, true),
                             hotReuse(320, 0.0, 0.962)},
                            0.35, 0.25, 0.006);
        }),
        workload("657.xz_s-like", true, [] {
            return onePhase("657.xz_s-like", 1757,
                            {pointerChase(std::uint64_t{1} << 18, 0.020),
                             pageShuffle(0.016),
                             hotReuse(320, 0.001, 0.814),
                             hotReuse(12288, 0.0, 0.15)},
                            0.32, 0.15, 0.02);
        }),
        workload("620.omnetpp_s-like", true, [] {
            return onePhase("620.omnetpp_s-like", 1720,
                            {pointerChase(std::uint64_t{1} << 19, 0.040),
                             hotReuse(320, 0.003, 0.76),
                             hotReuse(12288, 0.0, 0.20)},
                            0.30, 0.12, 0.03);
        }),
    };
    return suite;
}

} // namespace pfsim::workloads
