/**
 * @file
 * Unit tests for the cache substrate: replacement, MSHRs and the
 * queue-based Cache model, driven against a scriptable fake memory.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "cache/replacement.hh"

namespace pfsim::cache
{
namespace
{

/** A lower level that records requests and answers on demand. */
class FakeMemory : public MemoryLevel
{
  public:
    bool
    addRead(const Request &req) override
    {
        if (rejectReads)
            return false;
        reads.push_back(req);
        ++totalReads;
        return true;
    }

    bool
    addWrite(const Request &req) override
    {
        if (rejectWrites)
            return false;
        writes.push_back(req);
        return true;
    }

    bool
    addPrefetch(const Request &req) override
    {
        prefetches.push_back(req);
        return true;
    }

    void tick(Cycle) override {}

    /** Deliver data for every outstanding read. */
    void
    answerAll(Cycle now)
    {
        for (const Request &req : reads) {
            if (req.ret != nullptr)
                req.ret->returnData(req, now);
        }
        reads.clear();
    }

    std::vector<Request> reads;
    std::vector<Request> writes;
    std::vector<Request> prefetches;
    std::size_t totalReads = 0;
    bool rejectReads = false;
    bool rejectWrites = false;
};

/** A requestor that records completions. */
class FakeRequestor : public Requestor
{
  public:
    void
    returnData(const Request &req, Cycle now) override
    {
        completions.push_back({req.token, now});
    }

    std::vector<std::pair<std::uint64_t, Cycle>> completions;
};

CacheConfig
smallConfig()
{
    CacheConfig config;
    config.name = "test";
    config.sets = 4;
    config.ways = 2;
    config.latency = 3;
    config.mshrs = 4;
    config.rqSize = 8;
    config.wqSize = 8;
    config.pqSize = 8;
    return config;
}

Request
load(Addr addr, Requestor *ret = nullptr, std::uint64_t token = 0)
{
    Request req;
    req.addr = addr;
    req.type = AccessType::Load;
    req.pc = 0x400000;
    req.ret = ret;
    req.token = token;
    return req;
}

/** Run @p cache for @p cycles, answering fake memory each cycle. */
void
run(Cache &cache, FakeMemory &memory, Cycle &now, unsigned cycles)
{
    for (unsigned i = 0; i < cycles; ++i) {
        ++now;
        cache.tick(now);
        memory.answerAll(now);
    }
}

TEST(LruPolicy, EvictsLeastRecentlyTouched)
{
    LruPolicy lru;
    lru.initialize(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.touch(0, w, 0);
    lru.touch(0, 0, 0); // way 0 becomes MRU; way 1 is now LRU
    EXPECT_EQ(lru.victim(0), 1u);
    lru.touch(0, 1, 0);
    EXPECT_EQ(lru.victim(0), 2u);
}

TEST(MshrFile, AllocateFindRelease)
{
    MshrFile mshrs(2);
    EXPECT_FALSE(mshrs.full());
    MshrEntry *a = mshrs.allocate(0x1000, 5);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(mshrs.find(0x1000), a);
    EXPECT_EQ(mshrs.find(0x2000), nullptr);
    MshrEntry *b = mshrs.allocate(0x2000, 6);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(mshrs.full());
    EXPECT_EQ(mshrs.allocate(0x3000, 7), nullptr);
    mshrs.release(a);
    EXPECT_FALSE(mshrs.full());
    EXPECT_EQ(mshrs.find(0x1000), nullptr);
}

TEST(MshrFile, WaiterListStaysInlineInSteadyState)
{
    MshrFile mshrs(2);
    MshrEntry *e = mshrs.allocate(0x1000, 1);
    ASSERT_NE(e, nullptr);

    // The common merge depth (<= 4 waiters) never touches the heap;
    // deeper chains spill and keep working.
    Request req;
    for (int i = 0; i < 4; ++i) {
        req.token = std::uint64_t(i);
        e->waiters.push_back(req);
    }
    EXPECT_FALSE(e->waiters.spilled());
    EXPECT_EQ(e->waiters.size(), 4u);

    req.token = 4;
    e->waiters.push_back(req);
    EXPECT_TRUE(e->waiters.spilled());
    EXPECT_EQ(e->waiters.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(e->waiters[i].token, i);

    // release() clears the list; the recycled entry starts inline.
    mshrs.release(e);
    MshrEntry *again = mshrs.allocate(0x2000, 2);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again->waiters.size(), 0u);
    EXPECT_FALSE(again->waiters.spilled());
}

TEST(Cache, MshrSqueezeBackpressuresMissesUntilReleased)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory); // 4 MSHRs
    FakeRequestor requestor;
    Cycle now = 0;

    // Squeeze: 3 of the 4 MSHRs withheld, so distinct-block misses
    // must serialise through the single remaining entry.
    cache.faultInjectMshrs().faultInjectReserve(3);
    for (std::uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(cache.addRead(
            load(0x10000 + Addr(i) * blockSize, &requestor, i)));
    }
    ++now;
    cache.tick(now);
    EXPECT_EQ(memory.reads.size(), 1u);
    EXPECT_TRUE(cache.faultInjectMshrs().full());

    // Releasing the squeeze lets the queued misses proceed, and every
    // request still completes: backpressure stalls, it never loses.
    cache.faultInjectMshrs().faultInjectReserve(0);
    for (int c = 0; c < 4; ++c) {
        ++now;
        cache.tick(now); // memory left unanswered: no MSHR recycling
    }
    EXPECT_EQ(memory.reads.size(), 4u);
    run(cache, memory, now, 10);
    EXPECT_EQ(requestor.completions.size(), 4u);
}

TEST(Cache, MshrSqueezeStillCompletesWhileActive)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    cache.faultInjectMshrs().faultInjectReserve(3);
    for (std::uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(cache.addRead(
            load(0x20000 + Addr(i) * blockSize, &requestor, i)));
    }
    std::size_t max_used = 0;
    for (int c = 0; c < 100; ++c) {
        ++now;
        cache.tick(now);
        max_used = std::max(max_used, cache.faultInjectMshrs().used());
        memory.answerAll(now);
    }
    // All misses drained one at a time through the squeezed file.
    EXPECT_EQ(requestor.completions.size(), 4u);
    EXPECT_EQ(max_used, 1u);
    EXPECT_EQ(memory.totalReads, 4u);
}

TEST(Cache, MissForwardsToLowerAndFills)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    ASSERT_TRUE(cache.addRead(load(0x1000, &requestor, 7)));
    run(cache, memory, now, 10);

    ASSERT_EQ(requestor.completions.size(), 1u);
    EXPECT_EQ(requestor.completions[0].first, 7u);
    EXPECT_TRUE(cache.probe(0x1000));
    EXPECT_EQ(cache.stats().loadAccess, 1u);
    EXPECT_EQ(cache.stats().loadHit, 0u);
}

TEST(Cache, HitRespondsAfterLatencyWithoutLowerTraffic)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    cache.addRead(load(0x1000, &requestor, 1));
    run(cache, memory, now, 10);
    ASSERT_EQ(memory.totalReads, 1u);
    requestor.completions.clear();

    cache.addRead(load(0x1000, &requestor, 2));
    Cycle issued_at = now;
    run(cache, memory, now, 10);

    ASSERT_EQ(requestor.completions.size(), 1u);
    EXPECT_GE(requestor.completions[0].second,
              issued_at + cache.config().latency);
    EXPECT_EQ(cache.stats().loadHit, 1u);
    // No additional request reached the lower level.
    EXPECT_EQ(memory.totalReads, 1u);
}

TEST(Cache, MshrMergesSecondaryMiss)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    cache.addRead(load(0x2000, &requestor, 1));
    cache.addRead(load(0x2000, &requestor, 2));
    ++now;
    cache.tick(now); // process both; only one lower read
    EXPECT_EQ(memory.reads.size(), 1u);
    run(cache, memory, now, 10);
    EXPECT_EQ(requestor.completions.size(), 2u);
}

TEST(Cache, CapacityNeverExceeded)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    Cycle now = 0;

    for (int i = 0; i < 64; ++i) {
        cache.addRead(load(Addr(0x10000) + Addr(i) * blockSize));
        run(cache, memory, now, 4);
        EXPECT_LE(cache.validBlockCount(), 4u * 2u);
    }
}

TEST(Cache, DirtyVictimIsWrittenBack)
{
    CacheConfig config = smallConfig();
    config.sets = 1;
    config.ways = 2;
    config.writeAllocateDirty = true;
    FakeMemory memory;
    Cache cache(config, &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    // Two RFOs fill both ways dirty (writeAllocateDirty).
    Request rfo_a = load(0x1000, &requestor, 1);
    rfo_a.type = AccessType::Rfo;
    Request rfo_b = load(0x2000, &requestor, 2);
    rfo_b.type = AccessType::Rfo;
    cache.addRead(rfo_a);
    cache.addRead(rfo_b);
    run(cache, memory, now, 10);
    EXPECT_EQ(memory.writes.size(), 0u);

    // A third block evicts one dirty victim.
    cache.addRead(load(0x3000, &requestor, 3));
    run(cache, memory, now, 10);
    EXPECT_EQ(memory.writes.size(), 1u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WritebackAllocatesWithoutFetch)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    Cycle now = 0;

    Request wb;
    wb.addr = 0x4000;
    wb.type = AccessType::Writeback;
    ASSERT_TRUE(cache.addWrite(wb));
    run(cache, memory, now, 4);

    EXPECT_TRUE(cache.probe(0x4000));
    EXPECT_EQ(memory.reads.size(), 0u);
    EXPECT_EQ(cache.stats().writebackAccess, 1u);
}

TEST(Cache, PrefetchFillsAndDemandHitCountsUseful)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    ASSERT_TRUE(cache.issuePrefetch(0x5000, true));
    run(cache, memory, now, 10);
    EXPECT_TRUE(cache.probe(0x5000));
    EXPECT_EQ(cache.stats().pfIssued, 1u);
    EXPECT_EQ(cache.stats().pfFill, 1u);

    cache.addRead(load(0x5000, &requestor, 9));
    run(cache, memory, now, 10);
    EXPECT_EQ(cache.stats().pfUseful, 1u);

    // A second hit to the same block is a plain hit, not "useful".
    cache.addRead(load(0x5000, &requestor, 10));
    run(cache, memory, now, 10);
    EXPECT_EQ(cache.stats().pfUseful, 1u);
}

TEST(Cache, PrefetchDedupAgainstPresentBlock)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    Cycle now = 0;

    cache.issuePrefetch(0x6000, true);
    run(cache, memory, now, 10);
    EXPECT_FALSE(cache.issuePrefetch(0x6000, true));
    EXPECT_EQ(cache.stats().pfDroppedHit, 1u);
    EXPECT_EQ(cache.stats().pfIssued, 1u);
}

TEST(Cache, PrefetchDedupAgainstOutstandingMiss)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    cache.addRead(load(0x7000, &requestor, 1));
    ++now;
    cache.tick(now); // miss allocated, no answer yet
    EXPECT_FALSE(cache.issuePrefetch(0x7000, true));
    EXPECT_EQ(cache.stats().pfDroppedMshr, 1u);
}

TEST(Cache, LowConfidencePrefetchForwardsToLowerLevel)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    Cycle now = 0;

    ASSERT_TRUE(cache.issuePrefetch(0x8000, false));
    run(cache, memory, now, 4);
    // Forwarded to the lower level's prefetch queue, not fetched here.
    EXPECT_EQ(memory.prefetches.size(), 1u);
    EXPECT_TRUE(memory.prefetches[0].fillThisLevel);
    EXPECT_FALSE(cache.probe(0x8000));
    EXPECT_EQ(cache.stats().pfToLower, 1u);
}

TEST(Cache, UnusedPrefetchEvictionIsCounted)
{
    CacheConfig config = smallConfig();
    config.sets = 1;
    config.ways = 2;
    FakeMemory memory;
    Cache cache(config, &memory);
    Cycle now = 0;

    cache.issuePrefetch(0x9000, true);
    run(cache, memory, now, 10);
    // Two demand fills evict the unused prefetched block.
    cache.addRead(load(0xa000));
    cache.addRead(load(0xb000));
    run(cache, memory, now, 10);
    EXPECT_EQ(cache.stats().pfUselessEvict, 1u);
}

TEST(Cache, LateDemandMergesIntoPrefetchMiss)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    cache.issuePrefetch(0xc000, true);
    ++now;
    cache.tick(now); // prefetch sent to lower, not yet answered
    cache.addRead(load(0xc000, &requestor, 5));
    ++now;
    cache.tick(now); // demand merges into the prefetch MSHR
    run(cache, memory, now, 10);

    ASSERT_EQ(requestor.completions.size(), 1u);
    EXPECT_EQ(cache.stats().pfUseful, 1u);
    EXPECT_EQ(cache.stats().pfLate, 1u);
}

TEST(Cache, QueueCapacityIsEnforced)
{
    CacheConfig config = smallConfig();
    config.rqSize = 2;
    FakeMemory memory;
    Cache cache(config, &memory);

    EXPECT_TRUE(cache.addRead(load(0x1000)));
    EXPECT_TRUE(cache.addRead(load(0x2000)));
    EXPECT_FALSE(cache.addRead(load(0x3000)));
}

TEST(Cache, StallsWhenLowerRejectsAndRetries)
{
    FakeMemory memory;
    memory.rejectReads = true;
    Cache cache(smallConfig(), &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    cache.addRead(load(0xd000, &requestor, 1));
    run(cache, memory, now, 5);
    EXPECT_TRUE(requestor.completions.empty());

    memory.rejectReads = false;
    run(cache, memory, now, 10);
    EXPECT_EQ(requestor.completions.size(), 1u);
    // The retried miss is counted exactly once.
    EXPECT_EQ(cache.stats().loadAccess, 1u);
}

TEST(Cache, DemandProbeHitsWithoutLowerTraffic)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    Cycle now = 0;

    EXPECT_FALSE(cache.demandProbe(0xe000, 0x400000));
    EXPECT_EQ(cache.stats().loadAccess, 0u);

    cache.addRead(load(0xe000));
    run(cache, memory, now, 10);
    const auto accesses_before = cache.stats().loadAccess;
    EXPECT_TRUE(cache.demandProbe(0xe000, 0x400000));
    EXPECT_EQ(cache.stats().loadAccess, accesses_before + 1);
    EXPECT_EQ(cache.stats().loadHit, 1u);
}

TEST(Cache, RfoHitMarksDirtyWhenWriteAllocate)
{
    CacheConfig config = smallConfig();
    config.sets = 1;
    config.ways = 1;
    config.writeAllocateDirty = true;
    FakeMemory memory;
    Cache cache(config, &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    cache.addRead(load(0xf000, &requestor, 1));
    run(cache, memory, now, 10);
    Request rfo = load(0xf000, &requestor, 2);
    rfo.type = AccessType::Rfo;
    cache.addRead(rfo);
    run(cache, memory, now, 10);

    // Evicting the block must produce a writeback (it became dirty).
    cache.addRead(load(0xf000 + blockSize * 8, &requestor, 3));
    run(cache, memory, now, 10);
    EXPECT_EQ(memory.writes.size(), 1u);
}

TEST(Cache, StatsIdentitiesHold)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    Cycle now = 0;

    for (int i = 0; i < 40; ++i) {
        cache.addRead(load(Addr(0x20000) + Addr(i % 10) * blockSize));
        run(cache, memory, now, 3);
    }
    const CacheStats &stats = cache.stats();
    EXPECT_LE(stats.loadHit, stats.loadAccess);
    EXPECT_LE(stats.rfoHit, stats.rfoAccess);
    EXPECT_EQ(stats.demandAccesses(),
              stats.loadAccess + stats.rfoAccess);
    EXPECT_EQ(stats.demandMisses(),
              stats.demandAccesses() - stats.demandHits());
}

TEST(SrripPolicy, HitsPromoteAndScansPassThrough)
{
    SrripPolicy srrip;
    srrip.initialize(1, 4);
    // Fill all ways; then re-reference ways 0 and 1.
    for (std::uint32_t w = 0; w < 4; ++w)
        srrip.insert(0, w, 0);
    srrip.touch(0, 0, 0);
    srrip.touch(0, 1, 0);
    // The victim must be one of the never-re-referenced ways.
    const std::uint32_t victim = srrip.victim(0);
    EXPECT_TRUE(victim == 2 || victim == 3) << victim;
}

TEST(SrripPolicy, AgesWhenNoDistantBlockExists)
{
    SrripPolicy srrip;
    srrip.initialize(1, 2);
    srrip.insert(0, 0, 0);
    srrip.insert(0, 1, 0);
    srrip.touch(0, 0, 0);
    srrip.touch(0, 1, 0);
    // All blocks near: aging must still produce a victim.
    const std::uint32_t victim = srrip.victim(0);
    EXPECT_LT(victim, 2u);
}

TEST(ReplacementFactory, KnownPolicies)
{
    EXPECT_EQ(makePolicy("lru")->name(), "lru");
    EXPECT_EQ(makePolicy("srrip")->name(), "srrip");
}

TEST(ReplacementFactoryDeath, UnknownPolicyIsFatal)
{
    EXPECT_EXIT(makePolicy("belady"), testing::ExitedWithCode(1),
                "unknown replacement policy");
}

TEST(Cache, SrripConfiguredCacheWorks)
{
    CacheConfig config = smallConfig();
    config.replacement = "srrip";
    FakeMemory memory;
    Cache cache(config, &memory);
    FakeRequestor requestor;
    Cycle now = 0;
    for (int i = 0; i < 32; ++i) {
        cache.addRead(load(Addr(0x40000) + Addr(i) * blockSize,
                           &requestor, std::uint64_t(i)));
        run(cache, memory, now, 4);
    }
    run(cache, memory, now, 10); // drain the last response
    EXPECT_LE(cache.validBlockCount(), 8u);
    EXPECT_EQ(requestor.completions.size(), 32u);
}

TEST(Cache, PrefetchQueueFullCountsDrop)
{
    CacheConfig config = smallConfig();
    config.pqSize = 2;
    FakeMemory memory;
    Cache cache(config, &memory);

    EXPECT_TRUE(cache.issuePrefetch(0x100000, true));
    EXPECT_TRUE(cache.issuePrefetch(0x200000, true));
    EXPECT_FALSE(cache.issuePrefetch(0x300000, true));
    EXPECT_EQ(cache.stats().pfDroppedFull, 1u);
    EXPECT_EQ(cache.stats().pfIssued, 2u);
}

TEST(Cache, TagBandwidthBoundsWorkPerCycle)
{
    CacheConfig config = smallConfig();
    config.maxTagsPerCycle = 1;
    FakeMemory memory;
    Cache cache(config, &memory);
    FakeRequestor requestor;

    // Four hits queued: with one tag per cycle they complete over
    // at least four cycles.
    Cycle now = 0;
    cache.addRead(load(0x1000, &requestor, 0));
    run(cache, memory, now, 10);
    requestor.completions.clear();

    for (int i = 1; i <= 4; ++i)
        cache.addRead(load(0x1000, &requestor, std::uint64_t(i)));
    run(cache, memory, now, 2);
    EXPECT_LT(requestor.completions.size(), 4u);
    run(cache, memory, now, 10);
    EXPECT_EQ(requestor.completions.size(), 4u);
}

TEST(Cache, WritebackWhileMissInFlightMergesDirty)
{
    FakeMemory memory;
    Cache cache(smallConfig(), &memory);
    FakeRequestor requestor;
    Cycle now = 0;

    cache.addRead(load(0x9000, &requestor, 1));
    ++now;
    cache.tick(now); // miss outstanding, unanswered

    Request wb;
    wb.addr = 0x9000;
    wb.type = AccessType::Writeback;
    cache.addWrite(wb);
    ++now;
    cache.tick(now); // merges into the MSHR as dirty-on-fill

    run(cache, memory, now, 10);
    ASSERT_EQ(requestor.completions.size(), 1u);

    // Evicting the block must write it back: it was installed dirty.
    CacheConfig small = smallConfig();
    (void)small;
    for (int i = 1; i <= 16; ++i)
        cache.addRead(load(0x9000 + Addr(i) * blockSize * 4,
                           &requestor, std::uint64_t(100 + i)));
    run(cache, memory, now, 40);
    EXPECT_GE(memory.writes.size(), 1u);
}

TEST(CacheConfig, CapacityBytes)
{
    CacheConfig config;
    config.sets = 1024;
    config.ways = 8;
    EXPECT_EQ(config.capacityBytes(), 512u * 1024u);
}

} // namespace
} // namespace pfsim::cache
