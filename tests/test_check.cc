/**
 * @file
 * Tests for the hardware-invariant audit subsystem (src/check): each
 * corruption of auditor-visible state must be flagged with the right
 * invariant, a clean system must audit clean every cycle end to end,
 * and enforcement must abort on violations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cache/mshr.hh"
#include "cache/replacement.hh"
#include "check/auditors.hh"
#include "check/invariant.hh"
#include "check/system_audit.hh"
#include "core/filter_tables.hh"
#include "core/ppf.hh"
#include "core/weight_tables.hh"
#include "sim/runner.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

namespace pfsim
{
namespace
{

using check::AuditContext;

bool
hasViolation(const AuditContext &ctx, const std::string &invariant)
{
    return std::any_of(
        ctx.violations().begin(), ctx.violations().end(),
        [&](const check::Violation &v) {
            return v.invariant.find(invariant) != std::string::npos;
        });
}

// --- weight tables ----------------------------------------------------

TEST(WeightAudit, CleanAfterTraining)
{
    ppf::WeightTables tables;
    ppf::FeatureIndices idx{};
    for (int i = 0; i < 100; ++i) {
        for (unsigned f = 0; f < ppf::numFeatures; ++f)
            idx[f] = std::uint32_t(i) % ppf::featureTableSizes[f];
        tables.train(idx, i % 3 == 0);
    }

    AuditContext ctx(0);
    check::auditWeightTables(ctx, "weights", tables);
    EXPECT_TRUE(ctx.clean()) << ctx.violations().front().format();
}

TEST(WeightAudit, FlagsOutOfRangeWeight)
{
    // 3-bit clamp: legal range [-4, 3].  Poke a raw 10 past it.
    ppf::WeightTables tables(0x1ff, 3);
    tables.poke(ppf::FeatureId::PhysAddr, 17, 10);

    AuditContext ctx(42);
    check::auditWeightTables(ctx, "weights", tables);
    ASSERT_FALSE(ctx.clean());
    EXPECT_TRUE(hasViolation(ctx, "weight within clamp range"));
    EXPECT_EQ(ctx.violations().front().cycle, 42u);
    EXPECT_NE(ctx.violations().front().detail.find("17"),
              std::string::npos);
}

TEST(WeightAudit, FlagsTrainedDisabledFeature)
{
    // Feature 0 disabled: its table must stay all-zero.
    ppf::WeightTables tables(0x1fe);
    tables.poke(ppf::FeatureId::PhysAddr, 3, 1);

    AuditContext ctx(0);
    check::auditWeightTables(ctx, "weights", tables);
    EXPECT_TRUE(hasViolation(ctx, "disabled feature must stay untrained"));
}

// --- MSHR file --------------------------------------------------------

TEST(MshrAudit, CleanAfterAllocateAndRelease)
{
    cache::MshrFile mshrs(4);
    mshrs.allocate(0x1000, 5);
    cache::MshrEntry *e = mshrs.allocate(0x2000, 6);
    mshrs.release(e);

    AuditContext ctx(10);
    check::auditMshrFile(ctx, "mshr", mshrs);
    EXPECT_TRUE(ctx.clean()) << ctx.violations().front().format();
}

TEST(MshrAudit, FlagsDuplicateEntry)
{
    cache::MshrFile mshrs(4);
    mshrs.allocate(0x1000, 0);
    mshrs.allocate(0x2000, 0);
    // Corrupt the second entry to collide with the first.
    mshrs.find(0x2000)->addr = 0x1000;

    AuditContext ctx(0);
    check::auditMshrFile(ctx, "mshr", mshrs);
    ASSERT_FALSE(ctx.clean());
    EXPECT_TRUE(hasViolation(ctx, "one MSHR entry per block address"));
}

TEST(MshrAudit, FlagsMisalignedAddressAndFutureAllocation)
{
    cache::MshrFile mshrs(4);
    mshrs.allocate(0x1000, 0);
    mshrs.find(0x1000)->addr = 0x1003; // not block-aligned

    AuditContext ctx(0);
    check::auditMshrFile(ctx, "mshr", mshrs);
    EXPECT_TRUE(hasViolation(ctx, "block-aligned"));

    cache::MshrFile late(2);
    late.allocate(0x4000, 100); // allocated "in the future"
    AuditContext ctx2(50);
    check::auditMshrFile(ctx2, "mshr", late);
    EXPECT_TRUE(hasViolation(ctx2, "not in the future"));
}

// --- filter tables ----------------------------------------------------

TEST(FilterAudit, FlagsOversizedTable)
{
    // A 16-slot table where the configuration promises 4: both the
    // capacity mismatch and (once 5+ entries are live) the occupancy
    // bound must trip.
    ppf::FilterTable table(16);
    ppf::FeatureInput features;
    for (Addr block = 0; block < 8; ++block)
        table.insert(block * blockSize, features, true);

    AuditContext ctx(0);
    check::auditFilterTable(ctx, "filter", table, 4);
    ASSERT_FALSE(ctx.clean());
    EXPECT_TRUE(hasViolation(ctx, "capacity matches configuration"));
    EXPECT_TRUE(hasViolation(ctx, "occupancy within configured capacity"));
}

TEST(FilterAudit, CleanWhenSizedAsConfigured)
{
    ppf::FilterTable table(1024);
    ppf::FeatureInput features;
    for (Addr block = 0; block < 512; ++block)
        table.insert(block * blockSize, features, true);

    AuditContext ctx(0);
    check::auditFilterTable(ctx, "filter", table, 1024);
    EXPECT_TRUE(ctx.clean()) << ctx.violations().front().format();
}

// --- PPF --------------------------------------------------------------

TEST(PpfAudit, CleanDefaultConfiguration)
{
    ppf::Ppf filter;
    check::PpfAuditor auditor("ppf", filter);

    AuditContext ctx(0);
    auditor.audit(ctx);
    EXPECT_TRUE(ctx.clean()) << ctx.violations().front().format();
}

TEST(PpfAudit, FlagsInvertedThresholds)
{
    ppf::PpfConfig config;
    config.tauHi = 1;
    config.tauLo = 5; // tau_lo > tau_hi: the band is inverted
    ppf::Ppf filter(config);

    AuditContext ctx(0);
    check::PpfAuditor("ppf", filter).audit(ctx);
    EXPECT_TRUE(hasViolation(ctx, "tau_lo <= tau_hi"));
}

TEST(PpfAudit, FlagsBadTrainingSaturation)
{
    ppf::PpfConfig config;
    config.thetaP = -3; // positive saturation below zero
    ppf::Ppf filter(config);

    AuditContext ctx(0);
    check::PpfAuditor("ppf", filter).audit(ctx);
    EXPECT_TRUE(hasViolation(ctx, "theta_n <= 0 <= theta_p"));
}

// --- replacement metadata --------------------------------------------

TEST(ReplacementAudit, LruAndSrripMetadataConsistent)
{
    cache::LruPolicy lru;
    lru.initialize(4, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.touch(1, w, 0);
    std::string why;
    EXPECT_TRUE(lru.auditMetadata(why)) << why;

    cache::SrripPolicy srrip;
    srrip.initialize(4, 4);
    srrip.insert(0, 2, 0);
    srrip.touch(0, 2, 0);
    EXPECT_TRUE(srrip.auditMetadata(why)) << why;
}

// --- registry ---------------------------------------------------------

/** An auditor whose verdict the test controls. */
class FlagOnDemand : public check::Auditor
{
  public:
    explicit FlagOnDemand(bool fail) : fail_(fail) {}

    const std::string &name() const override { return name_; }

    void
    audit(AuditContext &ctx) const override
    {
        ctx.require(!fail_, name_, "test invariant", "forced failure");
    }

  private:
    bool fail_;
    std::string name_ = "test.auditor";
};

TEST(Registry, ScheduleAndRunCounting)
{
    check::AuditorRegistry registry;
    EXPECT_FALSE(registry.enabled());
    EXPECT_FALSE(registry.due(0));

    registry.setInterval(10);
    EXPECT_TRUE(registry.enabled());
    EXPECT_TRUE(registry.due(20));
    EXPECT_FALSE(registry.due(21));

    registry.add(std::make_unique<FlagOnDemand>(false));
    EXPECT_EQ(registry.run(20).size(), 0u);
    EXPECT_EQ(registry.auditsRun(), 1u);
}

TEST(Registry, RunCollectsViolations)
{
    check::AuditorRegistry registry;
    registry.add(std::make_unique<FlagOnDemand>(false));
    registry.add(std::make_unique<FlagOnDemand>(true));

    const std::vector<check::Violation> violations = registry.run(7);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].component, "test.auditor");
    EXPECT_EQ(violations[0].cycle, 7u);
}

TEST(RegistryDeathTest, EnforceAbortsOnViolation)
{
    check::AuditorRegistry registry;
    registry.add(std::make_unique<FlagOnDemand>(true));
    EXPECT_DEATH(registry.enforce(3), "invariant audit failed");
}

// --- end to end -------------------------------------------------------

TEST(SystemAudit, RegistersAuditorsForEveryComponent)
{
    const sim::SystemConfig config =
        sim::SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const workloads::Workload &workload =
        workloads::findWorkload("603.bwaves_s-like");
    trace::SyntheticTrace trace(workload.make());
    sim::System system(config, {&trace});

    check::attachSystemAuditors(system, 100);

    // 1 core: L1I + L1D + L2 + PPF, plus the shared LLC and DRAM.
    EXPECT_EQ(system.audit().size(), 6u);
    EXPECT_EQ(system.audit().interval(), 100u);
    EXPECT_TRUE(system.audit().run(0).empty());
}

TEST(SystemAudit, CleanEveryCycleEndToEnd)
{
    // The satellite acceptance run: a short synthetic SPP+PPF workload
    // audited every single cycle must complete with zero violations
    // (enforce() aborts the process otherwise).
    sim::RunConfig run;
    run.warmupInstructions = 1000;
    run.simInstructions = 4000;
    run.auditInterval = 1;

    const sim::SystemConfig config =
        sim::SystemConfig::defaultConfig().withPrefetcher("spp_ppf");
    const sim::RunResult result = sim::runSingleCore(
        config, workloads::findWorkload("605.mcf_s-like"), run);

    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GE(result.core.instructions, run.simInstructions);
}

TEST(SystemAudit, AuditRunsAtConfiguredInterval)
{
    const sim::SystemConfig config =
        sim::SystemConfig::defaultConfig().withPrefetcher("spp");
    const workloads::Workload &workload =
        workloads::findWorkload("605.mcf_s-like");
    trace::SyntheticTrace trace(workload.make());
    sim::System system(config, {&trace});

    check::attachSystemAuditors(system, 10);
    for (int i = 0; i < 100; ++i)
        system.cycle();

    EXPECT_EQ(system.audit().auditsRun(), 10u);
}

} // namespace
} // namespace pfsim
