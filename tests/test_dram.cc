/**
 * @file
 * Unit tests for the DRAM model: latency classes, bandwidth
 * serialisation, write draining and demand-over-prefetch priority.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/dram.hh"

namespace pfsim::dram
{
namespace
{

using cache::AccessType;
using cache::Request;
using cache::Requestor;

class FakeRequestor : public Requestor
{
  public:
    void
    returnData(const Request &req, Cycle now) override
    {
        completions.push_back({req.token, now});
    }

    std::vector<std::pair<std::uint64_t, Cycle>> completions;
};

Request
read(Addr addr, Requestor *ret, std::uint64_t token = 0,
     AccessType type = AccessType::Load)
{
    Request req;
    req.addr = addr;
    req.type = type;
    req.ret = ret;
    req.token = token;
    return req;
}

void
run(Dram &dram, Cycle &now, unsigned cycles)
{
    for (unsigned i = 0; i < cycles; ++i)
        dram.tick(++now);
}

TEST(DramConfig, BandwidthToTransferCycles)
{
    DramConfig config;
    config.setBandwidthGBs(12.8);
    EXPECT_EQ(config.transferCycles, 20u);
    config.setBandwidthGBs(3.2);
    EXPECT_EQ(config.transferCycles, 80u);
}

TEST(Dram, ReadCompletesWithRowMissLatency)
{
    Dram dram(DramConfig{});
    FakeRequestor requestor;
    Cycle now = 0;

    ASSERT_TRUE(dram.addRead(read(0x10000, &requestor, 1)));
    run(dram, now, 400);

    ASSERT_EQ(requestor.completions.size(), 1u);
    const Cycle latency = requestor.completions[0].second;
    const DramConfig &config = dram.config();
    EXPECT_GE(latency, config.rowMissLatency);
    EXPECT_LE(latency,
              config.rowMissLatency + config.transferCycles + 4);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
}

TEST(Dram, SecondAccessToSameRowIsFaster)
{
    Dram dram(DramConfig{});
    FakeRequestor requestor;
    Cycle now = 0;

    dram.addRead(read(0x10000, &requestor, 1));
    run(dram, now, 400);
    const Cycle first = requestor.completions.at(0).second;

    const Cycle start = now;
    dram.addRead(read(0x10040, &requestor, 2));
    run(dram, now, 400);
    const Cycle second = requestor.completions.at(1).second - start;
    EXPECT_LT(second, first);
    EXPECT_EQ(dram.stats().rowHits, 1u);
}

TEST(Dram, DifferentRowSameBankConflicts)
{
    DramConfig config;
    Dram dram(config);
    FakeRequestor requestor;
    Cycle now = 0;

    // Same bank: rows config.banks apart in row index.
    const Addr row_stride = config.rowBytes * config.banks;
    dram.addRead(read(0x10000, &requestor, 1));
    run(dram, now, 400);
    dram.addRead(read(0x10000 + row_stride, &requestor, 2));
    run(dram, now, 400);
    EXPECT_EQ(dram.stats().rowConflicts, 1u);
}

TEST(Dram, StreamingThroughputIsBusBound)
{
    DramConfig config;
    Dram dram(config);
    FakeRequestor requestor;
    Cycle now = 0;

    const unsigned n = 32;
    for (unsigned i = 0; i < n; ++i)
        ASSERT_TRUE(dram.addRead(read(Addr(i) * blockSize,
                                      &requestor, i)));
    run(dram, now, 4000);

    ASSERT_EQ(requestor.completions.size(), n);
    Cycle last = 0;
    for (const auto &completion : requestor.completions)
        last = std::max(last, completion.second);
    // All transfers must serialise on the data bus...
    EXPECT_GE(last, Cycle(n) * config.transferCycles);
    // ...but pipelined row hits keep the stream near the bus rate.
    EXPECT_LE(last, Cycle(n) * config.transferCycles +
                        config.rowConflictLatency + 64);
}

TEST(Dram, WritesEventuallyDrain)
{
    Dram dram(DramConfig{});
    FakeRequestor requestor;
    Cycle now = 0;

    for (unsigned i = 0; i < 8; ++i) {
        Request wb;
        wb.addr = Addr(i) * blockSize;
        wb.type = AccessType::Writeback;
        ASSERT_TRUE(dram.addWrite(wb));
    }
    run(dram, now, 4000);
    EXPECT_EQ(dram.pendingWrites(), 0u);
    EXPECT_EQ(dram.stats().writes, 8u);
}

TEST(Dram, WritesDrainEvenUnderReadPressure)
{
    DramConfig config;
    config.writeDrainHigh = 4;
    config.writeDrainLow = 1;
    Dram dram(config);
    FakeRequestor requestor;
    Cycle now = 0;

    // Continuous read stream with writes trickling in.
    unsigned issued_reads = 0;
    for (unsigned cycle = 0; cycle < 8000; ++cycle) {
        if (cycle % 25 == 0) {
            if (dram.addRead(read(Addr(issued_reads) * blockSize,
                                  &requestor, issued_reads)))
                ++issued_reads;
        }
        if (cycle % 40 == 0) {
            Request wb;
            wb.addr = Addr{1} << 30 | (Addr(cycle) * blockSize);
            wb.type = AccessType::Writeback;
            dram.addWrite(wb);
        }
        dram.tick(++now);
    }
    EXPECT_GT(dram.stats().writes, 100u);
    EXPECT_LT(dram.pendingWrites(), 8u);
}

TEST(Dram, DemandBeatsQueuedPrefetches)
{
    DramConfig config;
    Dram dram(config);
    FakeRequestor requestor;
    Cycle now = 0;

    // Queue several prefetch reads, then one demand read; despite
    // arriving last, the demand must complete first.
    for (unsigned i = 0; i < 8; ++i) {
        Request pf = read(Addr(i) * blockSize, &requestor, i,
                          AccessType::Prefetch);
        ASSERT_TRUE(dram.addRead(pf));
    }
    dram.addRead(read(Addr{1} << 24, &requestor, 99));
    run(dram, now, 4000);

    ASSERT_EQ(requestor.completions.size(), 9u);
    Cycle demand_done = 0;
    Cycle first_prefetch_done = ~Cycle{0};
    for (const auto &[token, cycle] : requestor.completions) {
        if (token == 99)
            demand_done = cycle;
        else
            first_prefetch_done = std::min(first_prefetch_done, cycle);
    }
    EXPECT_LT(demand_done, first_prefetch_done + 8 * 20);
}

TEST(Dram, ChannelMappingDistributes)
{
    DramConfig config;
    config.channels = 2;
    Dram dram(config);
    FakeRequestor requestor;

    // Even/odd block addresses land on different channels, so both
    // can be queued beyond a single channel's capacity.
    for (unsigned i = 0; i < config.rqSize * 2; ++i) {
        ASSERT_TRUE(dram.addRead(
            read(Addr(i) * blockSize, &requestor, i)));
    }
    EXPECT_EQ(dram.pendingReads(), std::size_t(config.rqSize) * 2);
}

TEST(Dram, ReadQueueCapacityEnforced)
{
    DramConfig config;
    Dram dram(config);
    FakeRequestor requestor;

    // Saturate one channel's read queue.
    for (unsigned i = 0; i < config.rqSize; ++i)
        ASSERT_TRUE(dram.addRead(read(Addr(i) * blockSize,
                                      &requestor, i)));
    EXPECT_FALSE(dram.addRead(
        read(Addr(config.rqSize) * blockSize, &requestor, 1000)));
}

/** A scriptable fault hook: drop the first N responses, delay all. */
class ScriptedFaultHook : public DramFaultHook
{
  public:
    bool
    dropResponse(const cache::Request &) override
    {
        if (drops == 0)
            return false;
        --drops;
        return true;
    }

    Cycle responseDelay(const cache::Request &) override { return extra; }

    unsigned drops = 0;
    Cycle extra = 0;
};

TEST(DramFault, NullRatesLeaveTimingUntouched)
{
    FakeRequestor base_req, hook_req;
    Cycle now = 0;

    Dram baseline(DramConfig{});
    ASSERT_TRUE(baseline.addRead(read(0x10000, &base_req, 1)));
    run(baseline, now, 400);

    Dram hooked(DramConfig{});
    ScriptedFaultHook hook; // armed but all-zero: must be a no-op
    hooked.faultInjectHook(&hook);
    now = 0;
    ASSERT_TRUE(hooked.addRead(read(0x10000, &hook_req, 1)));
    run(hooked, now, 400);

    ASSERT_EQ(base_req.completions.size(), 1u);
    ASSERT_EQ(hook_req.completions.size(), 1u);
    EXPECT_EQ(base_req.completions[0].second,
              hook_req.completions[0].second);
}

TEST(DramFault, DelayedResponseAddsExtraCycles)
{
    FakeRequestor base_req, hook_req;
    Cycle now = 0;

    Dram baseline(DramConfig{});
    baseline.addRead(read(0x10000, &base_req, 1));
    run(baseline, now, 1000);
    ASSERT_EQ(base_req.completions.size(), 1u);

    Dram hooked(DramConfig{});
    ScriptedFaultHook hook;
    hook.extra = 150;
    hooked.faultInjectHook(&hook);
    now = 0;
    hooked.addRead(read(0x10000, &hook_req, 1));
    run(hooked, now, 1000);
    ASSERT_EQ(hook_req.completions.size(), 1u);

    EXPECT_EQ(hook_req.completions[0].second,
              base_req.completions[0].second + 150);
}

TEST(DramFault, DroppedResponseIsRetriedNotLost)
{
    FakeRequestor base_req, hook_req;
    Cycle now = 0;

    Dram baseline(DramConfig{});
    baseline.addRead(read(0x10000, &base_req, 1));
    run(baseline, now, 2000);
    ASSERT_EQ(base_req.completions.size(), 1u);

    Dram hooked(DramConfig{});
    ScriptedFaultHook hook;
    hook.drops = 1;
    hooked.faultInjectHook(&hook);
    now = 0;
    hooked.addRead(read(0x10000, &hook_req, 1));
    run(hooked, now, 2000);

    // The read completes exactly once, later than the clean run (the
    // first service attempt's bus/bank time was wasted), and the
    // dropped attempt is not double-counted in the read stats.
    ASSERT_EQ(hook_req.completions.size(), 1u);
    EXPECT_GT(hook_req.completions[0].second,
              base_req.completions[0].second);
    EXPECT_EQ(hooked.stats().reads, 1u);
}

TEST(Dram, ResetStatsZeroes)
{
    Dram dram(DramConfig{});
    FakeRequestor requestor;
    Cycle now = 0;
    dram.addRead(read(0x1000, &requestor, 1));
    run(dram, now, 400);
    EXPECT_GT(dram.stats().reads, 0u);
    dram.resetStats();
    EXPECT_EQ(dram.stats().reads, 0u);
    EXPECT_EQ(dram.stats().busBusyCycles, 0u);
}

} // namespace
} // namespace pfsim::dram
