/**
 * @file
 * Unit tests for the fault-injection layer: plan parsing, seed
 * derivation, injector determinism (same seed => same faults), the
 * trace corruption/sanitation pair with its error budget, and the
 * retry/degrade semantics of the resilient sweep fleet.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/mshr.hh"
#include "core/ppf.hh"
#include "dram/dram.hh"
#include "fault/engine.hh"
#include "fault/fault.hh"
#include "fault/injectors.hh"
#include "sim/parallel.hh"
#include "trace/source.hh"

namespace pfsim::fault
{
namespace
{

// ---------------------------------------------------------------- plan

TEST(FaultPlan, EmptySpecArmsNothing)
{
    const FaultPlan plan = FaultPlan::parse("");
    EXPECT_FALSE(plan.any());
    EXPECT_FALSE(plan.anySystem());
    EXPECT_EQ(plan.summary(), "none");
}

TEST(FaultPlan, FullSpecRoundTrips)
{
    const FaultPlan plan = FaultPlan::parse(
        "trace:rate=0.01,budget=0.3;weights:rate=0.001,burst=2;"
        "spp:rate=0.002;dram:drop=0.01,delay=0.02,extra=300;"
        "mshr:reserve=4,period=1000,duty=100;job:crash=2");
    EXPECT_DOUBLE_EQ(plan.trace.rate, 0.01);
    EXPECT_DOUBLE_EQ(plan.trace.budget, 0.3);
    EXPECT_DOUBLE_EQ(plan.weights.rate, 0.001);
    EXPECT_EQ(plan.weights.burst, 2u);
    EXPECT_DOUBLE_EQ(plan.spp.rate, 0.002);
    EXPECT_DOUBLE_EQ(plan.dram.dropRate, 0.01);
    EXPECT_DOUBLE_EQ(plan.dram.delayRate, 0.02);
    EXPECT_EQ(plan.dram.extraCycles, 300u);
    EXPECT_EQ(plan.mshr.reserve, 4u);
    EXPECT_EQ(plan.mshr.period, 1000u);
    EXPECT_EQ(plan.mshr.duty, 100u);
    EXPECT_EQ(plan.job.crashIndex, 2);
    EXPECT_TRUE(plan.any());
    EXPECT_TRUE(plan.anySystem());
    EXPECT_NE(plan.summary(), "none");
}

TEST(FaultPlan, JobOnlySpecIsNotSystemFault)
{
    const FaultPlan plan = FaultPlan::parse("job:flaky=1,fails=2");
    EXPECT_TRUE(plan.any());
    EXPECT_FALSE(plan.anySystem());
    EXPECT_EQ(plan.job.flakyIndex, 1);
    EXPECT_EQ(plan.job.flakyFails, 2u);
}

TEST(FaultPlan, AbortSpecParsesAndSummarizes)
{
    const FaultPlan plan = FaultPlan::parse("job:abort=3");
    EXPECT_EQ(plan.job.abortIndex, 3);
    EXPECT_TRUE(plan.any());
    EXPECT_FALSE(plan.anySystem());
    EXPECT_NE(plan.summary().find("abort=3"), std::string::npos);
}

TEST(FaultPlanDeath, RejectsUnknownJobKey)
{
    EXPECT_EXIT(FaultPlan::parse("job:kill=1"),
                testing::ExitedWithCode(1), "abort");
}

TEST(FaultPlanDeath, RejectsUnknownKind)
{
    EXPECT_EXIT(FaultPlan::parse("bogus:rate=0.1"),
                testing::ExitedWithCode(1), "unknown fault kind");
}

TEST(FaultPlanDeath, RejectsUnknownKey)
{
    EXPECT_EXIT(FaultPlan::parse("trace:frequency=0.1"),
                testing::ExitedWithCode(1), "unknown trace key");
}

TEST(FaultPlanDeath, RejectsRateOutsideUnitInterval)
{
    EXPECT_EXIT(FaultPlan::parse("trace:rate=1.5"),
                testing::ExitedWithCode(1),
                "trace rate must be within");
}

TEST(FaultPlanDeath, RejectsMalformedNumber)
{
    EXPECT_EXIT(FaultPlan::parse("spp:rate=lots"),
                testing::ExitedWithCode(1), "expects a number");
}

TEST(FaultPlanDeath, RejectsMissingValue)
{
    EXPECT_EXIT(FaultPlan::parse("trace:rate"),
                testing::ExitedWithCode(1), "expected key=value");
}

TEST(FaultPlanDeath, RejectsDutyLongerThanPeriod)
{
    EXPECT_EXIT(
        FaultPlan::parse("mshr:reserve=4,period=100,duty=200"),
        testing::ExitedWithCode(1), "mshr duty must be within");
}

TEST(FaultPlanDeath, RejectsZeroBurst)
{
    EXPECT_EXIT(FaultPlan::parse("weights:rate=0.1,burst=0"),
                testing::ExitedWithCode(1), "burst must be >= 1");
}

TEST(FaultPlanDeath, RejectsFlakyWithoutFailures)
{
    EXPECT_EXIT(FaultPlan::parse("job:flaky=0,fails=0"),
                testing::ExitedWithCode(1), "fails must be >= 1");
}

TEST(DeriveSeed, DistinctStreamsDecorrelate)
{
    const std::uint64_t a = deriveSeed(1, 0);
    const std::uint64_t b = deriveSeed(1, 1);
    const std::uint64_t c = deriveSeed(2, 0);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
    // Pure function: same inputs, same stream.
    EXPECT_EQ(deriveSeed(1, 0), a);
}

// ------------------------------------------------------ trace faults

/** An endless, deterministic, well-formed instruction stream. */
class CleanTrace : public trace::TraceSource
{
  public:
    bool
    next(Instruction &out) override
    {
        out = Instruction{};
        out.pc = 0x400000 + 4 * (n_ % 1024);
        out.loadAddr = (Addr{1} << 30) + blockSize * (n_ % 4096);
        ++n_;
        return true;
    }

    const std::string &name() const override { return name_; }

  private:
    std::uint64_t n_ = 0;
    std::string name_ = "clean";
};

/** Replays a fixed script of (possibly malformed) instructions. */
class ScriptedTrace : public trace::TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<Instruction> script)
        : script_(std::move(script))
    {
    }

    bool
    next(Instruction &out) override
    {
        if (pos_ >= script_.size())
            pos_ = 0;
        out = script_[pos_++];
        return true;
    }

    const std::string &name() const override { return name_; }

  private:
    std::vector<Instruction> script_;
    std::size_t pos_ = 0;
    std::string name_ = "scripted";
};

TEST(CorruptingTrace, SameSeedCorruptsIdentically)
{
    TraceFaultSpec spec;
    spec.rate = 0.2;

    CleanTrace clean_a, clean_b;
    CorruptingTrace a(clean_a, spec, 42);
    CorruptingTrace b(clean_b, spec, 42);
    for (int i = 0; i < 5000; ++i) {
        Instruction ia, ib;
        ASSERT_TRUE(a.next(ia));
        ASSERT_TRUE(b.next(ib));
        EXPECT_EQ(ia.pc, ib.pc);
        EXPECT_EQ(ia.loadAddr, ib.loadAddr);
        EXPECT_EQ(ia.isBranch, ib.isBranch);
        EXPECT_EQ(ia.branchTaken, ib.branchTaken);
    }
    FaultStats sa, sb;
    a.accumulate(sa);
    b.accumulate(sb);
    EXPECT_GT(sa.traceCorrupted, 0u);
    EXPECT_EQ(sa.traceCorrupted, sb.traceCorrupted);
    EXPECT_EQ(sa.traceDropped, sb.traceDropped);
}

TEST(CorruptingTrace, DifferentSeedsDiverge)
{
    TraceFaultSpec spec;
    spec.rate = 0.2;

    CleanTrace clean_a, clean_b;
    CorruptingTrace a(clean_a, spec, 1);
    CorruptingTrace b(clean_b, spec, 2);
    bool diverged = false;
    for (int i = 0; i < 5000 && !diverged; ++i) {
        Instruction ia, ib;
        a.next(ia);
        b.next(ib);
        diverged = ia.loadAddr != ib.loadAddr ||
                   ia.branchTaken != ib.branchTaken;
    }
    EXPECT_TRUE(diverged);
}

TEST(SanitizingTrace, RepairsMalformedRecords)
{
    Instruction garbage_flags;
    garbage_flags.pc = 0x1000;
    garbage_flags.branchTaken = true; // taken but not a branch

    Instruction wild_load;
    wild_load.pc = 0x1004;
    wild_load.loadAddr = (Addr{1} << 62) | 0x1234;

    Instruction healthy;
    healthy.pc = 0x1008;
    healthy.loadAddr = Addr{1} << 30;

    ScriptedTrace source({garbage_flags, wild_load, healthy});
    SanitizingTrace sanitizer(source, 1.0);

    Instruction out;
    ASSERT_TRUE(sanitizer.next(out));
    EXPECT_FALSE(out.branchTaken);

    ASSERT_TRUE(sanitizer.next(out));
    EXPECT_LT(out.loadAddr, Addr{1} << 48);
    EXPECT_NE(out.loadAddr, 0u);

    ASSERT_TRUE(sanitizer.next(out));
    EXPECT_EQ(out.loadAddr, Addr{1} << 30);

    EXPECT_EQ(sanitizer.repaired(), 2u);
}

TEST(SanitizingTrace, ThrowsOnceErrorBudgetExceeded)
{
    Instruction wild;
    wild.pc = 0x1000;
    wild.loadAddr = Addr{1} << 60; // always repaired

    ScriptedTrace source({wild});
    SanitizingTrace sanitizer(source, 0.1);
    Instruction out;
    // The budget is only enforced after enough records for the
    // fraction to be meaningful, then trips immediately at 100%
    // damage.
    for (int i = 0; i < 255; ++i)
        ASSERT_TRUE(sanitizer.next(out));
    EXPECT_THROW(sanitizer.next(out), ErrorBudgetExceeded);
}

TEST(SanitizingTrace, CleanStreamPassesUntouched)
{
    CleanTrace clean;
    SanitizingTrace sanitizer(clean, 0.0);
    Instruction out;
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(sanitizer.next(out));
    EXPECT_EQ(sanitizer.repaired(), 0u);
}

// ------------------------------------------------------ weight flips

TEST(WeightFlip, FlipSetsExactBitAndReclamps)
{
    ppf::Ppf ppf;
    const auto feature = ppf::FeatureId(0);
    // Untrained weight is 0; flipping bit 0 yields +1.
    EXPECT_EQ(ppf.weights().weight(feature, 7), 0);
    EXPECT_EQ(ppf.faultInjectWeightFlip(feature, 7, 0), 1);
    EXPECT_EQ(ppf.weights().weight(feature, 7), 1);
    // Flipping the sign bit of the stored encoding of 1 gives
    // 0b10001 = -15 in 5-bit two's complement.
    EXPECT_EQ(ppf.faultInjectWeightFlip(feature, 7, 4), -15);
}

TEST(WeightFlip, NarrowClampReboundsFlippedWeight)
{
    ppf::PpfConfig config;
    config.weightClampBits = 3; // weights clamped to [-4, 3]
    ppf::Ppf ppf(config);
    const auto feature = ppf::FeatureId(0);
    // Flipping bit 3 of 0 would give raw 8 = -24 sign-extended... but
    // any post-flip value is re-clamped into the configured range, as
    // saturating hardware would enforce on the next update.
    const int post = ppf.faultInjectWeightFlip(feature, 3, 3);
    EXPECT_GE(post, ppf.weights().weightMin());
    EXPECT_LE(post, ppf.weights().weightMax());
}

TEST(WeightFlipInjector, SameSeedFlipsSameWeights)
{
    WeightFaultSpec spec;
    spec.rate = 0.01;
    spec.burst = 2;

    ppf::Ppf ppf_a, ppf_b;
    WeightFlipInjector a(ppf_a, spec, 99);
    WeightFlipInjector b(ppf_b, spec, 99);
    for (Cycle now = 0; now < 20000; ++now) {
        a.tick(now);
        b.tick(now);
    }
    a.finish(20000);
    b.finish(20000);

    FaultStats sa, sb;
    a.accumulate(sa);
    b.accumulate(sb);
    EXPECT_GT(sa.weightFlips, 0u);
    EXPECT_EQ(sa.weightFlips, sb.weightFlips);
    EXPECT_EQ(sa.weightFlipsRecovered, sb.weightFlipsRecovered);
    EXPECT_EQ(sa.weightRecoveryCyclesSum, sb.weightRecoveryCyclesSum);

    // The damaged state must be identical too, not just the counters.
    for (unsigned f = 0; f < ppf::numFeatures; ++f) {
        const auto feature = ppf::FeatureId(f);
        for (std::uint32_t i = 0; i < ppf::featureTableSizes[f]; ++i) {
            ASSERT_EQ(ppf_a.weights().weight(feature, i),
                      ppf_b.weights().weight(feature, i));
        }
    }
}

TEST(WeightFlipInjector, RecoveryBookkeepingIsConsistent)
{
    WeightFaultSpec spec;
    spec.rate = 0.05;

    ppf::Ppf ppf;
    WeightFlipInjector injector(ppf, spec, 7);
    for (Cycle now = 0; now < 50000; ++now)
        injector.tick(now);
    injector.finish(50000);

    FaultStats stats;
    injector.accumulate(stats);
    EXPECT_GT(stats.weightFlips, 0u);
    EXPECT_LE(stats.weightFlipsRecovered, stats.weightFlips);
    // A flip of bit 0 on an untrained (zero) weight lands within one
    // training step of its pre-flip value, so some flips recover with
    // a finite latency even without a running training loop.
    EXPECT_GT(stats.weightFlipsRecovered, 0u);
    EXPECT_LE(stats.weightRecoveryCyclesMax, 50000u);
    if (stats.weightFlipsRecovered > 0) {
        EXPECT_GE(stats.meanWeightRecoveryCycles(), 0.0);
    }
}

// ------------------------------------------------------ MSHR squeeze

TEST(MshrFile, FaultReserveWithholdsEntries)
{
    cache::MshrFile mshrs(8);
    mshrs.faultInjectReserve(4);
    EXPECT_EQ(mshrs.faultReserved(), 4u);
    for (Addr a = 0; a < 4; ++a)
        ASSERT_NE(mshrs.allocate(0x1000 + a * blockSize, 1), nullptr);
    // The fifth allocation hits the squeezed ceiling.
    EXPECT_TRUE(mshrs.full());
    EXPECT_EQ(mshrs.allocate(0x9000, 2), nullptr);
    // Releasing the squeeze restores the full capacity.
    mshrs.faultInjectReserve(0);
    EXPECT_FALSE(mshrs.full());
    EXPECT_NE(mshrs.allocate(0x9000, 3), nullptr);
}

TEST(MshrFile, FaultReserveNeverDeadlocksTheFile)
{
    cache::MshrFile mshrs(8);
    // Reserving the whole file would deadlock the miss path; the
    // squeeze is clamped so one entry always remains allocatable.
    mshrs.faultInjectReserve(100);
    EXPECT_EQ(mshrs.faultReserved(), 7u);
    EXPECT_FALSE(mshrs.full());
    EXPECT_NE(mshrs.allocate(0x1000, 1), nullptr);
    EXPECT_TRUE(mshrs.full());
}

TEST(MshrSqueezeInjector, WindowsOpenAndCloseDeterministically)
{
    MshrFaultSpec spec;
    spec.reserve = 4;
    spec.period = 1000;
    spec.duty = 100;

    cache::MshrFile mshrs(8);
    MshrSqueezeInjector injector(mshrs, spec, 11);
    std::vector<Cycle> transitions;
    bool squeezed = false;
    for (Cycle now = 0; now < 3500; ++now) {
        injector.tick(now);
        const bool active = mshrs.faultReserved() > 0;
        if (active != squeezed) {
            transitions.push_back(now);
            squeezed = active;
        }
        EXPECT_TRUE(mshrs.faultReserved() == 0 ||
                    mshrs.faultReserved() == 4);
    }
    injector.finish(3500);
    EXPECT_EQ(mshrs.faultReserved(), 0u);

    // Three whole periods => at least three open/close pairs, spaced
    // one period apart.
    ASSERT_GE(transitions.size(), 6u);
    EXPECT_EQ(transitions[2] - transitions[0], spec.period);

    FaultStats stats;
    injector.accumulate(stats);
    EXPECT_GE(stats.mshrSqueezeWindows, 3u);

    // Determinism: a twin injector with the same seed transitions on
    // the same cycles.
    cache::MshrFile twin_mshrs(8);
    MshrSqueezeInjector twin(twin_mshrs, spec, 11);
    std::vector<Cycle> twin_transitions;
    squeezed = false;
    for (Cycle now = 0; now < 3500; ++now) {
        twin.tick(now);
        const bool active = twin_mshrs.faultReserved() > 0;
        if (active != squeezed) {
            twin_transitions.push_back(now);
            squeezed = active;
        }
    }
    EXPECT_EQ(transitions, twin_transitions);
}

// ------------------------------------------------------- DRAM faults

TEST(DramFaultInjector, SameSeedSameDropAndDelaySequence)
{
    DramFaultSpec spec;
    spec.dropRate = 0.2;
    spec.delayRate = 0.3;
    spec.extraCycles = 123;

    dram::Dram dram_a((dram::DramConfig{}));
    dram::Dram dram_b((dram::DramConfig{}));
    DramFaultInjector a(dram_a, spec, 5);
    DramFaultInjector b(dram_b, spec, 5);

    cache::Request req;
    req.addr = 0x1000;
    for (int i = 0; i < 2000; ++i) {
        EXPECT_EQ(a.dropResponse(req), b.dropResponse(req));
        EXPECT_EQ(a.responseDelay(req), b.responseDelay(req));
    }
    FaultStats sa, sb;
    a.accumulate(sa);
    b.accumulate(sb);
    EXPECT_GT(sa.dramDropped, 0u);
    EXPECT_GT(sa.dramDelayed, 0u);
    EXPECT_EQ(sa.dramDropped, sb.dramDropped);
    EXPECT_EQ(sa.dramDelayed, sb.dramDelayed);
}

TEST(DramFaultInjector, DelayReturnsConfiguredExtraCycles)
{
    DramFaultSpec spec;
    spec.delayRate = 1.0;
    spec.extraCycles = 250;

    dram::Dram dram((dram::DramConfig{}));
    DramFaultInjector injector(dram, spec, 1);
    cache::Request req;
    EXPECT_EQ(injector.responseDelay(req), 250u);
    EXPECT_FALSE(injector.dropResponse(req)); // dropRate = 0
}

// ------------------------------------------------------- fault engine

/** Minimal injector that counts its ticks into sppFlips. */
class CountingInjector : public Injector
{
  public:
    void tick(Cycle) override { ++ticks_; }

    void
    accumulate(FaultStats &stats) const override
    {
        stats.sppFlips += ticks_;
    }

  private:
    std::uint64_t ticks_ = 0;
};

TEST(FaultEngine, AggregatesAcrossInjectors)
{
    FaultEngine engine;
    EXPECT_TRUE(engine.empty());
    engine.add(std::make_unique<CountingInjector>());
    engine.add(std::make_unique<CountingInjector>());
    EXPECT_FALSE(engine.empty());
    for (Cycle now = 0; now < 10; ++now)
        engine.tick(now);
    engine.finish(10);
    EXPECT_EQ(engine.stats().sppFlips, 20u);
}

// ---------------------------------------------------- resilient fleet

TEST(ResilientFleet, CrashJobDegradesAfterExhaustedRetries)
{
    sim::FleetPolicy policy;
    policy.maxRetries = 2;
    policy.degradeOnFailure = true;

    std::vector<sim::Job> jobs;
    unsigned crash_attempts = 0;
    jobs.push_back([]() -> sim::JobReport { return {}; });
    jobs.push_back([&crash_attempts]() -> sim::JobReport {
        ++crash_attempts;
        throw InjectedJobFault("always fails");
    });
    jobs.push_back([]() -> sim::JobReport { return {}; });

    const sim::FleetReport report =
        sim::runJobsResilient(jobs, 1, "test", policy);
    ASSERT_EQ(report.outcomes.size(), 3u);
    EXPECT_TRUE(report.outcomes[0].ok);
    EXPECT_FALSE(report.outcomes[1].ok);
    EXPECT_EQ(report.outcomes[1].attempts, 3u);
    EXPECT_EQ(crash_attempts, 3u);
    EXPECT_NE(report.outcomes[1].error.find("always fails"),
              std::string::npos);
    EXPECT_TRUE(report.outcomes[2].ok);
    EXPECT_EQ(report.degraded(), 1u);
    EXPECT_EQ(report.recovered(), 0u);
}

TEST(ResilientFleet, FlakyJobRecoversAfterRetry)
{
    sim::FleetPolicy policy;
    policy.maxRetries = 2;
    policy.degradeOnFailure = true;

    unsigned failures_left = 2;
    std::vector<sim::Job> jobs;
    jobs.push_back([&failures_left]() -> sim::JobReport {
        if (failures_left > 0) {
            --failures_left;
            throw InjectedJobFault("transient");
        }
        return {};
    });

    const sim::FleetReport report =
        sim::runJobsResilient(jobs, 1, "test", policy);
    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_TRUE(report.outcomes[0].ok);
    EXPECT_EQ(report.outcomes[0].attempts, 3u);
    EXPECT_TRUE(report.outcomes[0].recoveredAfterRetry());
    EXPECT_EQ(report.degraded(), 0u);
    EXPECT_EQ(report.recovered(), 1u);
}

TEST(ResilientFleet, DefaultPolicyPropagatesTheFailure)
{
    // Without degradeOnFailure the legacy contract holds: the first
    // failing job's exception reaches the caller.
    std::vector<sim::Job> jobs;
    jobs.push_back([]() -> sim::JobReport {
        throw InjectedJobFault("fatal job fault");
    });
    EXPECT_THROW(sim::runJobsResilient(jobs, 1, "test",
                                       sim::FleetPolicy{}),
                 InjectedJobFault);
}

TEST(ResilientFleet, OutcomesAreIndependentOfWorkerCount)
{
    sim::FleetPolicy policy;
    policy.maxRetries = 1;
    policy.degradeOnFailure = true;

    auto build = [](std::vector<sim::Job> &jobs) {
        for (int j = 0; j < 6; ++j) {
            if (j == 2) {
                jobs.push_back([]() -> sim::JobReport {
                    throw InjectedJobFault("crash");
                });
            } else {
                jobs.push_back([]() -> sim::JobReport { return {}; });
            }
        }
    };
    std::vector<sim::Job> serial_jobs, pooled_jobs;
    build(serial_jobs);
    build(pooled_jobs);

    const sim::FleetReport serial =
        sim::runJobsResilient(serial_jobs, 1, "test", policy);
    const sim::FleetReport pooled =
        sim::runJobsResilient(pooled_jobs, 4, "test", policy);
    ASSERT_EQ(serial.outcomes.size(), pooled.outcomes.size());
    for (std::size_t j = 0; j < serial.outcomes.size(); ++j) {
        EXPECT_EQ(serial.outcomes[j].ok, pooled.outcomes[j].ok);
        EXPECT_EQ(serial.outcomes[j].attempts,
                  pooled.outcomes[j].attempts);
    }
}

} // namespace
} // namespace pfsim::fault
