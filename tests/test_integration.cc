/**
 * @file
 * Integration tests: whole-system behavioural properties the paper's
 * argument rests on — prefetching speeds up prefetch-friendly
 * workloads, leaves prefetch-averse ones alone, PPF's filtering raises
 * accuracy over aggressive unfiltered SPP, and the hierarchy preserves
 * its structural invariants over long runs.
 */

#include <gtest/gtest.h>

#include "core/spp_ppf.hh"
#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "sim/runner.hh"
#include "workloads/registry.hh"

namespace pfsim
{
namespace
{

using sim::RunConfig;
using sim::RunResult;
using sim::SystemConfig;

RunConfig
mediumRun()
{
    RunConfig run;
    run.warmupInstructions = 60000;
    run.simInstructions = 200000;
    return run;
}

RunResult
runWith(const std::string &prefetcher, const std::string &workload,
        const RunConfig &run = mediumRun())
{
    return sim::runSingleCore(
        SystemConfig::defaultConfig().withPrefetcher(prefetcher),
        workloads::findWorkload(workload), run);
}

TEST(Integration, SppSpeedsUpRegularDeltaWorkload)
{
    const RunResult base = runWith("none", "603.bwaves_s-like");
    const RunResult spp = runWith("spp", "603.bwaves_s-like");
    EXPECT_GT(spp.ipc, base.ipc * 1.05);
    EXPECT_LT(spp.l2.demandMisses(), base.l2.demandMisses());
}

TEST(Integration, PpfBeatsPlainSppOnDeepLookaheadWorkload)
{
    const RunResult spp = runWith("spp", "603.bwaves_s-like");
    const RunResult ppf = runWith("spp_ppf", "603.bwaves_s-like");
    EXPECT_GT(ppf.ipc, spp.ipc);
    // PPF speculates deeper than throttled SPP (paper: 3.97 vs 3.28).
    EXPECT_GT(ppf.spp.averageDepth(), spp.spp.averageDepth());
}

TEST(Integration, PpfImprovesCoverageOverSpp)
{
    const RunResult base = runWith("none", "623.xalancbmk_s-like");
    const RunResult spp = runWith("spp", "623.xalancbmk_s-like");
    const RunResult ppf = runWith("spp_ppf", "623.xalancbmk_s-like");
    const double spp_cov = 1.0 - double(spp.l2.demandMisses()) /
                                     double(base.l2.demandMisses());
    const double ppf_cov = 1.0 - double(ppf.l2.demandMisses()) /
                                     double(base.l2.demandMisses());
    EXPECT_GT(ppf_cov, spp_cov);
}

TEST(Integration, PointerChaseIsPrefetchAverse)
{
    const RunResult base = runWith("none", "605.mcf_s-like");
    for (const char *prefetcher : {"spp", "spp_ppf", "bop"}) {
        const RunResult result =
            runWith(prefetcher, "605.mcf_s-like");
        // No prefetcher should move a pointer chase by much.
        EXPECT_GT(result.ipc, base.ipc * 0.85) << prefetcher;
        EXPECT_LT(result.ipc, base.ipc * 1.35) << prefetcher;
    }
}

TEST(Integration, NonMemIntensiveWorkloadsBarelyMove)
{
    const RunResult base = runWith("none", "648.exchange2_s-like");
    const RunResult ppf = runWith("spp_ppf", "648.exchange2_s-like");
    EXPECT_NEAR(ppf.ipc / base.ipc, 1.0, 0.1);
}

TEST(Integration, PpfFiltersRejectJunkFromAggressiveSpp)
{
    // The over-prefetching burst workload gives the filter clear
    // negative evidence; it must reject candidates and train on all
    // feedback paths.
    const RunResult ppf =
        runWith("spp_ppf", "607.cactuBSSN_s-like");
    EXPECT_GT(ppf.ppf.rejected, 0u);
    EXPECT_GT(ppf.ppf.trainUseful, 0u);
    EXPECT_GT(ppf.ppf.trainFalseNegative, 0u);
    // Useless prefetches do get evicted; the table-matched fraction of
    // that feedback is exercised at unit level (test_ppf.cc) because
    // at this scaled run length the direct-mapped Prefetch Table has
    // usually recycled the entry by eviction time.
    EXPECT_GT(ppf.l2.pfUselessEvict, 0u);
}

TEST(Integration, AggressiveSppWithoutFilterIsLessAccurate)
{
    // The PPF premise (Figure 1): aggressive lookahead without an
    // accuracy check issues disproportionally more junk.
    SystemConfig aggressive =
        SystemConfig::defaultConfig().withPrefetcher("spp");
    aggressive.sppConfig.forcedDepth = 8;
    const RunResult forced = sim::runSingleCore(
        aggressive, workloads::findWorkload("603.bwaves_s-like"),
        mediumRun());

    const RunResult tuned = runWith("spp", "603.bwaves_s-like");
    EXPECT_GT(forced.totalPf(), tuned.totalPf());
    EXPECT_LT(forced.accuracy(), tuned.accuracy());
}

TEST(Integration, CacheInvariantsAfterLongRun)
{
    trace::SyntheticTrace trace(
        workloads::findWorkload("657.xz_s-like").make());
    sim::System system(
        SystemConfig::defaultConfig().withPrefetcher("spp_ppf"),
        {&trace});
    system.runUntilRetired(150000);

    for (auto *cache : {&system.l1d(0), &system.l1i(0), &system.l2(0),
                        &system.llc()}) {
        const auto &config = cache->config();
        EXPECT_LE(cache->validBlockCount(),
                  std::uint64_t(config.sets) * config.ways);
        const auto &stats = cache->stats();
        EXPECT_LE(stats.loadHit, stats.loadAccess);
        EXPECT_LE(stats.rfoHit, stats.rfoAccess);
        EXPECT_LE(stats.writebackHit, stats.writebackAccess);
    }
}

TEST(Integration, GoodPfNeverExceedsIssuedPlusSlack)
{
    for (const char *workload :
         {"603.bwaves_s-like", "623.xalancbmk_s-like"}) {
        const RunResult result = runWith("spp_ppf", workload);
        // Modulo the rare L2-then-LLC double-count (see RunResult),
        // useful prefetches cannot outnumber issued ones.
        EXPECT_LE(result.goodPf(),
                  result.totalPf() + result.totalPf() / 10 + 16)
            << workload;
    }
}

TEST(Integration, SmallLlcVariantHasMoreLlcMisses)
{
    const auto &workload = workloads::findWorkload("602.gcc_s-like");
    const RunResult big = sim::runSingleCore(
        SystemConfig::defaultConfig(), workload, mediumRun());
    const RunResult small = sim::runSingleCore(
        SystemConfig::smallLlc(), workload, mediumRun());
    EXPECT_GE(small.llc.demandMisses(), big.llc.demandMisses());
}

TEST(Integration, LowBandwidthVariantIsSlower)
{
    const auto &workload = workloads::findWorkload("619.lbm_s-like");
    const RunResult fast = sim::runSingleCore(
        SystemConfig::defaultConfig(), workload, mediumRun());
    const RunResult slow = sim::runSingleCore(
        SystemConfig::lowBandwidth(), workload, mediumRun());
    EXPECT_LT(slow.ipc, fast.ipc);
}

TEST(Integration, MulticoreContentionLowersPerCoreIpc)
{
    // The same memory-hungry workload on both cores of a 2-core system
    // must see lower per-core IPC than in isolation (shared LLC+DRAM).
    RunConfig run;
    run.warmupInstructions = 30000;
    run.simInstructions = 100000;

    // Isolated baseline per the paper's methodology: a 1-core machine
    // with the 2-core system's LLC capacity.
    SystemConfig isolated_config = SystemConfig::defaultConfig();
    isolated_config.llc = SystemConfig::defaultConfig(2).llc;
    const auto &workload = workloads::findWorkload("619.lbm_s-like");
    const RunResult isolated =
        sim::runSingleCore(isolated_config, workload, run);

    workloads::Mix mix = {workload, workload};
    const sim::MixResult shared =
        sim::runMix(SystemConfig::defaultConfig(2), mix, run);
    EXPECT_LT(shared.ipc[0], isolated.ipc * 1.02);
    EXPECT_LT(shared.ipc[1], isolated.ipc * 1.02);
}

TEST(Integration, CloudWorkloadsArePrefetchAgnostic)
{
    RunConfig run;
    run.warmupInstructions = 30000;
    run.simInstructions = 120000;
    const RunResult base = sim::runSingleCore(
        SystemConfig::defaultConfig(),
        workloads::findWorkload("cassandra-like"), run);
    const RunResult ppf = sim::runSingleCore(
        SystemConfig::defaultConfig().withPrefetcher("spp_ppf"),
        workloads::findWorkload("cassandra-like"), run);
    EXPECT_NEAR(ppf.ipc / base.ipc, 1.0, 0.25);
}

/** Every prefetcher makes forward progress on every pattern class. */
class PrefetcherWorkloadMatrix
    : public ::testing::TestWithParam<
          std::tuple<const char *, const char *>>
{
};

TEST_P(PrefetcherWorkloadMatrix, RunsToCompletion)
{
    const auto [prefetcher, workload] = GetParam();
    RunConfig run;
    run.warmupInstructions = 10000;
    run.simInstructions = 40000;
    const RunResult result = sim::runSingleCore(
        SystemConfig::defaultConfig().withPrefetcher(prefetcher),
        workloads::findWorkload(workload), run);
    EXPECT_GT(result.ipc, 0.01);
    EXPECT_GE(result.core.instructions, run.simInstructions);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PrefetcherWorkloadMatrix,
    ::testing::Combine(
        ::testing::Values("none", "next_line", "ip_stride", "bop",
                          "da_ampm", "spp", "spp_ppf"),
        ::testing::Values("603.bwaves_s-like", "605.mcf_s-like",
                          "607.cactuBSSN_s-like",
                          "623.xalancbmk_s-like", "619.lbm_s-like",
                          "648.exchange2_s-like", "657.xz_s-like",
                          "cassandra-like", "410.bwaves-like")),
    [](const auto &param_info) {
        std::string name = std::get<0>(param_info.param);
        name += "_";
        for (char c : std::string(std::get<1>(param_info.param))) {
            if (std::isalnum(static_cast<unsigned char>(c)))
                name += c;
        }
        return name;
    });

} // namespace
} // namespace pfsim
