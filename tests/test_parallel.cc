/**
 * @file
 * Unit tests for the concurrency substrate: the util thread pool, the
 * sim job-pool sweep engine, throughput telemetry, and — the hard
 * requirement — bit-identical sweep results for every --jobs value.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "sim/parallel.hh"
#include "stats/throughput.hh"
#include "util/thread_pool.hh"
#include "workloads/registry.hh"

namespace pfsim
{
namespace
{

// --- util/thread_pool -------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    util::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusableBetweenBatches)
{
    util::ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
    }
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> visits(257);
    util::parallelFor(8, visits.size(),
                      [&visits](std::size_t i) { ++visits[i]; });
    for (const auto &visit : visits)
        EXPECT_EQ(visit.load(), 1);
}

TEST(ParallelFor, ResultsLandInIndexOrderRegardlessOfCompletion)
{
    // Each task writes only its own slot; the assembled vector must be
    // the identity permutation no matter how execution interleaved.
    std::vector<std::size_t> slots(100, ~std::size_t{0});
    util::parallelFor(7, slots.size(),
                      [&slots](std::size_t i) { slots[i] = i; });
    for (std::size_t i = 0; i < slots.size(); ++i)
        EXPECT_EQ(slots[i], i);
}

TEST(ParallelFor, SizeOneRunsInlineOnCallingThread)
{
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(5);
    util::parallelFor(1, seen.size(), [&seen](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(
        util::parallelFor(4, 16,
                          [](std::size_t i) {
                              if (i == 9)
                                  throw std::runtime_error("boom 9");
                          }),
        std::runtime_error);
}

TEST(ParallelFor, LowestIndexExceptionWinsDeterministically)
{
    // Two throwing indices: the rethrown exception must always be the
    // lower one, independent of which task finished first.
    for (int repeat = 0; repeat < 5; ++repeat) {
        try {
            util::parallelFor(4, 16, [](std::size_t i) {
                if (i == 3)
                    throw std::runtime_error("boom 3");
                if (i == 12)
                    throw std::runtime_error("boom 12");
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &error) {
            EXPECT_STREQ(error.what(), "boom 3");
        }
    }
}

TEST(ParallelFor, RemainingTasksStillRunAfterAThrow)
{
    std::atomic<int> count{0};
    try {
        util::parallelFor(4, 32, [&count](std::size_t i) {
            if (i == 0)
                throw std::runtime_error("early");
            ++count;
        });
    } catch (const std::runtime_error &) {
    }
    EXPECT_EQ(count.load(), 31);
}

TEST(ParallelFor, HardwareConcurrencyIsAtLeastOne)
{
    EXPECT_GE(util::hardwareConcurrency(), 1u);
    EXPECT_GE(sim::resolveJobs(0), 1u);
    EXPECT_EQ(sim::resolveJobs(3), 3u);
}

// --- stats/throughput -------------------------------------------------

TEST(Throughput, RunMipsAndFleetAggregation)
{
    stats::RunThroughput run;
    EXPECT_DOUBLE_EQ(run.mips(), 0.0); // unmeasured -> 0, not inf
    run.instructions = 2000000;
    run.hostSeconds = 0.5;
    EXPECT_DOUBLE_EQ(run.mips(), 4.0);

    stats::FleetThroughput fleet;
    fleet.jobs = 2;
    fleet.add(run);
    fleet.add(run);
    fleet.wallSeconds = 0.5;
    EXPECT_EQ(fleet.runs, 2u);
    EXPECT_EQ(fleet.instructions, 4000000u);
    EXPECT_DOUBLE_EQ(fleet.busySeconds, 1.0);
    EXPECT_DOUBLE_EQ(fleet.aggregateMips(), 8.0);
    EXPECT_DOUBLE_EQ(fleet.poolSpeedup(), 2.0);
    EXPECT_FALSE(fleet.summary().empty());
}

// --- sim/parallel sweep engine ---------------------------------------

TEST(RunJobs, ReportsFleetTelemetryAndRunsAllJobs)
{
    std::vector<int> slots(10, 0);
    std::vector<sim::Job> jobs;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        jobs.push_back([&slots, i]() -> sim::JobReport {
            slots[i] = int(i) + 1;
            sim::JobReport report;
            report.line = "job";
            report.throughput.instructions = 1000;
            report.throughput.hostSeconds = 0.001;
            return report;
        });
    }
    const stats::FleetThroughput fleet = sim::runJobs(jobs, 4, "test");
    EXPECT_EQ(fleet.runs, 10u);
    EXPECT_EQ(fleet.instructions, 10000u);
    EXPECT_EQ(fleet.jobs, 4u);
    EXPECT_GT(fleet.wallSeconds, 0.0);
    for (std::size_t i = 0; i < slots.size(); ++i)
        EXPECT_EQ(slots[i], int(i) + 1);
}

// Every deterministic field of a RunResult; bit-exact comparisons
// (EXPECT_EQ on doubles is ==), since bit-identical results are the
// engine's hard requirement.  throughput is telemetry and exempt.
void
expectIdenticalRunResults(const sim::RunResult &a,
                          const sim::RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.prefetcher, b.prefetcher);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.core.instructions, b.core.instructions);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.l1d.demandMisses(), b.l1d.demandMisses());
    EXPECT_EQ(a.l2.demandMisses(), b.l2.demandMisses());
    EXPECT_EQ(a.l2.pfIssued, b.l2.pfIssued);
    EXPECT_EQ(a.l2.pfUseful, b.l2.pfUseful);
    EXPECT_EQ(a.llc.demandMisses(), b.llc.demandMisses());
    EXPECT_EQ(a.llc.pfUseful, b.llc.pfUseful);
    EXPECT_EQ(a.dram.reads, b.dram.reads);
    EXPECT_EQ(a.spp.issued, b.spp.issued);
    EXPECT_EQ(a.spp.triggers, b.spp.triggers);
    EXPECT_EQ(a.ppf.candidates, b.ppf.candidates);
    EXPECT_EQ(a.ppf.acceptedL2, b.ppf.acceptedL2);
    EXPECT_EQ(a.ppf.acceptedLlc, b.ppf.acceptedLlc);
    EXPECT_EQ(a.ppf.rejected, b.ppf.rejected);
    EXPECT_EQ(a.ppf.trainUseful, b.ppf.trainUseful);
}

TEST(ParallelSweep, JobsFourMatchesSerialAcrossPaperLineup)
{
    sim::RunConfig run;
    run.warmupInstructions = 5000;
    run.simInstructions = 20000;
    const std::vector<workloads::Workload> workload_set = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("623.xalancbmk_s-like"),
    };
    const sim::SystemConfig base = sim::SystemConfig::defaultConfig();

    run.jobs = 1;
    const auto serial = sim::sweepPrefetchers(
        base, sim::paperPrefetchers(), workload_set, run);
    run.jobs = 4;
    const auto parallel = sim::sweepPrefetchers(
        base, sim::paperPrefetchers(), workload_set, run);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t row = 0; row < serial.size(); ++row) {
        EXPECT_EQ(serial[row].workload, parallel[row].workload);
        ASSERT_EQ(serial[row].results.size(),
                  parallel[row].results.size());
        for (const auto &[name, result] : serial[row].results) {
            ASSERT_TRUE(parallel[row].results.count(name)) << name;
            expectIdenticalRunResults(result,
                                      parallel[row].results.at(name));
        }
        for (const auto &name : sim::paperPrefetchers()) {
            EXPECT_EQ(serial[row].speedup(name),
                      parallel[row].speedup(name));
        }
    }
}

TEST(ParallelSweep, SweepReportsFleetThroughput)
{
    sim::RunConfig run;
    run.warmupInstructions = 2000;
    run.simInstructions = 10000;
    run.jobs = 2;
    stats::FleetThroughput fleet;
    const auto rows = sim::sweepPrefetchers(
        sim::SystemConfig::defaultConfig(), {"spp"},
        {workloads::findWorkload("638.imagick_s-like")}, run, &fleet);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(fleet.runs, 2u); // "none" + "spp"
    EXPECT_GT(fleet.instructions, 2u * run.simInstructions);
    EXPECT_GT(fleet.busySeconds, 0.0);
    EXPECT_GT(fleet.wallSeconds, 0.0);
    EXPECT_GT(fleet.aggregateMips(), 0.0);
}

TEST(ParallelSweep, MixSweepJobsFourMatchesSerial)
{
    sim::RunConfig run;
    run.warmupInstructions = 4000;
    run.simInstructions = 15000;
    const workloads::Mix mix_a = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("638.imagick_s-like"),
    };
    const workloads::Mix mix_b = {
        workloads::findWorkload("623.xalancbmk_s-like"),
        workloads::findWorkload("603.bwaves_s-like"),
    };
    const sim::SystemConfig base = sim::SystemConfig::defaultConfig(2);

    run.jobs = 1;
    const auto serial =
        sim::sweepMixes(base, {"spp", "spp_ppf"}, {mix_a, mix_b}, run);
    run.jobs = 4;
    const auto parallel =
        sim::sweepMixes(base, {"spp", "spp_ppf"}, {mix_a, mix_b}, run);

    ASSERT_EQ(serial.size(), 2u);
    ASSERT_EQ(parallel.size(), 2u);
    for (std::size_t m = 0; m < serial.size(); ++m) {
        ASSERT_EQ(serial[m].results.size(), 3u); // none + 2
        for (const auto &[name, result] : serial[m].results) {
            ASSERT_TRUE(parallel[m].results.count(name)) << name;
            const auto &other = parallel[m].results.at(name);
            EXPECT_EQ(result.workloads, other.workloads);
            EXPECT_EQ(result.ipc, other.ipc); // vector<double>, ==
            EXPECT_EQ(result.llc.demandMisses(),
                      other.llc.demandMisses());
            EXPECT_EQ(result.dram.reads, other.dram.reads);
            EXPECT_EQ(result.throughput.instructions,
                      other.throughput.instructions);
        }
    }
}

TEST(ParallelSweep, IsolatedCachePrewarmMatchesSerialGets)
{
    const sim::SystemConfig config = sim::SystemConfig::defaultConfig();
    sim::RunConfig run;
    run.warmupInstructions = 2000;
    run.simInstructions = 10000;
    const std::vector<workloads::Workload> workload_set = {
        workloads::findWorkload("603.bwaves_s-like"),
        workloads::findWorkload("638.imagick_s-like"),
        workloads::findWorkload("603.bwaves_s-like"), // duplicate
    };

    sim::IsolatedIpcCache warmed;
    run.jobs = 4;
    warmed.prewarm(config, workload_set, run);

    sim::IsolatedIpcCache serial;
    for (const auto &workload : workload_set) {
        EXPECT_EQ(warmed.get(config, workload, run),
                  serial.get(config, workload, run))
            << workload.name;
    }
}

TEST(SweepRowDeath, ZeroBaselineIpcIsFatal)
{
    sim::SweepRow row;
    row.workload = "synthetic";
    sim::RunResult none;
    none.ipc = 0.0;
    sim::RunResult spp;
    spp.ipc = 1.0;
    row.results.emplace("none", none);
    row.results.emplace("spp", spp);
    EXPECT_EXIT(row.speedup("spp"), testing::ExitedWithCode(1),
                "baseline \"none\" IPC is not positive");
}

TEST(SweepRowDeath, MissingResultIsFatal)
{
    sim::SweepRow row;
    row.workload = "synthetic";
    EXPECT_EXIT(row.speedup("spp"), testing::ExitedWithCode(1),
                "missing results");
}

} // namespace
} // namespace pfsim
