/**
 * @file
 * Unit tests for the paper's contribution: PPF feature extraction,
 * weight tables, filter tables, the perceptron filter's inference and
 * training rules, storage accounting (Tables 2-3), and the feature
 * analysis instrumentation (Figures 6-8).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/feature_analysis.hh"
#include "core/generic_filter.hh"
#include "prefetch/next_line.hh"
#include "core/features.hh"
#include "core/filter_tables.hh"
#include "core/ppf.hh"
#include "core/storage.hh"
#include "core/weight_tables.hh"
#include "util/random.hh"

namespace pfsim::ppf
{
namespace
{

FeatureInput
sampleInput(std::uint64_t variant = 0)
{
    FeatureInput input;
    input.triggerAddr = 0x123456780 + variant * 0x40;
    input.pc = 0x400100 + variant * 8;
    input.pc1 = 0x400110;
    input.pc2 = 0x400118;
    input.pc3 = 0x400120;
    input.depth = int(1 + variant % 7);
    input.delta = int(variant % 5) - 2;
    if (input.delta == 0)
        input.delta = 1;
    input.confidence = int(variant * 13 % 101);
    input.signature = std::uint32_t(variant * 41 % 4096);
    return input;
}

prefetch::SppCandidate
sampleCandidate(std::uint64_t variant = 0)
{
    prefetch::SppCandidate candidate;
    candidate.addr = 0x200000000 + variant * 0x40;
    candidate.triggerAddr = 0x123456780 + variant * 0x40;
    candidate.pc = 0x400100;
    candidate.depth = int(1 + variant % 7);
    candidate.delta = 1 + int(variant % 3);
    candidate.confidence = int(variant * 7 % 101);
    candidate.signature = std::uint32_t(variant % 4096);
    return candidate;
}

// --------------------------------------------------------------- features

TEST(Features, TableSizesMatchPaperTable3)
{
    // 4 x 4096 + 2 x 2048 + 2 x 1024 + 1 x 128 entries of 5 bits
    // = 113,280 bits of weights.
    std::uint64_t entries = 0;
    for (unsigned f = 0; f < numFeatures; ++f)
        entries += featureTableSizes[f];
    EXPECT_EQ(entries, 22656u);
    EXPECT_EQ(entries * weightBits, 113280u);
}

TEST(Features, IndicesAlwaysInRange)
{
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        FeatureInput input;
        input.triggerAddr = rng.next();
        input.pc = rng.next();
        input.pc1 = rng.next();
        input.pc2 = rng.next();
        input.pc3 = rng.next();
        input.depth = int(rng.below(20));
        input.delta = int(rng.range(-63, 63));
        input.confidence = int(rng.range(-5, 130));
        input.signature = std::uint32_t(rng.next());
        const FeatureIndices idx = computeIndices(input);
        for (unsigned f = 0; f < numFeatures; ++f)
            ASSERT_LT(idx[f], featureTableSizes[f]) << "feature " << f;
    }
}

TEST(Features, Deterministic)
{
    const FeatureInput input = sampleInput(3);
    EXPECT_EQ(computeIndices(input), computeIndices(input));
}

TEST(Features, DepthOnlyAffectsDepthFeature)
{
    FeatureInput a = sampleInput(1);
    FeatureInput b = a;
    b.depth = a.depth + 1;
    const FeatureIndices ia = computeIndices(a);
    const FeatureIndices ib = computeIndices(b);
    EXPECT_NE(ia[unsigned(FeatureId::PcXorDepth)],
              ib[unsigned(FeatureId::PcXorDepth)]);
    EXPECT_EQ(ia[unsigned(FeatureId::PhysAddr)],
              ib[unsigned(FeatureId::PhysAddr)]);
    EXPECT_EQ(ia[unsigned(FeatureId::Confidence)],
              ib[unsigned(FeatureId::Confidence)]);
}

TEST(Features, ConfidenceClampsToTable)
{
    FeatureInput input = sampleInput(0);
    input.confidence = 500;
    EXPECT_LT(computeIndices(input)[unsigned(FeatureId::Confidence)],
              128u);
    input.confidence = -3;
    EXPECT_EQ(computeIndices(input)[unsigned(FeatureId::Confidence)],
              0u);
}

TEST(Features, IdenticalPathPcsDoNotCancel)
{
    // The staggered shifts must keep PC1^PC2>>1^PC3>>2 nonzero even
    // when all three PCs are equal (Section 4.2).
    FeatureInput input = sampleInput(0);
    input.pc1 = input.pc2 = input.pc3 = 0x400840;
    EXPECT_NE(computeIndices(input)[unsigned(FeatureId::PcPath)], 0u);
}

TEST(Features, NamesAreDistinct)
{
    std::set<std::string> names;
    for (unsigned f = 0; f < numFeatures; ++f)
        names.insert(featureName(FeatureId(f)));
    EXPECT_EQ(names.size(), numFeatures);
}

// ---------------------------------------------------------- weight tables

TEST(WeightTables, InitialSumIsZero)
{
    WeightTables tables;
    EXPECT_EQ(tables.sum(computeIndices(sampleInput())), 0);
}

TEST(WeightTables, TrainingMovesSum)
{
    WeightTables tables;
    const FeatureIndices idx = computeIndices(sampleInput());
    tables.train(idx, true);
    EXPECT_EQ(tables.sum(idx), int(numFeatures));
    tables.train(idx, false);
    tables.train(idx, false);
    EXPECT_EQ(tables.sum(idx), -int(numFeatures));
}

TEST(WeightTables, WeightsSaturateAtFiveBits)
{
    WeightTables tables;
    const FeatureIndices idx = computeIndices(sampleInput());
    for (int i = 0; i < 100; ++i)
        tables.train(idx, true);
    EXPECT_EQ(tables.sum(idx), 15 * int(numFeatures));
    for (int i = 0; i < 200; ++i)
        tables.train(idx, false);
    EXPECT_EQ(tables.sum(idx), -16 * int(numFeatures));
}

TEST(WeightTables, SumBoundsMatchEnabledFeatures)
{
    WeightTables all;
    EXPECT_EQ(all.maxSum(), 15 * 9);
    EXPECT_EQ(all.minSum(), -16 * 9);
    WeightTables three(0b000000111);
    EXPECT_EQ(three.maxSum(), 45);
    EXPECT_EQ(three.minSum(), -48);
}

TEST(WeightTables, MaskDisablesFeatures)
{
    WeightTables tables(0b000000001); // PhysAddr only
    const FeatureIndices idx = computeIndices(sampleInput());
    tables.train(idx, true);
    EXPECT_EQ(tables.sum(idx), 1);
    EXPECT_FALSE(tables.enabled(FeatureId::Confidence));
    EXPECT_TRUE(tables.enabled(FeatureId::PhysAddr));
    // Disabled tables are never trained.
    EXPECT_EQ(tables.weight(FeatureId::Confidence,
                            idx[unsigned(FeatureId::Confidence)]),
              0);
}

TEST(WeightTables, HistogramReflectsTraining)
{
    WeightTables tables;
    const FeatureIndices idx = computeIndices(sampleInput());
    for (int i = 0; i < 5; ++i)
        tables.train(idx, true);
    stats::Histogram hist = tables.weightHistogram(FeatureId::PhysAddr);
    EXPECT_EQ(hist.count(5), 1u);
    EXPECT_EQ(hist.total(), featureTableSizes[0]);
}

// ---------------------------------------------------------- filter tables

TEST(FilterTable, InsertAndFind)
{
    FilterTable table(1024);
    const Addr addr = 0x123450000;
    table.insert(addr, sampleInput(), true);
    FilterEntry *entry = table.find(addr);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->prefetched);
    EXPECT_FALSE(entry->useful);
    EXPECT_EQ(entry->features.pc, sampleInput().pc);
}

TEST(FilterTable, TagRejectsAliases)
{
    FilterTable table(1024);
    const Addr addr = 0x123450000;
    table.insert(addr, sampleInput(), true);
    // Same index (1024 blocks apart), different tag.
    const Addr alias = addr + 1024 * blockSize;
    EXPECT_EQ(table.find(alias), nullptr);
}

TEST(FilterTable, DirectMappedOverwrite)
{
    FilterTable table(1024);
    const Addr a = 0x123450000;
    const Addr b = a + 1024 * blockSize;
    table.insert(a, sampleInput(0), true);
    table.insert(b, sampleInput(1), false);
    EXPECT_EQ(table.find(a), nullptr);
    ASSERT_NE(table.find(b), nullptr);
    EXPECT_FALSE(table.find(b)->prefetched);
}

TEST(FilterTable, InvalidateRemoves)
{
    FilterTable table(1024);
    table.insert(0x9990000, sampleInput(), true);
    FilterEntry *entry = table.find(0x9990000);
    ASSERT_NE(entry, nullptr);
    table.invalidate(entry);
    EXPECT_EQ(table.find(0x9990000), nullptr);
}

// ------------------------------------------------------------------- ppf

TEST(Ppf, UntrainedFilterIsSkeptical)
{
    // tauLo is slightly positive: an untrained filter rejects unknown
    // candidates; acceptance has to be earned through feedback.
    Ppf ppf;
    EXPECT_EQ(ppf.test(sampleCandidate()),
              prefetch::SppFilter::Decision::Drop);
    EXPECT_EQ(ppf.ppfStats().rejected, 1u);
}

TEST(Ppf, RejectTableBootstrapsAcceptance)
{
    // The bootstrap loop of the design: rejected candidates land in
    // the Reject Table; demand traffic to those addresses corrects the
    // false negatives and the filter opens up.
    Ppf ppf;
    const prefetch::SppCandidate candidate = sampleCandidate();
    ASSERT_EQ(ppf.test(candidate),
              prefetch::SppFilter::Decision::Drop);
    ppf.onDemand(candidate.addr, 0x400200);
    EXPECT_GT(ppf.ppfStats().trainFalseNegative, 0u);
    EXPECT_NE(ppf.test(candidate),
              prefetch::SppFilter::Decision::Drop);
}

TEST(Ppf, PositiveFeedbackPromotesToL2)
{
    Ppf ppf;
    const prefetch::SppCandidate candidate = sampleCandidate();
    for (int i = 0; i < 40; ++i) {
        if (ppf.test(candidate) !=
            prefetch::SppFilter::Decision::Drop) {
            ppf.notifyIssued(candidate, false);
        }
        // The block is then demanded: positive training through
        // either the Reject Table or the Prefetch Table.
        ppf.onDemand(candidate.addr, 0x400200);
        if (ppf.test(candidate) ==
            prefetch::SppFilter::Decision::FillL2)
            break;
    }
    EXPECT_EQ(ppf.test(candidate),
              prefetch::SppFilter::Decision::FillL2);
    EXPECT_GT(ppf.ppfStats().trainUseful, 0u);
}

TEST(Ppf, UselessEvictionsLeadBackToRejection)
{
    Ppf ppf;
    const prefetch::SppCandidate candidate = sampleCandidate();

    // First bootstrap the filter into accepting the candidate...
    for (int i = 0; i < 10; ++i) {
        ppf.test(candidate);
        ppf.onDemand(candidate.addr, 0x400200);
    }
    ASSERT_NE(ppf.test(candidate),
              prefetch::SppFilter::Decision::Drop);

    // ...then evict its prefetches unused until it rejects again.
    for (int i = 0; i < 80; ++i) {
        if (ppf.test(candidate) !=
            prefetch::SppFilter::Decision::Drop) {
            ppf.notifyIssued(candidate, false);
        }
        ppf.onUselessEviction(candidate.addr);
        if (ppf.test(candidate) == prefetch::SppFilter::Decision::Drop)
            break;
    }
    EXPECT_EQ(ppf.test(candidate),
              prefetch::SppFilter::Decision::Drop);
    EXPECT_GT(ppf.ppfStats().trainUselessEvict, 0u);
}

TEST(Ppf, ThetaStopsPositiveTraining)
{
    PpfConfig config;
    config.thetaP = 18; // two positive rounds saturate (9 weights)
    Ppf ppf(config);
    const prefetch::SppCandidate candidate = sampleCandidate();
    for (int i = 0; i < 50; ++i) {
        if (ppf.test(candidate) !=
            prefetch::SppFilter::Decision::Drop) {
            ppf.notifyIssued(candidate, false);
        }
        ppf.onDemand(candidate.addr, 0x400200);
    }
    // Training stops once the sum passes thetaP: the sum stays near
    // theta instead of saturating at 135.
    EXPECT_LE(ppf.inferenceSum(candidate), config.thetaP + 9);
}

TEST(Ppf, DemandWithoutHistoryIsHarmless)
{
    Ppf ppf;
    ppf.onDemand(0xdead0000, 0x400100);
    ppf.onUselessEviction(0xdead0000);
    EXPECT_EQ(ppf.ppfStats().trainUseful, 0u);
    EXPECT_EQ(ppf.ppfStats().trainUselessEvict, 0u);
}

TEST(Ppf, UsefulTrainingHappensOncePerEntry)
{
    Ppf ppf;
    const prefetch::SppCandidate candidate = sampleCandidate();
    ppf.test(candidate);
    ppf.notifyIssued(candidate, true);
    ppf.onDemand(candidate.addr, 0x400200);
    ppf.onDemand(candidate.addr, 0x400200);
    ppf.onDemand(candidate.addr, 0x400200);
    EXPECT_EQ(ppf.ppfStats().trainUseful, 1u);
}

TEST(Ppf, StatsPartitionCandidates)
{
    Ppf ppf;
    for (std::uint64_t i = 0; i < 500; ++i)
        ppf.test(sampleCandidate(i));
    const PpfStats &stats = ppf.ppfStats();
    EXPECT_EQ(stats.candidates,
              stats.acceptedL2 + stats.acceptedLlc + stats.rejected);
    EXPECT_EQ(stats.candidates, 500u);
}

class PpfThresholdTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(PpfThresholdTest, DecisionsRespectThresholds)
{
    const auto [tau_lo, tau_hi] = GetParam();
    PpfConfig config;
    config.tauLo = tau_lo;
    config.tauHi = tau_hi;
    Ppf ppf(config);

    for (std::uint64_t i = 0; i < 200; ++i) {
        const prefetch::SppCandidate candidate = sampleCandidate(i);
        const int sum = ppf.inferenceSum(candidate);
        const auto decision = ppf.test(candidate);
        if (sum >= tau_hi) {
            EXPECT_EQ(decision,
                      prefetch::SppFilter::Decision::FillL2);
        } else if (sum >= tau_lo) {
            EXPECT_EQ(decision,
                      prefetch::SppFilter::Decision::FillLlc);
        } else {
            EXPECT_EQ(decision, prefetch::SppFilter::Decision::Drop);
        }
        // Mixed feedback to move weights around.
        if (i % 3 == 0)
            ppf.onDemand(candidate.addr, 0x400200);
        else if (i % 3 == 1)
            ppf.onUselessEviction(candidate.addr);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdSweep, PpfThresholdTest,
    ::testing::Values(std::make_pair(-12, 40), std::make_pair(0, 0),
                      std::make_pair(-48, 24),
                      std::make_pair(-100, 100)));

// --------------------------------------------------------------- storage

TEST(Storage, PrefetchTableEntryIs85Bits)
{
    EXPECT_EQ(prefetchTableEntryBits(), 85u);
}

TEST(Storage, RejectTableEntryIs84Bits)
{
    EXPECT_EQ(rejectTableEntryBits(), 84u);
}

TEST(Storage, TotalBudgetMatchesPaperTable3)
{
    // 322,240 bits = 39.34 KB (paper Table 3).
    EXPECT_EQ(totalStorageBits(), 322240u);
}

TEST(Storage, RowsCoverEveryStructure)
{
    const auto rows = storageBudget();
    std::set<std::string> names;
    for (const StorageRow &row : rows)
        names.insert(row.structure);
    EXPECT_TRUE(names.count("Signature Table"));
    EXPECT_TRUE(names.count("Pattern Table"));
    EXPECT_TRUE(names.count("Perceptron Weights"));
    EXPECT_TRUE(names.count("Prefetch Table"));
    EXPECT_TRUE(names.count("Reject Table"));
    EXPECT_TRUE(names.count("Global History Register"));
}

// ---------------------------------------------------------- generic filter

/** Captures what reaches the host cache. */
class CapturingIssuer : public prefetch::PrefetchIssuer
{
  public:
    bool
    issuePrefetch(Addr addr, bool fill_this_level) override
    {
        issued.push_back({blockAlign(addr), fill_this_level});
        return true;
    }

    std::vector<std::pair<Addr, bool>> issued;
};

TEST(FilteredPrefetcher, NameDerivesFromBase)
{
    ppf::FilteredPrefetcher filtered(
        std::make_unique<prefetch::NextLinePrefetcher>());
    EXPECT_EQ(filtered.name(), "next_line_ppf");
}

TEST(FilteredPrefetcher, UntrainedFilterBlocksBaseCandidates)
{
    // Default-skeptical thresholds: the base's candidates are dropped
    // until feedback opens the filter.
    ppf::FilteredPrefetcher filtered(
        std::make_unique<prefetch::NextLinePrefetcher>());
    CapturingIssuer issuer;
    filtered.attach(&issuer);

    prefetch::OperateInfo info;
    info.addr = 0x500000;
    info.pc = 0x400100;
    filtered.operate(info);
    EXPECT_TRUE(issuer.issued.empty());
    EXPECT_GT(filtered.filter().ppfStats().rejected, 0u);
}

TEST(FilteredPrefetcher, DemandFeedbackOpensTheFilter)
{
    ppf::FilteredPrefetcher filtered(
        std::make_unique<prefetch::NextLinePrefetcher>());
    CapturingIssuer issuer;
    filtered.attach(&issuer);

    // Walk a stream: each rejected next-line candidate is then
    // demanded, landing in the reject table and training the weights.
    Addr addr = 0x600000;
    for (int i = 0; i < 50; ++i) {
        prefetch::OperateInfo info;
        info.addr = addr;
        info.pc = 0x400100;
        filtered.operate(info);
        addr += blockSize;
    }
    EXPECT_GT(issuer.issued.size(), 0u);
    EXPECT_GT(filtered.filter().ppfStats().trainFalseNegative, 0u);
    // Once open, candidates carry the base's next-line targets.
    EXPECT_EQ(issuer.issued.back().first & (blockSize - 1), 0u);
}

TEST(FilteredPrefetcher, EvictionFeedbackReachesTheFilter)
{
    ppf::FilteredPrefetcher filtered(
        std::make_unique<prefetch::NextLinePrefetcher>());
    CapturingIssuer issuer;
    filtered.attach(&issuer);

    // Open the filter, then feed useless evictions for its targets.
    Addr addr = 0x700000;
    for (int i = 0; i < 30; ++i) {
        prefetch::OperateInfo info;
        info.addr = addr;
        info.pc = 0x400100;
        filtered.operate(info);
        addr += blockSize;
    }
    ASSERT_GT(issuer.issued.size(), 0u);

    prefetch::FillInfo fill;
    fill.addr = issuer.issued.back().first;
    fill.wasPrefetch = true;
    fill.evictedValid = true;
    fill.evictedAddr = issuer.issued.back().first;
    fill.evictedUnusedPrefetch = true;
    filtered.fill(fill);
    EXPECT_GT(filtered.filter().ppfStats().trainUselessEvict, 0u);
}

// -------------------------------------------------------- feature analysis

TEST(FeatureAnalysis, DetectsCorrelatedFeature)
{
    FeatureAnalysis analysis;
    WeightTables tables;
    Rng rng(5);

    // Two populations: "good pages" whose prefetches succeed and "bad
    // pages" whose prefetches fail; train the tables as PPF would.
    for (int i = 0; i < 4000; ++i) {
        const bool good = rng.chance(0.5);
        FeatureInput input = sampleInput(good ? 1 : 2);
        input.confidence = good ? 80 : 10;
        const FeatureIndices idx = computeIndices(input);
        analysis.record(input, idx, tables, good);
        tables.train(idx, good);
    }
    // The confidence feature must show a strong positive correlation.
    EXPECT_GT(analysis.correlation(FeatureId::Confidence), 0.6);
    EXPECT_EQ(analysis.samples(), 4000u);
}

TEST(FeatureAnalysis, ShadowFeatureUncorrelatedWithRandomOutcomes)
{
    FeatureAnalysis analysis;
    WeightTables tables;
    Rng rng(6);

    for (int i = 0; i < 4000; ++i) {
        FeatureInput input = sampleInput(std::uint64_t(i % 17));
        const bool useful = rng.chance(0.5); // outcome independent
        analysis.record(input, computeIndices(input), tables, useful);
    }
    EXPECT_LT(std::abs(analysis.shadowCorrelation()), 0.2);
}

TEST(FeatureAnalysis, MergeAccumulates)
{
    FeatureAnalysis a, b;
    WeightTables tables;
    FeatureInput input = sampleInput(1);
    a.record(input, computeIndices(input), tables, true);
    b.record(input, computeIndices(input), tables, false);
    a.merge(b);
    EXPECT_EQ(a.samples(), 2u);
}

} // namespace
} // namespace pfsim::ppf
